// service_onboarding — adding a new online service to a running DiagNet
// deployment (paper §III-D and §IV-F).
//
// Trains the general model on 7 of the 8 services, then onboards the held
// out service by retraining only the final fully-connected layers with the
// convolution frozen. Prints the convergence comparison the paper reports
// in Fig. 9 (specialised models converge in a handful of epochs) and the
// recall gained on the new service.
//
//   ./service_onboarding [seed]

#include <cstdlib>
#include <iostream>

#include "data/generator.h"
#include "data/split.h"
#include "core/diagnet.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diagnet;

  std::uint64_t seed = 77;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << util::banner("Service onboarding via transfer learning");

  netsim::Simulator sim = netsim::Simulator::make_default(seed);
  sim.calibrate_qoe();
  data::FeatureSpace fs(sim.topology());

  const std::size_t new_service = sim.services().size() - 1;  // video.far
  std::cout << "Held-out service: '" << sim.services()[new_service].name
            << "'\n\nGenerating campaign...\n";

  data::CampaignConfig campaign;
  campaign.nominal_samples = 2000;
  campaign.fault_samples = 4500;
  campaign.seed = seed ^ 0xcafeULL;
  const data::Dataset full = data::generate_campaign(sim, fs, campaign);

  data::SplitConfig split_config;
  split_config.seed = seed ^ 0x5eedULL;
  const data::DataSplit split = data::make_split(full, fs, split_config);

  // General model sees only the 7 original services.
  data::Dataset original_services;
  data::Dataset new_service_train;
  original_services.landmark_available = split.train.landmark_available;
  new_service_train.landmark_available = split.train.landmark_available;
  for (const data::Sample& sample : split.train.samples)
    (sample.service == new_service ? new_service_train : original_services)
        .samples.push_back(sample);

  core::DiagNetConfig model_config = core::DiagNetConfig::defaults();
  model_config.seed = seed;
  core::DiagNetModel model(fs, model_config);

  std::cout << "Training general model on " << original_services.size()
            << " samples of 7 services...\n";
  const auto general_history = model.train_general(original_services);
  std::cout << "  converged at epoch " << (general_history.best_epoch + 1)
            << " of " << general_history.epochs_run() << " ("
            << util::fmt(general_history.wall_seconds, 1) << " s)\n";

  std::cout << "Onboarding '" << sim.services()[new_service].name
            << "' with " << new_service_train.size()
            << " samples (convolution + first hidden layer frozen)...\n";
  const auto onboard_history =
      model.specialize(new_service, new_service_train);
  std::cout << "  converged at epoch " << (onboard_history.best_epoch + 1)
            << " of " << onboard_history.epochs_run() << " ("
            << util::fmt(onboard_history.wall_seconds, 1)
            << " s)   [paper: < 5 epochs, ~4 s]\n\n";

  // Evaluate on the new service's faulty test samples, general vs
  // specialised.
  std::size_t n = 0, hit1_general = 0, hit1_special = 0, hit5_general = 0,
              hit5_special = 0;
  for (const data::Sample& sample : split.test.samples) {
    if (sample.service != new_service || !sample.is_faulty()) continue;
    ++n;
    core::DiagnoseRequest request{sample.features, new_service, false,
                                  split.test.landmark_available};
    request.use_general = true;
    auto general = model.diagnose(request).diagnosis;
    request.use_general = false;
    auto special = model.diagnose(request).diagnosis;
    for (std::size_t r = 0; r < 5; ++r) {
      if (general.ranking[r] == sample.primary_cause) {
        ++hit5_general;
        if (r == 0) ++hit1_general;
        break;
      }
    }
    for (std::size_t r = 0; r < 5; ++r) {
      if (special.ranking[r] == sample.primary_cause) {
        ++hit5_special;
        if (r == 0) ++hit1_special;
        break;
      }
    }
  }

  if (n == 0) {
    std::cout << "No faulty test samples for the new service — rerun with "
                 "another seed.\n";
    return 1;
  }
  const auto rate = [n](std::size_t hits) {
    return util::fmt(static_cast<double>(hits) / static_cast<double>(n), 3);
  };
  util::Table table({"model for the new service", "R@1", "R@5"});
  table.add_row({"general (never saw the service)", rate(hit1_general),
                 rate(hit5_general)});
  table.add_row({"specialised (final layers retrained)", rate(hit1_special),
                 rate(hit5_special)});
  std::cout << "Recall over " << n << " degraded visits of the new service:\n"
            << table.to_string();
  return 0;
}
