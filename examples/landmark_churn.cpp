// landmark_churn — root-cause extensibility under a changing landmark
// fleet (paper §II-D and §III-C).
//
// Trains DiagNet on 7 landmarks, then diagnoses the same incidents while
// the inference-time fleet churns: all 10 landmarks (3 brand-new ones),
// only the original 7, and a degraded fleet of 5. The same trained model
// serves every configuration without retraining — the LandPooling output
// never changes size.
//
//   ./landmark_churn [seed]

#include <cstdlib>
#include <iostream>

#include "eval/pipeline.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diagnet;

  eval::PipelineConfig config = eval::PipelineConfig::small();
  config.campaign.nominal_samples = 1500;
  config.campaign.fault_samples = 3500;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << util::banner("Landmark churn — one model, changing fleets");
  std::cout << "Training on 7 landmarks (EAST, GRAV, SEAT hidden)...\n\n";
  eval::Pipeline pipeline(config);
  const auto& fs = pipeline.feature_space();
  const std::size_t L = fs.landmark_count();

  // Fleet configurations at inference time.
  std::vector<bool> full(L, true);
  std::vector<bool> training_fleet(L, true);
  for (std::size_t lam : pipeline.split().hidden_landmarks)
    training_fleet[lam] = false;
  std::vector<bool> degraded = training_fleet;
  // Lose two more known landmarks (maintenance / saturation).
  std::size_t dropped = 0;
  for (std::size_t lam = 0; lam < L && dropped < 2; ++lam) {
    if (degraded[lam]) {
      degraded[lam] = false;
      ++dropped;
    }
  }

  struct Fleet {
    const char* name;
    const std::vector<bool>* available;
  };
  const Fleet fleets[] = {
      {"10 landmarks (3 new, never trained on)", &full},
      {"7 landmarks (the training fleet)", &training_fleet},
      {"5 landmarks (degraded fleet)", &degraded},
  };

  // Recall over the known-cause faulty test samples (causes at new
  // landmarks cannot be named when those landmarks are offline, so the
  // known subset is the fair comparison across fleets).
  const auto known_idx = pipeline.faulty_test_indices(false);
  std::cout << "Diagnosing the same " << known_idx.size()
            << " known-cause incidents under each fleet:\n";
  util::Table table({"inference fleet", "R@1", "R@5", "mean w_unknown"});
  for (const Fleet& fleet : fleets) {
    std::size_t hit1 = 0, hit5 = 0;
    double w_sum = 0.0;
    for (std::size_t idx : known_idx) {
      const data::Sample& sample = pipeline.split().test.samples[idx];
      auto diagnosis = pipeline.diagnet()
                           .diagnose({sample.features, sample.service, false,
                                      *fleet.available})
                           .diagnosis;
      w_sum += diagnosis.w_unknown;
      for (std::size_t r = 0; r < 5; ++r) {
        if (diagnosis.ranking[r] == sample.primary_cause) {
          ++hit5;
          if (r == 0) ++hit1;
          break;
        }
      }
    }
    const auto n = static_cast<double>(known_idx.size());
    table.add_row({fleet.name, util::fmt(hit1 / n, 3), util::fmt(hit5 / n, 3),
                   util::fmt(w_sum / n, 3)});
  }
  std::cout << table.to_string() << '\n';

  std::cout
      << "The model was trained once; only the availability mask changed.\n"
         "New-landmark causes are additionally diagnosable with the full\n"
         "fleet — that is the Fig. 5(a) experiment (bench/fig5_recall).\n";
  return 0;
}
