// multi_cloud_rca — the paper's evaluation in miniature.
//
// Deploys the 10-region multi-cloud topology, runs a fault-injection
// campaign, trains DiagNet plus both baselines with the hidden-landmark
// protocol, and prints a compact scoreboard: Recall@1/@5 for faults near
// new vs known landmarks, and a gallery of concrete diagnoses.
//
//   ./multi_cloud_rca [seed] [samples]

#include <cstdlib>
#include <set>
#include <iostream>

#include "eval/pipeline.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diagnet;

  eval::PipelineConfig config = eval::PipelineConfig::defaults();
  config.campaign.nominal_samples = 2500;
  config.campaign.fault_samples = 5000;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) {
    const std::size_t total = std::strtoull(argv[2], nullptr, 10);
    config.campaign.nominal_samples = total / 3;
    config.campaign.fault_samples = total - total / 3;
  }

  std::cout << util::banner("Multi-cloud root-cause analysis");
  std::cout << "Generating "
            << config.campaign.nominal_samples + config.campaign.fault_samples
            << " samples and training 3 models (seed " << config.seed
            << ")...\n\n";
  eval::Pipeline pipeline(config);
  const auto& fs = pipeline.feature_space();

  // Scoreboard.
  const auto new_idx = pipeline.faulty_test_indices(true);
  const auto known_idx = pipeline.faulty_test_indices(false);
  util::Table board({"model", "new R@1", "new R@5", "known R@1", "known R@5"});
  for (auto kind : {eval::ModelKind::DiagNet, eval::ModelKind::RandomForest,
                    eval::ModelKind::NaiveBayes}) {
    board.add_row(eval::model_name(kind),
                  {pipeline.recall(kind, new_idx, 1),
                   pipeline.recall(kind, new_idx, 5),
                   pipeline.recall(kind, known_idx, 1),
                   pipeline.recall(kind, known_idx, 5)});
  }
  std::cout << board.to_string() << '\n';

  // Diagnosis gallery: one sample per fault family, when available.
  std::cout << "Diagnosis gallery (DiagNet top-3 per incident):\n";
  std::set<netsim::FaultFamily> shown;
  for (std::size_t idx : pipeline.faulty_test_indices()) {
    const data::Sample& sample = pipeline.split().test.samples[idx];
    if (!shown.insert(sample.coarse_label).second) continue;

    auto diagnosis =
        pipeline.diagnet()
            .diagnose({sample.features, sample.service, false,
                       pipeline.split().test.landmark_available})
            .diagnosis;
    std::cout << "  ["
              << pipeline.simulator().services()[sample.service].name
              << " from " << fs.topology().region(sample.client_region).code
              << "] truth: " << fs.name(sample.primary_cause) << " -> top3:";
    for (int r = 0; r < 3; ++r)
      std::cout << ' ' << fs.name(diagnosis.ranking[r]) << " ("
                << util::fmt(diagnosis.scores[diagnosis.ranking[r]], 3)
                << ')';
    std::cout << '\n';
    if (shown.size() == 6) break;
  }
  return 0;
}
