// Quickstart: the smallest end-to-end DiagNet run.
//
// Simulates the paper's multi-cloud deployment, collects a small
// measurement campaign, trains DiagNet and both baselines, then diagnoses
// one degraded sample and prints the ranked root causes.
//
//   ./quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "eval/pipeline.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diagnet;

  eval::PipelineConfig config = eval::PipelineConfig::small();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << util::banner("DiagNet quickstart");
  std::cout << "Simulating 10-region multi-cloud deployment, generating "
            << (config.campaign.nominal_samples + config.campaign.fault_samples)
            << " samples, training models...\n\n";

  eval::Pipeline pipeline(config);
  const auto& fs = pipeline.feature_space();
  const auto& test = pipeline.split().test;

  std::cout << "Training set: " << pipeline.split().train.size()
            << " samples (" << pipeline.split().train.count_faulty()
            << " faulty), hidden landmarks:";
  for (std::size_t lam : pipeline.split().hidden_landmarks)
    std::cout << ' ' << fs.topology().region(lam).code;
  std::cout << "\nTest set: " << test.size() << " samples ("
            << test.count_faulty() << " faulty)\n\n";

  // Diagnose the first faulty test sample.
  const auto faulty = pipeline.faulty_test_indices();
  if (faulty.empty()) {
    std::cout << "No faulty test samples — increase the campaign size.\n";
    return 1;
  }
  const data::Sample& sample = test.samples[faulty.front()];
  std::cout << "Diagnosing a degraded visit of service '"
            << pipeline.simulator().services()[sample.service].name
            << "' from region "
            << fs.topology().region(sample.client_region).code
            << " (page load " << util::fmt(sample.page_load_ms, 0)
            << " ms)\n";
  std::cout << "Ground truth cause: " << fs.name(sample.primary_cause)
            << "\n\n";

  core::DiagnoseResponse response = pipeline.diagnet().diagnose(
      {sample.features, sample.service, false, test.landmark_available});
  if (!response.ok()) {
    std::cerr << "diagnosis failed: " << response.status.message() << '\n';
    return 1;
  }
  const core::Diagnosis& diagnosis = response.diagnosis;

  util::Table table({"rank", "root cause", "score", "family"});
  for (std::size_t r = 0; r < 5; ++r) {
    const std::size_t cause = diagnosis.ranking[r];
    table.add_row({std::to_string(r + 1), fs.name(cause),
                   util::fmt(diagnosis.scores[cause], 4),
                   netsim::fault_family_name(fs.family_of(cause))});
  }
  std::cout << table.to_string();
  std::cout << "\nCoarse prediction: "
            << netsim::fault_family_name(
                   static_cast<netsim::FaultFamily>(diagnosis.coarse_argmax))
            << "  (w_unknown = " << util::fmt(diagnosis.w_unknown, 3)
            << ")\n\n";

  // Headline metric on this small run.
  std::cout << "Recall@1 over " << faulty.size() << " faulty test samples: "
            << util::fmt(
                   pipeline.recall(eval::ModelKind::DiagNet, faulty, 1), 3)
            << " (paper, full-scale campaign: 0.739)\n";
  return 0;
}
