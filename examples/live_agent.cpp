// live_agent — a day in the life of a DiagNet client (paper Fig. 1).
//
// Trains a model once, then runs an online client agent in Amsterdam for a
// simulated day: it probes a budgeted subset of landmarks every 15 minutes
// while the landmark fleet churns (maintenance + failures), visits a
// service every 5 minutes, and whenever a visit's QoE is degraded prints
// the diagnosis produced from its measurement window. Two incidents are
// scripted mid-day to show detection and localisation.
//
//   ./live_agent [seed]

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <iostream>

#include "agent/agent.h"
#include "eval/pipeline.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diagnet;

  eval::PipelineConfig config = eval::PipelineConfig::small();
  config.campaign.nominal_samples = 1200;
  config.campaign.fault_samples = 2800;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << util::banner("Live client agent — one simulated day");
  std::cout << "Training the analysis model...\n\n";
  eval::Pipeline pipeline(config);
  const auto& fs = pipeline.feature_space();
  const auto& topology = fs.topology();

  // A churning landmark fleet.
  fleet::FleetConfig fleet_config;
  fleet_config.failures_per_day = 0.3;
  fleet_config.seed = config.seed ^ 0xf1ee7ULL;
  const fleet::LandmarkFleet landmark_fleet(topology.region_count(),
                                            fleet_config);

  const std::size_t amst = topology.index_of("AMST");
  agent::AgentConfig agent_config;
  agent_config.region = amst;
  agent_config.client_id = 11;
  agent_config.probe_budget = {6, fleet::ProbeStrategy::SpreadK};
  // A short window keeps the per-feature medians responsive: a fault
  // dominates the snapshot within ~2-3 probe epochs of its onset.
  agent_config.window_capacity = 4;
  agent_config.seed = config.seed ^ 0xa6e27ULL;
  agent::ClientAgent client(pipeline.simulator(), landmark_fleet,
                            pipeline.diagnet(), fs, agent_config);

  // Scripted world state: download shaping near BEAU 10:00-13:00 (the
  // service's 5 MB image comes from there), then a severe local gateway
  // problem 16:00-18:00. The agent knows none of this.
  const std::size_t beau = topology.index_of("BEAU");
  netsim::FaultSpec gateway =
      netsim::default_fault(netsim::FaultFamily::Uplink, amst);
  gateway.magnitude = 150.0;  // a badly misbehaving home router
  const auto world_faults = [&](double t) -> netsim::ActiveFaults {
    if (t >= 10.0 && t < 13.0)
      return {netsim::default_fault(netsim::FaultFamily::Bandwidth, beau)};
    if (t >= 16.0 && t < 18.0) return {gateway};
    return {};
  };
  const auto clock = [](double t) {
    std::ostringstream os;
    os << std::setfill('0') << std::setw(2) << static_cast<int>(t) << ':'
       << std::setw(2) << static_cast<int>(t * 60) % 60;
    return os.str();
  };

  std::cout << "Client in AMST, probing 6/" << topology.region_count()
            << " landmarks every 15 min, visiting 'image.far' (5 MB via "
               "BEAU) every 5 min.\n"
            << "Scripted incidents: bandwidth@BEAU 10:00-13:00, "
               "uplink@AMST 16:00-18:00.\n\n";

  const std::size_t service = 4;  // image.far
  std::size_t degraded_visits = 0;
  double last_report = -1.0;
  for (double t = 0.0; t < 24.0; t += 1.0 / 12.0) {
    const netsim::ActiveFaults faults = world_faults(t);
    if (std::fmod(t, 0.25) < 1e-9) client.probe_epoch(t, faults);

    const agent::VisitOutcome outcome = client.visit(service, t, faults);
    if (!outcome.degraded) continue;
    ++degraded_visits;
    // Report at most one diagnosis per 30 simulated minutes.
    if (t - last_report < 0.5) continue;
    last_report = t;
    const auto& diagnosis = *outcome.diagnosis;
    std::cout << clock(t) << "  QoE degraded (plt "
              << util::fmt(outcome.page_load_ms, 0) << " ms) — top causes: ";
    for (int r = 0; r < 3; ++r)
      std::cout << (r ? ", " : "") << fs.name(diagnosis.ranking[r]) << " ("
                << util::fmt(diagnosis.scores[diagnosis.ranking[r]], 2)
                << ')';
    std::cout << '\n';
  }

  std::cout << '\n'
            << degraded_visits << " degraded visits detected; "
            << client.probes_sent() << " landmark probes sent all day.\n";
  return 0;
}
