# Empty compiler generated dependencies file for multi_cloud_rca.
# This may be replaced when dependencies are built.
