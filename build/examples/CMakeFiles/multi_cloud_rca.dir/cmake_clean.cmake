file(REMOVE_RECURSE
  "CMakeFiles/multi_cloud_rca.dir/multi_cloud_rca.cpp.o"
  "CMakeFiles/multi_cloud_rca.dir/multi_cloud_rca.cpp.o.d"
  "multi_cloud_rca"
  "multi_cloud_rca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cloud_rca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
