file(REMOVE_RECURSE
  "CMakeFiles/service_onboarding.dir/service_onboarding.cpp.o"
  "CMakeFiles/service_onboarding.dir/service_onboarding.cpp.o.d"
  "service_onboarding"
  "service_onboarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_onboarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
