# Empty compiler generated dependencies file for service_onboarding.
# This may be replaced when dependencies are built.
