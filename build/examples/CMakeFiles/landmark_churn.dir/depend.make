# Empty dependencies file for landmark_churn.
# This may be replaced when dependencies are built.
