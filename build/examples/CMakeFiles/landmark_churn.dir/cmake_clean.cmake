file(REMOVE_RECURSE
  "CMakeFiles/landmark_churn.dir/landmark_churn.cpp.o"
  "CMakeFiles/landmark_churn.dir/landmark_churn.cpp.o.d"
  "landmark_churn"
  "landmark_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
