file(REMOVE_RECURSE
  "CMakeFiles/live_agent.dir/live_agent.cpp.o"
  "CMakeFiles/live_agent.dir/live_agent.cpp.o.d"
  "live_agent"
  "live_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
