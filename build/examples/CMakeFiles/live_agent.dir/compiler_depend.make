# Empty compiler generated dependencies file for live_agent.
# This may be replaced when dependencies are built.
