file(REMOVE_RECURSE
  "CMakeFiles/diagnet_cli.dir/diagnet_cli.cpp.o"
  "CMakeFiles/diagnet_cli.dir/diagnet_cli.cpp.o.d"
  "diagnet"
  "diagnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
