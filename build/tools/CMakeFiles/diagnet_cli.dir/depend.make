# Empty dependencies file for diagnet_cli.
# This may be replaced when dependencies are built.
