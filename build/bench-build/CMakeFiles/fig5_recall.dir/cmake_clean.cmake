file(REMOVE_RECURSE
  "../bench/fig5_recall"
  "../bench/fig5_recall.pdb"
  "CMakeFiles/fig5_recall.dir/fig5_recall.cpp.o"
  "CMakeFiles/fig5_recall.dir/fig5_recall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
