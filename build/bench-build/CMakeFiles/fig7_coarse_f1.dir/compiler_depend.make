# Empty compiler generated dependencies file for fig7_coarse_f1.
# This may be replaced when dependencies are built.
