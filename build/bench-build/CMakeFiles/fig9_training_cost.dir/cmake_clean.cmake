file(REMOVE_RECURSE
  "../bench/fig9_training_cost"
  "../bench/fig9_training_cost.pdb"
  "CMakeFiles/fig9_training_cost.dir/fig9_training_cost.cpp.o"
  "CMakeFiles/fig9_training_cost.dir/fig9_training_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_training_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
