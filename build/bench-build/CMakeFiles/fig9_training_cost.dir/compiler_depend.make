# Empty compiler generated dependencies file for fig9_training_cost.
# This may be replaced when dependencies are built.
