file(REMOVE_RECURSE
  "../bench/ablation_attention"
  "../bench/ablation_attention.pdb"
  "CMakeFiles/ablation_attention.dir/ablation_attention.cpp.o"
  "CMakeFiles/ablation_attention.dir/ablation_attention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
