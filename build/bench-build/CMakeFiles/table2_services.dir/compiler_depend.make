# Empty compiler generated dependencies file for table2_services.
# This may be replaced when dependencies are built.
