file(REMOVE_RECURSE
  "../bench/table2_services"
  "../bench/table2_services.pdb"
  "CMakeFiles/table2_services.dir/table2_services.cpp.o"
  "CMakeFiles/table2_services.dir/table2_services.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
