file(REMOVE_RECURSE
  "../bench/ablation_pooling"
  "../bench/ablation_pooling.pdb"
  "CMakeFiles/ablation_pooling.dir/ablation_pooling.cpp.o"
  "CMakeFiles/ablation_pooling.dir/ablation_pooling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
