# Empty compiler generated dependencies file for probe_budget.
# This may be replaced when dependencies are built.
