file(REMOVE_RECURSE
  "../bench/probe_budget"
  "../bench/probe_budget.pdb"
  "CMakeFiles/probe_budget.dir/probe_budget.cpp.o"
  "CMakeFiles/probe_budget.dir/probe_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
