# Empty dependencies file for fig10_simultaneous.
# This may be replaced when dependencies are built.
