file(REMOVE_RECURSE
  "../bench/fig10_simultaneous"
  "../bench/fig10_simultaneous.pdb"
  "CMakeFiles/fig10_simultaneous.dir/fig10_simultaneous.cpp.o"
  "CMakeFiles/fig10_simultaneous.dir/fig10_simultaneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_simultaneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
