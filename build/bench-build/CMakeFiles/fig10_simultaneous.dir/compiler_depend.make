# Empty compiler generated dependencies file for fig10_simultaneous.
# This may be replaced when dependencies are built.
