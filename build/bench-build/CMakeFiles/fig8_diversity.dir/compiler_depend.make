# Empty compiler generated dependencies file for fig8_diversity.
# This may be replaced when dependencies are built.
