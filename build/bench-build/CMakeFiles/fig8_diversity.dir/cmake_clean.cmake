file(REMOVE_RECURSE
  "../bench/fig8_diversity"
  "../bench/fig8_diversity.pdb"
  "CMakeFiles/fig8_diversity.dir/fig8_diversity.cpp.o"
  "CMakeFiles/fig8_diversity.dir/fig8_diversity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
