file(REMOVE_RECURSE
  "../bench/fig6_family_region"
  "../bench/fig6_family_region.pdb"
  "CMakeFiles/fig6_family_region.dir/fig6_family_region.cpp.o"
  "CMakeFiles/fig6_family_region.dir/fig6_family_region.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_family_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
