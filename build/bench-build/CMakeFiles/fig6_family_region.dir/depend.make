# Empty dependencies file for fig6_family_region.
# This may be replaced when dependencies are built.
