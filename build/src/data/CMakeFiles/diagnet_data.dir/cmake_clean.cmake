file(REMOVE_RECURSE
  "CMakeFiles/diagnet_data.dir/dataset.cpp.o"
  "CMakeFiles/diagnet_data.dir/dataset.cpp.o.d"
  "CMakeFiles/diagnet_data.dir/encoding.cpp.o"
  "CMakeFiles/diagnet_data.dir/encoding.cpp.o.d"
  "CMakeFiles/diagnet_data.dir/feature_space.cpp.o"
  "CMakeFiles/diagnet_data.dir/feature_space.cpp.o.d"
  "CMakeFiles/diagnet_data.dir/generator.cpp.o"
  "CMakeFiles/diagnet_data.dir/generator.cpp.o.d"
  "CMakeFiles/diagnet_data.dir/io.cpp.o"
  "CMakeFiles/diagnet_data.dir/io.cpp.o.d"
  "CMakeFiles/diagnet_data.dir/normalizer.cpp.o"
  "CMakeFiles/diagnet_data.dir/normalizer.cpp.o.d"
  "CMakeFiles/diagnet_data.dir/split.cpp.o"
  "CMakeFiles/diagnet_data.dir/split.cpp.o.d"
  "libdiagnet_data.a"
  "libdiagnet_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
