# Empty dependencies file for diagnet_data.
# This may be replaced when dependencies are built.
