file(REMOVE_RECURSE
  "libdiagnet_data.a"
)
