
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/diagnet_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/diagnet_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/encoding.cpp" "src/data/CMakeFiles/diagnet_data.dir/encoding.cpp.o" "gcc" "src/data/CMakeFiles/diagnet_data.dir/encoding.cpp.o.d"
  "/root/repo/src/data/feature_space.cpp" "src/data/CMakeFiles/diagnet_data.dir/feature_space.cpp.o" "gcc" "src/data/CMakeFiles/diagnet_data.dir/feature_space.cpp.o.d"
  "/root/repo/src/data/generator.cpp" "src/data/CMakeFiles/diagnet_data.dir/generator.cpp.o" "gcc" "src/data/CMakeFiles/diagnet_data.dir/generator.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/data/CMakeFiles/diagnet_data.dir/io.cpp.o" "gcc" "src/data/CMakeFiles/diagnet_data.dir/io.cpp.o.d"
  "/root/repo/src/data/normalizer.cpp" "src/data/CMakeFiles/diagnet_data.dir/normalizer.cpp.o" "gcc" "src/data/CMakeFiles/diagnet_data.dir/normalizer.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/data/CMakeFiles/diagnet_data.dir/split.cpp.o" "gcc" "src/data/CMakeFiles/diagnet_data.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/diagnet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diagnet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/diagnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diagnet_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
