# Empty compiler generated dependencies file for diagnet_tensor.
# This may be replaced when dependencies are built.
