file(REMOVE_RECURSE
  "libdiagnet_tensor.a"
)
