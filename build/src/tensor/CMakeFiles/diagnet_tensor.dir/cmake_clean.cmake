file(REMOVE_RECURSE
  "CMakeFiles/diagnet_tensor.dir/matrix.cpp.o"
  "CMakeFiles/diagnet_tensor.dir/matrix.cpp.o.d"
  "CMakeFiles/diagnet_tensor.dir/ops.cpp.o"
  "CMakeFiles/diagnet_tensor.dir/ops.cpp.o.d"
  "libdiagnet_tensor.a"
  "libdiagnet_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
