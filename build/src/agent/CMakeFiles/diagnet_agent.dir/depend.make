# Empty dependencies file for diagnet_agent.
# This may be replaced when dependencies are built.
