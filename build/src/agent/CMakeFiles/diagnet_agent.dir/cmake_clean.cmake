file(REMOVE_RECURSE
  "CMakeFiles/diagnet_agent.dir/agent.cpp.o"
  "CMakeFiles/diagnet_agent.dir/agent.cpp.o.d"
  "CMakeFiles/diagnet_agent.dir/window.cpp.o"
  "CMakeFiles/diagnet_agent.dir/window.cpp.o.d"
  "libdiagnet_agent.a"
  "libdiagnet_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
