file(REMOVE_RECURSE
  "libdiagnet_agent.a"
)
