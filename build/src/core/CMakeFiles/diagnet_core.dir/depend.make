# Empty dependencies file for diagnet_core.
# This may be replaced when dependencies are built.
