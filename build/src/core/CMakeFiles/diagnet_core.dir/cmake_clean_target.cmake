file(REMOVE_RECURSE
  "libdiagnet_core.a"
)
