
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attention.cpp" "src/core/CMakeFiles/diagnet_core.dir/attention.cpp.o" "gcc" "src/core/CMakeFiles/diagnet_core.dir/attention.cpp.o.d"
  "/root/repo/src/core/diagnet.cpp" "src/core/CMakeFiles/diagnet_core.dir/diagnet.cpp.o" "gcc" "src/core/CMakeFiles/diagnet_core.dir/diagnet.cpp.o.d"
  "/root/repo/src/core/ensemble.cpp" "src/core/CMakeFiles/diagnet_core.dir/ensemble.cpp.o" "gcc" "src/core/CMakeFiles/diagnet_core.dir/ensemble.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/diagnet_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/diagnet_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/score_weighting.cpp" "src/core/CMakeFiles/diagnet_core.dir/score_weighting.cpp.o" "gcc" "src/core/CMakeFiles/diagnet_core.dir/score_weighting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/diagnet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/diagnet_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diagnet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/diagnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/diagnet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diagnet_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
