file(REMOVE_RECURSE
  "CMakeFiles/diagnet_core.dir/attention.cpp.o"
  "CMakeFiles/diagnet_core.dir/attention.cpp.o.d"
  "CMakeFiles/diagnet_core.dir/diagnet.cpp.o"
  "CMakeFiles/diagnet_core.dir/diagnet.cpp.o.d"
  "CMakeFiles/diagnet_core.dir/ensemble.cpp.o"
  "CMakeFiles/diagnet_core.dir/ensemble.cpp.o.d"
  "CMakeFiles/diagnet_core.dir/registry.cpp.o"
  "CMakeFiles/diagnet_core.dir/registry.cpp.o.d"
  "CMakeFiles/diagnet_core.dir/score_weighting.cpp.o"
  "CMakeFiles/diagnet_core.dir/score_weighting.cpp.o.d"
  "libdiagnet_core.a"
  "libdiagnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
