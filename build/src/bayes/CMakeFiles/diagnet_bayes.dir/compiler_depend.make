# Empty compiler generated dependencies file for diagnet_bayes.
# This may be replaced when dependencies are built.
