file(REMOVE_RECURSE
  "libdiagnet_bayes.a"
)
