file(REMOVE_RECURSE
  "CMakeFiles/diagnet_bayes.dir/kde.cpp.o"
  "CMakeFiles/diagnet_bayes.dir/kde.cpp.o.d"
  "CMakeFiles/diagnet_bayes.dir/naive_bayes.cpp.o"
  "CMakeFiles/diagnet_bayes.dir/naive_bayes.cpp.o.d"
  "libdiagnet_bayes.a"
  "libdiagnet_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
