
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/diagnet_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/diagnet_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/coarse_net.cpp" "src/nn/CMakeFiles/diagnet_nn.dir/coarse_net.cpp.o" "gcc" "src/nn/CMakeFiles/diagnet_nn.dir/coarse_net.cpp.o.d"
  "/root/repo/src/nn/land_pooling.cpp" "src/nn/CMakeFiles/diagnet_nn.dir/land_pooling.cpp.o" "gcc" "src/nn/CMakeFiles/diagnet_nn.dir/land_pooling.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/diagnet_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/diagnet_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/diagnet_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/diagnet_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/nn/CMakeFiles/diagnet_nn.dir/sgd.cpp.o" "gcc" "src/nn/CMakeFiles/diagnet_nn.dir/sgd.cpp.o.d"
  "/root/repo/src/nn/softmax.cpp" "src/nn/CMakeFiles/diagnet_nn.dir/softmax.cpp.o" "gcc" "src/nn/CMakeFiles/diagnet_nn.dir/softmax.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/diagnet_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/diagnet_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/diagnet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/diagnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
