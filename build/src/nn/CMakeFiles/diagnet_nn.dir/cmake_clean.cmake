file(REMOVE_RECURSE
  "CMakeFiles/diagnet_nn.dir/activations.cpp.o"
  "CMakeFiles/diagnet_nn.dir/activations.cpp.o.d"
  "CMakeFiles/diagnet_nn.dir/coarse_net.cpp.o"
  "CMakeFiles/diagnet_nn.dir/coarse_net.cpp.o.d"
  "CMakeFiles/diagnet_nn.dir/land_pooling.cpp.o"
  "CMakeFiles/diagnet_nn.dir/land_pooling.cpp.o.d"
  "CMakeFiles/diagnet_nn.dir/linear.cpp.o"
  "CMakeFiles/diagnet_nn.dir/linear.cpp.o.d"
  "CMakeFiles/diagnet_nn.dir/serialize.cpp.o"
  "CMakeFiles/diagnet_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/diagnet_nn.dir/sgd.cpp.o"
  "CMakeFiles/diagnet_nn.dir/sgd.cpp.o.d"
  "CMakeFiles/diagnet_nn.dir/softmax.cpp.o"
  "CMakeFiles/diagnet_nn.dir/softmax.cpp.o.d"
  "CMakeFiles/diagnet_nn.dir/trainer.cpp.o"
  "CMakeFiles/diagnet_nn.dir/trainer.cpp.o.d"
  "libdiagnet_nn.a"
  "libdiagnet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
