file(REMOVE_RECURSE
  "libdiagnet_nn.a"
)
