# Empty dependencies file for diagnet_nn.
# This may be replaced when dependencies are built.
