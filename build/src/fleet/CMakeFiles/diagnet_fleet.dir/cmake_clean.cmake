file(REMOVE_RECURSE
  "CMakeFiles/diagnet_fleet.dir/fleet.cpp.o"
  "CMakeFiles/diagnet_fleet.dir/fleet.cpp.o.d"
  "libdiagnet_fleet.a"
  "libdiagnet_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
