file(REMOVE_RECURSE
  "libdiagnet_fleet.a"
)
