
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fleet/fleet.cpp" "src/fleet/CMakeFiles/diagnet_fleet.dir/fleet.cpp.o" "gcc" "src/fleet/CMakeFiles/diagnet_fleet.dir/fleet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/diagnet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/diagnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
