# Empty dependencies file for diagnet_fleet.
# This may be replaced when dependencies are built.
