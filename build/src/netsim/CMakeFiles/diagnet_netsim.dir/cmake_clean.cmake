file(REMOVE_RECURSE
  "CMakeFiles/diagnet_netsim.dir/fault.cpp.o"
  "CMakeFiles/diagnet_netsim.dir/fault.cpp.o.d"
  "CMakeFiles/diagnet_netsim.dir/geo.cpp.o"
  "CMakeFiles/diagnet_netsim.dir/geo.cpp.o.d"
  "CMakeFiles/diagnet_netsim.dir/measurement.cpp.o"
  "CMakeFiles/diagnet_netsim.dir/measurement.cpp.o.d"
  "CMakeFiles/diagnet_netsim.dir/path_model.cpp.o"
  "CMakeFiles/diagnet_netsim.dir/path_model.cpp.o.d"
  "CMakeFiles/diagnet_netsim.dir/service.cpp.o"
  "CMakeFiles/diagnet_netsim.dir/service.cpp.o.d"
  "CMakeFiles/diagnet_netsim.dir/simulator.cpp.o"
  "CMakeFiles/diagnet_netsim.dir/simulator.cpp.o.d"
  "CMakeFiles/diagnet_netsim.dir/topology.cpp.o"
  "CMakeFiles/diagnet_netsim.dir/topology.cpp.o.d"
  "libdiagnet_netsim.a"
  "libdiagnet_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
