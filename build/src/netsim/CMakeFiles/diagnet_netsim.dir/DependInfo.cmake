
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/fault.cpp" "src/netsim/CMakeFiles/diagnet_netsim.dir/fault.cpp.o" "gcc" "src/netsim/CMakeFiles/diagnet_netsim.dir/fault.cpp.o.d"
  "/root/repo/src/netsim/geo.cpp" "src/netsim/CMakeFiles/diagnet_netsim.dir/geo.cpp.o" "gcc" "src/netsim/CMakeFiles/diagnet_netsim.dir/geo.cpp.o.d"
  "/root/repo/src/netsim/measurement.cpp" "src/netsim/CMakeFiles/diagnet_netsim.dir/measurement.cpp.o" "gcc" "src/netsim/CMakeFiles/diagnet_netsim.dir/measurement.cpp.o.d"
  "/root/repo/src/netsim/path_model.cpp" "src/netsim/CMakeFiles/diagnet_netsim.dir/path_model.cpp.o" "gcc" "src/netsim/CMakeFiles/diagnet_netsim.dir/path_model.cpp.o.d"
  "/root/repo/src/netsim/service.cpp" "src/netsim/CMakeFiles/diagnet_netsim.dir/service.cpp.o" "gcc" "src/netsim/CMakeFiles/diagnet_netsim.dir/service.cpp.o.d"
  "/root/repo/src/netsim/simulator.cpp" "src/netsim/CMakeFiles/diagnet_netsim.dir/simulator.cpp.o" "gcc" "src/netsim/CMakeFiles/diagnet_netsim.dir/simulator.cpp.o.d"
  "/root/repo/src/netsim/topology.cpp" "src/netsim/CMakeFiles/diagnet_netsim.dir/topology.cpp.o" "gcc" "src/netsim/CMakeFiles/diagnet_netsim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/diagnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
