# Empty dependencies file for diagnet_netsim.
# This may be replaced when dependencies are built.
