file(REMOVE_RECURSE
  "libdiagnet_netsim.a"
)
