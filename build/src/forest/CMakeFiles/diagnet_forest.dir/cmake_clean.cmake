file(REMOVE_RECURSE
  "CMakeFiles/diagnet_forest.dir/decision_tree.cpp.o"
  "CMakeFiles/diagnet_forest.dir/decision_tree.cpp.o.d"
  "CMakeFiles/diagnet_forest.dir/extensible_forest.cpp.o"
  "CMakeFiles/diagnet_forest.dir/extensible_forest.cpp.o.d"
  "CMakeFiles/diagnet_forest.dir/random_forest.cpp.o"
  "CMakeFiles/diagnet_forest.dir/random_forest.cpp.o.d"
  "libdiagnet_forest.a"
  "libdiagnet_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
