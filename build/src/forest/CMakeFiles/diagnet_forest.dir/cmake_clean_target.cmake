file(REMOVE_RECURSE
  "libdiagnet_forest.a"
)
