# Empty dependencies file for diagnet_forest.
# This may be replaced when dependencies are built.
