file(REMOVE_RECURSE
  "CMakeFiles/diagnet_eval.dir/metrics.cpp.o"
  "CMakeFiles/diagnet_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/diagnet_eval.dir/pipeline.cpp.o"
  "CMakeFiles/diagnet_eval.dir/pipeline.cpp.o.d"
  "libdiagnet_eval.a"
  "libdiagnet_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
