# Empty dependencies file for diagnet_eval.
# This may be replaced when dependencies are built.
