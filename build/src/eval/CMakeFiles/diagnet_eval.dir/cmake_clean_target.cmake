file(REMOVE_RECURSE
  "libdiagnet_eval.a"
)
