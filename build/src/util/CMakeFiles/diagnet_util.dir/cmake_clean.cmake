file(REMOVE_RECURSE
  "CMakeFiles/diagnet_util.dir/binary_io.cpp.o"
  "CMakeFiles/diagnet_util.dir/binary_io.cpp.o.d"
  "CMakeFiles/diagnet_util.dir/rng.cpp.o"
  "CMakeFiles/diagnet_util.dir/rng.cpp.o.d"
  "CMakeFiles/diagnet_util.dir/stats.cpp.o"
  "CMakeFiles/diagnet_util.dir/stats.cpp.o.d"
  "CMakeFiles/diagnet_util.dir/table.cpp.o"
  "CMakeFiles/diagnet_util.dir/table.cpp.o.d"
  "CMakeFiles/diagnet_util.dir/thread_pool.cpp.o"
  "CMakeFiles/diagnet_util.dir/thread_pool.cpp.o.d"
  "libdiagnet_util.a"
  "libdiagnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
