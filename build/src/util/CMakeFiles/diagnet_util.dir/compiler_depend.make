# Empty compiler generated dependencies file for diagnet_util.
# This may be replaced when dependencies are built.
