file(REMOVE_RECURSE
  "libdiagnet_util.a"
)
