# Empty compiler generated dependencies file for test_feature_space.
# This may be replaced when dependencies are built.
