file(REMOVE_RECURSE
  "CMakeFiles/test_feature_space.dir/test_feature_space.cpp.o"
  "CMakeFiles/test_feature_space.dir/test_feature_space.cpp.o.d"
  "test_feature_space"
  "test_feature_space.pdb"
  "test_feature_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
