# Empty dependencies file for test_coarse_net.
# This may be replaced when dependencies are built.
