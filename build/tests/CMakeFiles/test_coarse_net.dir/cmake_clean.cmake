file(REMOVE_RECURSE
  "CMakeFiles/test_coarse_net.dir/test_coarse_net.cpp.o"
  "CMakeFiles/test_coarse_net.dir/test_coarse_net.cpp.o.d"
  "test_coarse_net"
  "test_coarse_net.pdb"
  "test_coarse_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coarse_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
