
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/diagnet_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diagnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/diagnet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/diagnet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/diagnet_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/diagnet_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/bayes/CMakeFiles/diagnet_bayes.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/diagnet_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diagnet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diagnet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/diagnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
