file(REMOVE_RECURSE
  "CMakeFiles/test_data_pipeline.dir/test_data_pipeline.cpp.o"
  "CMakeFiles/test_data_pipeline.dir/test_data_pipeline.cpp.o.d"
  "test_data_pipeline"
  "test_data_pipeline.pdb"
  "test_data_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
