# Empty compiler generated dependencies file for test_data_pipeline.
# This may be replaced when dependencies are built.
