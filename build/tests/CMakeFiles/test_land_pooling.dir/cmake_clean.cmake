file(REMOVE_RECURSE
  "CMakeFiles/test_land_pooling.dir/test_land_pooling.cpp.o"
  "CMakeFiles/test_land_pooling.dir/test_land_pooling.cpp.o.d"
  "test_land_pooling"
  "test_land_pooling.pdb"
  "test_land_pooling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_land_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
