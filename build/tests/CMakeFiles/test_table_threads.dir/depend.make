# Empty dependencies file for test_table_threads.
# This may be replaced when dependencies are built.
