file(REMOVE_RECURSE
  "CMakeFiles/test_table_threads.dir/test_table_threads.cpp.o"
  "CMakeFiles/test_table_threads.dir/test_table_threads.cpp.o.d"
  "test_table_threads"
  "test_table_threads.pdb"
  "test_table_threads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
