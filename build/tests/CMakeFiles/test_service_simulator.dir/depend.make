# Empty dependencies file for test_service_simulator.
# This may be replaced when dependencies are built.
