file(REMOVE_RECURSE
  "CMakeFiles/test_service_simulator.dir/test_service_simulator.cpp.o"
  "CMakeFiles/test_service_simulator.dir/test_service_simulator.cpp.o.d"
  "test_service_simulator"
  "test_service_simulator.pdb"
  "test_service_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
