file(REMOVE_RECURSE
  "CMakeFiles/test_sgd_trainer.dir/test_sgd_trainer.cpp.o"
  "CMakeFiles/test_sgd_trainer.dir/test_sgd_trainer.cpp.o.d"
  "test_sgd_trainer"
  "test_sgd_trainer.pdb"
  "test_sgd_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgd_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
