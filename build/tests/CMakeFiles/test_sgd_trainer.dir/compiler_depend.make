# Empty compiler generated dependencies file for test_sgd_trainer.
# This may be replaced when dependencies are built.
