# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table_threads[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_land_pooling[1]_include.cmake")
include("/root/repo/build/tests/test_coarse_net[1]_include.cmake")
include("/root/repo/build/tests/test_sgd_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_forest[1]_include.cmake")
include("/root/repo/build/tests/test_bayes[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_service_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_feature_space[1]_include.cmake")
include("/root/repo/build/tests/test_data_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fleet[1]_include.cmake")
include("/root/repo/build/tests/test_persistence[1]_include.cmake")
include("/root/repo/build/tests/test_agent[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
