// Scaling bench for the streaming campaign path: runs the event-driven
// client-mode generator (netsim::EventEngine + FlowModel) through a
// ChunkedWriter into a scratch directory and reports clients/s, samples/s
// and peak RSS. The CI gate (scripts/check_bench_regression.py --simulate)
// enforces a throughput floor and an RSS ceiling on the emitted
// BENCH_simulate.json, pinning the "bounded memory at any campaign size"
// property of the streaming sink.
//
//   ./simulate_scale [clients]         default 20000, scaled by
//                                      DIAGNET_BENCH_SCALE

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "data/campaign_stream.h"
#include "data/generator.h"
#include "netsim/simulator.h"
#include "obs/obs.h"

int main(int argc, char** argv) {
  using namespace diagnet;
  using clock = std::chrono::steady_clock;

  std::uint64_t clients = 20000;
  if (argc > 1) clients = std::strtoull(argv[1], nullptr, 10);
  clients = static_cast<std::uint64_t>(static_cast<double>(clients) *
                                       bench::bench_scale());
  if (clients == 0) clients = 1;

  obs::init_from_env();
  std::cout << util::banner("DiagNet reproduction — streaming simulation");
  std::cout << "Streaming a " << clients
            << "-client event-driven campaign through the chunked sink.\n\n";

  netsim::Simulator sim = netsim::Simulator::make_default(42);
  sim.calibrate_qoe();
  const data::FeatureSpace fs(sim.topology());

  data::CampaignConfig campaign;
  campaign.seed = 42 ^ 0xca3fULL;
  campaign.clients = clients;
  campaign.duration_hours = 24.0;

  std::error_code ec;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path(ec) / "diagnet_simulate_scale";
  std::filesystem::remove_all(dir, ec);

  const auto start = clock::now();
  data::ChunkedWriter sink(dir.string());
  const auto stats = data::stream_campaign(sim, fs, campaign, sink);
  const double wall_seconds =
      std::chrono::duration<double>(clock::now() - start).count();
  if (!stats.ok()) {
    std::cerr << "error: " << stats.status().message() << '\n';
    return 1;
  }

  std::uintmax_t bytes_on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
    bytes_on_disk += entry.file_size(ec);
  std::filesystem::remove_all(dir, ec);

  const double clients_per_s =
      static_cast<double>(clients) / wall_seconds;
  const double samples_per_s =
      static_cast<double>(stats->samples) / wall_seconds;
  std::printf(
      "%llu clients -> %llu samples (%llu faulty, %llu degraded) in %.2f s\n"
      "  %.0f clients/s, %.0f samples/s, %.1f MiB on disk, peak RSS %.1f "
      "MiB\n",
      static_cast<unsigned long long>(clients),
      static_cast<unsigned long long>(stats->samples),
      static_cast<unsigned long long>(stats->faulty),
      static_cast<unsigned long long>(stats->degraded), wall_seconds,
      clients_per_s, samples_per_s,
      static_cast<double>(bytes_on_disk) / (1024.0 * 1024.0),
      static_cast<double>(obs::peak_rss_kib()) / 1024.0);

  const char* out_dir = std::getenv("DIAGNET_BENCH_OUT");
  const std::string path = (out_dir && *out_dir ? std::string(out_dir) + "/"
                                                : std::string()) +
                           "BENCH_simulate.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[bench] failed to write " << path << '\n';
    return 1;
  }
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  out << "{\n"
      << "  \"bench\": \"simulate\",\n"
      << "  \"metadata\": {" << obs::run_metadata_json() << "},\n"
      << "  \"clients\": " << clients << ",\n"
      << "  \"samples\": " << stats->samples << ",\n"
      << "  \"faulty\": " << stats->faulty << ",\n"
      << "  \"degraded\": " << stats->degraded << ",\n"
      << "  \"wall_seconds\": " << num(wall_seconds) << ",\n"
      << "  \"clients_per_s\": " << num(clients_per_s) << ",\n"
      << "  \"samples_per_s\": " << num(samples_per_s) << ",\n"
      << "  \"bytes_on_disk\": " << bytes_on_disk << ",\n"
      << "  \"peak_rss_kib\": " << obs::peak_rss_kib() << "\n"
      << "}\n";
  std::cerr << "[bench] report written to " << path << '\n';
  return 0;
}
