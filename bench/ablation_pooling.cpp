// Ablation — the LandPooling operator bank Ω. Table I fixes Ω = {min, max,
// avg, variance, p10..p90} after a hyperparameter exploration ("We explored
// several combinations of hyperparameters and kept the best configuration",
// §III-C); this bench reruns that exploration over representative operator
// sets. Each row retrains the whole pipeline on a reduced campaign.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Ablation (global pooling operator sets Ω)",
      "Table I keeps min/max/avg/var/p10..p90; richer operator banks "
      "preserve more of the landmark distribution after flattening.");

  struct Variant {
    const char* name;
    std::vector<nn::PoolOp> ops;
  };
  const Variant variants[] = {
      {"avg", {nn::PoolOp::Avg}},
      {"max", {nn::PoolOp::Max}},
      {"min+max", {nn::PoolOp::Min, nn::PoolOp::Max}},
      {"min+max+avg+var",
       {nn::PoolOp::Min, nn::PoolOp::Max, nn::PoolOp::Avg, nn::PoolOp::Var}},
      {"full Table-I bank (13 ops)", nn::default_pool_ops()},
  };

  eval::PipelineConfig base = db::scaled_default_config();
  base.campaign.nominal_samples /= 2;
  base.campaign.fault_samples /= 2;

  util::Table table({"pooling ops", "new R@1", "new R@5", "known R@1",
                     "known R@5", "L1 input"});
  for (const Variant& variant : variants) {
    std::cout << "  training with Ω = " << variant.name << "...\n";
    eval::PipelineConfig config = base;
    config.diagnet.coarse.pool_ops = variant.ops;
    eval::Pipeline pipeline(config);
    const auto new_idx = pipeline.faulty_test_indices(true);
    const auto known_idx = pipeline.faulty_test_indices(false);
    table.add_row(
        {variant.name,
         util::fmt(pipeline.recall(eval::ModelKind::DiagNet, new_idx, 1), 3),
         util::fmt(pipeline.recall(eval::ModelKind::DiagNet, new_idx, 5), 3),
         util::fmt(pipeline.recall(eval::ModelKind::DiagNet, known_idx, 1), 3),
         util::fmt(pipeline.recall(eval::ModelKind::DiagNet, known_idx, 5), 3),
         std::to_string(variant.ops.size() *
                            config.diagnet.coarse.filters +
                        5)});
  }
  std::cout << '\n' << table.to_string();
  return 0;
}
