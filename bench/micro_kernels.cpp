// Micro-benchmarks (google-benchmark) for the numeric substrate and the
// end-to-end inference path: GEMM variants at the coarse model's shapes,
// LandPooling forward/backward, attention, full diagnose(), and baseline
// model inference. The paper quotes a 45 ms mean inference latency on a
// laptop CPU; bm_diagnose_full is the directly comparable number.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <thread>

#include "core/batch_diagnoser.h"
#include "core/diagnet.h"
#include "eval/metrics.h"
#include "eval/pipeline.h"
#include "serve/service.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "nn/coarse_net.h"
#include "nn/softmax.h"
#include "nn/trainer.h"
#include "tensor/dispatch.h"
#include "tensor/ops.h"
#include "testkit/gen.h"
#include "util/rng.h"

namespace {

using namespace diagnet;

// Benchmark inputs come from the same generator the property suites use,
// so a kernel benched here sees the distribution the oracles verify.
tensor::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return testkit::gen::matrix(rng, rows, cols);
}

void bm_gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix a = random_matrix(64, n, 1);
  const tensor::Matrix b = random_matrix(n, 512, 2);
  tensor::Matrix c;
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(n) * 512);
}
BENCHMARK(bm_gemm)->Arg(128)->Arg(317)->Arg(512);

// The single-row fast path (routes to the dispatched gemv kernel): an
// attention-style row against a hidden layer.
void bm_gemm_small(benchmark::State& state) {
  const tensor::Matrix a = random_matrix(1, 128, 8);
  const tensor::Matrix b = random_matrix(128, 64, 9);
  tensor::Matrix c;
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128 *
                          64);
}
BENCHMARK(bm_gemm_small);

// The tiled + thread-pool path (above the parallel-dispatch threshold):
// a validation-sized batch against the widest coarse layer.
void bm_gemm_large(benchmark::State& state) {
  const tensor::Matrix a = random_matrix(256, 512, 10);
  const tensor::Matrix b = random_matrix(512, 512, 11);
  tensor::Matrix c;
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256 *
                          512 * 512);
}
BENCHMARK(bm_gemm_large);

/// Synthetic training set at the coarse model's default shapes (10
/// landmarks x 5 features, 13 pool ops x 24 filters -> 317-wide concat).
nn::CoarseDataset training_dataset(std::size_t n) {
  constexpr std::size_t kL = 10;
  constexpr std::size_t kK = 5;
  util::Rng rng(12);
  nn::CoarseDataset data;
  data.land = random_matrix(n, kL * kK, 13);
  data.mask = tensor::Matrix(n, kL, 1.0);
  data.local = random_matrix(n, 5, 14);
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) data.labels[i] = rng.uniform_index(7);
  return data;
}

/// One full training epoch (8 minibatches of 64) through the sharded
/// data-parallel engine, at 1 worker vs N workers. Training is
/// bit-identical across thread counts, so the arg only changes wall time.
void bm_train_epoch(benchmark::State& state) {
  const nn::CoarseDataset data = training_dataset(512);
  util::Rng rng(15);
  nn::CoarseNet net(nn::CoarseNetConfig{}, rng);
  nn::TrainerConfig config;
  config.max_epochs = 1;
  config.validation_fraction = 0.0;
  config.restore_best = false;
  config.sgd.learning_rate = 0.01;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto history = nn::train_coarse(net, data, config);
    benchmark::DoNotOptimize(history.epochs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(bm_train_epoch)->Arg(1)->Arg(4);

void bm_land_pooling_forward(benchmark::State& state) {
  util::Rng rng(3);
  nn::LandPooling pool(5, 24, nn::default_pool_ops(), rng);
  const tensor::Matrix land = random_matrix(64, 10 * 5, 4);
  const tensor::Matrix mask(64, 10, 1.0);
  for (auto _ : state) {
    auto out = pool.forward(land, mask);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(bm_land_pooling_forward);

void bm_land_pooling_backward(benchmark::State& state) {
  util::Rng rng(5);
  nn::LandPooling pool(5, 24, nn::default_pool_ops(), rng);
  const tensor::Matrix land = random_matrix(64, 10 * 5, 6);
  const tensor::Matrix mask(64, 10, 1.0);
  const tensor::Matrix grad = random_matrix(64, pool.out_features(), 7);
  pool.forward(land, mask);
  for (auto _ : state) {
    auto dland = pool.backward(grad);
    benchmark::DoNotOptimize(dland.data());
  }
}
BENCHMARK(bm_land_pooling_backward);

/// Shared trained pipeline for the end-to-end benchmarks (built once).
eval::Pipeline& shared_pipeline() {
  static auto pipeline = [] {
    eval::PipelineConfig config = eval::PipelineConfig::small();
    return std::make_unique<eval::Pipeline>(config);
  }();
  return *pipeline;
}

void bm_coarse_forward_single(benchmark::State& state) {
  auto& pipeline = shared_pipeline();
  const auto faulty = pipeline.faulty_test_indices();
  const auto& sample = pipeline.split().test.samples[faulty.front()];
  auto& model = pipeline.diagnet();
  const std::vector<bool> all(pipeline.feature_space().landmark_count(),
                              true);
  for (auto _ : state) {
    auto probs = model.coarse_predict(sample.features, sample.service, all);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(bm_coarse_forward_single);

void bm_diagnose_full(benchmark::State& state) {
  auto& pipeline = shared_pipeline();
  const auto faulty = pipeline.faulty_test_indices();
  const auto& sample = pipeline.split().test.samples[faulty.front()];
  auto& model = pipeline.diagnet();
  core::DiagnoseRequest request;
  request.features = sample.features;
  request.service = sample.service;
  for (auto _ : state) {
    auto response = model.diagnose(request);
    benchmark::DoNotOptimize(response.diagnosis.scores.data());
  }
}
BENCHMARK(bm_diagnose_full);  // paper: 45 ms mean inference

/// Cycle through the faulty test samples to build n diagnosis requests
/// (empty landmark_available = all landmarks observable).
std::vector<core::DiagnoseRequest> batch_requests(eval::Pipeline& pipeline,
                                                  std::size_t n) {
  const auto faulty = pipeline.faulty_test_indices();
  const auto& test = pipeline.split().test.samples;
  std::vector<core::DiagnoseRequest> requests(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& sample = test[faulty[i % faulty.size()]];
    requests[i].features = sample.features;
    requests[i].service = sample.service;
  }
  return requests;
}

void bm_diagnose_batch(benchmark::State& state) {
  auto& pipeline = shared_pipeline();
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto requests = batch_requests(pipeline, n);
  core::BatchDiagnoserConfig config;
  config.batch_size = 256;
  const core::BatchDiagnoser batcher(pipeline.diagnet(), config);
  for (auto _ : state) {
    auto out = batcher.run(requests);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bm_diagnose_batch)->Arg(1)->Arg(64)->Arg(256);

/// End-to-end throughput of the online serving queue: 256 requests flooded
/// through DiagnosisService::submit at max_batch 1 (no amortisation — every
/// request pays its own network passes plus the dispatch overhead) vs 64.
/// `serve_speedup` in BENCH_micro_kernels.json tracks batch-64 vs the
/// unbatched diagnose() rate; the ratio shrank when the single-sample path
/// switched to the input-only backward (the denominator got ~4x faster),
/// so the floor is now 1.25x — watch the absolute rates too.
void bm_serve_throughput(benchmark::State& state) {
  auto& pipeline = shared_pipeline();
  const auto max_batch = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRequests = 256;
  const auto requests = batch_requests(pipeline, kRequests);

  auto provider = std::make_shared<serve::ModelProvider>(
      std::shared_ptr<core::DiagNetModel>(std::shared_ptr<void>{},
                                          &pipeline.diagnet()));
  serve::ServiceConfig serve_config;
  serve_config.max_batch = max_batch;
  serve_config.max_delay_us = 1000;
  serve_config.queue_capacity = kRequests + 1;
  serve::DiagnosisService service(provider, serve_config);

  std::vector<std::future<core::DiagnoseResponse>> futures;
  futures.reserve(kRequests);
  for (auto _ : state) {
    futures.clear();
    for (const auto& request : requests)
      futures.push_back(service.submit(request));
    for (auto& future : futures)
      benchmark::DoNotOptimize(future.get().diagnosis.scores.data());
  }
  service.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRequests));
}
BENCHMARK(bm_serve_throughput)->Arg(1)->Arg(64);

void bm_rf_score(benchmark::State& state) {
  auto& pipeline = shared_pipeline();
  const auto faulty = pipeline.faulty_test_indices();
  const auto idx = faulty.front();
  for (auto _ : state) {
    auto ranking = pipeline.rank(eval::ModelKind::RandomForest, idx);
    benchmark::DoNotOptimize(ranking.data());
  }
}
BENCHMARK(bm_rf_score);

void bm_nb_score(benchmark::State& state) {
  auto& pipeline = shared_pipeline();
  const auto faulty = pipeline.faulty_test_indices();
  const auto idx = faulty.front();
  for (auto _ : state) {
    auto ranking = pipeline.rank(eval::ModelKind::NaiveBayes, idx);
    benchmark::DoNotOptimize(ranking.data());
  }
}
BENCHMARK(bm_nb_score);

void bm_probe_landmarks(benchmark::State& state) {
  auto& pipeline = shared_pipeline();
  const auto& sim = pipeline.simulator();
  const auto client = netsim::ClientProfile::make(0, 1, sim.seed());
  util::Rng rng(11);
  const netsim::ActiveFaults none;
  for (auto _ : state) {
    auto probes =
        sim.probe_landmarks(client, netsim::ClientCondition{}, 12.0, none,
                            rng);
    benchmark::DoNotOptimize(probes.data());
  }
}
BENCHMARK(bm_probe_landmarks);

/// Head-to-head throughput check for the PR acceptance gate: diagnose 512
/// samples with the per-sample loop vs the batched engine at batch 256, and
/// record both rates (plus the speedup) in BENCH_micro_kernels.json — the
/// same slot bench_util.h uses for the other benches' perf trajectory.
void write_speedup_report(std::chrono::steady_clock::time_point start) {
  auto& pipeline = shared_pipeline();
  auto& model = pipeline.diagnet();
  constexpr std::size_t kSamples = 512;
  const auto requests = batch_requests(pipeline, kSamples);

  core::BatchDiagnoserConfig config;
  config.batch_size = 256;
  const core::BatchDiagnoser batcher(model, config);

  const auto run_seq = [&] {
    for (const auto& request : requests) {
      auto response = model.diagnose(request);
      benchmark::DoNotOptimize(response.diagnosis.scores.data());
    }
  };
  const auto run_batch = [&] {
    auto out = batcher.run(requests);
    benchmark::DoNotOptimize(out.data());
  };

  using clock = std::chrono::steady_clock;
  const auto time_of = [&](const auto& fn) {
    fn();  // warm-up (touches caches, first-use allocations)
    const auto t0 = clock::now();
    fn();
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  const double seq_seconds = time_of(run_seq);
  const double batch_seconds = time_of(run_batch);
  const double seq_rate = static_cast<double>(kSamples) / seq_seconds;
  const double batch_rate = static_cast<double>(kSamples) / batch_seconds;
  const double speedup = seq_seconds / batch_seconds;

  std::printf(
      "\ndiagnosis throughput (%zu samples): per-sample %.1f /s, "
      "batch-256 %.1f /s, speedup %.2fx\n",
      kSamples, seq_rate, batch_rate, speedup);

  // Online serving gate: micro-batched serving (flood at max_batch 64)
  // vs single-request serving, where every request pays the unbatched
  // diagnose() path measured above (seq_rate) — one encode, one
  // forward+backward and fresh allocations per request. That is the
  // architecture `diagnet serve` replaces; acceptance is >= 2x on one
  // core. The closed-loop max_batch=1 round-trip rate through the queue
  // is recorded too (serve_roundtrip_rps) — it already benefits from the
  // batch engine's workspace reuse, so it is NOT the single-request
  // baseline, just the dispatch-overhead yardstick.
  const auto serve_seconds = [&](std::size_t max_batch, bool flood) {
    auto provider = std::make_shared<serve::ModelProvider>(
        std::shared_ptr<core::DiagNetModel>(std::shared_ptr<void>{},
                                            &model));
    serve::ServiceConfig serve_config;
    serve_config.max_batch = max_batch;
    serve_config.max_delay_us = 1000;
    serve_config.queue_capacity = kSamples + 1;
    serve::DiagnosisService service(provider, serve_config);
    service.submit(requests[0]).get();  // warm-up
    const auto t0 = clock::now();
    if (flood) {
      std::vector<std::future<core::DiagnoseResponse>> futures;
      futures.reserve(requests.size());
      for (const auto& request : requests)
        futures.push_back(service.submit(request));
      for (auto& future : futures)
        benchmark::DoNotOptimize(future.get().diagnosis.scores.data());
    } else {
      for (const auto& request : requests)
        benchmark::DoNotOptimize(
            service.submit(request).get().diagnosis.scores.data());
    }
    const double seconds =
        std::chrono::duration<double>(clock::now() - t0).count();
    service.stop();
    return seconds;
  };
  const double serve_roundtrip_seconds = serve_seconds(1, /*flood=*/false);
  const double serve_batch_seconds = serve_seconds(64, /*flood=*/true);
  const double serve_single_rps = seq_rate;  // unbatched diagnose() path
  const double serve_roundtrip_rps =
      static_cast<double>(kSamples) / serve_roundtrip_seconds;
  const double serve_batch64_rps =
      static_cast<double>(kSamples) / serve_batch_seconds;
  const double serve_speedup = serve_batch64_rps / serve_single_rps;
  std::printf(
      "serve throughput (%zu requests): single-request %.1f /s, "
      "queue round-trip %.1f /s, batch-64 %.1f /s, speedup %.2fx\n",
      kSamples, serve_single_rps, serve_roundtrip_rps, serve_batch64_rps,
      serve_speedup);

  // Sharded-trainer scaling: one epoch over 512 samples at 1 worker vs 4.
  // The partition and reduction order are thread-count invariant, so both
  // runs compute the same bits; only wall time may differ. The measured
  // ratio is only meaningful relative to hardware_threads below — on a
  // single-core host the 4-thread run cannot be faster.
  const auto time_epoch = [&](std::size_t threads) {
    const nn::CoarseDataset data = training_dataset(512);
    util::Rng rng(16);
    nn::CoarseNet net(nn::CoarseNetConfig{}, rng);
    nn::TrainerConfig trainer;
    trainer.max_epochs = 1;
    trainer.validation_fraction = 0.0;
    trainer.restore_best = false;
    trainer.sgd.learning_rate = 0.01;
    trainer.threads = threads;
    train_coarse(net, data, trainer);  // warm-up (pools, first allocations)
    const auto t0 = clock::now();
    train_coarse(net, data, trainer);
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  const double epoch_1t = time_epoch(1);
  const double epoch_4t = time_epoch(4);
  // On a single-core host the 4-thread run cannot be faster, so the ratio
  // would only record scheduler noise; the report emits null there.
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool train_speedup_meaningful = hardware_threads > 1;
  const double train_speedup = epoch_1t / epoch_4t;
  std::printf(
      "train epoch (512 samples): 1 thread %.3f s, 4 threads %.3f s, "
      "speedup %.2fx (%u hardware threads%s)\n",
      epoch_1t, epoch_4t, train_speedup, hardware_threads,
      train_speedup_meaningful ? "" : "; ratio not meaningful, skipped");

  // ------------------------------------------------------------------
  // Per-tier kernel and single-sample inference timings: force each
  // supported dispatch tier in turn and time the coarse model's GEMM
  // (64x317 * 317x512), the single-row GEMV path, and the full
  // diagnose() round trip. The avx2 column is null on hardware without
  // AVX2+FMA. simd_single_speedup (avx2 vs scalar single-sample
  // inference) is the PR acceptance gate: >= 1.5x on AVX2 hardware.
  const tensor::Matrix gemm_a = random_matrix(64, 317, 21);
  const tensor::Matrix gemm_b = random_matrix(317, 512, 22);
  const tensor::Matrix gemv_x = random_matrix(1, 317, 23);
  const auto time_matmul = [&](const tensor::Matrix& a,
                               const tensor::Matrix& b, std::size_t reps) {
    tensor::Matrix c;
    tensor::gemm(a, b, c);  // warm-up
    const auto t0 = clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      tensor::gemm(a, b, c);
      benchmark::DoNotOptimize(c.data());
    }
    return std::chrono::duration<double>(clock::now() - t0).count() /
           static_cast<double>(reps);
  };
  const auto infer_rps = [&] {
    // Same hot single-request workload as bm_diagnose_full (cycling the
    // 512-sample pool adds tier-independent cache-miss cost that dilutes
    // the scalar/avx2 ratio, and a short window is noise-dominated on a
    // loaded 1-core host). Calibrate the call count to a ~0.4 s window
    // and keep the best of three windows.
    const core::DiagnoseRequest& request = requests.front();
    const auto run_window = [&](std::size_t calls) {
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < calls; ++i)
        benchmark::DoNotOptimize(
            model.diagnose(request).diagnosis.scores.data());
      return static_cast<double>(calls) /
             std::chrono::duration<double>(clock::now() - t0).count();
    };
    const double warm_rps = run_window(64);  // warm-up + calibration
    const std::size_t calls = std::max<std::size_t>(
        128, static_cast<std::size_t>(warm_rps * 0.4));
    double best = 0.0;
    for (int window = 0; window < 3; ++window)
      best = std::max(best, run_window(calls));
    return best;
  };
  struct TierTiming {
    double gemm_seconds = 0.0;
    double gemv_seconds = 0.0;
    double infer_rps = 0.0;
  };
  const auto time_tier = [&](tensor::KernelTier tier, TierTiming* out) {
    if (!tensor::force_kernel_tier(tier)) return false;
    out->gemm_seconds = time_matmul(gemm_a, gemm_b, 40);
    out->gemv_seconds = time_matmul(gemv_x, gemm_b, 2000);
    out->infer_rps = infer_rps();
    return true;
  };
  TierTiming scalar_timing, avx2_timing;
  time_tier(tensor::KernelTier::kScalar, &scalar_timing);
  const bool have_avx2 =
      time_tier(tensor::KernelTier::kAvx2, &avx2_timing);
  tensor::reset_kernel_tier();  // back to DIAGNET_KERNEL / auto dispatch
  const double simd_single_speedup =
      have_avx2 ? avx2_timing.infer_rps / scalar_timing.infer_rps : 0.0;
  std::printf(
      "kernel tiers: scalar gemm %.3f ms, gemv %.1f us, single-infer "
      "%.1f /s\n",
      scalar_timing.gemm_seconds * 1e3, scalar_timing.gemv_seconds * 1e6,
      scalar_timing.infer_rps);
  if (have_avx2)
    std::printf(
        "              avx2   gemm %.3f ms, gemv %.1f us, single-infer "
        "%.1f /s (simd single-sample speedup %.2fx)\n",
        avx2_timing.gemm_seconds * 1e3, avx2_timing.gemv_seconds * 1e6,
        avx2_timing.infer_rps, simd_single_speedup);
  else
    std::printf("              avx2   unsupported on this host (null)\n");

  // Per-service routed serving: batches where every request targets one
  // specialised head, exercising the router + shared frozen-kernel
  // pooling path end to end. Capped at 4 services to bound bench time.
  std::string routed_json = "{";
  {
    const auto services = model.specialized_services();
    constexpr std::size_t kRouted = 128;
    bool first = true;
    for (std::size_t i = 0; i < services.size() && i < 4; ++i) {
      auto routed = batch_requests(pipeline, kRouted);
      for (auto& request : routed) request.service = services[i];
      batcher.run(routed);  // warm-up
      const auto t0 = clock::now();
      auto out_routed = batcher.run(routed);
      benchmark::DoNotOptimize(out_routed.data());
      const double rps =
          static_cast<double>(kRouted) /
          std::chrono::duration<double>(clock::now() - t0).count();
      if (!first) routed_json += ',';
      first = false;
      routed_json += '"' + std::to_string(services[i]) + "\":";
      char rbuf[32];
      std::snprintf(rbuf, sizeof rbuf, "%.6g", rps);
      routed_json += rbuf;
      std::printf("routed batch-%zu rps (service %zu head): %.1f /s\n",
                  kRouted, services[i], rps);
    }
  }
  routed_json += '}';

  // Quantized path LAST: set_quantized snaps the fp32 weights to the int8
  // grid (lossy), so no fp32 measurement may run after this point. The
  // recall@1 delta over the pipeline's faulty test samples is the
  // acceptance gate for serving --quantize: fp32 - quantized <= 0.005.
  const auto recall_at1 = [&] {
    const auto faulty = pipeline.faulty_test_indices();
    const auto& test = pipeline.split().test.samples;
    std::vector<core::DiagnoseRequest> eval_requests;
    std::vector<std::size_t> truths;
    eval_requests.reserve(faulty.size());
    for (const std::size_t idx : faulty) {
      core::DiagnoseRequest request;
      request.features = test[idx].features;
      request.service = test[idx].service;
      eval_requests.push_back(std::move(request));
      truths.push_back(test[idx].primary_cause);
    }
    const auto responses = batcher.run(eval_requests);
    std::vector<std::vector<std::size_t>> rankings;
    rankings.reserve(responses.size());
    for (const auto& response : responses)
      rankings.push_back(response.diagnosis.ranking);
    return eval::recall_at_k(rankings, truths, 1);
  };
  const double fp32_recall1 = recall_at1();
  model.set_quantized(true);
  const double quantized_recall1 = recall_at1();
  const double quantized_infer_rps = infer_rps();
  const double quantized_recall_delta = fp32_recall1 - quantized_recall1;
  model.set_quantized(false);  // weights stay snapped; codes dropped
  std::printf(
      "quantized int8 FC: recall@1 %.3f vs fp32 %.3f (delta %+.4f), "
      "single-infer %.1f /s\n",
      quantized_recall1, fp32_recall1, quantized_recall_delta,
      quantized_infer_rps);

  const double wall_seconds =
      std::chrono::duration<double>(clock::now() - start).count();
  const char* out_dir = std::getenv("DIAGNET_BENCH_OUT");
  const std::string path = (out_dir && *out_dir ? std::string(out_dir) + "/"
                                                : std::string()) +
                           "BENCH_micro_kernels.json";
  std::ofstream out(path);
  if (!out) return;
  // Null-aware emission: unsupported tiers and not-meaningful ratios are
  // JSON null, so the regression guard can skip them instead of
  // comparing garbage across hardware.
  const auto avx2_field = [&](double v) {
    if (!have_avx2) return std::string("null");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  out << "{\n"
      << "  \"bench\": \"micro_kernels\",\n"
      << "  \"metadata\": {" << obs::run_metadata_json() << "},\n"
      << "  \"kernel_tier\": \"" << tensor::active_kernel_tier_name()
      << "\",\n"
      << "  \"cpu_features\": \"" << tensor::cpu_features_string()
      << "\",\n"
      << "  \"wall_seconds\": " << wall_seconds << ",\n"
      << "  \"peak_rss_kib\": " << obs::peak_rss_kib() << ",\n"
      << "  \"seq_samples_per_s\": " << seq_rate << ",\n"
      << "  \"batch256_samples_per_s\": " << batch_rate << ",\n"
      << "  \"batch_speedup\": " << speedup << ",\n"
      << "  \"serve_single_rps\": " << serve_single_rps << ",\n"
      << "  \"serve_roundtrip_rps\": " << serve_roundtrip_rps << ",\n"
      << "  \"serve_batch64_rps\": " << serve_batch64_rps << ",\n"
      << "  \"serve_speedup\": " << serve_speedup << ",\n"
      << "  \"gemm_seconds_scalar\": " << scalar_timing.gemm_seconds
      << ",\n"
      << "  \"gemm_seconds_avx2\": " << avx2_field(avx2_timing.gemm_seconds)
      << ",\n"
      << "  \"gemv_seconds_scalar\": " << scalar_timing.gemv_seconds
      << ",\n"
      << "  \"gemv_seconds_avx2\": " << avx2_field(avx2_timing.gemv_seconds)
      << ",\n"
      << "  \"single_infer_rps_scalar\": " << scalar_timing.infer_rps
      << ",\n"
      << "  \"single_infer_rps_simd\": " << avx2_field(avx2_timing.infer_rps)
      << ",\n"
      << "  \"simd_single_speedup\": " << avx2_field(simd_single_speedup)
      << ",\n"
      << "  \"routed_rps_by_service\": " << routed_json << ",\n"
      << "  \"fp32_recall_at1\": " << fp32_recall1 << ",\n"
      << "  \"quantized_recall_at1\": " << quantized_recall1 << ",\n"
      << "  \"quantized_recall_delta\": " << quantized_recall_delta << ",\n"
      << "  \"quantized_single_infer_rps\": " << quantized_infer_rps
      << ",\n"
      << "  \"train_epoch_1t_seconds\": " << epoch_1t << ",\n"
      << "  \"train_epoch_4t_seconds\": " << epoch_4t << ",\n"
      << "  \"train_speedup_4t\": ";
  if (train_speedup_meaningful)
    out << train_speedup;
  else
    out << "null";
  out << ",\n"
      << "  \"hardware_threads\": " << hardware_threads << "\n"
      << "}\n";
}

}  // namespace

// Expanded BENCHMARK_MAIN() so the telemetry environment (DIAGNET_TRACE /
// DIAGNET_METRICS / DIAGNET_TELEMETRY) is honoured before any benchmark
// runs. Telemetry stays off unless requested, so the measured kernels are
// undisturbed by default.
int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  diagnet::obs::init_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  write_speedup_report(start);
  benchmark::Shutdown();
  return 0;
}
