// Ablation — contribution of each DiagNet inference component:
//   1. raw attention (gradient saliency only, Eq. 1)
//   2. + multi-label score weighting (Algorithm 1)
//   3. + ensemble averaging with the auxiliary forest (§III-F)  [= full]
//   4. score weighting off, ensemble on
//
// The paper motivates both optimisations qualitatively (§III-E: attention
// alone "gave inaccurate results"; §III-F: ensemble "reaps the benefits of
// both worlds"); this bench quantifies them. Components toggle at
// inference time, so one trained pipeline serves all rows.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Ablation (attention / score weighting / ensemble)",
      "Attention alone is inaccurate; Algorithm 1 and ensemble averaging "
      "each add recall, on known landmarks especially.");

  eval::PipelineConfig config = db::scaled_default_config();
  std::cout << "Training models...\n\n";
  eval::Pipeline pipeline(config);

  const auto new_idx = pipeline.faulty_test_indices(true);
  const auto known_idx = pipeline.faulty_test_indices(false);

  struct Variant {
    const char* name;
    bool weighting;
    bool ensemble;
  };
  const Variant variants[] = {
      {"attention only", false, false},
      {"+ score weighting", true, false},
      {"+ ensemble (full DiagNet)", true, true},
      {"ensemble, no weighting", false, true},
  };

  util::Table table({"variant", "new R@1", "new R@5", "known R@1",
                     "known R@5"});
  for (const Variant& variant : variants) {
    pipeline.diagnet().set_score_weighting(variant.weighting);
    pipeline.diagnet().set_ensemble(variant.ensemble);
    table.add_row(
        {variant.name,
         util::fmt(pipeline.recall(eval::ModelKind::DiagNet, new_idx, 1), 3),
         util::fmt(pipeline.recall(eval::ModelKind::DiagNet, new_idx, 5), 3),
         util::fmt(pipeline.recall(eval::ModelKind::DiagNet, known_idx, 1), 3),
         util::fmt(pipeline.recall(eval::ModelKind::DiagNet, known_idx, 5),
                   3)});
  }
  std::cout << table.to_string();
  return 0;
}
