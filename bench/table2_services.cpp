// Table II — the mock-up online services and their measured QoE
// sensitivity to each fault family. No training involved: this bench
// exercises the workload/QoE substrate directly and verifies the paper's
// observation that "the QoE of a small HTML website was not affected by
// shaped bandwidth or CPU stress" (§IV-A(e)).

#include <iostream>

#include "bench/bench_util.h"
#include "data/feature_space.h"
#include "netsim/simulator.h"
#include "util/rng.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Table II (mock-up services) + QoE fault sensitivity",
      "Six Table-II services (plus two extra training services); small "
      "pages are insensitive to bandwidth shaping and CPU stress, "
      "image/video services are bandwidth-bound, script services are "
      "latency/CPU-bound.");

  netsim::Simulator sim = netsim::Simulator::make_default(42);
  sim.calibrate_qoe();
  const auto& topology = sim.topology();

  std::cout << "Service inventory:\n";
  util::Table inventory({"service", "host", "resources"});
  for (const auto& service : sim.services()) {
    std::string deps;
    for (const auto& res : service.resources) {
      if (!deps.empty()) deps += ", ";
      deps += util::fmt(res.size_mb, 1) + "MB from ";
      switch (res.source) {
        case netsim::ResourceSource::Host: deps += "host"; break;
        case netsim::ResourceSource::Fixed:
          deps += topology.region(res.fixed_region).code;
          break;
        case netsim::ResourceSource::Nearest: deps += "nearest CDN"; break;
      }
    }
    if (deps.empty()) deps = "(none)";
    inventory.add_row({service.name, topology.region(service.host_region).code,
                       deps});
  }
  std::cout << inventory.to_string() << '\n';

  // QoE sensitivity: fraction of degraded visits per (service, family) when
  // the default fault of that family is injected at the service's host
  // region (remote families) or at the client's region (local families).
  // Clients probe from BEAU (a region without services, as most users are
  // remote from their service).
  const std::size_t client_region = topology.index_of("BEAU");
  const netsim::FaultFamily families[] = {
      netsim::FaultFamily::Uplink,    netsim::FaultFamily::Latency,
      netsim::FaultFamily::Jitter,    netsim::FaultFamily::Loss,
      netsim::FaultFamily::Bandwidth, netsim::FaultFamily::Load};

  std::cout << "QoE degradation rate per injected fault family (clients in "
            << topology.region(client_region).code << "):\n";
  util::Table sensitivity({"service", "nominal", "uplink", "latency",
                           "jitter", "loss", "bandwidth", "load"});
  util::Rng root(7);
  constexpr std::size_t kVisits = 300;
  for (std::size_t s = 0; s < sim.services().size(); ++s) {
    std::vector<std::string> row{sim.services()[s].name};
    for (int scenario = -1;
         scenario < static_cast<int>(std::size(families)); ++scenario) {
      netsim::ActiveFaults faults;
      if (scenario >= 0) {
        const netsim::FaultFamily family = families[scenario];
        const std::size_t region = netsim::is_remote_family(family)
                                       ? sim.services()[s].host_region
                                       : client_region;
        faults.push_back(netsim::default_fault(family, region));
      }
      util::Rng rng =
          root.fork(s * 100 + static_cast<std::size_t>(scenario + 1));
      std::size_t degraded = 0;
      for (std::size_t v = 0; v < kVisits; ++v) {
        const auto client = netsim::ClientProfile::make(
            client_region, 500 + v % 6, sim.seed());
        const auto condition =
            netsim::ClientCondition::from_faults(faults, client_region);
        const double t = rng.uniform(0.0, 24.0);
        const double plt = sim.visit(s, client, condition, t, faults, rng);
        degraded += sim.qoe_degraded(s, client_region, plt) ? 1 : 0;
      }
      row.push_back(util::fmt(
          static_cast<double>(degraded) / static_cast<double>(kVisits), 2));
    }
    sensitivity.add_row(row);
  }
  std::cout << sensitivity.to_string();
  return 0;
}
