// Ablation — gradient vs occlusion attention. The paper (§III-E) notes
// that generic black-box explainers apply to its model but chooses the
// white-box gradient method instead; this bench quantifies the trade-off
// in both recall and latency on the same trained model.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Ablation (gradient vs occlusion attention)",
      "Gradients exploit the white-box model in one backward pass; "
      "occlusion needs m forward passes for similar information.");

  eval::PipelineConfig config = db::scaled_default_config();
  std::cout << "Training models...\n\n";
  eval::Pipeline pipeline(config);

  const auto new_idx = pipeline.faulty_test_indices(true);
  const auto known_idx = pipeline.faulty_test_indices(false);

  util::Table table({"attention", "new R@1", "new R@5", "known R@1",
                     "known R@5", "ms/diagnosis"});
  for (const auto method :
       {core::AttentionMethod::Gradient, core::AttentionMethod::Occlusion}) {
    pipeline.diagnet().set_attention_method(method);

    const auto t0 = std::chrono::steady_clock::now();
    const double new_r1 = pipeline.recall(eval::ModelKind::DiagNet, new_idx, 1);
    const double new_r5 = pipeline.recall(eval::ModelKind::DiagNet, new_idx, 5);
    const double known_r1 =
        pipeline.recall(eval::ModelKind::DiagNet, known_idx, 1);
    const double known_r5 =
        pipeline.recall(eval::ModelKind::DiagNet, known_idx, 5);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(2 * (new_idx.size() + known_idx.size()));

    table.add_row({method == core::AttentionMethod::Gradient ? "gradient"
                                                             : "occlusion",
                   util::fmt(new_r1, 3), util::fmt(new_r5, 3),
                   util::fmt(known_r1, 3), util::fmt(known_r5, 3),
                   util::fmt(ms, 2)});
  }
  pipeline.diagnet().set_attention_method(core::AttentionMethod::Gradient);
  std::cout << table.to_string();
  return 0;
}
