// Shared helpers for the experiment benches: uniform headers, the
// paper-vs-measured framing every binary prints, and the perf-trajectory
// report (BENCH_<slug>.json with wall-clock and peak RSS) written at exit.
//
// Every bench honours the telemetry environment (DIAGNET_TRACE=out.json,
// DIAGNET_METRICS=out.json, DIAGNET_TELEMETRY=1) through print_header().
#pragma once

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "eval/pipeline.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "util/table.h"

namespace diagnet::bench {

/// Scale knob: DIAGNET_BENCH_SCALE env var multiplies campaign sizes
/// (default 1.0; use e.g. 4 to approach the paper's 243k-sample campaign).
inline double bench_scale() {
  const char* env = std::getenv("DIAGNET_BENCH_SCALE");
  if (!env) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline eval::PipelineConfig scaled_default_config() {
  eval::PipelineConfig config = eval::PipelineConfig::defaults();
  const double scale = bench_scale();
  config.campaign.nominal_samples = static_cast<std::size_t>(
      static_cast<double>(config.campaign.nominal_samples) * scale);
  config.campaign.fault_samples = static_cast<std::size_t>(
      static_cast<double>(config.campaign.fault_samples) * scale);
  return config;
}

namespace detail {

struct BenchReportState {
  std::string slug;
  std::chrono::steady_clock::time_point start;
};

inline BenchReportState& report_state() {
  static BenchReportState state;
  return state;
}

/// "Fig. 5 (Recall@k, new vs known)" -> "fig_5_recall_k_new_vs_known".
inline std::string slugify(const std::string& name) {
  std::string slug;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    else if (!slug.empty() && slug.back() != '_')
      slug += '_';
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

/// Writes BENCH_<slug>.json next to the working directory (or under
/// $DIAGNET_BENCH_OUT) so the perf trajectory of every bench is tracked
/// from PR 1 onward.
inline void write_bench_report() {
  const BenchReportState& state = report_state();
  if (state.slug.empty()) return;
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state.start)
          .count();
  const char* out_dir = std::getenv("DIAGNET_BENCH_OUT");
  const std::string path = (out_dir && *out_dir ? std::string(out_dir) + "/"
                                                : std::string()) +
                           "BENCH_" + state.slug + ".json";
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "[bench] failed to write " << path << '\n';
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", wall_seconds);
  // run_metadata_json stamps timestamp / git SHA / hardware threads /
  // build type so a perf trajectory can tell apart "the code got slower"
  // from "the machine or build changed".
  file << "{\"bench\":\"" << state.slug << "\","
       << obs::run_metadata_json() << ",\"wall_seconds\":" << buf
       << ",\"peak_rss_kib\":" << obs::peak_rss_kib()
       << ",\"scale\":" << bench_scale() << "}\n";
  std::cerr << "[bench] report written to " << path << '\n';
}

}  // namespace detail

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  obs::init_from_env();
  detail::BenchReportState& state = detail::report_state();
  if (state.slug.empty()) {
    state.slug = detail::slugify(experiment);
    state.start = std::chrono::steady_clock::now();
    std::atexit(detail::write_bench_report);
  }
  std::cout << util::banner("DiagNet reproduction — " + experiment);
  std::cout << "Paper: Bonniot, Neumann, Taiani — IPDPS 2021\n";
  std::cout << "Claim: " << paper_claim << "\n\n";
}

}  // namespace diagnet::bench
