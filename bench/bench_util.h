// Shared helpers for the experiment benches: uniform headers and the
// paper-vs-measured framing every binary prints.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "eval/pipeline.h"
#include "util/table.h"

namespace diagnet::bench {

/// Scale knob: DIAGNET_BENCH_SCALE env var multiplies campaign sizes
/// (default 1.0; use e.g. 4 to approach the paper's 243k-sample campaign).
inline double bench_scale() {
  const char* env = std::getenv("DIAGNET_BENCH_SCALE");
  if (!env) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline eval::PipelineConfig scaled_default_config() {
  eval::PipelineConfig config = eval::PipelineConfig::defaults();
  const double scale = bench_scale();
  config.campaign.nominal_samples = static_cast<std::size_t>(
      static_cast<double>(config.campaign.nominal_samples) * scale);
  config.campaign.fault_samples = static_cast<std::size_t>(
      static_cast<double>(config.campaign.fault_samples) * scale);
  return config;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << util::banner("DiagNet reproduction — " + experiment);
  std::cout << "Paper: Bonniot, Neumann, Taiani — IPDPS 2021\n";
  std::cout << "Claim: " << paper_claim << "\n\n";
}

}  // namespace diagnet::bench
