// Fig. 7 — F1 score of DiagNet's coarse classifier per fault family, split
// by samples with faults near known vs new landmarks.
//
// Paper: accuracy 0.85 ± 0.005 (known) vs 0.70 ± 0.013 (new); Latency,
// Uplink and Load are the easiest families.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Fig. 7 (coarse classifier F1 per family, known vs new)",
      "Coarse accuracy 0.85±0.005 for faults near known landmarks, "
      "0.70±0.013 near new ones; Latency/Uplink/Load easiest to classify.");

  eval::PipelineConfig config = db::scaled_default_config();
  std::cout << "Training models...\n\n";
  eval::Pipeline pipeline(config);
  const auto& test = pipeline.split().test;

  const char* family_names[] = {"nominal", "uplink", "latency", "jitter",
                                "loss",    "band.",  "load"};

  for (const bool cause_new : {false, true}) {
    const auto indices = pipeline.faulty_test_indices(cause_new);
    std::vector<std::size_t> y_true;
    std::vector<std::size_t> y_pred;
    y_true.reserve(indices.size());
    for (std::size_t i : indices) {
      y_true.push_back(
          static_cast<std::size_t>(test.samples[i].coarse_label));
      y_pred.push_back(pipeline.coarse_prediction(i));
    }
    const auto report = eval::classification_report(
        y_true, y_pred, netsim::kFaultFamilies);

    std::cout << (cause_new ? "Faults near NEW landmarks"
                            : "Faults near KNOWN landmarks")
              << " — " << indices.size() << " samples, accuracy "
              << util::fmt(report.accuracy, 3) << " ± "
              << util::fmt(report.accuracy_stderr, 3)
              << (cause_new ? "   [paper: 0.70 ± 0.013]"
                            : "   [paper: 0.85 ± 0.005]")
              << '\n';

    util::Table table({"family", "F1", "precision", "recall", "support"});
    for (std::size_t c = 1; c < netsim::kFaultFamilies; ++c) {
      const auto& scores = report.per_class[c];
      if (scores.support == 0) continue;
      table.add_row({family_names[c], util::fmt(scores.f1, 3),
                     util::fmt(scores.precision, 3),
                     util::fmt(scores.recall, 3),
                     std::to_string(scores.support)});
    }
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
