// Extension bench — probe budgets and landmark churn at inference time
// (paper §II-D: "if the system contains a very high number of landmarks,
// individual clients cannot be expected to probe every landmark"; "a root
// cause extensible model should still provide accurate results even when
// only a subset of landmarks is available").
//
// One DiagNet model is trained once; each row re-diagnoses the same test
// incidents while a ProbeScheduler limits how many landmarks each client
// probed (per-sample masks), comparing the three selection strategies.

#include <iostream>

#include "bench/bench_util.h"
#include "fleet/fleet.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Probe budget (per-client landmark subsets at inference)",
      "Recall should degrade gracefully as the probe budget shrinks; "
      "spread-k (local + random coverage) should dominate pure random "
      "selection for remote-fault localisation.");

  eval::PipelineConfig config = db::scaled_default_config();
  std::cout << "Training models...\n\n";
  eval::Pipeline pipeline(config);
  const auto& fs = pipeline.feature_space();
  const auto& topology = fs.topology();
  const auto known_idx = pipeline.faulty_test_indices(false);
  std::cout << "Evaluating " << known_idx.size()
            << " known-cause incidents under shrinking probe budgets.\n\n";

  util::Table table({"budget", "strategy", "R@1", "R@5", "hit of cause's "
                                                         "landmark probed"});
  for (const std::size_t budget : {10u, 7u, 5u, 3u}) {
    for (const fleet::ProbeStrategy strategy :
         {fleet::ProbeStrategy::RandomK, fleet::ProbeStrategy::NearestK,
          fleet::ProbeStrategy::SpreadK}) {
      const fleet::ProbeScheduler scheduler(
          topology, {budget, strategy}, config.seed ^ 0xb06e7ULL);
      std::size_t hit1 = 0, hit5 = 0, cause_probed = 0;
      for (std::size_t idx : known_idx) {
        const data::Sample& sample = pipeline.split().test.samples[idx];
        const std::vector<bool> probed = scheduler.select(
            sample.client_region, std::vector<bool>(10, true), idx, 0);
        if (!fs.is_landmark_feature(sample.primary_cause) ||
            probed[fs.landmark_of(sample.primary_cause)])
          ++cause_probed;
        auto diagnosis =
            pipeline.diagnet()
                .diagnose({sample.features, sample.service, false, probed})
                .diagnosis;
        for (std::size_t r = 0; r < 5; ++r) {
          if (diagnosis.ranking[r] == sample.primary_cause) {
            ++hit5;
            if (r == 0) ++hit1;
            break;
          }
        }
      }
      const auto n = static_cast<double>(known_idx.size());
      table.add_row({std::to_string(budget),
                     fleet::probe_strategy_name(strategy),
                     util::fmt(hit1 / n, 3), util::fmt(hit5 / n, 3),
                     util::fmt(cause_probed / n, 3)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nNote: a cause can only be named if its landmark was "
               "probed, so the last column bounds the attainable recall.\n";
  return 0;
}
