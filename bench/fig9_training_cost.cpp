// Fig. 9 + §IV-F — training cost of new service models: per-epoch loss
// curves of the general model vs per-service specialised models, parameter
// counts, wall-clock training times and inference latency.
//
// Paper: general model converges in ~20 epochs (32 s on a laptop CPU);
// specialised models converge in < 5 epochs (4 s each); 215,312 total
// parameters of which 65,664 remain trainable after freezing; root causes
// inferred in 45 ms.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Fig. 9 (training cost of new service models)",
      "General model ~20 epochs / 32 s; specialised models < 5 epochs / 4 s "
      "each; 215,312 parameters, 65,664 trainable after freezing; inference "
      "in 45 ms.");

  eval::PipelineConfig config = db::scaled_default_config();
  std::cout << "Training models...\n\n";
  eval::Pipeline pipeline(config);

  auto& net = pipeline.diagnet().general_net();
  std::cout << "Parameter counts: total " << net.parameter_count()
            << " [paper: 215,312]";
  auto frozen_probe = net.clone();
  frozen_probe->freeze_representation();
  std::cout << ", trainable after freezing "
            << frozen_probe->trainable_parameter_count()
            << " [paper: 65,664]\n\n";

  // (a) the general model's loss curve.
  const auto& history = pipeline.general_history();
  std::cout << "(a) general model — " << history.epochs_run()
            << " epochs run, best at epoch " << (history.best_epoch + 1)
            << ", wall " << util::fmt(history.wall_seconds, 1)
            << " s [paper: ~20 epochs, 32 s]\n";
  util::Table general({"epoch", "train loss", "validation loss"});
  for (std::size_t e = 0; e < history.epochs.size(); ++e)
    general.add_row({std::to_string(e + 1),
                     util::fmt(history.epochs[e].train_loss, 4),
                     util::fmt(history.epochs[e].validation_loss, 4)});
  std::cout << general.to_string() << '\n';

  // (b) specialised service models.
  std::cout << "(b) specialised models (convolution frozen)\n";
  util::Table specialised(
      {"service", "epochs", "best", "final val loss", "wall s"});
  double epoch_sum = 0.0;
  for (const auto& [service, hist] : pipeline.specialization_history()) {
    specialised.add_row(
        {pipeline.simulator().services()[service].name,
         std::to_string(hist.epochs_run()),
         std::to_string(hist.best_epoch + 1),
         util::fmt(hist.epochs.empty()
                       ? 0.0
                       : hist.epochs[hist.best_epoch].validation_loss,
                   4),
         util::fmt(hist.wall_seconds, 1)});
    epoch_sum += static_cast<double>(hist.best_epoch + 1);
  }
  std::cout << specialised.to_string();
  if (!pipeline.specialization_history().empty()) {
    std::cout << "Mean epochs to best validation loss: "
              << util::fmt(epoch_sum / static_cast<double>(
                                           pipeline.specialization_history()
                                               .size()),
                           1)
              << "   [paper: < 5]\n\n";
  }

  // Inference latency over real test samples (full DiagNet pipeline:
  // encode + coarse forward + attention backward + Algorithm 1 + ensemble).
  const auto faulty = pipeline.faulty_test_indices();
  const std::size_t count = std::min<std::size_t>(faulty.size(), 500);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i)
    pipeline.rank(eval::ModelKind::DiagNet, faulty[i]);
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count() /
      static_cast<double>(count);
  std::cout << "Mean end-to-end inference latency over " << count
            << " diagnoses: " << util::fmt(ms, 2)
            << " ms   [paper: 45 ms]\n";
  return 0;
}
