// Fig. 5 — Recall@k (k = 1..5) for faults near NEW landmarks (hidden during
// training) and near KNOWN landmarks, for DiagNet, Random Forest and Naive
// Bayes; plus the combined DiagNet Recall@1 (paper: 73.9%).
//
// Expected shape (paper):
//  (a) new landmarks:   DiagNet >> NaiveBayes > RandomForest (~random);
//  (b) known landmarks: RandomForest ~ ideal >= DiagNet >> NaiveBayes.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Fig. 5 (Recall@k, new vs known landmark faults)",
      "DiagNet best on new-landmark faults, near-ideal on known ones; "
      "combined Recall@1 = 73.9%. RF perfect on known / random on new; "
      "NB poor on known.");

  eval::PipelineConfig config = db::scaled_default_config();
  std::cout << "Campaign: " << config.campaign.nominal_samples << " nominal + "
            << config.campaign.fault_samples
            << " fault scenarios, hidden landmarks EAST/GRAV/SEAT.\n"
            << "Training models (general + 8 specialised)...\n\n";
  eval::Pipeline pipeline(config);

  const auto new_idx = pipeline.faulty_test_indices(true);
  const auto known_idx = pipeline.faulty_test_indices(false);
  const auto all_idx = pipeline.faulty_test_indices();
  std::cout << "Faulty test samples: " << all_idx.size() << " ("
            << new_idx.size() << " near new landmarks, " << known_idx.size()
            << " near known)\n\n";

  const eval::ModelKind kinds[] = {eval::ModelKind::DiagNet,
                                   eval::ModelKind::RandomForest,
                                   eval::ModelKind::NaiveBayes};

  for (const auto& [label, indices] :
       {std::pair{"(a) faults near NEW landmarks", &new_idx},
        std::pair{"(b) faults near KNOWN landmarks", &known_idx}}) {
    std::cout << label << " — " << indices->size() << " samples\n";
    util::Table table({"model", "R@1", "R@2", "R@3", "R@4", "R@5"});
    for (eval::ModelKind kind : kinds) {
      // One batched ranking pass per model; all five k evaluate it.
      table.add_row(eval::model_name(kind),
                    pipeline.recall_curve(kind, *indices, {1, 2, 3, 4, 5}));
    }
    std::cout << table.to_string() << '\n';
  }

  const double combined = pipeline.recall(eval::ModelKind::DiagNet, all_idx, 1);
  const double r1_new = pipeline.recall(eval::ModelKind::DiagNet, new_idx, 1);
  const double r1_known =
      pipeline.recall(eval::ModelKind::DiagNet, known_idx, 1);
  // The paper's degraded test set contained 23% hidden-region faults
  // (§IV-A(e)); our uniform fault injection yields a different mix, so the
  // combined score is also reported reweighted to the paper's composition.
  const double paper_mix = 0.23 * r1_new + 0.77 * r1_known;
  std::cout << "Combined DiagNet Recall@1, our test mix ("
            << util::fmt(100.0 * static_cast<double>(new_idx.size()) /
                             static_cast<double>(all_idx.size()), 0)
            << "% new): " << util::fmt(combined, 3) << '\n'
            << "Combined DiagNet Recall@1, paper's 23%-new mix: "
            << util::fmt(paper_mix, 3) << "   [paper: 0.739]\n";
  return 0;
}
