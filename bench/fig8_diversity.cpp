// Fig. 8 — Recall@5 for faults near NEW landmarks as the diversity of
// participating clients grows (number of regions with active clients).
//
// Paper: DiagNet is best and stable across every diversity level; Naive
// Bayes degrades as diversity grows (its merged KDEs flatten); Random
// Forest stays low with a slight increase.
//
// The paper averaged every combination of active regions; that is 2^10
// pipelines, so this bench averages a few sampled combinations per level
// (deterministic in the seed) over a reduced campaign.

#include <iostream>

#include "bench/bench_util.h"
#include "util/rng.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Fig. 8 (client diversity sweep, Recall@5 on new-landmark faults)",
      "DiagNet best and stable for all diversity levels; NaiveBayes "
      "prefers few regions (KDE-merge flattening); RandomForest low "
      "with a slight increase.");

  const std::size_t diversity_levels[] = {1, 2, 4, 7, 10};
  const std::size_t combos_per_level = 2;

  eval::PipelineConfig base = db::scaled_default_config();
  base.campaign.nominal_samples /= 2;
  base.campaign.fault_samples /= 2;

  util::Table table({"active regions", "DiagNet", "RandomForest",
                     "NaiveBayes", "samples"});
  util::Rng combo_rng(base.seed ^ 0xd1f5ULL);

  for (std::size_t level : diversity_levels) {
    double sums[eval::kModelCount] = {0.0, 0.0, 0.0};
    std::size_t runs = 0;
    std::size_t samples = 0;
    // At level 10 there is a single region combination, but we still run
    // combos_per_level seeds to smooth training variance.
    for (std::size_t combo = 0; combo < combos_per_level; ++combo) {
      eval::PipelineConfig config = base;
      config.seed = base.seed + combo * 977;
      config.campaign.active_client_regions =
          combo_rng.sample_without_replacement(10, level);
      std::cout << "  training with " << level
                << " active client region(s), combination " << (combo + 1)
                << "/" << combos_per_level << "...\n";
      eval::Pipeline pipeline(config);
      const auto new_idx = pipeline.faulty_test_indices(true);
      if (new_idx.empty()) continue;
      sums[0] += pipeline.recall(eval::ModelKind::DiagNet, new_idx, 5);
      sums[1] += pipeline.recall(eval::ModelKind::RandomForest, new_idx, 5);
      sums[2] += pipeline.recall(eval::ModelKind::NaiveBayes, new_idx, 5);
      samples += new_idx.size();
      ++runs;
    }
    if (runs == 0) continue;
    table.add_row({std::to_string(level),
                   util::fmt(sums[0] / static_cast<double>(runs), 3),
                   util::fmt(sums[1] / static_cast<double>(runs), 3),
                   util::fmt(sums[2] / static_cast<double>(runs), 3),
                   std::to_string(samples)});
  }

  std::cout << '\n' << table.to_string();
  return 0;
}
