// Fig. 6 — Recall per fault family (top) and per fault region (bottom) for
// DiagNet, Random Forest and Naive Bayes. Regions hidden during training
// are starred.
//
// Expected shape (paper): RF best for known landmarks only; DiagNet is the
// only model with good recall across every family and region, with close
// to optimal results on local faults (uplink, load).

#include <iostream>
#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Fig. 6 (recall per fault family and per fault region)",
      "DiagNet is the only model with good recall for every family and "
      "region; local faults are close to optimal; NB is biased towards "
      "some families and the hidden GRAV/SEAT landmarks.");

  eval::PipelineConfig config = db::scaled_default_config();
  std::cout << "Training models...\n\n";
  eval::Pipeline pipeline(config);
  const auto& fs = pipeline.feature_space();
  const auto& test = pipeline.split().test;

  const eval::ModelKind kinds[] = {eval::ModelKind::DiagNet,
                                   eval::ModelKind::RandomForest,
                                   eval::ModelKind::NaiveBayes};

  // ---- per fault family --------------------------------------------------
  std::map<netsim::FaultFamily, std::vector<std::size_t>> by_family;
  for (std::size_t i : pipeline.faulty_test_indices())
    by_family[test.samples[i].coarse_label].push_back(i);

  std::cout << "(top) Recall@1 per fault family\n";
  util::Table family_table(
      {"model", "uplink", "latency", "jitter", "loss", "bandwidth", "load"});
  for (eval::ModelKind kind : kinds) {
    std::vector<double> row;
    for (auto family :
         {netsim::FaultFamily::Uplink, netsim::FaultFamily::Latency,
          netsim::FaultFamily::Jitter, netsim::FaultFamily::Loss,
          netsim::FaultFamily::Bandwidth, netsim::FaultFamily::Load}) {
      const auto it = by_family.find(family);
      row.push_back(it == by_family.end() ? 0.0
                                          : pipeline.recall(kind, it->second, 1));
    }
    family_table.add_row(eval::model_name(kind), row);
  }
  std::cout << family_table.to_string() << '\n';

  // ---- per fault region --------------------------------------------------
  // The fault's region: the landmark of a remote cause, or the client's
  // region for local causes (Uplink/Load are injected at client regions).
  std::map<std::size_t, std::vector<std::size_t>> by_region;
  for (std::size_t i : pipeline.faulty_test_indices()) {
    const data::Sample& sample = test.samples[i];
    const std::size_t region =
        fs.is_landmark_feature(sample.primary_cause)
            ? fs.landmark_of(sample.primary_cause)
            : sample.client_region;
    by_region[region].push_back(i);
  }

  std::cout << "(bottom) Recall@1 per fault region (* = hidden in training)\n";
  std::vector<std::string> header{"model"};
  std::vector<std::size_t> region_order;
  for (const auto& [region, indices] : by_region) {
    std::string code = fs.topology().region(region).code;
    for (std::size_t hidden : pipeline.split().hidden_landmarks)
      if (hidden == region) code += "*";
    header.push_back(code + " (" + std::to_string(indices.size()) + ")");
    region_order.push_back(region);
  }
  util::Table region_table(header);
  for (eval::ModelKind kind : kinds) {
    std::vector<double> row;
    for (std::size_t region : region_order)
      row.push_back(pipeline.recall(kind, by_region[region], 1));
    region_table.add_row(eval::model_name(kind), row);
  }
  std::cout << region_table.to_string();
  return 0;
}
