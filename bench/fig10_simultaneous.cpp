// Fig. 10 — accuracy with simultaneous faults: latency injected near BOTH
// the BEAU and GRAV regions at once (GRAV is hidden during training). For
// each service, the relevant cause is BEAU only, GRAV only, or both,
// depending on the service's dependencies; the general and the specialised
// DiagNet models are compared on their top-1 predictions.
//
// Paper (specialised models): recall 76% when the BEAU latency is the root
// cause, 28% for GRAV (unseen during training), 71% when both are; the
// general model confuses the two regions and predicts many other faults.

#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace diagnet;
  namespace db = diagnet::bench;

  db::print_header(
      "Fig. 10 (simultaneous latency faults near BEAU and GRAV)",
      "Specialised models are sharper than the general model; recall 76% "
      "(BEAU), 28% (GRAV, unseen), 71% (both).");

  eval::PipelineConfig config = db::scaled_default_config();
  std::cout << "Training models...\n\n";
  eval::Pipeline pipeline(config);
  const auto& fs = pipeline.feature_space();
  const auto& sim = pipeline.simulator();

  // Evaluation campaign: every fault scenario injects latency at both BEAU
  // and GRAV simultaneously.
  const std::size_t beau = fs.topology().index_of("BEAU");
  const std::size_t grav = fs.topology().index_of("GRAV");
  data::CampaignConfig eval_campaign;
  eval_campaign.nominal_samples = 0;
  eval_campaign.fault_samples = 3000;
  eval_campaign.fixed_faults = {
      netsim::default_fault(netsim::FaultFamily::Latency, beau),
      netsim::default_fault(netsim::FaultFamily::Latency, grav)};
  eval_campaign.seed = config.seed ^ 0xf1610ULL;
  const data::Dataset eval_set =
      data::generate_campaign(sim, fs, eval_campaign);

  const std::size_t beau_cause =
      fs.landmark_feature(beau, data::Metric::Latency);
  const std::size_t grav_cause =
      fs.landmark_feature(grav, data::Metric::Latency);

  // Group degraded samples by (service, relevant-cause set).
  enum Relevant { BeauOnly = 0, GravOnly = 1, Both = 2 };
  const char* relevant_names[] = {"BEAU only", "GRAV only", "both"};
  struct Counts {
    std::size_t total = 0;
    std::size_t hit_general = 0;
    std::size_t hit_special = 0;
    std::size_t pred_beau_general = 0, pred_grav_general = 0;
    std::size_t pred_beau_special = 0, pred_grav_special = 0;
  };
  std::map<std::pair<std::size_t, int>, Counts> groups;
  Counts overall[3];

  auto& model = pipeline.diagnet();
  const std::vector<bool> all_landmarks(fs.landmark_count(), true);

  for (const data::Sample& sample : eval_set.samples) {
    if (!sample.is_faulty()) continue;
    const bool has_beau =
        std::find(sample.true_causes.begin(), sample.true_causes.end(),
                  beau_cause) != sample.true_causes.end();
    const bool has_grav =
        std::find(sample.true_causes.begin(), sample.true_causes.end(),
                  grav_cause) != sample.true_causes.end();
    if (!has_beau && !has_grav) continue;
    const int relevant = has_beau && has_grav ? Both
                         : has_beau           ? BeauOnly
                                              : GravOnly;

    const auto special =
        model.diagnose({sample.features, sample.service, false, all_landmarks})
            .diagnosis;
    const auto general =
        model.diagnose({sample.features, 0, true, all_landmarks}).diagnosis;

    const std::size_t top_general = general.ranking.front();
    const std::size_t top_special = special.ranking.front();

    const auto is_hit = [&](std::size_t top) {
      return std::find(sample.true_causes.begin(), sample.true_causes.end(),
                       top) != sample.true_causes.end();
    };
    auto& group = groups[{sample.service, relevant}];
    for (Counts* counts : {&group, &overall[relevant]}) {
      counts->total += 1;
      counts->hit_general += is_hit(top_general) ? 1 : 0;
      counts->hit_special += is_hit(top_special) ? 1 : 0;
      counts->pred_beau_general += top_general == beau_cause ? 1 : 0;
      counts->pred_grav_general += top_general == grav_cause ? 1 : 0;
      counts->pred_beau_special += top_special == beau_cause ? 1 : 0;
      counts->pred_grav_special += top_special == grav_cause ? 1 : 0;
    }
  }

  std::cout << "Per (service, relevant causes): share of top-1 predictions\n";
  util::Table table({"service", "relevant", "n", "gen:hit", "gen:BEAU",
                     "gen:GRAV", "spec:hit", "spec:BEAU", "spec:GRAV"});
  for (const auto& [key, counts] : groups) {
    const auto n = static_cast<double>(counts.total);
    table.add_row(
        {sim.services()[key.first].name, relevant_names[key.second],
         std::to_string(counts.total),
         util::fmt(static_cast<double>(counts.hit_general) / n, 2),
         util::fmt(static_cast<double>(counts.pred_beau_general) / n, 2),
         util::fmt(static_cast<double>(counts.pred_grav_general) / n, 2),
         util::fmt(static_cast<double>(counts.hit_special) / n, 2),
         util::fmt(static_cast<double>(counts.pred_beau_special) / n, 2),
         util::fmt(static_cast<double>(counts.pred_grav_special) / n, 2)});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "Specialised-model top-1 recall per relevant-cause case:\n";
  const double paper[] = {0.76, 0.28, 0.71};
  for (int relevant = 0; relevant < 3; ++relevant) {
    const Counts& counts = overall[relevant];
    if (counts.total == 0) continue;
    std::cout << "  " << relevant_names[relevant] << ": "
              << util::fmt(static_cast<double>(counts.hit_special) /
                               static_cast<double>(counts.total),
                           2)
              << " (general: "
              << util::fmt(static_cast<double>(counts.hit_general) /
                               static_cast<double>(counts.total),
                           2)
              << ")   [paper specialised: " << util::fmt(paper[relevant], 2)
              << "]\n";
  }
  return 0;
}
