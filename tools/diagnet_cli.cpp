// diagnet — command-line front end to the library.
//
//   diagnet simulate --samples 15000 --seed 42 --out campaign.csv
//       Generate a fault-injection measurement campaign against the
//       default 10-region deployment and store it as CSV.
//
//   diagnet train --campaign campaign.csv --out model.bin [--seed 42]
//       Apply the paper's hidden-landmark split, train the general model,
//       the per-service specialised heads and the auxiliary forest, and
//       save the trained bundle.
//
//   diagnose --campaign campaign.csv --model model.bin [--sample N]
//       Load a trained model and print the ranked root causes for the
//       N-th faulty sample of the campaign.
//
//   diagnet evaluate --campaign campaign.csv --model model.bin
//       Recall@k of the model over every faulty sample in the campaign.
//
//   diagnet selfcheck [--seed N] [--iters K] [--suite substr]
//                     [--corpus file]
//       Run the seeded property/differential/fuzz suites (src/testkit)
//       against this build. Every failure prints the exact --seed/--iters
//       pair that reproduces it; --corpus pins failures to a replay file.
//
// The three stages exchange plain files, so a campaign can be generated
// once and shared — the same hand-off the paper's analysis service does
// with its clients.

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/batch_diagnoser.h"
#include "core/registry.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "netsim/simulator.h"
#include "obs/obs.h"
#include "testkit/harness.h"
#include "util/table.h"

namespace {

using namespace diagnet;

/// Telemetry flags valid for every command (parsed before the per-command
/// flags and removed from the argument list):
///   --trace <file>      write a Perfetto/chrome://tracing JSON trace
///   --metrics <file>    write the metrics registry as JSON
///   --telemetry         print the telemetry summary table on exit
/// DIAGNET_TRACE / DIAGNET_METRICS / DIAGNET_TELEMETRY env vars are
/// honoured too; explicit flags win.
std::vector<std::string> setup_telemetry(int argc, char** argv) {
  std::vector<std::string> args;
  std::string trace_path, metrics_path;
  bool summary = false, any_flag = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" || arg == "--metrics") {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " requires a file argument\n";
        std::exit(2);
      }
      (arg == "--trace" ? trace_path : metrics_path) = argv[++i];
      any_flag = true;
    } else if (arg == "--telemetry") {
      summary = true;
      any_flag = true;
    } else {
      args.push_back(arg);
    }
  }
  obs::init_from_env();
  if (any_flag) obs::configure_exit_report(trace_path, metrics_path, summary);
  return args;
}

std::map<std::string, std::string> parse_flags(
    const std::vector<std::string>& args, std::size_t first) {
  std::map<std::string, std::string> flags;
  for (std::size_t i = first; i < args.size(); i += 2) {
    const std::string& key = args[i];
    if (key.rfind("--", 0) != 0)
      throw std::runtime_error("expected --flag value, got: " + key);
    if (i + 1 >= args.size())
      throw std::runtime_error("missing value for " + key);
    flags[key.substr(2)] = args[i + 1];
  }
  return flags;
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int cmd_simulate(const std::map<std::string, std::string>& flags) {
  const auto seed = std::stoull(flag_or(flags, "seed", "42"));
  const auto samples = std::stoull(flag_or(flags, "samples", "15000"));
  const std::string out = flag_or(flags, "out", "campaign.csv");

  netsim::Simulator sim = netsim::Simulator::make_default(seed);
  sim.calibrate_qoe();
  data::FeatureSpace fs(sim.topology());

  data::CampaignConfig campaign;
  campaign.nominal_samples = samples / 3;
  campaign.fault_samples = samples - campaign.nominal_samples;
  campaign.seed = seed ^ 0xca3fULL;

  std::cout << "Simulating " << samples << " samples (seed " << seed
            << ")...\n";
  const data::Dataset dataset = data::generate_campaign(sim, fs, campaign);
  data::write_csv_file(dataset, fs, out);
  std::cout << "Wrote " << dataset.size() << " samples ("
            << dataset.count_faulty() << " faulty) to " << out << '\n';
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const auto seed = std::stoull(flag_or(flags, "seed", "42"));
  const std::string campaign_path = flag_or(flags, "campaign", "campaign.csv");
  const std::string out = flag_or(flags, "out", "model.bin");
  // Worker threads for minibatch sharding (0 = all hardware threads,
  // 1 = serial). The result is bit-identical for every value.
  const auto threads = std::stoull(flag_or(flags, "threads", "0"));

  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);
  std::cout << "Loading " << campaign_path << "...\n";
  const data::Dataset dataset = data::read_csv_file(campaign_path, fs);

  data::SplitConfig split_config;
  split_config.seed = seed ^ 0x5b11ULL;
  const data::DataSplit split = data::make_split(dataset, fs, split_config);
  std::cout << "Hidden-landmark split: " << split.train.size()
            << " train / " << split.test.size() << " test samples.\n";

  core::DiagNetConfig config = core::DiagNetConfig::defaults();
  config.seed = seed;
  config.trainer.threads = threads;
  config.specialization.threads = threads;
  core::DiagNetModel model(fs, config);
  std::cout << "Training general model...\n";
  const auto history = model.train_general(split.train);
  std::cout << "  best validation loss "
            << util::fmt(history.epochs[history.best_epoch].validation_loss, 4)
            << " at epoch " << (history.best_epoch + 1) << " ("
            << util::fmt(history.wall_seconds, 1) << " s)\n";

  netsim::Simulator sim = netsim::Simulator::make_default(seed);
  for (std::size_t s = 0; s < sim.services().size(); ++s) {
    std::size_t count = 0;
    for (const auto& sample : split.train.samples)
      count += sample.service == s ? 1 : 0;
    if (count <= 50) continue;
    const auto special = model.specialize(s, split.train);
    std::cout << "  specialised '" << sim.services()[s].name << "' in "
              << (special.best_epoch + 1) << " epoch(s)\n";
  }

  core::save_model_file(model, out);
  std::cout << "Saved model bundle to " << out << '\n';
  return 0;
}

int cmd_diagnose(const std::map<std::string, std::string>& flags) {
  const std::string campaign_path = flag_or(flags, "campaign", "campaign.csv");
  const std::string model_path = flag_or(flags, "model", "model.bin");
  const auto wanted = std::stoull(flag_or(flags, "sample", "0"));

  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);
  const data::Dataset dataset = data::read_csv_file(campaign_path, fs);
  auto model = core::load_model_file(model_path, fs);

  std::size_t seen = 0;
  for (const data::Sample& sample : dataset.samples) {
    if (!sample.is_faulty() || seen++ != wanted) continue;
    const std::vector<bool> all(fs.landmark_count(), true);
    auto diagnosis = model->diagnose(sample.features, sample.service, all);
    std::cout << "Faulty sample #" << wanted << " (client in "
              << topology.region(sample.client_region).code
              << "), ground truth: " << fs.name(sample.primary_cause)
              << "\n\n";
    util::Table table({"rank", "cause", "score"});
    for (std::size_t r = 0; r < 5; ++r)
      table.add_row({std::to_string(r + 1), fs.name(diagnosis.ranking[r]),
                     util::fmt(diagnosis.scores[diagnosis.ranking[r]], 4)});
    std::cout << table.to_string();
    return 0;
  }
  std::cerr << "error: campaign has only " << seen
            << " faulty samples (wanted #" << wanted << ")\n";
  return 1;
}

int cmd_evaluate(const std::map<std::string, std::string>& flags) {
  const std::string campaign_path = flag_or(flags, "campaign", "campaign.csv");
  const std::string model_path = flag_or(flags, "model", "model.bin");

  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);
  const data::Dataset dataset = data::read_csv_file(campaign_path, fs);
  auto model = core::load_model_file(model_path, fs);

  // All faulty samples go through the batched diagnosis engine: one
  // network pass per batch instead of one forward+backward per sample.
  std::vector<core::DiagnosisRequest> requests;
  std::vector<std::size_t> truths;
  for (const data::Sample& sample : dataset.samples) {
    if (!sample.is_faulty()) continue;
    requests.push_back({&sample.features, sample.service});
    truths.push_back(sample.primary_cause);
  }
  if (requests.empty()) {
    std::cerr << "error: no faulty samples in " << campaign_path << '\n';
    return 1;
  }
  const std::vector<bool> all(fs.landmark_count(), true);
  const core::BatchDiagnoser batcher(*model);
  std::vector<core::Diagnosis> diagnoses = batcher.diagnose_all(requests, all);
  std::vector<std::vector<std::size_t>> rankings(diagnoses.size());
  for (std::size_t i = 0; i < diagnoses.size(); ++i)
    rankings[i] = std::move(diagnoses[i].ranking);
  util::Table table({"k", "Recall@k"});
  for (std::size_t k = 1; k <= 5; ++k)
    table.add_row({std::to_string(k),
                   util::fmt(eval::recall_at_k(rankings, truths, k), 3)});
  std::cout << rankings.size() << " faulty samples\n" << table.to_string();
  return 0;
}

int cmd_selfcheck(const std::map<std::string, std::string>& flags) {
  testkit::SelfCheckConfig config;
  config.seed = std::stoull(flag_or(flags, "seed", "1"));
  config.iters = std::stoull(flag_or(flags, "iters", "50"));
  config.filter = flag_or(flags, "suite", "");
  config.corpus_path = flag_or(flags, "corpus", "");

  const testkit::SelfCheckReport report =
      testkit::run_selfcheck(config, std::cout);
  if (report.suites.empty()) {
    std::cerr << "error: no suite matches --suite '" << config.filter
              << "'\n";
    return 2;
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args = setup_telemetry(argc, argv);
  if (args.empty()) {
    std::cerr << "usage: diagnet <simulate|train|diagnose|evaluate|selfcheck> "
                 "[--trace file] [--metrics file] [--telemetry] "
                 "[--threads n] [--flag value ...]\n";
    return 2;
  }
  const std::string command = args[0];
  try {
    const auto flags = parse_flags(args, 1);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "train") return cmd_train(flags);
    if (command == "diagnose") return cmd_diagnose(flags);
    if (command == "evaluate") return cmd_evaluate(flags);
    if (command == "selfcheck") return cmd_selfcheck(flags);
    std::cerr << "unknown command: " << command << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
