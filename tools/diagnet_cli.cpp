// diagnet — command-line front end to the library.
//
//   diagnet simulate --samples 15000 --seed 42 --out campaign.csv
//       Generate a fault-injection measurement campaign against the
//       default 10-region deployment and store it as CSV.
//
//   diagnet train --campaign campaign.csv --out model.bin [--seed 42]
//       Apply the paper's hidden-landmark split, train the general model,
//       the per-service specialised heads and the auxiliary forest, and
//       save the trained bundle. With --freeze-kernel --service N
//       --from general.bin, instead fine-tune only service N's FC head on
//       the frozen LandPooling kernel and save it as a head bundle for
//       `serve --service-models`.
//
//   diagnet diagnose --campaign campaign.csv --model model.bin [--sample N]
//       Load a trained model and print the ranked root causes for the
//       N-th faulty sample of the campaign.
//
//   diagnet evaluate --campaign campaign.csv --model model.bin
//       Recall@k of the model over every faulty sample in the campaign.
//
//   diagnet serve --model model.bin [--port P] [--watch]
//                 [--admin-port A] [--stats-interval-s S]
//       Long-lived diagnosis service: line-delimited JSON requests over
//       stdin/stdout (or loopback TCP with --port), dynamic micro-batching,
//       bounded-queue admission control, and atomic model hot-swap.
//       --admin-port serves GET /statsz (JSON) and /metrics (Prometheus);
//       any session also answers the in-band {"cmd":"statsz"} line.
//
//   diagnet mkrequests --campaign campaign.csv --out requests.jsonl
//       Turn campaign samples into serve request lines — the smoke-test
//       and load-generation companion to `diagnet serve`.
//
//   diagnet loadgen --port P --campaign campaign.csv [--rps R]
//       Drive a live serve TCP endpoint open- or closed-loop, measure
//       client-side tail latency, and write BENCH_serve.json.
//
//   diagnet selfcheck [--seed N] [--iters K] [--suite substr]
//                     [--corpus file]
//       Run the seeded property/differential/fuzz suites (src/testkit)
//       against this build.
//
// Every subcommand declares its flags as one util::ArgSpec table: typed
// values, uniform auto-generated `--help`, and unknown flags are hard
// errors. The stages exchange plain files, so a campaign can be generated
// once and shared — the same hand-off the paper's analysis service does
// with its clients.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_diagnoser.h"
#include "core/registry.h"
#include "data/campaign_stream.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "netsim/simulator.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "serve/loadgen.h"
#include "serve/reactor.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/statsz.h"
#include "serve/wire.h"
#include "tensor/dispatch.h"
#include "testkit/harness.h"
#include "util/argspec.h"
#include "util/table.h"

namespace {

using namespace diagnet;

/// Telemetry flags valid for every command (parsed before the per-command
/// flags and removed from the argument list):
///   --trace <file>      write a Perfetto/chrome://tracing JSON trace
///   --metrics <file>    write the metrics registry as JSON
///   --telemetry         print the telemetry summary table on exit
/// DIAGNET_TRACE / DIAGNET_METRICS / DIAGNET_TELEMETRY env vars are
/// honoured too; explicit flags win.
std::vector<std::string> setup_telemetry(int argc, char** argv) {
  std::vector<std::string> args;
  std::string trace_path, metrics_path;
  bool summary = false, any_flag = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" || arg == "--metrics") {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " requires a file argument\n";
        std::exit(2);
      }
      (arg == "--trace" ? trace_path : metrics_path) = argv[++i];
      any_flag = true;
    } else if (arg == "--telemetry") {
      summary = true;
      any_flag = true;
    } else {
      args.push_back(arg);
    }
  }
  obs::init_from_env();
  if (any_flag) obs::configure_exit_report(trace_path, metrics_path, summary);
  return args;
}

// ---------------------------------------------------------------------------
// simulate

const util::ArgSpec kSimulateArgs[] = {
    {"samples", util::ArgType::kUint, "15000",
     "campaign size (classic scenario mode)"},
    {"clients", util::ArgType::kUint, "0",
     "emulated concurrent clients; > 0 switches to the event-driven "
     "flow-level engine"},
    {"seed", util::ArgType::kUint, "42", "simulator RNG seed"},
    {"out", util::ArgType::kString, "campaign.csv", "output CSV path"},
    {"stream", util::ArgType::kFlag, "",
     "stream samples to a chunked on-disk campaign (--out-dir) instead of "
     "materializing a CSV"},
    {"out-dir", util::ArgType::kString, "campaign.chunks",
     "output directory for --stream"},
    {"duration-hours", util::ArgType::kDouble, "24",
     "simulated campaign span (default: 336 classic, 24 client mode)"},
    {"think-s", util::ArgType::kDouble, "86400",
     "mean think time between a client's visits (client mode)"},
    {"chunk-size", util::ArgType::kUint, "4096",
     "samples per checksummed chunk (--stream)"},
    {"threads", util::ArgType::kUint, "0",
     "generator worker threads (0 = all cores; output is bit-identical)"},
};

int cmd_simulate(const util::ParsedArgs& args) {
  const std::uint64_t seed = args.uint("seed");
  const std::uint64_t samples = args.uint("samples");
  const std::uint64_t clients = args.uint("clients");

  netsim::Simulator sim = netsim::Simulator::make_default(seed);
  sim.calibrate_qoe();
  data::FeatureSpace fs(sim.topology());

  data::CampaignConfig campaign;
  campaign.seed = seed ^ 0xca3fULL;
  campaign.threads = args.uint("threads");
  if (clients > 0) {
    campaign.clients = clients;
    campaign.duration_hours = 24.0;
    campaign.mean_think_s = args.num("think-s");
  } else {
    campaign.nominal_samples = samples / 3;
    campaign.fault_samples = samples - campaign.nominal_samples;
  }
  if (args.given("duration-hours"))
    campaign.duration_hours = args.num("duration-hours");

  if (util::Status s = campaign.validate(sim); !s.ok()) {
    std::cerr << "error: " << s.message() << '\n';
    return 1;
  }

  if (clients > 0)
    std::cout << "Simulating " << clients << " clients over "
              << campaign.duration_hours << " h (seed " << seed << ")...\n";
  else
    std::cout << "Simulating " << samples << " samples (seed " << seed
              << ")...\n";

  if (args.flag("stream")) {
    const std::string out_dir = args.str("out-dir");
    data::ChunkedWriterConfig writer_config;
    writer_config.chunk_size = args.uint("chunk-size");
    data::ChunkedWriter sink(out_dir, writer_config);
    const auto stats = data::stream_campaign(sim, fs, campaign, sink);
    if (!stats.ok()) {
      std::cerr << "error: " << stats.status().message() << '\n';
      return 1;
    }
    std::cout << "Streamed " << stats->samples << " samples ("
              << stats->faulty << " faulty) to " << out_dir << '\n';
    return 0;
  }

  const std::string out = args.str("out");
  data::DatasetSink sink;
  const auto stats = data::stream_campaign(sim, fs, campaign, sink);
  if (!stats.ok()) {
    std::cerr << "error: " << stats.status().message() << '\n';
    return 1;
  }
  const data::Dataset dataset = sink.take();
  if (util::Status s = data::try_write_csv_file(dataset, fs, out); !s.ok()) {
    std::cerr << "error: " << s.message() << '\n';
    return 1;
  }
  std::cout << "Wrote " << dataset.size() << " samples ("
            << dataset.count_faulty() << " faulty) to " << out << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// train

const util::ArgSpec kTrainArgs[] = {
    {"campaign", util::ArgType::kString, "campaign.csv", "input campaign (CSV file or chunked dir)"},
    {"out", util::ArgType::kString, "model.bin", "output model bundle"},
    {"seed", util::ArgType::kUint, "42", "training RNG seed"},
    {"threads", util::ArgType::kUint, "0",
     "minibatch worker threads (0 = all cores; result is bit-identical)"},
    {"epochs", util::ArgType::kUint, "0",
     "cap training epochs (0 = paper defaults)"},
    {"freeze-kernel", util::ArgType::kFlag, "",
     "fine-tune only one service's FC head on a frozen LandPooling kernel"},
    {"service", util::ArgType::kUint, "0",
     "service id to specialise (with --freeze-kernel)"},
    {"from", util::ArgType::kString, "",
     "existing general bundle to fine-tune from (with --freeze-kernel)"},
};

int cmd_train(const util::ParsedArgs& args) {
  const std::uint64_t seed = args.uint("seed");
  const std::string campaign_path = args.str("campaign");
  const std::string out = args.str("out");
  const std::uint64_t threads = args.uint("threads");
  const std::uint64_t epochs = args.uint("epochs");

  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);
  std::cout << "Loading " << campaign_path << "...\n";
  auto dataset_or = data::try_read_campaign(campaign_path, fs);
  if (!dataset_or.ok()) {
    std::cerr << "error: " << dataset_or.status().message() << '\n';
    return 1;
  }
  const data::Dataset dataset = std::move(dataset_or).value();

  data::SplitConfig split_config;
  split_config.seed = seed ^ 0x5b11ULL;
  const data::DataSplit split = data::make_split(dataset, fs, split_config);
  std::cout << "Hidden-landmark split: " << split.train.size()
            << " train / " << split.test.size() << " test samples.\n";

  // --freeze-kernel: load an already-trained bundle, freeze its shared
  // LandPooling representation, and fine-tune only the FC head of one
  // service. The saved bundle is a per-service head a serving router can
  // merge back onto the general model (`serve --service-models id:path`);
  // the frozen kernel guarantees the head shares the general model's
  // pooling bit-for-bit, which is what lets the router batch them together.
  if (args.flag("freeze-kernel")) {
    const std::string from = args.str("from");
    const std::size_t service = args.uint("service");
    if (from.empty()) {
      std::cerr << "error: --freeze-kernel requires --from <bundle>\n";
      return 1;
    }
    auto model_or = core::try_load_model_file(from, fs);
    if (!model_or.ok()) {
      std::cerr << "error: " << model_or.status().message() << '\n';
      return 1;
    }
    const auto model = std::move(model_or).value();
    std::cout << "Fine-tuning FC head for service " << service
              << " on frozen kernel from " << from << "...\n";
    const auto history = model->specialize(service, split.train);
    std::cout << "  specialised in " << (history.best_epoch + 1)
              << " epoch(s) (" << util::fmt(history.wall_seconds, 1)
              << " s)\n";
    if (util::Status s = core::try_save_model_file(*model, out); !s.ok()) {
      std::cerr << "error: " << s.message() << '\n';
      return 1;
    }
    std::cout << "Saved specialised bundle to " << out << '\n';
    return 0;
  }

  core::DiagNetConfig config = core::DiagNetConfig::defaults();
  config.seed = seed;
  config.trainer.threads = threads;
  config.specialization.threads = threads;
  if (epochs > 0) {
    config.trainer.max_epochs = epochs;
    config.specialization.max_epochs =
        std::min<std::size_t>(config.specialization.max_epochs, epochs);
  }
  core::DiagNetModel model(fs, config);
  std::cout << "Training general model...\n";
  const auto history = model.train_general(split.train);
  std::cout << "  best validation loss "
            << util::fmt(history.epochs[history.best_epoch].validation_loss, 4)
            << " at epoch " << (history.best_epoch + 1) << " ("
            << util::fmt(history.wall_seconds, 1) << " s)\n";

  netsim::Simulator sim = netsim::Simulator::make_default(seed);
  for (std::size_t s = 0; s < sim.services().size(); ++s) {
    std::size_t count = 0;
    for (const auto& sample : split.train.samples)
      count += sample.service == s ? 1 : 0;
    if (count <= 50) continue;
    const auto special = model.specialize(s, split.train);
    std::cout << "  specialised '" << sim.services()[s].name << "' in "
              << (special.best_epoch + 1) << " epoch(s)\n";
  }

  if (util::Status s = core::try_save_model_file(model, out); !s.ok()) {
    std::cerr << "error: " << s.message() << '\n';
    return 1;
  }
  std::cout << "Saved model bundle to " << out << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// diagnose

const util::ArgSpec kDiagnoseArgs[] = {
    {"campaign", util::ArgType::kString, "campaign.csv", "input campaign (CSV file or chunked dir)"},
    {"model", util::ArgType::kString, "model.bin", "trained model bundle"},
    {"sample", util::ArgType::kUint, "0", "index among faulty samples"},
};

int cmd_diagnose(const util::ParsedArgs& args) {
  const std::string campaign_path = args.str("campaign");
  const std::string model_path = args.str("model");
  const std::uint64_t wanted = args.uint("sample");

  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);
  auto dataset_or = data::try_read_campaign(campaign_path, fs);
  if (!dataset_or.ok()) {
    std::cerr << "error: " << dataset_or.status().message() << '\n';
    return 1;
  }
  auto model_or = core::try_load_model_file(model_path, fs);
  if (!model_or.ok()) {
    std::cerr << "error: " << model_or.status().message() << '\n';
    return 1;
  }
  const auto model = std::move(model_or).value();

  std::size_t seen = 0;
  for (const data::Sample& sample : dataset_or.value().samples) {
    if (!sample.is_faulty() || seen++ != wanted) continue;
    core::DiagnoseRequest request;
    request.features = sample.features;
    request.service = sample.service;
    const core::DiagnoseResponse response = model->diagnose(request);
    if (!response.ok()) {
      std::cerr << "error: " << response.status.message() << '\n';
      return 1;
    }
    const core::Diagnosis& diagnosis = response.diagnosis;
    std::cout << "Faulty sample #" << wanted << " (client in "
              << topology.region(sample.client_region).code
              << "), ground truth: " << fs.name(sample.primary_cause)
              << "\n\n";
    util::Table table({"rank", "cause", "score"});
    for (std::size_t r = 0; r < 5; ++r)
      table.add_row({std::to_string(r + 1), fs.name(diagnosis.ranking[r]),
                     util::fmt(diagnosis.scores[diagnosis.ranking[r]], 4)});
    std::cout << table.to_string();
    return 0;
  }
  std::cerr << "error: campaign has only " << seen
            << " faulty samples (wanted #" << wanted << ")\n";
  return 1;
}

// ---------------------------------------------------------------------------
// evaluate

const util::ArgSpec kEvaluateArgs[] = {
    {"campaign", util::ArgType::kString, "campaign.csv", "input campaign (CSV file or chunked dir)"},
    {"model", util::ArgType::kString, "model.bin", "trained model bundle"},
    {"quantize", util::ArgType::kFlag, "",
     "int8-quantize the FC stacks before evaluating"},
};

int cmd_evaluate(const util::ParsedArgs& args) {
  const std::string campaign_path = args.str("campaign");
  const std::string model_path = args.str("model");

  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);

  // All faulty samples go through the batched diagnosis engine: one
  // network pass per batch instead of one forward+backward per sample.
  // The campaign streams in chunk by chunk — only the faulty requests are
  // retained, so evaluation never holds the whole campaign in RAM.
  // Campaign problems are reported before model problems.
  std::vector<core::DiagnoseRequest> requests;
  std::vector<std::size_t> truths;
  const auto streamed = data::for_each_campaign_sample(
      campaign_path, fs, [&](const data::Sample& sample) {
        if (!sample.is_faulty()) return;
        core::DiagnoseRequest request;
        request.features = sample.features;
        request.service = sample.service;
        requests.push_back(std::move(request));
        truths.push_back(sample.primary_cause);
      });
  if (!streamed.ok()) {
    std::cerr << "error: " << streamed.status().message() << '\n';
    return 1;
  }
  if (requests.empty()) {
    std::cerr << "error: no faulty samples in " << campaign_path << '\n';
    return 1;
  }

  auto model_or = core::try_load_model_file(model_path, fs);
  if (!model_or.ok()) {
    std::cerr << "error: " << model_or.status().message() << '\n';
    return 1;
  }
  const auto model = std::move(model_or).value();
  if (args.flag("quantize")) model->set_quantized(true);
  const core::BatchDiagnoser batcher(*model);
  std::vector<core::DiagnoseResponse> responses = batcher.run(requests);
  std::vector<std::vector<std::size_t>> rankings;
  rankings.reserve(responses.size());
  for (core::DiagnoseResponse& response : responses) {
    if (!response.ok()) {
      std::cerr << "error: " << response.status.message() << '\n';
      return 1;
    }
    rankings.push_back(std::move(response.diagnosis.ranking));
  }
  util::Table table({"k", "Recall@k"});
  for (std::size_t k = 1; k <= 5; ++k)
    table.add_row({std::to_string(k),
                   util::fmt(eval::recall_at_k(rankings, truths, k), 3)});
  std::cout << rankings.size() << " faulty samples\n" << table.to_string();
  return 0;
}

// ---------------------------------------------------------------------------
// selfcheck

const util::ArgSpec kSelfcheckArgs[] = {
    {"seed", util::ArgType::kUint, "1", "base RNG seed for every suite"},
    {"iters", util::ArgType::kUint, "50", "iterations per property"},
    {"suite", util::ArgType::kString, "", "substring filter on suite names"},
    {"corpus", util::ArgType::kString, "", "failure replay/append file"},
};

int cmd_selfcheck(const util::ParsedArgs& args) {
  testkit::SelfCheckConfig config;
  config.seed = args.uint("seed");
  config.iters = args.uint("iters");
  config.filter = args.str("suite");
  config.corpus_path = args.str("corpus");

  const testkit::SelfCheckReport report =
      testkit::run_selfcheck(config, std::cout);
  if (report.suites.empty()) {
    std::cerr << "error: no suite matches --suite '" << config.filter
              << "'\n";
    return 2;
  }
  return report.ok() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// serve

#if defined(__unix__) || defined(__APPLE__)
std::atomic<bool> g_interrupted{false};

void handle_sigint(int) { g_interrupted.store(true); }

void install_sigint_handler() {
  struct sigaction action {};
  action.sa_handler = handle_sigint;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocking stdin read returns on SIGINT, so the
  // session loop sees the flag and starts the graceful drain.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  // A client that hangs up before reading its responses must surface as a
  // write error in the transport, not as a process-killing SIGPIPE.
  signal(SIGPIPE, SIG_IGN);
}
#else
std::atomic<bool> g_interrupted{false};
void install_sigint_handler() {}
#endif

const util::ArgSpec kServeArgs[] = {
    {"model", util::ArgType::kString, "model.bin", "trained bundle to serve"},
    {"port", util::ArgType::kUint, "0",
     "loopback TCP port (0 = line-JSON over stdin/stdout)"},
    {"listener", util::ArgType::kString, "epoll",
     "TCP transport: 'epoll' (event-loop reactor, default) or 'threads' "
     "(one thread per connection)"},
    {"loops", util::ArgType::kUint, "1",
     "epoll event-loop threads (loop 0 accepts and deals round-robin)"},
    {"max-conns", util::ArgType::kUint, "100000",
     "connection cap; accepts beyond it get one error line (epoll only)"},
    {"idle-timeout-s", util::ArgType::kDouble, "0",
     "close connections with no traffic for this long (0 = never; epoll "
     "only)"},
    {"max-line-bytes", util::ArgType::kUint, "1048576",
     "request-line length cap before the connection is closed (epoll "
     "only)"},
    {"max-batch", util::ArgType::kUint, "64",
     "max requests fused into one batch"},
    {"max-delay-us", util::ArgType::kUint, "2000",
     "batch-forming window after the oldest waiting arrival"},
    {"queue-cap", util::ArgType::kUint, "1024",
     "admission bound; beyond it requests are rejected, never queued"},
    {"threads", util::ArgType::kUint, "1",
     "worker threads for the batch engine"},
    {"top-k", util::ArgType::kUint, "5",
     "causes per response when the request does not say"},
    {"service-models", util::ArgType::kString, "",
     "comma-separated id:path specialised head bundles merged onto --model"},
    {"quantize", util::ArgType::kFlag, "",
     "serve int8-quantized FC stacks (fp32 LandPooling kernel)"},
    {"watch", util::ArgType::kFlag, "",
     "poll --model for newer bundles and hot-swap them atomically"},
    {"watch-interval-ms", util::ArgType::kUint, "500",
     "poll period for --watch"},
    {"admin-port", util::ArgType::kUint, "0",
     "loopback HTTP port for GET /statsz and /metrics (0 = off)"},
    {"stats-interval-s", util::ArgType::kDouble, "0",
     "print a periodic stats line to stderr (0 = off)"},
};

int cmd_serve(const util::ParsedArgs& args) {
  const std::string model_path = args.str("model");
  if (args.uint("max-batch") == 0 || args.uint("queue-cap") == 0) {
    std::cerr << "error: --max-batch and --queue-cap must be positive\n";
    return 1;
  }
  if (args.uint("port") > 65535 || args.uint("admin-port") > 65535) {
    std::cerr << "error: --port/--admin-port must be <= 65535\n";
    return 1;
  }
  std::string listener = args.str("listener");
  if (listener != "epoll" && listener != "threads") {
    std::cerr << "error: --listener must be 'epoll' or 'threads'\n";
    return 1;
  }
  if (listener == "epoll" && !serve::reactor_supported()) {
    std::cerr << "serve: epoll is unavailable on this platform; falling "
                 "back to --listener threads\n";
    listener = "threads";
  }

  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);
  auto specs_or = serve::parse_service_models(args.str("service-models"));
  if (!specs_or.ok()) {
    std::cerr << "error: " << specs_or.status().message() << '\n';
    return 1;
  }

  // With --service-models or --quantize the model is owned by a
  // ModelRouter: it merges the general bundle with every per-service head
  // and republishes the whole merge in one provider swap, so a reload can
  // never mix bundle generations. Otherwise the plain single-file provider
  // is used, exactly as before.
  std::shared_ptr<serve::ModelProvider> provider;
  std::shared_ptr<serve::ModelRouter> router;
  if (!specs_or.value().empty() || args.flag("quantize")) {
    serve::ModelRouter::Config router_config;
    router_config.default_path = model_path;
    router_config.services = std::move(specs_or).value();
    router_config.quantize = args.flag("quantize");
    auto router_or = serve::ModelRouter::create(router_config, fs);
    if (!router_or.ok()) {
      std::cerr << "error: " << router_or.status().message() << '\n';
      return 1;
    }
    router = std::move(router_or).value();
    provider = router->provider();
    if (!router_config.services.empty())
      std::cerr << "serve: merged " << router_config.services.size()
                << " specialised head bundle(s) onto the general model ("
                << router->services().size() << " routable service(s))\n";
  } else {
    auto provider_or = serve::ModelProvider::from_file(model_path, fs);
    if (!provider_or.ok()) {
      std::cerr << "error: " << provider_or.status().message() << '\n';
      return 1;
    }
    provider = std::move(provider_or).value();
  }
  std::cerr << "serve: kernel tier " << tensor::active_kernel_tier_name()
            << " (cpu " << tensor::cpu_features_string() << ')'
            << (args.flag("quantize") ? ", int8 FC stacks" : "") << '\n';

  serve::ServiceConfig config;
  config.max_batch = args.uint("max-batch");
  config.max_delay_us = args.uint("max-delay-us");
  config.queue_capacity = args.uint("queue-cap");
  config.worker_threads = args.uint("threads");
  serve::DiagnosisService service(provider, config);

  // A serving process records its own latency/throughput telemetry
  // unconditionally — statsz without metrics would be an empty shell.
  // DIAGNET_OBS=0 still force-disables everything.
  obs::set_enabled(true);

  serve::StatszSource statsz_source;
  statsz_source.service = &service;
  statsz_source.provider = provider.get();
  statsz_source.start = std::chrono::steady_clock::now();
  serve::SessionHooks hooks;
  hooks.statsz = [&statsz_source] {
    return serve::statsz_json(statsz_source);
  };

  const std::size_t top_k = args.uint("top-k");
  // Built up front (and registered with statsz before the admin listener
  // thread starts) so a scrape never races the transport choice below.
  std::unique_ptr<serve::Reactor> reactor;
  if (args.uint("port") != 0 && listener == "epoll") {
    serve::ReactorConfig reactor_config;
    reactor_config.loops = std::max<std::size_t>(args.uint("loops"), 1);
    reactor_config.max_connections =
        std::max<std::size_t>(args.uint("max-conns"), 1);
    reactor_config.max_line_bytes =
        std::max<std::size_t>(args.uint("max-line-bytes"), 1);
    reactor_config.idle_timeout = std::chrono::milliseconds(
        static_cast<std::int64_t>(args.num("idle-timeout-s") * 1000.0));
    reactor_config.default_top_k = top_k;
    reactor = std::make_unique<serve::Reactor>(service, fs, reactor_config,
                                               &hooks);
    statsz_source.reactor = reactor.get();
  }

  install_sigint_handler();

  std::atomic<bool> watch_stop{false};
  std::thread watcher;
  if (args.flag("watch")) {
    const auto interval =
        std::chrono::milliseconds(args.uint("watch-interval-ms"));
    watcher = std::thread([&watch_stop, provider, router, model_path,
                           interval, &fs] {
      while (!watch_stop.load()) {
        std::this_thread::sleep_for(interval);
        util::Status status;
        // A router watches every merged bundle (general + heads) and
        // republishes the full merge; the plain provider watches one file.
        const bool swapped =
            router != nullptr
                ? router->poll_and_reload(&status)
                : provider->poll_and_reload(model_path, fs, &status);
        if (swapped)
          std::cerr << "serve: hot-swapped model (generation "
                    << provider->generation() << ")\n";
        else if (!status.ok())
          std::cerr << "serve: reload failed, keeping current model: "
                    << status.to_string() << '\n';
      }
    });
  }

  // Auxiliary threads (admin HTTP listener, periodic stats line) stop on
  // their own flag — set both on SIGINT *and* on a normal EOF drain.
  std::atomic<bool> aux_stop{false};
  std::thread admin;
  util::Status admin_status;
  if (args.uint("admin-port") != 0) {
    admin = std::thread([&admin_status, &statsz_source, &args, &aux_stop] {
      admin_status = serve::run_admin_listener(
          statsz_source, static_cast<std::uint16_t>(args.uint("admin-port")),
          aux_stop);
      if (!admin_status.ok())
        std::cerr << "serve: " << admin_status.message() << '\n';
    });
  }
  std::thread stats_printer;
  if (args.num("stats-interval-s") > 0) {
    const auto interval = std::chrono::duration<double>(
        args.num("stats-interval-s"));
    stats_printer = std::thread([&service, interval, &aux_stop] {
      auto next = std::chrono::steady_clock::now() + interval;
      while (!aux_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (std::chrono::steady_clock::now() < next) continue;
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(interval);
        const serve::DiagnosisService::Stats s = service.stats();
        std::cerr << "serve: stats accepted=" << s.accepted
                  << " completed=" << s.completed << " rejected="
                  << s.rejected << " shed=" << s.shed << " batches="
                  << s.batches << " queue_depth=" << service.queue_depth()
                  << '\n';
      }
    });
  }

  serve::SessionStats session_stats;
  util::Status listen_status;
  if (reactor != nullptr) {
    listen_status = reactor->listen(
        static_cast<std::uint16_t>(args.uint("port")));
    if (listen_status.ok()) listen_status = reactor->run(g_interrupted);
    const serve::ReactorStats rstats = reactor->stats();
    session_stats.requests = rstats.requests;
    session_stats.responses = rstats.responses;
    session_stats.errors = rstats.protocol_errors;
  } else if (args.uint("port") != 0) {
    listen_status = serve::run_tcp_listener(
        service, fs, static_cast<std::uint16_t>(args.uint("port")), top_k,
        g_interrupted, nullptr, &hooks);
  } else {
    std::cerr << "serve: reading line-JSON requests from stdin "
                 "(EOF or SIGINT drains and exits)\n";
    session_stats = serve::run_session(service, fs, std::cin, std::cout,
                                       top_k, &g_interrupted, &hooks);
  }

  service.stop();  // graceful drain: every accepted request is answered
  watch_stop.store(true);
  aux_stop.store(true);
  if (watcher.joinable()) watcher.join();
  if (admin.joinable()) admin.join();
  if (stats_printer.joinable()) stats_printer.join();

  const serve::DiagnosisService::Stats stats = service.stats();
  std::cerr << "serve: drained — " << session_stats.requests
            << " request line(s), " << session_stats.responses
            << " response(s), " << session_stats.errors
            << " error(s); accepted " << stats.accepted << ", rejected "
            << stats.rejected << ", shed " << stats.shed << ", batches "
            << stats.batches << ", model generation "
            << provider->generation() << '\n';
  if (!listen_status.ok()) {
    std::cerr << "error: " << listen_status.message() << '\n';
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// mkrequests

const util::ArgSpec kMkrequestsArgs[] = {
    {"campaign", util::ArgType::kString, "campaign.csv",
     "campaign (CSV or chunked dir) to draw samples from"},
    {"out", util::ArgType::kString, "requests.jsonl",
     "output file, one serve request JSON per line"},
    {"limit", util::ArgType::kUint, "100",
     "requests to emit (cycles the samples when larger)"},
    {"deadline-ms", util::ArgType::kDouble, "0",
     "per-request deadline (0 = none)"},
    {"all", util::ArgType::kFlag, "",
     "include nominal samples too (default: faulty only)"},
};

int cmd_mkrequests(const util::ParsedArgs& args) {
  const std::string campaign_path = args.str("campaign");
  const std::string out = args.str("out");
  const std::uint64_t limit = args.uint("limit");
  const double deadline_ms = args.num("deadline-ms");
  const bool include_nominal = args.flag("all");

  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);
  auto dataset_or = data::try_read_campaign(campaign_path, fs);
  if (!dataset_or.ok()) {
    std::cerr << "error: " << dataset_or.status().message() << '\n';
    return 1;
  }
  const data::Dataset& dataset = dataset_or.value();

  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < dataset.samples.size(); ++i)
    if (include_nominal || dataset.samples[i].is_faulty())
      eligible.push_back(i);
  if (eligible.empty()) {
    std::cerr << "error: no " << (include_nominal ? "" : "faulty ")
              << "samples in " << campaign_path << '\n';
    return 1;
  }

  std::ofstream file(out, std::ios::trunc);
  if (!file) {
    std::cerr << "error: cannot open " << out << " for writing\n";
    return 1;
  }
  for (std::uint64_t i = 0; i < limit; ++i) {
    const data::Sample& sample =
        dataset.samples[eligible[i % eligible.size()]];
    // format_request is the inverse of the server's parse_request, so
    // mkrequests and loadgen can never drift from the wire dialect.
    serve::WireRequest wire;
    wire.id = i + 1;
    wire.request.features = sample.features;
    wire.request.service = sample.service;
    wire.deadline_ms = deadline_ms;
    file << serve::format_request(wire) << '\n';
  }
  file.flush();
  if (!file) {
    std::cerr << "error: failed writing " << out << '\n';
    return 1;
  }
  std::cout << "Wrote " << limit << " request(s) from " << eligible.size()
            << " sample(s) to " << out << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// loadgen

const util::ArgSpec kLoadgenArgs[] = {
    {"port", util::ArgType::kUint, "0",
     "TCP port of a live `diagnet serve --port` (required)"},
    {"campaign", util::ArgType::kString, "campaign.csv",
     "campaign (CSV or chunked dir) the request pool is drawn from"},
    {"requests", util::ArgType::kUint, "1000",
     "total requests to send across all connections"},
    {"rps", util::ArgType::kDouble, "0",
     "open-loop target rate (0 = closed loop at --concurrency)"},
    {"concurrency", util::ArgType::kUint, "4",
     "concurrent connections (multiplexed over --threads workers)"},
    {"threads", util::ArgType::kUint, "0",
     "poll worker threads driving the connections (0 = auto)"},
    {"pool", util::ArgType::kUint, "256",
     "distinct request lines pre-built from the campaign"},
    {"deadline-ms", util::ArgType::kDouble, "0",
     "per-request deadline field (0 = none)"},
    {"seed", util::ArgType::kUint, "1", "request-sampling seed"},
    {"out", util::ArgType::kString, "BENCH_serve.json",
     "benchmark report (JSON) path"},
    {"no-statsz", util::ArgType::kFlag, "",
     "skip the mid-run in-band statsz probe"},
};

int cmd_loadgen(const util::ParsedArgs& args) {
  if (args.uint("port") == 0 || args.uint("port") > 65535) {
    std::cerr << "error: --port must name a live serve TCP port\n";
    return 1;
  }
  const netsim::Topology topology = netsim::default_topology();
  const data::FeatureSpace fs(topology);
  auto dataset_or = data::try_read_campaign(args.str("campaign"), fs);
  if (!dataset_or.ok()) {
    std::cerr << "error: " << dataset_or.status().message() << '\n';
    return 1;
  }
  const data::Dataset& dataset = dataset_or.value();
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < dataset.samples.size(); ++i)
    if (dataset.samples[i].is_faulty()) eligible.push_back(i);
  if (eligible.empty()) {
    std::cerr << "error: no faulty samples in " << args.str("campaign")
              << '\n';
    return 1;
  }

  serve::LoadgenConfig config;
  config.port = static_cast<std::uint16_t>(args.uint("port"));
  config.requests = args.uint("requests");
  config.target_rps = args.num("rps");
  config.concurrency = args.uint("concurrency");
  config.threads = args.uint("threads");
  config.seed = args.uint("seed");
  config.probe_statsz = !args.flag("no-statsz");
  const std::size_t pool_size =
      std::min<std::size_t>(std::max<std::uint64_t>(args.uint("pool"), 1),
                            4096);
  config.pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    const data::Sample& sample =
        dataset.samples[eligible[i % eligible.size()]];
    serve::WireRequest wire;
    wire.id = i + 1;
    wire.request.features = sample.features;
    wire.request.service = sample.service;
    wire.deadline_ms = args.num("deadline-ms");
    config.pool.push_back(serve::format_request(wire));
  }

  std::cerr << "loadgen: driving 127.0.0.1:" << config.port << " with "
            << config.requests << " request(s), "
            << (config.target_rps > 0 ? "open loop" : "closed loop")
            << ", concurrency " << config.concurrency << '\n';
  auto report_or = serve::run_loadgen(config);
  if (!report_or.ok()) {
    std::cerr << "error: " << report_or.status().message() << '\n';
    return 1;
  }
  const serve::LoadgenReport& report = report_or.value();
  const auto& lat = report.latency_ms;

  util::Table table({"metric", "value"});
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  table.add_row({"connected", std::to_string(report.connected)});
  table.add_row({"sent", std::to_string(report.sent)});
  table.add_row({"ok", std::to_string(report.ok)});
  table.add_row({"rejected", std::to_string(report.rejected)});
  table.add_row({"errors", std::to_string(report.errors)});
  table.add_row({"wall_seconds", num(report.wall_seconds)});
  table.add_row({"achieved_rps", num(report.achieved_rps)});
  table.add_row({"latency_p50_ms", num(lat.percentile(0.50))});
  table.add_row({"latency_p90_ms", num(lat.percentile(0.90))});
  table.add_row({"latency_p99_ms", num(lat.percentile(0.99))});
  table.add_row({"latency_p999_ms", num(lat.percentile(0.999))});
  table.add_row({"latency_max_ms", num(lat.max)});
  std::cout << table.to_string();
  if (!report.statsz.empty())
    std::cout << "statsz (mid-run): " << report.statsz << '\n';

  std::string json = "{\"bench\":\"serve\",";
  json += obs::run_metadata_json();
  char buf[64];
  const auto field = [&](const char* name, double v) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    json += ",\"";
    json += name;
    json += "\":";
    json += buf;
  };
  json += ",\"requests\":" + std::to_string(config.requests);
  json += ",\"concurrency\":" + std::to_string(config.concurrency);
  field("target_rps", config.target_rps);
  json += ",\"connected\":" + std::to_string(report.connected);
  json += ",\"sent\":" + std::to_string(report.sent);
  json += ",\"ok\":" + std::to_string(report.ok);
  json += ",\"rejected\":" + std::to_string(report.rejected);
  json += ",\"errors\":" + std::to_string(report.errors);
  field("wall_seconds", report.wall_seconds);
  field("achieved_rps", report.achieved_rps);
  json += ",\"latency_ms\":{";
  std::snprintf(buf, sizeof buf, "%.6g", lat.mean());
  json += "\"mean\":";
  json += buf;
  const auto pct = [&](const char* name, double q) {
    std::snprintf(buf, sizeof buf, "%.6g", lat.percentile(q));
    json += ",\"";
    json += name;
    json += "\":";
    json += buf;
  };
  pct("p50", 0.50);
  pct("p90", 0.90);
  pct("p99", 0.99);
  pct("p999", 0.999);
  std::snprintf(buf, sizeof buf, "%.6g", lat.max);
  json += ",\"max\":";
  json += buf;
  json += '}';
  if (!report.statsz.empty()) json += ",\"statsz\":" + report.statsz;
  json += "}\n";

  std::ofstream out(args.str("out"), std::ios::trunc);
  out << json;
  out.flush();
  if (!out) {
    std::cerr << "error: failed writing " << args.str("out") << '\n';
    return 1;
  }
  std::cout << "Wrote " << args.str("out") << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// command registry

struct Command {
  const char* name;
  const char* summary;
  std::span<const util::ArgSpec> specs;
  int (*handler)(const util::ParsedArgs&);
};

const Command kCommands[] = {
    {"simulate", "generate a fault-injection measurement campaign as CSV",
     kSimulateArgs, cmd_simulate},
    {"train", "train the DIAGNET bundle from a campaign and save it",
     kTrainArgs, cmd_train},
    {"diagnose", "print the ranked root causes for one faulty sample",
     kDiagnoseArgs, cmd_diagnose},
    {"evaluate", "Recall@k of a model over every faulty campaign sample",
     kEvaluateArgs, cmd_evaluate},
    {"serve", "long-lived micro-batching diagnosis service (line JSON)",
     kServeArgs, cmd_serve},
    {"mkrequests", "turn campaign samples into serve request lines",
     kMkrequestsArgs, cmd_mkrequests},
    {"loadgen", "drive a live serve TCP endpoint and report tail latency",
     kLoadgenArgs, cmd_loadgen},
    {"selfcheck", "run the seeded property/differential/fuzz suites",
     kSelfcheckArgs, cmd_selfcheck},
};

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args = setup_telemetry(argc, argv);
  if (args.empty()) {
    std::cerr << "usage: diagnet <command> [--flag value ...]\n\ncommands:\n";
    for (const Command& command : kCommands) {
      std::string left = "  ";
      left += command.name;
      left.resize(14, ' ');
      std::cerr << left << command.summary << '\n';
    }
    std::cerr << "\ntelemetry (any command): [--trace file] [--metrics file]"
                 " [--telemetry]\nper-command flags: diagnet <command>"
                 " --help\n";
    return 2;
  }
  const std::string name = args[0];
  const Command* command = nullptr;
  for (const Command& candidate : kCommands)
    if (name == candidate.name) command = &candidate;
  if (command == nullptr) {
    std::cerr << "unknown command: " << name << '\n';
    return 2;
  }
  const auto parsed = util::parse_args(args, 1, command->specs);
  if (!parsed.ok()) {
    if (parsed.status().code() == util::StatusCode::kNotFound) {
      std::cout << util::help_text(command->name, command->summary,
                                   command->specs);
      return 0;
    }
    std::cerr << "error: " << parsed.status().message() << '\n';
    return 1;
  }
  try {
    return command->handler(parsed.value());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
