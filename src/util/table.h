// ASCII table rendering for bench/report output. Every bench binary prints
// the paper's rows and series through this helper so output stays uniform.
#pragma once

#include <string>
#include <vector>

namespace diagnet::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a pre-formatted row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  /// Render with column alignment and +-----+ rules.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with benches).
std::string fmt(double v, int precision = 3);

/// Render a [0,1] value as a crude bar chart cell, e.g. "0.74 ███████▌ ".
std::string bar(double v, int width = 20);

/// Section banner used by bench binaries.
std::string banner(const std::string& title);

}  // namespace diagnet::util
