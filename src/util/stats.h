// Small statistics helpers shared across the library: running moments,
// percentiles, and mean ± standard-error summaries used by the benches.
#pragma once

#include <cstddef>
#include <vector>

namespace diagnet::util {

/// Welford running mean/variance with min/max tracking. Numerically stable
/// for the long accumulations the simulator performs.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for n < 2.
  double stderr_mean() const;
  /// Smallest / largest value added so far; quiet NaN while empty (n = 0),
  /// so an empty accumulator can never masquerade as a real extremum.
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between closest ranks
/// (the "exclusive" convention used by numpy's default). `sorted` must be
/// ascending and non-empty; q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Convenience: copies, sorts, then interpolates.
double percentile(std::vector<double> values, double q);

/// Mean of a vector (0 for empty input).
double mean(const std::vector<double>& values);

/// Sample variance (n-1); 0 for fewer than two values.
double variance(const std::vector<double>& values);

}  // namespace diagnet::util
