#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/require.h"

namespace diagnet::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Seed the four xoshiro words from splitmix64 as recommended upstream.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix (seed, tag) through splitmix64 twice; avoids correlated streams for
  // adjacent tags.
  std::uint64_t sm = seed_ ^ (0x94d049bb133111ebULL * (tag + 1));
  const std::uint64_t derived = splitmix64(sm) ^ splitmix64(sm);
  return Rng(derived);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DIAGNET_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  DIAGNET_REQUIRE(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  // Box–Muller; u clamped away from 0 so log() is finite.
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  const double v = uniform();
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(2.0 * std::numbers::pi * v);
}

double Rng::normal(double mean, double stddev) {
  DIAGNET_REQUIRE(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  DIAGNET_REQUIRE(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::pareto(double xm, double alpha) {
  DIAGNET_REQUIRE(xm > 0.0 && alpha > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  DIAGNET_REQUIRE(k <= n);
  // Partial Fisher–Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace diagnet::util
