// Minimal little-endian binary (de)serialisation used by the model
// registry. Writers never fail silently; readers throw std::runtime_error
// on truncated or corrupt input so callers can surface a clean error for a
// damaged model file.
//
// BinaryReader is hardened against hostile length fields: on seekable
// streams it learns the remaining byte count up front and rejects any
// claimed string/array size that cannot fit in what is left, so a few
// flipped bits can never turn into a multi-gigabyte allocation. On
// non-seekable streams conservative absolute caps apply instead.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace diagnet::util {

/// FNV-1a 64-bit hash — stable across platforms; used for model-bundle
/// payload checksums (and by testkit to key property-suite sub-streams).
std::uint64_t fnv1a64(const void* data, std::size_t n);

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(&os) {}

  void write_u64(std::uint64_t value);
  void write_double(double value);
  void write_bool(bool value);
  void write_string(const std::string& value);
  void write_doubles(const std::vector<double>& values);
  void write_indices(const std::vector<std::size_t>& values);

 private:
  std::ostream* os_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is);

  std::uint64_t read_u64();
  double read_double();
  bool read_bool();
  std::string read_string();
  std::vector<double> read_doubles();
  std::vector<std::size_t> read_indices();

  /// Read a u64 and require it to equal `expected` (section tags).
  void expect_u64(std::uint64_t expected, const char* what);

  /// Bytes left in a seekable stream; kUnknownSize when not seekable.
  static constexpr std::uint64_t kUnknownSize = ~std::uint64_t{0};
  std::uint64_t remaining() const { return remaining_; }

 private:
  void raw(void* dst, std::size_t bytes);
  /// Throw unless a claimed payload of `bytes` can still fit in the input.
  void require_available(std::uint64_t bytes, const char* what) const;

  std::istream* is_;
  std::uint64_t remaining_ = kUnknownSize;
};

}  // namespace diagnet::util
