// Minimal little-endian binary (de)serialisation used by the model
// registry. Writers never fail silently; readers throw std::runtime_error
// on truncated or corrupt input so callers can surface a clean error for a
// damaged model file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace diagnet::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(&os) {}

  void write_u64(std::uint64_t value);
  void write_double(double value);
  void write_bool(bool value);
  void write_string(const std::string& value);
  void write_doubles(const std::vector<double>& values);
  void write_indices(const std::vector<std::size_t>& values);

 private:
  std::ostream* os_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(&is) {}

  std::uint64_t read_u64();
  double read_double();
  bool read_bool();
  std::string read_string();
  std::vector<double> read_doubles();
  std::vector<std::size_t> read_indices();

  /// Read a u64 and require it to equal `expected` (section tags).
  void expect_u64(std::uint64_t expected, const char* what);

 private:
  void raw(void* dst, std::size_t bytes);
  std::istream* is_;
};

}  // namespace diagnet::util
