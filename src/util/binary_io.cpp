#include "util/binary_io.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace diagnet::util {

namespace {
// Absolute caps used when the stream is not seekable and the remaining
// byte count is unknown. Far above any legitimate DIAGNET payload yet far
// below anything that could exhaust memory through one corrupt field.
constexpr std::uint64_t kMaxStringBytes = 1ULL << 30;   // 1 GiB
constexpr std::uint64_t kMaxArrayElems = 1ULL << 28;    // 256M elements
}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void BinaryWriter::write_u64(std::uint64_t value) {
  os_->write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void BinaryWriter::write_double(double value) {
  os_->write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void BinaryWriter::write_bool(bool value) { write_u64(value ? 1 : 0); }

void BinaryWriter::write_string(const std::string& value) {
  write_u64(value.size());
  os_->write(value.data(), static_cast<std::streamsize>(value.size()));
}

void BinaryWriter::write_doubles(const std::vector<double>& values) {
  write_u64(values.size());
  os_->write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(values.size() * sizeof(double)));
}

void BinaryWriter::write_indices(const std::vector<std::size_t>& values) {
  write_u64(values.size());
  for (std::size_t v : values) write_u64(v);
}

BinaryReader::BinaryReader(std::istream& is) : is_(&is) {
  // Probe the remaining byte count so corrupt length fields can be
  // rejected before any allocation. Pipes and other non-seekable streams
  // simply stay unbounded (remaining_ == kUnknownSize).
  const std::istream::pos_type pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) {
    is.clear();
    return;
  }
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(pos);
  if (end != std::istream::pos_type(-1) && end >= pos)
    remaining_ = static_cast<std::uint64_t>(end - pos);
  is.clear();
}

void BinaryReader::require_available(std::uint64_t bytes,
                                     const char* what) const {
  if (remaining_ != kUnknownSize && bytes > remaining_)
    throw std::runtime_error(
        std::string("binary read: claimed length exceeds input for ") + what);
}

void BinaryReader::raw(void* dst, std::size_t bytes) {
  if (remaining_ != kUnknownSize) {
    if (bytes > remaining_)
      throw std::runtime_error("binary read: truncated input");
    remaining_ -= bytes;
  }
  is_->read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
  if (!*is_) throw std::runtime_error("binary read: truncated input");
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t value = 0;
  raw(&value, sizeof(value));
  return value;
}

double BinaryReader::read_double() {
  double value = 0.0;
  raw(&value, sizeof(value));
  return value;
}

bool BinaryReader::read_bool() { return read_u64() != 0; }

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (size > kMaxStringBytes)
    throw std::runtime_error("binary read: implausible string length");
  require_available(size, "string");
  std::string value(size, '\0');
  if (size > 0) raw(value.data(), size);
  return value;
}

std::vector<double> BinaryReader::read_doubles() {
  const std::uint64_t size = read_u64();
  if (size > kMaxArrayElems)
    throw std::runtime_error("binary read: implausible array length");
  require_available(size * sizeof(double), "double array");
  std::vector<double> values(size);
  if (size > 0) raw(values.data(), size * sizeof(double));
  return values;
}

std::vector<std::size_t> BinaryReader::read_indices() {
  const std::uint64_t size = read_u64();
  if (size > kMaxArrayElems)
    throw std::runtime_error("binary read: implausible array length");
  require_available(size * sizeof(std::uint64_t), "index array");
  std::vector<std::size_t> values(size);
  for (auto& v : values) v = static_cast<std::size_t>(read_u64());
  return values;
}

void BinaryReader::expect_u64(std::uint64_t expected, const char* what) {
  const std::uint64_t got = read_u64();
  if (got != expected)
    throw std::runtime_error(std::string("binary read: bad section tag for ") +
                             what);
}

}  // namespace diagnet::util
