#include "util/binary_io.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace diagnet::util {

void BinaryWriter::write_u64(std::uint64_t value) {
  os_->write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void BinaryWriter::write_double(double value) {
  os_->write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void BinaryWriter::write_bool(bool value) { write_u64(value ? 1 : 0); }

void BinaryWriter::write_string(const std::string& value) {
  write_u64(value.size());
  os_->write(value.data(), static_cast<std::streamsize>(value.size()));
}

void BinaryWriter::write_doubles(const std::vector<double>& values) {
  write_u64(values.size());
  os_->write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(values.size() * sizeof(double)));
}

void BinaryWriter::write_indices(const std::vector<std::size_t>& values) {
  write_u64(values.size());
  for (std::size_t v : values) write_u64(v);
}

void BinaryReader::raw(void* dst, std::size_t bytes) {
  is_->read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
  if (!*is_) throw std::runtime_error("binary read: truncated input");
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t value = 0;
  raw(&value, sizeof(value));
  return value;
}

double BinaryReader::read_double() {
  double value = 0.0;
  raw(&value, sizeof(value));
  return value;
}

bool BinaryReader::read_bool() { return read_u64() != 0; }

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (size > (1ULL << 30))
    throw std::runtime_error("binary read: implausible string length");
  std::string value(size, '\0');
  if (size > 0) raw(value.data(), size);
  return value;
}

std::vector<double> BinaryReader::read_doubles() {
  const std::uint64_t size = read_u64();
  if (size > (1ULL << 32))
    throw std::runtime_error("binary read: implausible array length");
  std::vector<double> values(size);
  if (size > 0) raw(values.data(), size * sizeof(double));
  return values;
}

std::vector<std::size_t> BinaryReader::read_indices() {
  const std::uint64_t size = read_u64();
  if (size > (1ULL << 32))
    throw std::runtime_error("binary read: implausible array length");
  std::vector<std::size_t> values(size);
  for (auto& v : values) v = static_cast<std::size_t>(read_u64());
  return values;
}

void BinaryReader::expect_u64(std::uint64_t expected, const char* what) {
  const std::uint64_t got = read_u64();
  if (got != expected)
    throw std::runtime_error(std::string("binary read: bad section tag for ") +
                             what);
}

}  // namespace diagnet::util
