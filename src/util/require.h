// Contract checking. DIAGNET_REQUIRE guards programming errors (bad
// arguments, broken invariants); it throws std::logic_error so unit tests
// can observe violations, and is kept in release builds because every use
// sits far from any hot inner loop.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace diagnet::util {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace diagnet::util

#define DIAGNET_REQUIRE(expr)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::diagnet::util::require_failed(#expr, __FILE__, __LINE__, {});      \
  } while (0)

#define DIAGNET_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                     \
    if (!(expr))                                                           \
      ::diagnet::util::require_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
