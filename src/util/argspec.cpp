#include "util/argspec.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/require.h"

namespace diagnet::util {

namespace {

const ArgSpec* find_spec(std::span<const ArgSpec> specs,
                         const std::string& name) {
  for (const ArgSpec& s : specs)
    if (name == s.name) return &s;
  return nullptr;
}

Status check_typed(const ArgSpec& spec, const std::string& value) {
  switch (spec.type) {
    case ArgType::kString:
    case ArgType::kFlag:
      return {};
    case ArgType::kUint: {
      if (value.empty() ||
          !std::all_of(value.begin(), value.end(),
                       [](unsigned char c) { return std::isdigit(c); }))
        return Status::invalid_argument("--" + std::string(spec.name) +
                                        " expects a non-negative integer, got '" +
                                        value + "'");
      errno = 0;
      std::strtoull(value.c_str(), nullptr, 10);
      if (errno == ERANGE)
        return Status::invalid_argument("--" + std::string(spec.name) +
                                        " value out of range: '" + value + "'");
      return {};
    }
    case ArgType::kDouble: {
      char* end = nullptr;
      errno = 0;
      std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() ||
          errno == ERANGE)
        return Status::invalid_argument("--" + std::string(spec.name) +
                                        " expects a number, got '" + value +
                                        "'");
      return {};
    }
  }
  return Status::internal("unhandled ArgType");
}

const char* type_name(ArgType type) {
  switch (type) {
    case ArgType::kString: return "string";
    case ArgType::kUint: return "uint";
    case ArgType::kDouble: return "number";
    case ArgType::kFlag: return "";
  }
  return "";
}

}  // namespace

const ArgSpec& ParsedArgs::spec(const std::string& name) const {
  const ArgSpec* s = find_spec(specs_, name);
  DIAGNET_REQUIRE_MSG(s != nullptr, "flag not in this command's ArgSpec table: " + name);
  return *s;
}

const std::string& ParsedArgs::str(const std::string& name) const {
  DIAGNET_REQUIRE(spec(name).type == ArgType::kString);
  return values_.at(name);
}

std::uint64_t ParsedArgs::uint(const std::string& name) const {
  DIAGNET_REQUIRE(spec(name).type == ArgType::kUint);
  return std::strtoull(values_.at(name).c_str(), nullptr, 10);
}

double ParsedArgs::num(const std::string& name) const {
  DIAGNET_REQUIRE(spec(name).type == ArgType::kDouble);
  return std::strtod(values_.at(name).c_str(), nullptr);
}

bool ParsedArgs::flag(const std::string& name) const {
  DIAGNET_REQUIRE(spec(name).type == ArgType::kFlag);
  return values_.at(name) == "1";
}

bool ParsedArgs::given(const std::string& name) const {
  spec(name);  // validate the name
  const auto it = given_.find(name);
  return it != given_.end() && it->second;
}

StatusOr<ParsedArgs> parse_args(const std::vector<std::string>& args,
                                std::size_t first,
                                std::span<const ArgSpec> specs) {
  ParsedArgs parsed;
  parsed.specs_ = specs;
  for (const ArgSpec& s : specs)
    parsed.values_[s.name] = s.type == ArgType::kFlag ? "0" : s.def;

  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& word = args[i];
    if (word == "--help" || word == "-h")
      return Status::not_found("help");  // caller prints help_text()
    if (word.rfind("--", 0) != 0)
      return Status::invalid_argument("expected --flag value, got: " + word);
    const std::string name = word.substr(2);
    const ArgSpec* spec = find_spec(specs, name);
    if (spec == nullptr)
      return Status::invalid_argument("unknown flag " + word +
                                      " (try --help)");
    if (spec->type == ArgType::kFlag) {
      parsed.values_[name] = "1";
      parsed.given_[name] = true;
      continue;
    }
    if (i + 1 >= args.size())
      return Status::invalid_argument("missing value for " + word);
    const std::string& value = args[++i];
    if (Status s = check_typed(*spec, value); !s.ok()) return s;
    parsed.values_[name] = value;
    parsed.given_[name] = true;
  }
  return parsed;
}

std::string help_text(const std::string& command, const std::string& summary,
                      std::span<const ArgSpec> specs) {
  std::string out = "usage: diagnet " + command;
  for (const ArgSpec& s : specs) {
    out += " [--";
    out += s.name;
    if (s.type != ArgType::kFlag) {
      out += " <";
      out += type_name(s.type);
      out += ">";
    }
    out += "]";
  }
  out += "\n  " + summary + "\n\nflags:\n";
  std::size_t width = 0;
  for (const ArgSpec& s : specs)
    width = std::max(width, std::string(s.name).size());
  for (const ArgSpec& s : specs) {
    std::string left = "  --" + std::string(s.name);
    left.resize(width + 6, ' ');
    out += left;
    out += s.help;
    if (s.type != ArgType::kFlag && *s.def != '\0') {
      out += " (default ";
      out += s.def;
      out += ")";
    }
    out += '\n';
  }
  out +=
      "\ntelemetry (any command): [--trace <file>] [--metrics <file>] "
      "[--telemetry]\n";
  return out;
}

}  // namespace diagnet::util
