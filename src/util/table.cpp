#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/require.h"

namespace diagnet::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DIAGNET_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  DIAGNET_REQUIRE_MSG(row.size() == header_.size(),
                      "row width must match header");
  rows_.push_back(std::move(row));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string bar(double v, int width) {
  v = std::clamp(v, 0.0, 1.0);
  const int filled = static_cast<int>(v * width + 0.5);
  std::string out = fmt(v, 2) + ' ';
  for (int i = 0; i < width; ++i) out += (i < filled) ? '#' : '.';
  return out;
}

std::string banner(const std::string& title) {
  const std::string rule(std::max<std::size_t>(title.size() + 4, 60), '=');
  return rule + "\n  " + title + "\n" + rule + "\n";
}

}  // namespace diagnet::util
