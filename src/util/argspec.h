// Declarative command-line flag tables. Each CLI subcommand registers one
// ArgSpec table (typed flags with defaults and help text); parsing then
// validates types, rejects unknown flags outright, and renders a uniform
// auto-generated `--help` — replacing the per-subcommand ad-hoc
// string-map parsing the front end grew organically.
//
//   constexpr, at file scope:
//     const util::ArgSpec kTrainArgs[] = {
//       {"campaign", util::ArgType::kString, "campaign.csv", "input CSV"},
//       {"seed",     util::ArgType::kUint,   "42",           "RNG seed"},
//     };
//   in the handler:
//     auto parsed = util::parse_args(args, 1, kTrainArgs);  // StatusOr
//     parsed->str("campaign"); parsed->uint("seed");
//
// Errors come back as util::Status (invalid_argument) so every front end
// prints them identically; `--help` anywhere in the argument list short-
// circuits with code kNotFound and the generated help text as the message.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace diagnet::util {

enum class ArgType {
  kString,
  kUint,    // parsed as std::uint64_t, rejects signs and trailing junk
  kDouble,  // parsed as double, rejects trailing junk
  kFlag,    // boolean switch, takes no value
};

struct ArgSpec {
  const char* name;       // flag name without the leading "--"
  ArgType type = ArgType::kString;
  const char* def = "";   // printable default (ignored for kFlag: false)
  const char* help = "";
};

/// Result of a successful parse: every flag in the table is present (at its
/// default when not given on the command line) and type-checked.
class ParsedArgs {
 public:
  const std::string& str(const std::string& name) const;
  std::uint64_t uint(const std::string& name) const;
  double num(const std::string& name) const;
  bool flag(const std::string& name) const;
  /// Whether the flag was given explicitly (vs. left at its default).
  bool given(const std::string& name) const;

 private:
  friend StatusOr<ParsedArgs> parse_args(const std::vector<std::string>&,
                                         std::size_t,
                                         std::span<const ArgSpec>);
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> given_;
  std::span<const ArgSpec> specs_;
  const ArgSpec& spec(const std::string& name) const;
};

/// Parse args[first..] against the table. Unknown flags, missing values,
/// type mismatches and bare positional words are hard errors
/// (invalid_argument, message matches the historic "missing value for
/// --x" / "expected --flag value" texts). A `--help` anywhere returns
/// Status{kNotFound, help_text(...)} so callers can print-and-exit-0.
StatusOr<ParsedArgs> parse_args(const std::vector<std::string>& args,
                                std::size_t first,
                                std::span<const ArgSpec> specs);

/// The auto-generated per-subcommand help text.
std::string help_text(const std::string& command,
                      const std::string& summary,
                      std::span<const ArgSpec> specs);

}  // namespace diagnet::util
