#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace diagnet::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads == 1) return;  // inline execution, no workers
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = size();
  if (workers == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // ~4 chunks per worker balances load without excessive queue traffic.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  // Completion state is shared-owned by every chunk task: the last finisher
  // may still be notifying after the caller has observed remaining == 0 and
  // returned, so it must not live on the caller's stack.
  struct Sync {
    std::atomic<std::size_t> remaining;
    std::mutex mu;
    std::condition_variable cv;
  };
  // Count chunks up front so `remaining` is final before any task can run.
  const std::size_t issued = (n + chunk_size - 1) / chunk_size;
  auto sync = std::make_shared<Sync>();
  sync->remaining.store(issued, std::memory_order_relaxed);

  {
    std::lock_guard lock(mu_);
    for (std::size_t begin = 0; begin < n; begin += chunk_size) {
      const std::size_t end = std::min(n, begin + chunk_size);
      // fn is captured by reference: it outlives the task because this call
      // only returns once every chunk has finished running it.
      tasks_.emplace([sync, &fn, begin, end] {
        for (std::size_t i = begin; i < end; ++i) fn(i);
        if (sync->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard dl(sync->mu);
          sync->cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // Re-entrancy contract: the calling thread HELPS drain the queue instead
  // of blocking outright. A nested parallel_for issued from a worker thread
  // used to enqueue its chunks and then sleep in done_cv.wait — with every
  // worker doing the same, nobody was left to run the queued chunks and the
  // pool deadlocked. Helping guarantees global progress: any thread that
  // still waits on its own chunks either executes a queued task (possibly
  // another call's — that is fine, tasks never block on locks the caller
  // holds) or sleeps only once the queue is empty, i.e. once every
  // outstanding chunk of this call is already running on some other thread.
  while (sync->remaining.load(std::memory_order_acquire) != 0) {
    std::function<void()> task;
    {
      std::lock_guard lock(mu_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      }
    }
    if (task) {
      task();
      continue;
    }
    std::unique_lock lock(sync->mu);
    sync->cv.wait(lock, [&] {
      return sync->remaining.load(std::memory_order_acquire) == 0;
    });
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace diagnet::util
