#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace diagnet::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads == 1) return;  // inline execution, no workers
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = size();
  if (workers == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // ~4 chunks per worker balances load without excessive queue traffic.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  // Count chunks up front so `remaining` is final before any task can run.
  const std::size_t issued = (n + chunk_size - 1) / chunk_size;
  std::atomic<std::size_t> remaining{issued};
  std::mutex done_mu;
  std::condition_variable done_cv;

  {
    std::lock_guard lock(mu_);
    for (std::size_t begin = 0; begin < n; begin += chunk_size) {
      const std::size_t end = std::min(n, begin + chunk_size);
      tasks_.emplace([&, begin, end] {
        for (std::size_t i = begin; i < end; ++i) fn(i);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard dl(done_mu);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace diagnet::util
