// Work-sharing thread pool and a deterministic parallel_for.
//
// Determinism contract: parallel_for(n, fn) calls fn(i) exactly once for
// each i in [0, n); fn must derive any randomness from i (e.g. via
// Rng::fork(i)), never from thread identity, so results do not depend on
// the number of workers. On a single-core host the pool degrades to serial
// execution with no thread creation.
//
// Re-entrancy contract: parallel_for may be called from inside a task that
// is itself running on this pool (nested data parallelism, e.g. a batched
// diagnosis that fans out over batches whose work items parallelise again).
// The calling thread never parks while queued work exists — it helps drain
// the task queue until its own chunks have completed — so nested calls
// execute instead of deadlocking the pool, at any nesting depth.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace diagnet::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency(); a pool of size 1 runs
  /// everything inline on the caller thread (no worker is spawned).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Run fn(i) for all i in [0, n); returns once every call has returned.
  /// Work is split into contiguous chunks to keep cache locality. Safe to
  /// call from inside a task running on this pool (see re-entrancy contract
  /// above); the caller participates in draining the queue.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace diagnet::util
