// Error handling without exceptions: a Status carries an error code plus a
// human-readable message, and StatusOr<T> is "a T or the Status explaining
// why there is none".
//
// The codebase historically mixed three error styles — bool returns,
// std::runtime_error throws, and DIAGNET_REQUIRE logic errors. Recoverable
// I/O and request-validation failures now flow through Status so every
// front end renders them the same way: the CLI prints
// `error: <status.message()>`, and the serving subsystem (src/serve) maps
// the code onto a `Rejected`/error wire response. DIAGNET_REQUIRE stays
// reserved for programming errors (broken invariants), which remain
// exceptions on purpose.
#pragma once

#include <string>
#include <utility>

#include "util/require.h"

namespace diagnet::util {

/// Canonical error space (a pragmatic subset of the gRPC/absl codes —
/// exactly the ones a file-based trainer plus an online server need).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed malformed input (bad CSV row, bad JSON)
  kNotFound,           // a named thing does not exist (file, suite, sample)
  kDataLoss,           // stored bytes are corrupt (checksum, truncation)
  kFailedPrecondition, // operation needs state the object is not in
  kResourceExhausted,  // admission control: queue full, budget spent
  kDeadlineExceeded,   // the request's deadline passed before completion
  kUnavailable,        // the service is stopping / not accepting work
  kInternal,           // invariant failure surfaced as a recoverable error
};

/// Stable lower-snake-case name ("invalid_argument") used in wire responses
/// and log lines.
const char* status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status data_loss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "data_loss: checksum mismatch" (or "ok").
  std::string to_string() const;

  /// Bridge to the legacy throwing call sites: no-op when OK, otherwise
  /// throws std::runtime_error carrying message() (codes that were
  /// historically thrown as runtime_error keep their exact what() text).
  void throw_if_error() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T, or the Status explaining its absence. Accessing
/// value() on a non-OK StatusOr is a programming error (DIAGNET_REQUIRE).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    DIAGNET_REQUIRE_MSG(!status_.ok(),
                        "StatusOr constructed from an OK status with no value");
  }
  StatusOr(T value)  // NOLINT(implicit)
      : has_value_(true), value_(std::move(value)) {}

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    DIAGNET_REQUIRE_MSG(has_value_, status_.to_string());
    return value_;
  }
  T& value() & {
    DIAGNET_REQUIRE_MSG(has_value_, status_.to_string());
    return value_;
  }
  T&& value() && {
    DIAGNET_REQUIRE_MSG(has_value_, status_.to_string());
    return std::move(value_);
  }

  /// Legacy bridge: return the value or throw the status as runtime_error.
  T&& value_or_throw() && {
    status_.throw_if_error();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  bool has_value_ = false;
  T value_{};
};

}  // namespace diagnet::util
