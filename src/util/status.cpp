#include "util/status.h"

#include <stdexcept>

namespace diagnet::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kDataLoss: return "data_loss";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::throw_if_error() const {
  if (!ok()) throw std::runtime_error(message_);
}

}  // namespace diagnet::util
