#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.h"

namespace diagnet::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}
double RunningStats::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  DIAGNET_REQUIRE(!sorted.empty());
  DIAGNET_REQUIRE(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return s / static_cast<double>(values.size() - 1);
}

}  // namespace diagnet::util
