// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library takes an explicit 64-bit seed
// and derives independent sub-streams with Rng::fork(tag). Sub-streams are
// keyed by (seed, tag) only — never by call order or thread id — so results
// are bit-identical regardless of how work is scheduled across threads.
#pragma once

#include <cstdint>
#include <vector>

namespace diagnet::util {

/// splitmix64: used to scramble seeds and derive sub-stream keys.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG (Blackman & Vigna). Small, fast and statistically
/// strong; a single instance is NOT thread-safe — fork() one per task.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent generator keyed by (this seed, tag).
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box–Muller (no cached spare: keeps fork semantics
  /// trivial).
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with given rate (> 0).
  double exponential(double rate);
  /// log-normal with given location/scale of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Pareto (heavy-tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
      std::swap(v[i], v[j]);
    }
  }

  /// k distinct indices drawn from [0, n), in random order. k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained so fork() is independent of stream position
};

}  // namespace diagnet::util
