// Explicit AVX2+FMA microkernels, compiled with per-function target
// attributes so the translation unit itself builds at the baseline ISA —
// the binary only executes these after dispatch.cpp has verified the CPU
// reports avx2+fma.
//
// Rounding-order contract (see kernels.h): axpy4 is a chain of four FMAs
// rooted at c[j], which is bit-identical to calling axpy1 four times — so
// on this tier the fused GEMM groups and any sequential fallback agree
// exactly. Horizontal reductions fix one lane-combination order:
// (lo128 + hi128), then lane0 + lane1.
#include "tensor/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

#define DIAGNET_AVX2 __attribute__((target("avx2,fma")))

namespace diagnet::tensor::detail {

namespace {

DIAGNET_AVX2 inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

DIAGNET_AVX2 inline double hmax(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_max_pd(lo, hi);
  return std::max(_mm_cvtsd_f64(s), _mm_cvtsd_f64(_mm_unpackhi_pd(s, s)));
}

DIAGNET_AVX2 void avx2_axpy4(double* c, const double* b0, const double* b1,
                             const double* b2, const double* b3, double a0,
                             double a1, double a2, double a3,
                             std::size_t n) {
  const __m256d va0 = _mm256_set1_pd(a0), va1 = _mm256_set1_pd(a1);
  const __m256d va2 = _mm256_set1_pd(a2), va3 = _mm256_set1_pd(a3);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d acc = _mm256_loadu_pd(c + j);
    acc = _mm256_fmadd_pd(va0, _mm256_loadu_pd(b0 + j), acc);
    acc = _mm256_fmadd_pd(va1, _mm256_loadu_pd(b1 + j), acc);
    acc = _mm256_fmadd_pd(va2, _mm256_loadu_pd(b2 + j), acc);
    acc = _mm256_fmadd_pd(va3, _mm256_loadu_pd(b3 + j), acc);
    _mm256_storeu_pd(c + j, acc);
  }
  for (; j < n; ++j) {
    // Same FMA chain as the vector body, one lane at a time.
    double acc = c[j];
    acc = std::fma(a0, b0[j], acc);
    acc = std::fma(a1, b1[j], acc);
    acc = std::fma(a2, b2[j], acc);
    acc = std::fma(a3, b3[j], acc);
    c[j] = acc;
  }
}

DIAGNET_AVX2 void avx2_axpy1(double* c, const double* b, double alpha,
                             std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    _mm256_storeu_pd(
        c + j,
        _mm256_fmadd_pd(va, _mm256_loadu_pd(b + j), _mm256_loadu_pd(c + j)));
  for (; j < n; ++j) c[j] = std::fma(alpha, b[j], c[j]);
}

/// Single-row product in the exact fused-group structure of the tiled
/// GEMM row loop (groups of four ascending k via axpy4, remainder via
/// axpy1) — streaming B in memory order keeps the prefetcher happy, and
/// bit-equality with the batch path is by construction. (A register-
/// blocked column variant was measured slower here: its 4 KiB row stride
/// per k step defeats prefetch on the 1.3 MB weight panels.)
DIAGNET_AVX2 void avx2_gemv(double* c, const double* a, const double* b,
                            std::size_t k, std::size_t n, std::size_t ldb) {
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4)
    avx2_axpy4(c, b + kk * ldb, b + (kk + 1) * ldb, b + (kk + 2) * ldb,
               b + (kk + 3) * ldb, a[kk], a[kk + 1], a[kk + 2], a[kk + 3],
               n);
  for (; kk < k; ++kk) avx2_axpy1(c, b + kk * ldb, a[kk], n);
}

/// Four independent accumulators for ILP; the lane-combination order
/// ((acc0+acc1)+(acc2+acc3), then hsum) is fixed, so the same input always
/// reduces the same way on this tier.
DIAGNET_AVX2 double avx2_dot(const double* a, const double* b,
                             std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 4),
                           _mm256_loadu_pd(b + j + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 8),
                           _mm256_loadu_pd(b + j + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 12),
                           _mm256_loadu_pd(b + j + 12), acc3);
  }
  for (; j + 4 <= n; j += 4)
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j),
                           acc0);
  double s = hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                _mm256_add_pd(acc2, acc3)));
  for (; j < n; ++j) s = std::fma(a[j], b[j], s);
  return s;
}

/// Below this span the vector reductions lose to a plain loop: the
/// broadcast/horizontal-combine overhead is fixed while the work shrinks.
/// LandPooling reduces over the available landmarks (~10), so its single-
/// sample path lives entirely under this threshold — measured, the vector
/// body made pooling *slower* than the scalar tier there. The short path
/// runs the identical sequential order the scalar tier uses, so the
/// choice is still a pure function of n (deterministic per tier).
constexpr std::size_t kSmallReduce = 16;

DIAGNET_AVX2 double avx2_reduce_sum(const double* v, std::size_t n) {
  if (n < kSmallReduce) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += v[j];
    return s;
  }
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + j));
  double s = hsum(acc);
  for (; j < n; ++j) s += v[j];
  return s;
}

DIAGNET_AVX2 double avx2_reduce_sq_dev(const double* v, std::size_t n,
                                       double mean) {
  if (n < kSmallReduce) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = v[j] - mean;
      s += d * d;
    }
    return s;
  }
  const __m256d vm = _mm256_set1_pd(mean);
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(v + j), vm);
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  double s = hsum(acc);
  for (; j < n; ++j) {
    const double d = v[j] - mean;
    s = std::fma(d, d, s);
  }
  return s;
}

DIAGNET_AVX2 double avx2_reduce_max(const double* v, std::size_t n) {
  double m = -std::numeric_limits<double>::infinity();
  if (n < kSmallReduce) {
    for (std::size_t j = 0; j < n; ++j) m = std::max(m, v[j]);
    return m;
  }
  __m256d acc = _mm256_set1_pd(m);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(v + j));
  m = hmax(acc);
  for (; j < n; ++j) m = std::max(m, v[j]);
  return m;
}

DIAGNET_AVX2 double avx2_reduce_absmax(const double* v, std::size_t n) {
  if (n < kSmallReduce) {
    double m = 0.0;
    for (std::size_t j = 0; j < n; ++j) m = std::max(m, std::fabs(v[j]));
    return m;
  }
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    acc = _mm256_max_pd(acc,
                        _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(v + j)));
  double m = hmax(acc);
  for (; j < n; ++j) m = std::max(m, std::fabs(v[j]));
  return std::max(m, 0.0);
}

DIAGNET_AVX2 void avx2_scale_div(double* v, double denom, std::size_t n) {
  const __m256d vd = _mm256_set1_pd(denom);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    _mm256_storeu_pd(v + j, _mm256_div_pd(_mm256_loadu_pd(v + j), vd));
  for (; j < n; ++j) v[j] /= denom;
}

/// Output-blocked int8 GEMV: eight int32 accumulators stay in a register
/// across the whole input dimension. Products fit int32 comfortably
/// (|q| <= 127, in <= a few thousand => |acc| <= 127*127*in < 2^31).
DIAGNET_AVX2 void avx2_qgemv(const std::int8_t* qx, const std::int8_t* w,
                             std::size_t in, std::size_t out,
                             std::int32_t* acc) {
  std::size_t j0 = 0;
  for (; j0 + 8 <= out; j0 += 8) {
    __m256i vacc = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + j0));
    for (std::size_t i = 0; i < in; ++i) {
      const std::int32_t xi = qx[i];
      if (xi == 0) continue;
      const __m128i w8 = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(w + i * out + j0));
      const __m256i w32 = _mm256_cvtepi8_epi32(w8);
      vacc = _mm256_add_epi32(
          vacc, _mm256_mullo_epi32(w32, _mm256_set1_epi32(xi)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j0), vacc);
  }
  for (; j0 < out; ++j0) {
    std::int32_t s = acc[j0];
    for (std::size_t i = 0; i < in; ++i)
      s += static_cast<std::int32_t>(qx[i]) * w[i * out + j0];
    acc[j0] = s;
  }
}

}  // namespace

const Kernels* avx2_kernels() {
  static const Kernels table = {
      "avx2",          avx2_axpy4,      avx2_axpy1,
      avx2_gemv,       avx2_dot,        avx2_reduce_sum,
      avx2_reduce_sq_dev, avx2_reduce_max, avx2_reduce_absmax,
      avx2_scale_div,  kernel_quantize_row, avx2_qgemv,
  };
  return &table;
}

}  // namespace diagnet::tensor::detail

#else  // non-x86 (or unsupported compiler): no AVX2 tier in this binary.

namespace diagnet::tensor::detail {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace diagnet::tensor::detail

#endif
