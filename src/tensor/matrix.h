// Dense row-major matrix of doubles — the numeric workhorse of the library.
// Deliberately minimal: the neural network layers and classic-ML models only
// need 2-D storage, GEMM variants, and elementwise arithmetic.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace diagnet::tensor {

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols);
  /// rows x cols filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);
  /// From nested initializer list (for tests/fixtures). All rows must have
  /// equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix zeros(std::size_t rows, std::size_t cols);
  /// Row vector wrapping `v` (1 x v.size()).
  static Matrix row(const std::vector<double>& v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  /// Reshape to rows x cols, reusing the existing heap block whenever its
  /// capacity suffices (the steady-state case for training workspaces).
  /// Element contents are unspecified afterwards — callers that need zeros
  /// must fill(0.0) or use resize_zero(). Never shrinks capacity.
  void resize(std::size_t rows, std::size_t cols);
  /// resize() + fill(0.0): a zeroed rows x cols matrix without reallocating
  /// when capacity allows.
  void resize_zero(std::size_t rows, std::size_t cols);
  /// Capacity-aware copy: same result as operator=, but reuses this
  /// matrix's storage instead of allocating when it is already big enough.
  void assign(const Matrix& other);

  /// Set every element to `value`.
  void fill(double value);
  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Copy of row r as a std::vector.
  std::vector<double> row_copy(std::size_t r) const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace diagnet::tensor
