// Runtime kernel dispatch: the tensor library ships two implementations of
// its inner microkernels — a portable scalar/auto-vectorized tier and an
// explicit AVX2+FMA tier — and picks one at process start by probing the
// CPU, so a single release binary runs everywhere and still uses the wide
// units where they exist (no -march dependence in release builds).
//
// Selection order:
//   1. DIAGNET_KERNEL=scalar|avx2|auto (env). "avx2" on an unsupported CPU
//      warns once on stderr and falls back to scalar rather than faulting.
//   2. auto (default): avx2 when the CPU reports both AVX2 and FMA,
//      otherwise scalar.
//
// Numerics policy: within one tier, every reduction order is fixed by the
// kernel structure (ascending k, groups of four, fixed remainder), so the
// batch-vs-single and thread-count bit-exactness contracts hold on either
// tier. *Across* tiers results agree only to testkit oracle tolerance —
// FMA changes rounding — which is why the tier is recorded in bench
// metadata and /statsz.
#pragma once

#include <string>

namespace diagnet::tensor {

enum class KernelTier { kScalar = 0, kAvx2 = 1 };

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool neon = false;
};

/// What the CPU we are running on actually supports (probed once).
const CpuFeatures& cpu_features();

/// Comma-joined feature list for reports, e.g. "avx2,fma" or "none".
std::string cpu_features_string();

/// The tier the dispatched kernels currently run on.
KernelTier active_kernel_tier();

const char* kernel_tier_name(KernelTier tier);

/// Short name of the active tier ("scalar" | "avx2").
const char* active_kernel_tier_name();

/// True when `tier` can run on this CPU (scalar always can).
bool kernel_tier_supported(KernelTier tier);

/// Force a specific tier (tests and per-tier benchmarks). Returns false —
/// and changes nothing — when the CPU cannot run that tier. Not intended
/// to race against in-flight kernels: call it between workloads.
bool force_kernel_tier(KernelTier tier);

/// Undo force_kernel_tier(): re-resolve from DIAGNET_KERNEL / auto.
void reset_kernel_tier();

}  // namespace diagnet::tensor
