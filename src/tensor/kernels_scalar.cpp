// Portable microkernel tier: the exact loop shapes the tensor ops used
// before runtime dispatch existed, factored behind the Kernels table. With
// OpenMP these auto-vectorize to whatever the *baseline* target ISA offers
// (SSE2 on x86-64 unless DIAGNET_NATIVE is re-enabled); correctness never
// depends on that, only throughput.
#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels.h"

namespace diagnet::tensor::detail {

namespace {

void scalar_axpy4(double* c, const double* b0, const double* b1,
                  const double* b2, const double* b3, double a0, double a1,
                  double a2, double a3, std::size_t n) {
#pragma omp simd
  for (std::size_t j = 0; j < n; ++j)
    c[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
}

void scalar_axpy1(double* c, const double* b, double alpha, std::size_t n) {
#pragma omp simd
  for (std::size_t j = 0; j < n; ++j) c[j] += alpha * b[j];
}

// Same fused-group structure as the tiled GEMM row loop (groups of four
// ascending k, remainder one at a time), so scalar gemv == scalar gemm on
// a 1-row operand bit-for-bit whatever the compiler does to either loop.
void scalar_gemv(double* c, const double* a, const double* b, std::size_t k,
                 std::size_t n, std::size_t ldb) {
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4)
    scalar_axpy4(c, b + kk * ldb, b + (kk + 1) * ldb, b + (kk + 2) * ldb,
                 b + (kk + 3) * ldb, a[kk], a[kk + 1], a[kk + 2], a[kk + 3],
                 n);
  for (; kk < k; ++kk) scalar_axpy1(c, b + kk * ldb, a[kk], n);
}

double scalar_dot(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
#pragma omp simd reduction(+ : s)
  for (std::size_t j = 0; j < n; ++j) s += a[j] * b[j];
  return s;
}

double scalar_reduce_sum(const double* v, std::size_t n) {
  double s = 0.0;
#pragma omp simd reduction(+ : s)
  for (std::size_t j = 0; j < n; ++j) s += v[j];
  return s;
}

double scalar_reduce_sq_dev(const double* v, std::size_t n, double mean) {
  double s = 0.0;
#pragma omp simd reduction(+ : s)
  for (std::size_t j = 0; j < n; ++j) {
    const double d = v[j] - mean;
    s += d * d;
  }
  return s;
}

double scalar_reduce_max(const double* v, std::size_t n) {
  double m = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < n; ++j) m = std::max(m, v[j]);
  return m;
}

double scalar_reduce_absmax(const double* v, std::size_t n) {
  double m = 0.0;
  for (std::size_t j = 0; j < n; ++j) m = std::max(m, std::fabs(v[j]));
  return m;
}

void scalar_scale_div(double* v, double denom, std::size_t n) {
#pragma omp simd
  for (std::size_t j = 0; j < n; ++j) v[j] /= denom;
}

}  // namespace

// Shared by both tiers: round-to-nearest-even (the IEEE default mode that
// both std::lrint and AVX2's vroundpd use), clamped to the symmetric int8
// range so -128 never appears and negation stays safe.
void kernel_quantize_row(const double* x, double inv_scale, std::int8_t* q,
                         std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const long r = std::lrint(x[j] * inv_scale);
    q[j] = static_cast<std::int8_t>(std::clamp(r, -127L, 127L));
  }
}

namespace {

void scalar_qgemv(const std::int8_t* qx, const std::int8_t* w,
                  std::size_t in, std::size_t out, std::int32_t* acc) {
  for (std::size_t i = 0; i < in; ++i) {
    const std::int32_t xi = qx[i];
    if (xi == 0) continue;
    const std::int8_t* wi = w + i * out;
#pragma omp simd
    for (std::size_t j = 0; j < out; ++j) acc[j] += xi * wi[j];
  }
}

}  // namespace

const Kernels& scalar_kernels() {
  static const Kernels table = {
      "scalar",          scalar_axpy4,      scalar_axpy1,
      scalar_gemv,       scalar_dot,        scalar_reduce_sum,
      scalar_reduce_sq_dev, scalar_reduce_max, scalar_reduce_absmax,
      scalar_scale_div,  kernel_quantize_row, scalar_qgemv,
  };
  return table;
}

}  // namespace diagnet::tensor::detail
