#include "tensor/ops.h"

#include <algorithm>

#include "util/require.h"
#include "util/thread_pool.h"

namespace diagnet::tensor {

namespace {

// Below this many multiply-adds a GEMM runs the plain scalar loop: tiling
// and pool dispatch cost more than they save on the small attention-path
// shapes (single rows, 7-wide logits).
constexpr std::size_t kSmallMacs = 1u << 15;
// Above this many multiply-adds the row loop fans out over the thread
// pool. Chosen so one task is still a few hundred microseconds of work —
// and high enough that the 16-row shard GEMMs of the data-parallel trainer
// stay serial inside their shard worker instead of re-fanning out.
constexpr std::size_t kParallelMacs = 1u << 22;
// Rows of C per parallel task. Fixed (never derived from the worker
// count), so the task decomposition — and therefore every floating-point
// reduction order — is identical for any pool size.
constexpr std::size_t kRowBlock = 32;
// k-tile: a kKBlock x N panel of B (64 x 512 doubles = 256 KiB at the
// coarse model's widest layer) is streamed against a block of C rows
// before moving on, instead of re-streaming all of B for every row.
constexpr std::size_t kKBlock = 64;

/// Run fn(block) over ceil(n / kRowBlock) fixed-size row blocks, in
/// parallel when the kernel is large enough. The block partition is a pure
/// function of n, so numeric results cannot depend on the worker count.
template <typename Fn>
void for_row_blocks(std::size_t n, std::size_t macs, const Fn& fn) {
  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  if (macs < kParallelMacs || blocks < 2) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
    return;
  }
  util::parallel_for(blocks, fn);
}

/// Tiled C(i, :) += A(i, :) · B for rows [r0, r1). The reduction order over
/// kk for every output element is: k-tiles ascending, groups of four inside
/// a tile, remainder one at a time — fixed by constants, not by threading.
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  const std::size_t k = a.cols(), n = b.cols();
  for (std::size_t kk0 = 0; kk0 < k; kk0 += kKBlock) {
    const std::size_t kk1 = std::min(k, kk0 + kKBlock);
    for (std::size_t i = r0; i < r1; ++i) {
      double* ci = c.row_ptr(i);
      const double* ai = a.row_ptr(i);
      std::size_t kk = kk0;
      for (; kk + 4 <= kk1; kk += 4) {
        const double a0 = ai[kk], a1 = ai[kk + 1];
        const double a2 = ai[kk + 2], a3 = ai[kk + 3];
        const double* b0 = b.row_ptr(kk);
        const double* b1 = b.row_ptr(kk + 1);
        const double* b2 = b.row_ptr(kk + 2);
        const double* b3 = b.row_ptr(kk + 3);
#pragma omp simd
        for (std::size_t j = 0; j < n; ++j)
          ci[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
      for (; kk < kk1; ++kk) {
        const double aik = ai[kk];
        const double* bk = b.row_ptr(kk);
#pragma omp simd
        for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
      }
    }
  }
}

/// C(i, :) += Σ_kk A(kk, i) · B(kk, :) for output rows [r0, r1). Four B
/// rows are fused per pass so each C row is loaded/stored k/4 times.
void gemm_at_b_rows(const Matrix& a, const Matrix& b, Matrix& c,
                    std::size_t r0, std::size_t r1) {
  const std::size_t k = a.rows(), n = b.cols();
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const double* a0 = a.row_ptr(kk);
    const double* a1 = a.row_ptr(kk + 1);
    const double* a2 = a.row_ptr(kk + 2);
    const double* a3 = a.row_ptr(kk + 3);
    const double* b0 = b.row_ptr(kk);
    const double* b1 = b.row_ptr(kk + 1);
    const double* b2 = b.row_ptr(kk + 2);
    const double* b3 = b.row_ptr(kk + 3);
    for (std::size_t i = r0; i < r1; ++i) {
      const double x0 = a0[i], x1 = a1[i], x2 = a2[i], x3 = a3[i];
      double* ci = c.row_ptr(i);
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j)
        ci[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
    }
  }
  for (; kk < k; ++kk) {
    const double* ak = a.row_ptr(kk);
    const double* bk = b.row_ptr(kk);
    for (std::size_t i = r0; i < r1; ++i) {
      const double aki = ak[i];
      double* ci = c.row_ptr(i);
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
    }
  }
}

void gemm_a_bt_rows(const Matrix& a, const Matrix& b, Matrix& c,
                    std::size_t r0, std::size_t r1) {
  const std::size_t k = a.cols(), n = b.rows();
  for (std::size_t i = r0; i < r1; ++i) {
    const double* ai = a.row_ptr(i);
    double* ci = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b.row_ptr(j);
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (std::size_t kk = 0; kk < k; ++kk) s += ai[kk] * bj[kk];
      ci[j] = s;
    }
  }
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize_zero(m, n);
  const std::size_t macs = m * k * n;
  if (macs < kSmallMacs) {
    // Scalar i-k-j loop: the inner j loop streams both B's row k and C's
    // row i, which vectorises well and is overhead-free for small shapes.
    for (std::size_t i = 0; i < m; ++i) {
      double* ci = c.row_ptr(i);
      const double* ai = a.row_ptr(i);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double aik = ai[kk];
        const double* bk = b.row_ptr(kk);
#pragma omp simd
        for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
      }
    }
    return;
  }
  for_row_blocks(m, macs, [&](std::size_t blk) {
    const std::size_t r0 = blk * kRowBlock;
    gemm_rows(a, b, c, r0, std::min(m, r0 + kRowBlock));
  });
}

namespace {

void gemm_at_b_impl(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const std::size_t macs = m * k * n;
  if (macs < kSmallMacs) {
    // C(i, j) = sum_kk A(kk, i) * B(kk, j): stream rows of A and B together.
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* ak = a.row_ptr(kk);
      const double* bk = b.row_ptr(kk);
      for (std::size_t i = 0; i < m; ++i) {
        const double aki = ak[i];
        double* ci = c.row_ptr(i);
#pragma omp simd
        for (std::size_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
      }
    }
    return;
  }
  for_row_blocks(m, macs, [&](std::size_t blk) {
    const std::size_t r0 = blk * kRowBlock;
    gemm_at_b_rows(a, b, c, r0, std::min(m, r0 + kRowBlock));
  });
}

}  // namespace

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.rows() == b.rows());
  c.resize_zero(a.cols(), b.cols());
  gemm_at_b_impl(a, b, c);
}

void gemm_at_b_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.rows() == b.rows());
  DIAGNET_REQUIRE(c.rows() == a.cols() && c.cols() == b.cols());
  gemm_at_b_impl(a, b, c);
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c.resize(m, n);  // every element is overwritten; no zero-fill needed
  // C(i, j) = dot(A row i, B row j): both operands stream contiguously.
  for_row_blocks(m, m * k * n, [&](std::size_t blk) {
    const std::size_t r0 = blk * kRowBlock;
    gemm_a_bt_rows(a, b, c, r0, std::min(m, r0 + kRowBlock));
  });
}

void axpy(double alpha, const Matrix& a, Matrix& c) {
  DIAGNET_REQUIRE(a.same_shape(c));
  const double* pa = a.data();
  double* pc = c.data();
  const std::size_t n = a.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) pc[i] += alpha * pa[i];
}

void add_row_bias(Matrix& m, const Matrix& bias) {
  DIAGNET_REQUIRE(bias.rows() == 1 && bias.cols() == m.cols());
  const double* b = bias.data();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.row_ptr(r);
#pragma omp simd
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

namespace {

void sum_rows_impl(const Matrix& grad, Matrix& out) {
  double* o = out.data();
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    const double* row = grad.row_ptr(r);
#pragma omp simd
    for (std::size_t c = 0; c < grad.cols(); ++c) o[c] += row[c];
  }
}

}  // namespace

void sum_rows(const Matrix& grad, Matrix& out) {
  out.resize_zero(1, grad.cols());
  sum_rows_impl(grad, out);
}

void sum_rows_acc(const Matrix& grad, Matrix& out) {
  DIAGNET_REQUIRE(out.rows() == 1 && out.cols() == grad.cols());
  sum_rows_impl(grad, out);
}

double dot(const Matrix& a, const Matrix& b) {
  DIAGNET_REQUIRE(a.same_shape(b));
  double s = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t n = a.size();
#pragma omp simd reduction(+ : s)
  for (std::size_t i = 0; i < n; ++i) s += pa[i] * pb[i];
  return s;
}

}  // namespace diagnet::tensor
