#include "tensor/ops.h"

#include "util/require.h"

namespace diagnet::tensor {

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (c.rows() != m || c.cols() != n) c = Matrix(m, n);
  else c.fill(0.0);
  // i-k-j loop order: the inner j loop streams both B's row k and C's row i,
  // which vectorises well and stays cache-friendly for our tall-skinny shapes.
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row_ptr(i);
    const double* ai = a.row_ptr(i);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = ai[kk];
      if (aik == 0.0) continue;
      const double* bk = b.row_ptr(kk);
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.rows() == b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (c.rows() != m || c.cols() != n) c = Matrix(m, n);
  else c.fill(0.0);
  // C(i, j) = sum_kk A(kk, i) * B(kk, j): stream rows of A and B together.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* ak = a.row_ptr(kk);
    const double* bk = b.row_ptr(kk);
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = ak[i];
      if (aki == 0.0) continue;
      double* ci = c.row_ptr(i);
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
    }
  }
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (c.rows() != m || c.cols() != n) c = Matrix(m, n);
  // C(i, j) = dot(A row i, B row j): both operands stream contiguously.
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a.row_ptr(i);
    double* ci = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b.row_ptr(j);
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (std::size_t kk = 0; kk < k; ++kk) s += ai[kk] * bj[kk];
      ci[j] = s;
    }
  }
}

void axpy(double alpha, const Matrix& a, Matrix& c) {
  DIAGNET_REQUIRE(a.same_shape(c));
  const double* pa = a.data();
  double* pc = c.data();
  const std::size_t n = a.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) pc[i] += alpha * pa[i];
}

void add_row_bias(Matrix& m, const Matrix& bias) {
  DIAGNET_REQUIRE(bias.rows() == 1 && bias.cols() == m.cols());
  const double* b = bias.data();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.row_ptr(r);
#pragma omp simd
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

void sum_rows(const Matrix& grad, Matrix& out) {
  if (out.rows() != 1 || out.cols() != grad.cols()) out = Matrix(1, grad.cols());
  else out.fill(0.0);
  double* o = out.data();
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    const double* row = grad.row_ptr(r);
#pragma omp simd
    for (std::size_t c = 0; c < grad.cols(); ++c) o[c] += row[c];
  }
}

double dot(const Matrix& a, const Matrix& b) {
  DIAGNET_REQUIRE(a.same_shape(b));
  double s = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

}  // namespace diagnet::tensor
