#include "tensor/ops.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace diagnet::tensor {

namespace {

using detail::Kernels;

// Above this many multiply-adds the row loop fans out over the thread
// pool. Chosen so one task is still a few hundred microseconds of work —
// and high enough that the 16-row shard GEMMs of the data-parallel trainer
// stay serial inside their shard worker instead of re-fanning out.
constexpr std::size_t kParallelMacs = 1u << 22;
// Rows of C per parallel task. Fixed (never derived from the worker
// count), so the task decomposition — and therefore every floating-point
// reduction order — is identical for any pool size.
constexpr std::size_t kRowBlock = 32;
// k-tile: a kKBlock x N panel of B (64 x 512 doubles = 256 KiB at the
// coarse model's widest layer) is streamed against a block of C rows
// before moving on, instead of re-streaming all of B for every row.
// kKBlock is a multiple of the 4-wide unroll, so the fused-group
// boundaries — and with them the reduction order — are the same whether a
// row is walked tile-by-tile or in one pass.
constexpr std::size_t kKBlock = 64;

/// Run fn(block) over ceil(n / kRowBlock) fixed-size row blocks, in
/// parallel when the kernel is large enough. The block partition is a pure
/// function of n, so numeric results cannot depend on the worker count.
template <typename Fn>
void for_row_blocks(std::size_t n, std::size_t macs, const Fn& fn) {
  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  if (macs < kParallelMacs || blocks < 2) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
    return;
  }
  util::parallel_for(blocks, fn);
}

/// Tiled C(i, :) += A(i, :) · B for rows [r0, r1). The reduction order over
/// kk for every output element is: k-tiles ascending, groups of four inside
/// a tile, remainder one at a time — fixed by constants and by the active
/// kernel tier, never by threading or the total row count. Every matrix
/// shape takes this same path, so a row's bits depend only on its own
/// contents (the batch-vs-single bit-exactness contract is structural).
void gemm_rows(const Kernels& K, const Matrix& a, const Matrix& b,
               Matrix& c, std::size_t r0, std::size_t r1) {
  const std::size_t k = a.cols(), n = b.cols();
  for (std::size_t kk0 = 0; kk0 < k; kk0 += kKBlock) {
    const std::size_t kk1 = std::min(k, kk0 + kKBlock);
    for (std::size_t i = r0; i < r1; ++i) {
      double* ci = c.row_ptr(i);
      const double* ai = a.row_ptr(i);
      std::size_t kk = kk0;
      for (; kk + 4 <= kk1; kk += 4)
        K.axpy4(ci, b.row_ptr(kk), b.row_ptr(kk + 1), b.row_ptr(kk + 2),
                b.row_ptr(kk + 3), ai[kk], ai[kk + 1], ai[kk + 2],
                ai[kk + 3], n);
      for (; kk < kk1; ++kk) K.axpy1(ci, b.row_ptr(kk), ai[kk], n);
    }
  }
}

/// C(i, :) += Σ_kk A(kk, i) · B(kk, :) for output rows [r0, r1). Four B
/// rows are fused per pass so each C row is loaded/stored k/4 times.
void gemm_at_b_rows(const Kernels& K, const Matrix& a, const Matrix& b,
                    Matrix& c, std::size_t r0, std::size_t r1) {
  const std::size_t k = a.rows(), n = b.cols();
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const double* a0 = a.row_ptr(kk);
    const double* a1 = a.row_ptr(kk + 1);
    const double* a2 = a.row_ptr(kk + 2);
    const double* a3 = a.row_ptr(kk + 3);
    for (std::size_t i = r0; i < r1; ++i)
      K.axpy4(c.row_ptr(i), b.row_ptr(kk), b.row_ptr(kk + 1),
              b.row_ptr(kk + 2), b.row_ptr(kk + 3), a0[i], a1[i], a2[i],
              a3[i], n);
  }
  for (; kk < k; ++kk) {
    const double* ak = a.row_ptr(kk);
    for (std::size_t i = r0; i < r1; ++i)
      K.axpy1(c.row_ptr(i), b.row_ptr(kk), ak[i], n);
  }
}

void gemm_a_bt_rows(const Kernels& K, const Matrix& a, const Matrix& b,
                    Matrix& c, std::size_t r0, std::size_t r1) {
  const std::size_t k = a.cols(), n = b.rows();
  for (std::size_t i = r0; i < r1; ++i) {
    const double* ai = a.row_ptr(i);
    double* ci = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) ci[j] = K.dot(ai, b.row_ptr(j), k);
  }
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize_zero(m, n);
  if (m == 0 || n == 0 || k == 0) return;  // C is already all zeros
  const Kernels& K = detail::active_kernels();
  if (m == 1) {
    // Single-row fast path; the gemv kernel contract guarantees the same
    // bits the tiled row loop would produce on this tier.
    K.gemv(c.row_ptr(0), a.row_ptr(0), b.row_ptr(0), k, n, b.cols());
    return;
  }
  const std::size_t macs = m * k * n;
  for_row_blocks(m, macs, [&](std::size_t blk) {
    const std::size_t r0 = blk * kRowBlock;
    gemm_rows(K, a, b, c, r0, std::min(m, r0 + kRowBlock));
  });
}

void gemv(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.rows() == 1 && a.cols() == b.rows());
  gemm(a, b, c);
}

namespace {

void gemm_at_b_impl(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m == 0 || n == 0 || k == 0) return;  // accumulate nothing
  const Kernels& K = detail::active_kernels();
  const std::size_t macs = m * k * n;
  for_row_blocks(m, macs, [&](std::size_t blk) {
    const std::size_t r0 = blk * kRowBlock;
    gemm_at_b_rows(K, a, b, c, r0, std::min(m, r0 + kRowBlock));
  });
}

}  // namespace

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.rows() == b.rows());
  c.resize_zero(a.cols(), b.cols());
  gemm_at_b_impl(a, b, c);
}

void gemm_at_b_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.rows() == b.rows());
  DIAGNET_REQUIRE(c.rows() == a.cols() && c.cols() == b.cols());
  gemm_at_b_impl(a, b, c);
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  DIAGNET_REQUIRE(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (k == 0) {
    c.resize_zero(m, n);  // dot over an empty k is 0, not stale memory
    return;
  }
  c.resize(m, n);  // every element is overwritten; no zero-fill needed
  if (m == 0 || n == 0) return;
  const Kernels& K = detail::active_kernels();
  // C(i, j) = dot(A row i, B row j): both operands stream contiguously.
  for_row_blocks(m, m * k * n, [&](std::size_t blk) {
    const std::size_t r0 = blk * kRowBlock;
    gemm_a_bt_rows(K, a, b, c, r0, std::min(m, r0 + kRowBlock));
  });
}

void axpy(double alpha, const Matrix& a, Matrix& c) {
  DIAGNET_REQUIRE(a.same_shape(c));
  if (a.size() == 0) return;
  detail::active_kernels().axpy1(c.data(), a.data(), alpha, a.size());
}

void add_row_bias(Matrix& m, const Matrix& bias) {
  DIAGNET_REQUIRE(bias.rows() == 1 && bias.cols() == m.cols());
  if (m.cols() == 0) return;
  const Kernels& K = detail::active_kernels();
  for (std::size_t r = 0; r < m.rows(); ++r)
    K.axpy1(m.row_ptr(r), bias.data(), 1.0, m.cols());
}

namespace {

void sum_rows_impl(const Matrix& grad, Matrix& out) {
  if (grad.rows() == 0 || grad.cols() == 0) return;  // nothing to add
  const Kernels& K = detail::active_kernels();
  double* o = out.data();
  for (std::size_t r = 0; r < grad.rows(); ++r)
    K.axpy1(o, grad.row_ptr(r), 1.0, grad.cols());
}

}  // namespace

void sum_rows(const Matrix& grad, Matrix& out) {
  out.resize_zero(1, grad.cols());
  sum_rows_impl(grad, out);
}

void sum_rows_acc(const Matrix& grad, Matrix& out) {
  DIAGNET_REQUIRE(out.rows() == 1 && out.cols() == grad.cols());
  sum_rows_impl(grad, out);
}

double dot(const Matrix& a, const Matrix& b) {
  DIAGNET_REQUIRE(a.same_shape(b));
  if (a.size() == 0) return 0.0;
  return detail::active_kernels().dot(a.data(), b.data(), a.size());
}

}  // namespace diagnet::tensor
