// GEMM variants and elementwise kernels. The three GEMM forms below cover
// everything a fully-connected layer's forward and backward passes need
// without ever materialising a transpose.
//
// Every GEMM runs cache-tiled microkernels chosen at startup by
// tensor::dispatch (scalar or AVX2+FMA — see dispatch.h); above a flop
// threshold the outer row loop fans out over the global thread pool
// (util::parallel_for). Results are bit-identical regardless of the worker
// count: each output row is produced entirely by one task, and the per-row
// reduction order over k is fixed by the (constant) tile and unroll
// geometry and the active tier, never by the thread that runs it.
#pragma once

#include "tensor/matrix.h"

namespace diagnet::tensor {

/// C = A (M x K) · B (K x N). C is resized/overwritten.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C = a (1 x K) · B (K x N): the single-sample fast path. Serial, no
/// tiling or pool dispatch, but the exact fused-group reduction order of
/// gemm() — a row's bits never depend on which entry point computed it.
void gemv(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T (K x M -> M x K view) · B. A is (K x M) in memory.
void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A^T · B without zeroing C first (C must already be M x N). The
/// backward pass accumulates dW straight into a pre-zeroed gradient buffer
/// instead of materialising a temporary.
void gemm_at_b_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A · B^T. B is (N x K) in memory.
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c);

/// C += alpha * A (shapes must match).
void axpy(double alpha, const Matrix& a, Matrix& c);

/// out(r, c) = m(r, c) + bias(0, c): broadcast a row bias over all rows.
void add_row_bias(Matrix& m, const Matrix& bias);

/// bias_grad(0, c) = sum_r grad(r, c): reduce rows (the bias backward).
void sum_rows(const Matrix& grad, Matrix& out);

/// out(0, c) += sum_r grad(r, c): accumulating variant (out must be 1 x N).
void sum_rows_acc(const Matrix& grad, Matrix& out);

/// Frobenius dot product.
double dot(const Matrix& a, const Matrix& b);

}  // namespace diagnet::tensor
