// The microkernel table behind tensor::dispatch. Each tier fills one
// `Kernels` struct with raw-pointer primitives; ops.cpp (GEMM/GEMV/
// reductions), nn::LandPooling and nn::softmax call through the active
// table. The indirection sits at the row-block / fused-group level, never
// inside an innermost loop, so the function-pointer cost is amortised over
// hundreds of multiply-adds per call.
//
// Contract every tier must honour (bit-exactness within a tier):
//  * axpy4(c, b0..b3, a0..a3, n) must equal axpy1 applied four times in
//    order (a0 first) *for that tier's own rounding*. The AVX2 tier keeps
//    this structurally (a chain of four FMAs rooted at c[j]); the scalar
//    tier keeps it by being the only implementation both paths compile to.
//  * reduce_* and dot fix their own lane-combination order, so the same
//    input always yields the same bits on the same tier.
// Integer kernels (quantize_row, qgemv) are exact and therefore produce
// identical results on every tier.
#pragma once

#include <cstddef>
#include <cstdint>

namespace diagnet::tensor::detail {

struct Kernels {
  const char* name;

  /// c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
  void (*axpy4)(double* c, const double* b0, const double* b1,
                const double* b2, const double* b3, double a0, double a1,
                double a2, double a3, std::size_t n);
  /// c[j] += alpha * b[j]
  void (*axpy1)(double* c, const double* b, double alpha, std::size_t n);
  /// c[j] += sum_k a[k] * b[k*ldb + j] — the single-row product. Each tier
  /// must produce the same bits here as its own axpy4/axpy1 groups would
  /// (ascending k), so a 1-row GEMM can take this fast path and still match
  /// the row it would have been inside a batch.
  void (*gemv)(double* c, const double* a, const double* b, std::size_t k,
               std::size_t n, std::size_t ldb);
  /// sum_j a[j] * b[j]
  double (*dot)(const double* a, const double* b, std::size_t n);
  /// sum_j v[j]
  double (*reduce_sum)(const double* v, std::size_t n);
  /// sum_j (v[j] - mean)^2
  double (*reduce_sq_dev)(const double* v, std::size_t n, double mean);
  /// max_j v[j]; -inf when n == 0
  double (*reduce_max)(const double* v, std::size_t n);
  /// max_j |v[j]|; 0 when n == 0
  double (*reduce_absmax)(const double* v, std::size_t n);
  /// v[j] /= denom
  void (*scale_div)(double* v, double denom, std::size_t n);

  // ---- int8 quantized path (exact integer math, tier-invariant) ----
  /// q[j] = clamp(round(x[j] * inv_scale), -127, 127)
  void (*quantize_row)(const double* x, double inv_scale, std::int8_t* q,
                       std::size_t n);
  /// acc[j] += sum_i qx[i] * w[i*out + j]   (acc is caller-zeroed int32)
  void (*qgemv)(const std::int8_t* qx, const std::int8_t* w,
                std::size_t in, std::size_t out, std::int32_t* acc);
};

/// The portable tier (plain loops + `#pragma omp simd`, whatever the
/// baseline ISA auto-vectorizes to). Always available.
const Kernels& scalar_kernels();

/// The AVX2+FMA tier, or nullptr when not compiled in (non-x86 builds).
/// Runtime CPU support is dispatch.cpp's problem, not this function's.
const Kernels* avx2_kernels();

/// The table selected by tensor::dispatch (cheap relaxed atomic load).
const Kernels& active_kernels();

/// Scalar quantize_row, shared verbatim by every tier: double→int8
/// rounding must be tier-invariant so a quantized model scores the same
/// bits whichever tier served it.
void kernel_quantize_row(const double* x, double inv_scale, std::int8_t* q,
                         std::size_t n);

}  // namespace diagnet::tensor::detail
