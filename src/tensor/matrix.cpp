#include "tensor/matrix.h"

#include "util/require.h"

namespace diagnet::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : init) {
    DIAGNET_REQUIRE_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix Matrix::row(const std::vector<double>& v) {
  Matrix m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  DIAGNET_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  DIAGNET_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // vector::resize never releases capacity, so repeated reshapes between
  // the same steady-state shapes allocate only on first growth.
  data_.resize(rows * cols);
}

void Matrix::resize_zero(std::size_t rows, std::size_t cols) {
  resize(rows, cols);
  fill(0.0);
}

void Matrix::assign(const Matrix& other) {
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_.assign(other.data_.begin(), other.data_.end());
}

void Matrix::fill(double value) {
  for (auto& x : data_) x = value;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DIAGNET_REQUIRE(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DIAGNET_REQUIRE(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

std::vector<double> Matrix::row_copy(std::size_t r) const {
  DIAGNET_REQUIRE(r < rows_);
  return std::vector<double>(row_ptr(r), row_ptr(r) + cols_);
}

}  // namespace diagnet::tensor
