#include "tensor/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tensor/kernels.h"

namespace diagnet::tensor {

namespace {

CpuFeatures probe_cpu() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
  f.neon = true;
#endif
  return f;
}

bool avx2_usable() {
  const CpuFeatures& f = cpu_features();
  // The AVX2 tier leans on FMA throughout; require both.
  return f.avx2 && f.fma && detail::avx2_kernels() != nullptr;
}

KernelTier resolve_from_env() {
  const char* env = std::getenv("DIAGNET_KERNEL");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    if (std::strcmp(env, "scalar") == 0) return KernelTier::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2_usable()) return KernelTier::kAvx2;
      std::fprintf(stderr,
                   "diagnet: DIAGNET_KERNEL=avx2 requested but this CPU/"
                   "build has no avx2+fma; using scalar kernels\n");
      return KernelTier::kScalar;
    }
    std::fprintf(stderr,
                 "diagnet: unknown DIAGNET_KERNEL=\"%s\" (want scalar|"
                 "avx2|auto); using auto\n",
                 env);
  }
  return avx2_usable() ? KernelTier::kAvx2 : KernelTier::kScalar;
}

const detail::Kernels& table_for(KernelTier tier) {
  if (tier == KernelTier::kAvx2) {
    const detail::Kernels* t = detail::avx2_kernels();
    if (t != nullptr) return *t;
  }
  return detail::scalar_kernels();
}

std::atomic<const detail::Kernels*>& active_slot() {
  static std::atomic<const detail::Kernels*> slot{
      &table_for(resolve_from_env())};
  return slot;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe_cpu();
  return f;
}

std::string cpu_features_string() {
  const CpuFeatures& f = cpu_features();
  std::string out;
  const auto add = [&](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (f.avx2) add("avx2");
  if (f.fma) add("fma");
  if (f.neon) add("neon");
  return out.empty() ? "none" : out;
}

const char* kernel_tier_name(KernelTier tier) {
  return tier == KernelTier::kAvx2 ? "avx2" : "scalar";
}

KernelTier active_kernel_tier() {
  return active_slot().load(std::memory_order_relaxed) ==
                 detail::avx2_kernels()
             ? KernelTier::kAvx2
             : KernelTier::kScalar;
}

const char* active_kernel_tier_name() {
  return kernel_tier_name(active_kernel_tier());
}

bool kernel_tier_supported(KernelTier tier) {
  return tier == KernelTier::kScalar || avx2_usable();
}

bool force_kernel_tier(KernelTier tier) {
  if (!kernel_tier_supported(tier)) return false;
  active_slot().store(&table_for(tier), std::memory_order_relaxed);
  return true;
}

void reset_kernel_tier() {
  active_slot().store(&table_for(resolve_from_env()),
                      std::memory_order_relaxed);
}

namespace detail {

const Kernels& active_kernels() {
  return *active_slot().load(std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace diagnet::tensor
