#include "testkit/oracle.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace diagnet::testkit::oracle {

Matrix gemm(const Matrix& a, const Matrix& b) {
  DIAGNET_REQUIRE(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      long double s = 0.0L;
      for (std::size_t k = 0; k < a.cols(); ++k)
        s += static_cast<long double>(a(i, k)) * b(k, j);
      c(i, j) = static_cast<double>(s);
    }
  return c;
}

Matrix gemm_at_b(const Matrix& a, const Matrix& b) {
  DIAGNET_REQUIRE(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      long double s = 0.0L;
      for (std::size_t k = 0; k < a.rows(); ++k)
        s += static_cast<long double>(a(k, i)) * b(k, j);
      c(i, j) = static_cast<double>(s);
    }
  return c;
}

Matrix gemm_a_bt(const Matrix& a, const Matrix& b) {
  DIAGNET_REQUIRE(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.rows(); ++j) {
      long double s = 0.0L;
      for (std::size_t k = 0; k < a.cols(); ++k)
        s += static_cast<long double>(a(i, k)) * b(j, k);
      c(i, j) = static_cast<double>(s);
    }
  return c;
}

Matrix softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    double mx = logits(i, 0);
    for (std::size_t j = 1; j < logits.cols(); ++j)
      mx = std::max(mx, logits(i, j));
    long double sum = 0.0L;
    for (std::size_t j = 0; j < logits.cols(); ++j)
      sum += std::exp(static_cast<long double>(logits(i, j)) - mx);
    for (std::size_t j = 0; j < logits.cols(); ++j)
      out(i, j) = static_cast<double>(
          std::exp(static_cast<long double>(logits(i, j)) - mx) / sum);
  }
  return out;
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::size_t>& labels,
                             Matrix* grad) {
  DIAGNET_REQUIRE(labels.size() == logits.rows());
  const std::size_t batch = logits.rows();
  const Matrix probs = softmax(logits);
  long double loss = 0.0L;
  for (std::size_t i = 0; i < batch; ++i) {
    DIAGNET_REQUIRE(labels[i] < logits.cols());
    loss += -std::log(static_cast<long double>(probs(i, labels[i])));
  }
  if (grad != nullptr) {
    grad->resize(logits.rows(), logits.cols());
    for (std::size_t i = 0; i < batch; ++i)
      for (std::size_t j = 0; j < logits.cols(); ++j)
        (*grad)(i, j) = (probs(i, j) - (labels[i] == j ? 1.0 : 0.0)) /
                        static_cast<double>(batch);
  }
  return static_cast<double>(loss / static_cast<long double>(batch));
}

namespace {

/// q-quantile of a sorted vector with linear interpolation — the Table I
/// decile definition, restated independently of the production layer.
double quantile(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double pool_value(nn::PoolOp op, const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  long double sum = 0.0L;
  for (double v : sorted) sum += v;
  const double avg = static_cast<double>(sum / static_cast<long double>(n));
  switch (op) {
    case nn::PoolOp::Min: return sorted.front();
    case nn::PoolOp::Max: return sorted.back();
    case nn::PoolOp::Avg: return avg;
    case nn::PoolOp::Var: {
      if (n < 2) return 0.0;
      long double m2 = 0.0L;
      for (double v : sorted) m2 += (static_cast<long double>(v) - avg) *
                                    (static_cast<long double>(v) - avg);
      return static_cast<double>(m2 / static_cast<long double>(n - 1));
    }
    case nn::PoolOp::P10: return quantile(sorted, 0.1);
    case nn::PoolOp::P20: return quantile(sorted, 0.2);
    case nn::PoolOp::P30: return quantile(sorted, 0.3);
    case nn::PoolOp::P40: return quantile(sorted, 0.4);
    case nn::PoolOp::P50: return quantile(sorted, 0.5);
    case nn::PoolOp::P60: return quantile(sorted, 0.6);
    case nn::PoolOp::P70: return quantile(sorted, 0.7);
    case nn::PoolOp::P80: return quantile(sorted, 0.8);
    case nn::PoolOp::P90: return quantile(sorted, 0.9);
  }
  return 0.0;
}

}  // namespace

Matrix land_pooling(const Matrix& kernel, const Matrix& bias,
                    const std::vector<nn::PoolOp>& ops, const Matrix& land,
                    const Matrix& mask) {
  const std::size_t f = kernel.rows();
  const std::size_t k = kernel.cols();
  DIAGNET_REQUIRE(land.cols() % k == 0);
  const std::size_t landmarks = land.cols() / k;
  DIAGNET_REQUIRE(mask.rows() == land.rows() && mask.cols() == landmarks);

  Matrix out(land.rows(), ops.size() * f);
  for (std::size_t i = 0; i < land.rows(); ++i) {
    for (std::size_t j = 0; j < f; ++j) {
      std::vector<double> values;
      for (std::size_t lam = 0; lam < landmarks; ++lam) {
        if (mask(i, lam) < 0.5) continue;
        long double s = bias(0, j);
        for (std::size_t t = 0; t < k; ++t)
          s += static_cast<long double>(kernel(j, t)) *
               land(i, lam * k + t);
        values.push_back(static_cast<double>(s));
      }
      DIAGNET_REQUIRE_MSG(!values.empty(),
                          "sample with no available landmark");
      std::sort(values.begin(), values.end());
      for (std::size_t o = 0; o < ops.size(); ++o)
        out(i, o * f + j) = pool_value(ops[o], values);
    }
  }
  return out;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  DIAGNET_REQUIRE(a.same_shape(b));
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
  return worst;
}

double max_rel_diff(const Matrix& a, const Matrix& b) {
  DIAGNET_REQUIRE(a.same_shape(b));
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double denom =
          std::max({std::abs(a(r, c)), std::abs(b(r, c)), 1.0});
      worst = std::max(worst, std::abs(a(r, c) - b(r, c)) / denom);
    }
  return worst;
}

}  // namespace diagnet::testkit::oracle
