#include "testkit/fuzz.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/diagnet.h"
#include "core/registry.h"
#include "data/io.h"
#include "serve/framing.h"
#include "serve/wire.h"
#include "testkit/gen.h"
#include "util/binary_io.h"
#include "util/require.h"

namespace diagnet::testkit::fuzz {

namespace {

/// The cached tiny deployment: a simulated world, a model trained on its
/// campaign for a couple of epochs, the serialised bundle, and the CSV
/// export. Built on first use; every fuzz case reuses the same bytes.
struct FuzzFixture {
  gen::TinyWorld world;
  std::string bundle;
  std::string csv;

  FuzzFixture() : world(/*seed=*/4242, /*nominal=*/40, /*fault=*/60) {
    core::DiagNetConfig config;
    config.coarse.filters = 4;
    config.coarse.hidden = {16, 8};
    config.trainer.max_epochs = 2;
    config.trainer.batch_size = 32;
    config.trainer.patience = 2;
    config.specialization.max_epochs = 1;
    config.auxiliary.n_estimators = 3;
    config.auxiliary.tree.max_depth = 4;
    config.seed = 4242;

    core::DiagNetModel model(world.fs, config);
    model.train_general(world.dataset);

    std::ostringstream bundle_os(std::ios::binary);
    const util::Status saved = core::try_save_model(model, bundle_os);
    DIAGNET_REQUIRE_MSG(saved.ok(), saved.message());
    bundle = bundle_os.str();

    std::ostringstream csv_os;
    const util::Status written = data::try_write_csv(world.dataset, world.fs,
                                                     csv_os);
    DIAGNET_REQUIRE_MSG(written.ok(), written.message());
    csv = csv_os.str();
  }
};

FuzzFixture& fixture() {
  static FuzzFixture fx;
  return fx;
}

}  // namespace

std::string corrupt(util::Rng& rng, const std::string& bytes,
                    std::string* descr) {
  DIAGNET_REQUIRE(!bytes.empty());
  std::string out = bytes;
  std::string what;
  switch (rng.uniform_index(4)) {
    case 0: {  // truncation, biased toward cutting inside the payload
      const std::size_t keep =
          static_cast<std::size_t>(rng.uniform_index(bytes.size()));
      out.resize(keep);
      what = "truncate to " + std::to_string(keep) + " bytes";
      break;
    }
    case 1: {  // 1..8 independent bit flips
      const std::size_t flips = 1 + rng.uniform_index(8);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t at =
            static_cast<std::size_t>(rng.uniform_index(out.size()));
        out[at] = static_cast<char>(
            out[at] ^ static_cast<char>(1u << rng.uniform_index(8)));
      }
      what = "flip " + std::to_string(flips) + " bits";
      break;
    }
    case 2: {  // scribble a short byte range
      const std::size_t at =
          static_cast<std::size_t>(rng.uniform_index(out.size()));
      const std::size_t len =
          std::min(out.size() - at,
                   static_cast<std::size_t>(1 + rng.uniform_index(16)));
      for (std::size_t i = 0; i < len; ++i)
        out[at + i] = static_cast<char>(rng.uniform_index(256));
      what = "scribble " + std::to_string(len) + " bytes at " +
             std::to_string(at);
      break;
    }
    default: {  // u64-aligned overwrite: aims at length/count fields
      const std::size_t slots = out.size() / sizeof(std::uint64_t);
      if (slots == 0) {
        out.resize(out.size() - 1);
        what = "truncate tail byte";
        break;
      }
      const std::size_t at =
          static_cast<std::size_t>(rng.uniform_index(slots)) *
          sizeof(std::uint64_t);
      // Half the time a dedicated allocation bomb, else a random value.
      const std::uint64_t value =
          rng.bernoulli(0.5) ? ~std::uint64_t{0} >> rng.uniform_index(16)
                             : rng.next_u64();
      std::memcpy(out.data() + at, &value, sizeof(value));
      what = "overwrite u64 at " + std::to_string(at);
      break;
    }
  }
  if (out == bytes) {  // a no-op scribble/overwrite: force a visible change
    out.back() = static_cast<char>(out.back() ^ 0x01);
    what += " (+tail flip)";
  }
  if (descr != nullptr) *descr = what;
  return out;
}

const std::string& tiny_model_bundle() { return fixture().bundle; }

const data::FeatureSpace& tiny_world_space() { return fixture().world.fs; }

const std::string& tiny_campaign_csv() { return fixture().csv; }

void check_bundle_fuzz(CaseContext& ctx) {
  const std::string& bundle = tiny_model_bundle();
  const data::FeatureSpace& fs = tiny_world_space();

  // Sanity: the pristine bundle must load (otherwise every rejection below
  // would pass vacuously).
  ctx.begin_case();
  {
    std::istringstream is(bundle, std::ios::binary);
    const auto model = core::try_load_model(is, fs);
    if (model.ok()) {
      ctx.check(*model != nullptr && (*model)->trained(),
                "pristine bundle must load as a trained model");
    } else {
      ctx.fail("pristine bundle failed to load: " + model.status().message());
    }
  }

  // Every corruption of the logical stream must be rejected cleanly. The
  // v2 checksum makes this airtight: any surviving bit difference either
  // breaks the header, the length, or the payload digest.
  for (std::size_t c = 0; c < 4; ++c) {
    ctx.begin_case();
    std::string what;
    const std::string bad = corrupt(ctx.rng, bundle, &what);
    std::istringstream is(bad, std::ios::binary);
    const auto model = core::try_load_model(is, fs);
    if (model.ok())
      ctx.fail("corrupt bundle loaded without an error (" + what + ")");
    else
      ctx.check(true, "clean rejection");
  }
}

void check_campaign_fuzz(CaseContext& ctx) {
  const std::string& csv = tiny_campaign_csv();
  const data::FeatureSpace& fs = tiny_world_space();

  ctx.begin_case();
  {
    std::istringstream is(csv);
    const auto ds = data::try_read_csv(is, fs);
    if (ds.ok())
      ctx.check_eq(ds->size(), fixture().world.dataset.size(),
                   "pristine CSV roundtrip sample count");
    else
      ctx.fail("pristine CSV failed to parse: " + ds.status().message());
  }

  // Text corruption cannot always be *detected* (a flipped digit is still
  // a number), so the contract is weaker than for binary bundles: the
  // reader either errors out or returns a structurally consistent dataset.
  for (std::size_t c = 0; c < 4; ++c) {
    ctx.begin_case();
    std::string what;
    const std::string bad = corrupt(ctx.rng, csv, &what);
    std::istringstream is(bad);
    const auto ds = data::try_read_csv(is, fs);
    if (ds.ok()) {
      ctx.check_eq(ds->landmark_available.size(), fs.landmark_count(),
                   "parsed landmark mask width (" + what + ")");
      for (const data::Sample& s : ds->samples)
        ctx.check_eq(s.features.size(), fs.total(),
                     "parsed sample width (" + what + ")");
    } else {
      ctx.check(true, "clean rejection");
    }
  }
}

void check_binary_io_fuzz(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;

  // Case 1: clean roundtrip is exact.
  ctx.begin_case();
  const std::uint64_t u = rng.next_u64();
  std::vector<double> doubles(gen::dim(rng, 0, 12));
  for (double& d : doubles) d = rng.normal();
  std::vector<std::size_t> indices(gen::dim(rng, 0, 12));
  for (std::size_t& i : indices)
    i = static_cast<std::size_t>(rng.uniform_index(1 << 20));
  std::string text(gen::dim(rng, 0, 24), '\0');
  for (char& chr : text) chr = static_cast<char>(rng.uniform_index(256));

  std::ostringstream os(std::ios::binary);
  {
    util::BinaryWriter writer(os);
    writer.write_u64(u);
    writer.write_doubles(doubles);
    writer.write_string(text);
    writer.write_indices(indices);
    writer.write_bool(true);
  }
  const std::string clean = os.str();
  {
    std::istringstream is(clean, std::ios::binary);
    util::BinaryReader reader(is);
    ctx.check(reader.read_u64() == u, "u64 roundtrip");
    ctx.check(reader.read_doubles() == doubles, "doubles roundtrip");
    ctx.check(reader.read_string() == text, "string roundtrip");
    ctx.check(reader.read_indices() == indices, "indices roundtrip");
    ctx.check(reader.read_bool(), "bool roundtrip");
    ctx.check(reader.remaining() == 0, "stream fully consumed");
  }

  // Case 2: a deterministic allocation bomb — a length field claiming more
  // elements than the whole stream holds must throw before allocating.
  ctx.begin_case();
  {
    std::ostringstream bomb_os(std::ios::binary);
    util::BinaryWriter writer(bomb_os);
    writer.write_u64((1ULL << 24) + rng.uniform_index(1ULL << 24));
    writer.write_u64(rng.next_u64());  // a few real bytes, nowhere near enough
    std::istringstream is(bomb_os.str(), std::ios::binary);
    util::BinaryReader reader(is);
    try {
      const auto bombed = reader.read_doubles();
      ctx.fail("length bomb returned " + std::to_string(bombed.size()) +
               " doubles instead of throwing");
    } catch (const std::exception&) {
      ctx.check(true, "length bomb rejected");
    }
  }

  // Case 3: corrupted streams never crash the primitive readers; they
  // either produce values or throw std::runtime_error.
  ctx.begin_case();
  {
    const std::string bad = corrupt(rng, clean);
    std::istringstream is(bad, std::ios::binary);
    util::BinaryReader reader(is);
    try {
      (void)reader.read_u64();
      (void)reader.read_doubles();
      (void)reader.read_string();
      (void)reader.read_indices();
      (void)reader.read_bool();
    } catch (const std::exception&) {
      // Clean rejection is one of the two allowed outcomes.
    }
    ctx.check(true, "corrupt primitive stream handled without a crash");
  }
}

namespace {

/// Whole-line reference parse: the lines a getline loop would deliver for
/// *terminated* input. The unterminated tail is excluded on purpose — the
/// incremental framer must hold it back until its newline arrives.
std::vector<std::string> split_lines(const std::string& bytes) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') {
      out.emplace_back(bytes, start, i - start);
      start = i + 1;
    }
  }
  return out;
}

/// Pop every currently-complete line out of `framer`.
std::vector<std::string> pop_all(serve::LineFramer& framer) {
  std::vector<std::string> out;
  std::string line;
  while (framer.next(&line)) out.push_back(line);
  return out;
}

/// One adversarial wire line (no terminator): a valid request rendered by
/// format_request, a garbage line salted with NUL and '\r' bytes, or an
/// empty line — the three shapes a hostile client can interleave.
std::string random_wire_line(util::Rng& rng) {
  switch (rng.uniform_index(4)) {
    case 0:
      return std::string();  // empty lines must frame and pass through
    case 1: {                // binary garbage, NULs and CRs included
      std::string line(1 + rng.uniform_index(40), '\0');
      for (char& chr : line) {
        do {
          chr = static_cast<char>(rng.uniform_index(256));
        } while (chr == '\n');
      }
      return line;
    }
    default: {  // a well-formed request over the tiny deployment
      serve::WireRequest wire;
      wire.id = rng.next_u64() % 1000;
      wire.request.features.resize(tiny_world_space().total());
      for (double& f : wire.request.features) f = rng.normal();
      return serve::format_request(wire);
    }
  }
}

}  // namespace

void check_wire_framing_fuzz(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;

  // Case 1: random adversarial stream, fed in random-sized chunks, must
  // frame byte-identically to whole-line parsing — with a random
  // unterminated tail held back, not delivered.
  ctx.begin_case();
  {
    std::string stream;
    const std::size_t lines = 1 + rng.uniform_index(12);
    for (std::size_t i = 0; i < lines; ++i)
      stream += random_wire_line(rng) + "\n";
    std::string tail;  // maybe leave a partial line dangling
    if (rng.bernoulli(0.5)) {
      tail = random_wire_line(rng);
      stream += tail;
    }
    const std::vector<std::string> expected = split_lines(stream);

    serve::LineFramer framer;
    std::vector<std::string> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min(stream.size() - off,
                   static_cast<std::size_t>(1 + rng.uniform_index(17)));
      framer.feed(stream.data() + off, n);
      off += n;
      for (auto& line : pop_all(framer)) got.push_back(std::move(line));
    }
    ctx.check(!framer.overflowed(), "normal-length stream never overflows");
    ctx.check(got == expected, "chunked framing == whole-line parsing");
    ctx.check_eq(framer.buffered(), tail.size(),
                 "unterminated tail held back, not delivered");
  }

  // Case 2: one small stream split at EVERY byte boundary (two chunks);
  // each split must produce the identical line sequence.
  ctx.begin_case();
  {
    std::string stream;
    for (std::size_t i = 0; i < 3; ++i)
      stream += random_wire_line(rng) + "\n";
    const std::vector<std::string> expected = split_lines(stream);
    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
      serve::LineFramer framer;
      std::vector<std::string> got;
      framer.feed(stream.data(), cut);
      for (auto& line : pop_all(framer)) got.push_back(std::move(line));
      framer.feed(stream.data() + cut, stream.size() - cut);
      for (auto& line : pop_all(framer)) got.push_back(std::move(line));
      if (got != expected) {
        ctx.fail("split at byte " + std::to_string(cut) +
                 " changed the framed lines");
        return;
      }
    }
    ctx.check(true, "every two-chunk split framed identically");
  }

  // Case 3: interleaved partial requests across many connections — each
  // framer sees its own stream in fragments, round-robin with the others,
  // and must be unaffected by the interleaving.
  ctx.begin_case();
  {
    const std::size_t conns = 2 + rng.uniform_index(6);
    std::vector<std::string> streams(conns);
    std::vector<std::vector<std::string>> expected(conns);
    std::vector<serve::LineFramer> framers(conns);
    std::vector<std::vector<std::string>> got(conns);
    std::vector<std::size_t> offsets(conns, 0);
    for (std::size_t c = 0; c < conns; ++c) {
      const std::size_t lines = 1 + rng.uniform_index(6);
      for (std::size_t i = 0; i < lines; ++i)
        streams[c] += random_wire_line(rng) + "\n";
      expected[c] = split_lines(streams[c]);
    }
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t c = 0; c < conns; ++c) {
        if (offsets[c] >= streams[c].size()) continue;
        const std::size_t n = std::min(
            streams[c].size() - offsets[c],
            static_cast<std::size_t>(1 + rng.uniform_index(9)));
        framers[c].feed(streams[c].data() + offsets[c], n);
        offsets[c] += n;
        for (auto& line : pop_all(framers[c]))
          got[c].push_back(std::move(line));
        progress = true;
      }
    }
    for (std::size_t c = 0; c < conns; ++c) {
      if (got[c] != expected[c]) {
        ctx.fail("interleaving corrupted connection " + std::to_string(c));
        return;
      }
    }
    ctx.check(true, "interleaved framers stayed independent");
  }

  // Case 4: the length cap. An unterminated run past max_line_bytes makes
  // the framer sticky-overflowed; lines completed beforehand stay
  // poppable, and nothing fed afterwards is ever delivered.
  ctx.begin_case();
  {
    const std::size_t cap = 16 + rng.uniform_index(48);
    serve::LineFramer framer(cap);
    framer.feed("ok\n");
    const std::string big(cap + 1 + rng.uniform_index(64), 'x');
    std::size_t off = 0;  // dribble the oversized line in small chunks
    while (off < big.size()) {
      const std::size_t n = std::min(
          big.size() - off, static_cast<std::size_t>(1 + rng.uniform_index(7)));
      framer.feed(big.data() + off, n);
      off += n;
    }
    ctx.check(framer.overflowed(), "cap crossing flips overflowed()");
    std::string line;
    ctx.check(framer.next(&line) && line == "ok",
              "line completed before the overflow stays poppable");
    ctx.check(!framer.next(&line), "no line after the overflow");
    framer.feed("\nlate\n");  // terminator + a fresh line: still dead
    ctx.check(!framer.next(&line) && framer.overflowed(),
              "overflow is sticky; later feeds are ignored");
  }

  // Case 5: an oversized line that IS terminated must still trip the cap
  // (a '\n' does not amnesty a line the reader refused to buffer).
  ctx.begin_case();
  {
    const std::size_t cap = 16;
    serve::LineFramer framer(cap);
    const std::string big(cap + 1 + rng.uniform_index(32), 'y');
    framer.feed("first\n" + big + "\nsecond\n");
    std::string line;
    ctx.check(framer.next(&line) && line == "first",
              "line before the oversized one still frames");
    ctx.check(!framer.next(&line),
              "nothing after the oversized line is delivered");
    ctx.check(framer.overflowed(), "terminated oversized line trips the cap");
  }
}

}  // namespace diagnet::testkit::fuzz
