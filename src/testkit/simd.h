// Differential suites for the per-tier microkernels behind
// tensor::dispatch: every compiled-in tier (scalar always, avx2 when the
// build and CPU have it) against long-double reference loops, across
// randomized spans that cross the vector-width and small-n thresholds —
// including the zero-length edge — plus the structural bit-exactness
// contracts from kernels.h and the int8 quantization bounds.
#pragma once

#include "testkit/harness.h"

namespace diagnet::testkit {

/// axpy4/axpy1/gemv/dot/reduce_*/scale_div of every runnable tier vs
/// long-double references; axpy4 == 4x axpy1 and gemv == grouped axpy
/// bit-identity within a tier; scalar-vs-avx2 agreement to sum tolerance.
void check_kernel_tiers(CaseContext& ctx);

/// quantize_weights / quantize_row round-trip bounds (|w - q*s| <= s/2),
/// qgemv exactness vs an int64 reference on every tier, and bitwise
/// tier-invariance of nn::quantized_forward.
void check_quantize_roundtrip(CaseContext& ctx);

}  // namespace diagnet::testkit
