#include "testkit/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "testkit/differential.h"
#include "testkit/fuzz.h"
#include "testkit/invariants.h"
#include "testkit/simd.h"
#include "util/binary_io.h"

namespace diagnet::testkit {

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  return util::fnv1a64(data, n);
}

std::uint64_t fnv1a64(const std::string& s) {
  return util::fnv1a64(s.data(), s.size());
}

void CaseContext::fail(const std::string& what) {
  errors.push_back(what + "  [repro: --seed " + std::to_string(seed) +
                   " --iters " + std::to_string(iter + 1) + ", iter " +
                   std::to_string(iter) + "]");
}

bool CaseContext::check(bool cond, const std::string& what) {
  ++checks;
  if (!cond) fail(what);
  return cond;
}

bool CaseContext::check_near(double got, double want, double tol,
                             const std::string& what) {
  ++checks;
  const double scale =
      std::max({std::abs(got), std::abs(want), 1.0});
  if (std::abs(got - want) <= tol * scale) return true;
  std::ostringstream os;
  os << what << ": got " << std::setprecision(17) << got << ", want " << want
     << " (tol " << tol << ")";
  fail(os.str());
  return false;
}

bool CaseContext::check_eq(std::size_t got, std::size_t want,
                           const std::string& what) {
  ++checks;
  if (got == want) return true;
  fail(what + ": got " + std::to_string(got) + ", want " +
       std::to_string(want));
  return false;
}

const std::vector<Suite>& all_suites() {
  static const std::vector<Suite> suites = {
      {"oracle.gemm", check_gemm_oracle},
      {"oracle.softmax", check_softmax_oracle},
      {"oracle.landpool", check_landpool_oracle},
      {"oracle.landpool_grad",
       [](CaseContext& ctx) {
         check_landpool_grad(ctx);
         check_landpool_grad(ctx);
       }},
      {"oracle.attention", check_attention_batch},
      {"oracle.kernel_tiers", check_kernel_tiers},
      {"oracle.quantize", check_quantize_roundtrip},
      {"invariant.permutation",
       [](CaseContext& ctx) {
         check_pooling_permutation(ctx);
         check_ranking_permutation(ctx);
       }},
      {"invariant.extensibility",
       [](CaseContext& ctx) {
         check_extensibility_dims(ctx);
         check_extensibility_masked_noop(ctx);
         check_extensibility_ranking(ctx);
       }},
      {"invariant.scoreweight", check_score_weighting},
      {"invariant.ensemble", check_ensemble_convexity},
      {"fuzz.binary_io", fuzz::check_binary_io_fuzz},
      {"fuzz.bundle", fuzz::check_bundle_fuzz},
      {"fuzz.campaign", fuzz::check_campaign_fuzz},
      {"fuzz.wire_framing", fuzz::check_wire_framing_fuzz},
  };
  return suites;
}

const Suite* find_suite(const std::string& name) {
  for (const Suite& suite : all_suites())
    if (suite.name == name) return &suite;
  return nullptr;
}

PropertyRunner::PropertyRunner(std::uint64_t seed, std::size_t iters)
    : seed_(seed), iters_(iters) {}

namespace {

constexpr std::size_t kMaxMessagesPerSuite = 8;

void run_one_iteration(const std::string& suite, const PropertyFn& fn,
                       std::uint64_t seed, std::uint64_t iter,
                       SuiteResult& result) {
  CaseContext ctx;
  ctx.rng = util::Rng(seed).fork(fnv1a64(suite)).fork(iter);
  ctx.seed = seed;
  ctx.iter = iter;
  try {
    fn(ctx);
  } catch (const std::exception& e) {
    ctx.fail(std::string("unexpected exception: ") + e.what());
  } catch (...) {
    ctx.fail("unexpected non-standard exception");
  }
  ++result.iterations;
  result.cases += ctx.cases;
  result.checks += ctx.checks;
  if (!ctx.ok()) {
    ++result.failed_iterations;
    for (const std::string& msg : ctx.errors) {
      if (result.messages.size() >= kMaxMessagesPerSuite) break;
      result.messages.push_back(msg);
    }
  }
}

}  // namespace

SuiteResult PropertyRunner::run(
    const std::string& suite, const PropertyFn& fn,
    const std::vector<std::uint64_t>& replay_iters) const {
  SuiteResult result;
  result.name = suite;
  // Known-bad iterations first (the ReplayTestGenerator idiom), then the
  // fresh sweep. An iteration replayed twice costs a little time and
  // nothing else — results are keyed by (seed, suite, iter) alone.
  for (std::uint64_t iter : replay_iters)
    run_one_iteration(suite, fn, seed_, iter, result);
  for (std::uint64_t iter = 0; iter < iters_; ++iter)
    run_one_iteration(suite, fn, seed_, iter, result);
  return result;
}

std::string describe(const SuiteResult& result) {
  std::ostringstream os;
  os << result.name << ": " << result.iterations << " iterations, "
     << result.cases << " cases, " << result.checks << " checks, "
     << result.failed_iterations << " failed";
  for (const std::string& msg : result.messages) os << "\n  " << msg;
  return os.str();
}

std::vector<CorpusEntry> load_corpus(const std::string& path) {
  std::vector<CorpusEntry> entries;
  std::ifstream is(path);
  if (!is) return entries;  // a missing corpus is an empty corpus
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    CorpusEntry entry;
    if (ls >> entry.suite >> entry.seed >> entry.iter)
      entries.push_back(std::move(entry));
  }
  return entries;
}

void append_corpus(const std::string& path,
                   const std::vector<CorpusEntry>& entries) {
  if (entries.empty()) return;
  std::ofstream os(path, std::ios::app);
  if (!os)
    throw std::runtime_error("selfcheck: cannot append corpus: " + path);
  for (const CorpusEntry& entry : entries)
    os << entry.suite << ' ' << entry.seed << ' ' << entry.iter << '\n';
}

SelfCheckReport run_selfcheck(const SelfCheckConfig& config,
                              std::ostream& out) {
  const std::vector<CorpusEntry> corpus =
      config.corpus_path.empty() ? std::vector<CorpusEntry>{}
                                 : load_corpus(config.corpus_path);

  SelfCheckReport report;
  std::vector<CorpusEntry> new_failures;
  const PropertyRunner runner(config.seed, config.iters);

  out << "selfcheck: seed " << config.seed << ", " << config.iters
      << " iterations per suite\n";
  out << std::left << std::setw(28) << "suite" << std::right << std::setw(8)
      << "iters" << std::setw(8) << "cases" << std::setw(10) << "checks"
      << "  result\n";

  for (const Suite& suite : all_suites()) {
    if (!config.filter.empty() &&
        suite.name.find(config.filter) == std::string::npos)
      continue;

    // Same-seed corpus entries replay inside the main runner; entries
    // recorded under another seed get a dedicated zero-sweep runner.
    std::vector<std::uint64_t> replay;
    SuiteResult result;
    result.name = suite.name;
    for (const CorpusEntry& entry : corpus) {
      if (entry.suite != suite.name) continue;
      if (entry.seed == config.seed) {
        replay.push_back(entry.iter);
      } else {
        const SuiteResult r =
            PropertyRunner(entry.seed, 0).run(suite.name, suite.fn,
                                              {entry.iter});
        result.iterations += r.iterations;
        result.cases += r.cases;
        result.checks += r.checks;
        result.failed_iterations += r.failed_iterations;
        for (const std::string& msg : r.messages)
          if (result.messages.size() < kMaxMessagesPerSuite)
            result.messages.push_back(msg);
      }
    }

    const SuiteResult fresh = runner.run(suite.name, suite.fn, replay);
    result.iterations += fresh.iterations;
    result.cases += fresh.cases;
    result.checks += fresh.checks;
    result.failed_iterations += fresh.failed_iterations;
    for (const std::string& msg : fresh.messages)
      if (result.messages.size() < kMaxMessagesPerSuite)
        result.messages.push_back(msg);

    out << std::left << std::setw(28) << result.name << std::right
        << std::setw(8) << result.iterations << std::setw(8) << result.cases
        << std::setw(10) << result.checks << "  "
        << (result.ok() ? "ok" : "FAIL") << '\n';
    for (const std::string& msg : result.messages) out << "    " << msg << '\n';

    if (!result.ok() && !config.corpus_path.empty()) {
      // Pin every failing fresh iteration under the current seed. The
      // message format carries the exact repro; the corpus carries the key.
      for (std::uint64_t iter = 0; iter < config.iters; ++iter) {
        SuiteResult probe;
        run_one_iteration(suite.name, suite.fn, config.seed, iter, probe);
        if (probe.failed_iterations > 0)
          new_failures.push_back({suite.name, config.seed, iter});
      }
    }

    report.suites.push_back(std::move(result));
  }

  if (!config.corpus_path.empty()) append_corpus(config.corpus_path,
                                                 new_failures);

  std::size_t failed_suites = 0;
  for (const SuiteResult& s : report.suites)
    if (!s.ok()) ++failed_suites;
  out << (report.ok() ? "selfcheck passed: " : "selfcheck FAILED: ")
      << report.suites.size() << " suites, " << failed_suites
      << " with failures (seed " << config.seed << ")\n";
  return report;
}

std::uint64_t env_seed(std::uint64_t fallback) {
  const char* raw = std::getenv("DIAGNET_PROPTEST_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

std::size_t env_iters(std::size_t fallback) {
  const char* raw = std::getenv("DIAGNET_PROPTEST_ITERS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0' && value > 0)
             ? static_cast<std::size_t>(value)
             : fallback;
}

}  // namespace diagnet::testkit
