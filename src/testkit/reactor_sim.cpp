#include "testkit/reactor_sim.h"

#include <cstring>
#include <utility>
#include <vector>

#include "core/diagnet.h"
#include "serve/wire.h"
#include "testkit/gen.h"
#include "util/require.h"

#if defined(__linux__)
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace diagnet::testkit {

namespace {

/// Cached tiny serving fixture: one simulated world and one small trained
/// model, built on first use and shared by every ReactorSim in the
/// process (training even the minimal model takes a moment). Same shape
/// as the fuzz fixture, but the live model rather than its bundle bytes.
struct SimFixture {
  gen::TinyWorld world;
  std::shared_ptr<core::DiagNetModel> model;
  std::vector<std::size_t> faulty;  // sample indices with a primary cause

  SimFixture() : world(/*seed=*/4242, /*nominal=*/40, /*fault=*/60) {
    core::DiagNetConfig config;
    config.coarse.filters = 4;
    config.coarse.hidden = {16, 8};
    config.trainer.max_epochs = 2;
    config.trainer.batch_size = 32;
    config.trainer.patience = 2;
    config.specialization.max_epochs = 1;
    config.auxiliary.n_estimators = 3;
    config.auxiliary.tree.max_depth = 4;
    config.seed = 4242;

    model = std::make_shared<core::DiagNetModel>(world.fs, config);
    model->train_general(world.dataset);

    for (std::size_t i = 0; i < world.dataset.samples.size(); ++i)
      if (world.dataset.samples[i].is_faulty()) faulty.push_back(i);
    DIAGNET_REQUIRE(!faulty.empty());
  }
};

SimFixture& fixture() {
  static SimFixture fx;
  return fx;
}

}  // namespace

std::shared_ptr<core::DiagNetModel> tiny_serving_model() {
  return fixture().model;
}

const data::FeatureSpace& tiny_serving_space() { return fixture().world.fs; }

std::size_t tiny_faulty_count() { return fixture().faulty.size(); }

std::string tiny_request_line(std::size_t index, std::uint64_t id,
                              double deadline_ms) {
  const SimFixture& fx = fixture();
  const data::Sample& sample =
      fx.world.dataset.samples[fx.faulty[index % fx.faulty.size()]];
  serve::WireRequest wire;
  wire.id = id;
  wire.request.features = sample.features;
  wire.request.service = sample.service;
  wire.deadline_ms = deadline_ms;
  return serve::format_request(wire);
}

// ---------------------------------------------------------------------------
// SimConn

SimConn::SimConn(SimConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      consumed_(std::exchange(other.consumed_, 0)),
      saw_eof_(std::exchange(other.saw_eof_, false)) {}

SimConn& SimConn::operator=(SimConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    consumed_ = std::exchange(other.consumed_, 0);
    saw_eof_ = std::exchange(other.saw_eof_, false);
  }
  return *this;
}

SimConn::~SimConn() { close(); }

bool SimConn::next_line(std::string* line) {
  const std::size_t pos = buffer_.find('\n', consumed_);
  if (pos == std::string::npos) {
    if (consumed_ > 0) {  // compact so drained bytes do not pile up
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
    return false;
  }
  if (line != nullptr) line->assign(buffer_, consumed_, pos - consumed_);
  consumed_ = pos + 1;
  return true;
}

bool SimConn::closed_and_empty() const {
  return saw_eof_ && buffer_.find('\n', consumed_) == std::string::npos;
}

#if defined(__linux__)

bool SimConn::send(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;  // pipe full; the remainder is intentionally dropped
    return false;   // reactor closed its end (EPIPE/ECONNRESET/...)
  }
  return true;
}

bool SimConn::drain() {
  if (fd_ < 0) return false;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return !saw_eof_;
    saw_eof_ = true;  // 0 = orderly EOF; any other error counts as closed
    return false;
  }
}

void SimConn::shrink_buffers(int bytes) {
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

void SimConn::finish_writing() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void SimConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#else  // !__linux__ — the sim needs the epoll reactor; stub the socket ops.

bool SimConn::send(const std::string&) { return false; }
bool SimConn::drain() { return false; }
void SimConn::shrink_buffers(int) {}
void SimConn::finish_writing() {}
void SimConn::close() { fd_ = -1; }

#endif

// ---------------------------------------------------------------------------
// ReactorSim

ReactorSim::ReactorSim(ReactorSimOptions options)
    : options_(std::move(options)) {
  provider_ = std::make_shared<serve::ModelProvider>(fixture().model);
  serve::ServiceConfig sc;
  sc.max_delay_us = options_.max_delay_us;
  sc.queue_capacity = options_.queue_capacity;
  sc.worker_threads = 1;
  service_ = std::make_unique<serve::DiagnosisService>(provider_, sc);
  hooks_.statsz = [this] { return statsz_payload; };
  loop_ = std::make_unique<serve::ReactorLoop>(
      *service_, fixture().world.fs, options_.reactor, &hooks_, clock_.fn());
}

ReactorSim::~ReactorSim() {
  // The service must drain before the loop dies: in-flight completions
  // hold the completion queue alive (shared_ptr), but stopping first
  // keeps the shutdown ordering boring.
  service_->stop();
}

SimConn ReactorSim::connect() {
#if defined(__linux__)
  int fds[2];
  DIAGNET_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
  SimConn client(fds[1]);
  if (options_.socket_buffer_bytes > 0) {
    client.shrink_buffers(options_.socket_buffer_bytes);
    int bytes = options_.socket_buffer_bytes;
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    ::setsockopt(fds[0], SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
  }
  // Client side is non-blocking so drain()/send() never hang a test.
  {
    const int flags = ::fcntl(fds[1], F_GETFL, 0);
    if (flags >= 0) ::fcntl(fds[1], F_SETFL, flags | O_NONBLOCK);
  }
  const util::Status adopted = loop_->adopt(fds[0]);
  DIAGNET_REQUIRE(adopted.ok());
  pump();  // process the adoption inbox so the connection is live
  return client;
#else
  return SimConn();
#endif
}

int ReactorSim::pump(int timeout_ms) { return loop_->poll_once(timeout_ms); }

int ReactorSim::pump_until_idle(int max_passes) {
  int passes = 0;
  while (passes < max_passes) {
    ++passes;
    if (loop_->poll_once(0) == 0) break;
  }
  return passes;
}

bool ReactorSim::wait_line(SimConn& conn, std::string* line, int max_passes) {
  for (int pass = 0; pass < max_passes; ++pass) {
    if (conn.next_line(line)) return true;
    const bool open = conn.drain();
    if (conn.next_line(line)) return true;
    if (!open) return false;  // EOF with no further complete line
    // Blocking pass: parks in epoll_wait, woken by readiness or by the
    // completion queue's eventfd — never a sleep.
    loop_->poll_once(50);
  }
  return false;
}

std::string ReactorSim::request_line(std::size_t index, std::uint64_t id,
                                     double deadline_ms) const {
  return tiny_request_line(index, id, deadline_ms);
}

std::size_t ReactorSim::faulty_samples() const {
  return fixture().faulty.size();
}

const data::FeatureSpace& ReactorSim::fs() const {
  return fixture().world.fs;
}

}  // namespace diagnet::testkit
