// Invariant checkers: each function runs ONE randomized scenario drawn
// from ctx.rng and records its verdict through ctx.check*(). They are the
// semantic core of the paper's extensibility claims:
//
//   * landmark-permutation invariance — LandPooling's commutative pooling
//     means no model output may depend on landmark order (§III-C);
//   * landmark add/remove extensibility — feeding a trained model more (or
//     fewer) landmarks changes neither output dimensions nor the scores of
//     surviving features (§III-C, §III-F);
//   * Algorithm 1 score weighting — output stays a distribution and
//     preserves the attention ordering inside each family group;
//   * ensemble averaging — w_U ∈ [0, 1] and the blend is convex (§III-F).
//
// The same checkers back the selfcheck suites and the gtest property
// binaries; gtest calls them directly with a CaseContext and asserts ok().
#pragma once

#include "testkit/harness.h"

namespace diagnet::testkit {

/// Pooled features and coarse logits are invariant under a random landmark
/// permutation of a random batch through a random small CoarseNet.
void check_pooling_permutation(CaseContext& ctx);

/// The full inference tail is *equivariant*: permuting landmarks permutes
/// attention γ, Algorithm 1 scores, ensemble scores and the final ranking
/// by exactly the induced feature permutation.
void check_ranking_permutation(CaseContext& ctx);

/// Output dimensions are independent of the landmark count fed forward.
void check_extensibility_dims(CaseContext& ctx);

/// Appending masked-out landmarks (garbage values, mask 0) is a bit-exact
/// no-op on logits, and attention puts exactly 0 on masked features.
void check_extensibility_masked_noop(CaseContext& ctx);

/// Adding unavailable landmarks to the feature space leaves the scores and
/// relative ranking of all surviving features unchanged through score
/// weighting and ensemble blending.
void check_extensibility_ranking(CaseContext& ctx);

/// Algorithm 1: normalisation, non-negativity, within-group order
/// preservation, and the s ∈ {0, 1} identity cases.
void check_score_weighting(CaseContext& ctx);

/// Ensemble blend: w_U = Σ_{j∈U} γ̂'_j ∈ [0, 1], elementwise convexity,
/// normalisation, and the empty-U degenerate case.
void check_ensemble_convexity(CaseContext& ctx);

}  // namespace diagnet::testkit
