#include "testkit/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "nn/quantized.h"
#include "tensor/dispatch.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "testkit/gen.h"
#include "testkit/oracle.h"

namespace diagnet::testkit {

namespace {

using tensor::detail::Kernels;

// Same-precision reordering tolerance as the GEMM oracle suites.
constexpr double kSumTol = 1e-10;

/// Spans that cross every kernel regime: empty, below the 4-lane width,
/// exactly at it, the avx2 small-reduce threshold (16) and its neighbours,
/// and a couple of long random spans for the unrolled bodies.
std::vector<std::size_t> spans(util::Rng& rng) {
  return {0,  1,  3,  4,  5,  15, 16, 17,
          gen::dim(rng, 33, 96), gen::dim(rng, 200, 600)};
}

std::vector<double> vec(util::Rng& rng, std::size_t n, double scale = 1.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal() * scale;
  return v;
}

/// Every tier this binary can actually run here. Scalar is always first.
std::vector<const Kernels*> runnable_tiers() {
  std::vector<const Kernels*> tiers = {&tensor::detail::scalar_kernels()};
  if (tensor::kernel_tier_supported(tensor::KernelTier::kAvx2))
    tiers.push_back(tensor::detail::avx2_kernels());
  return tiers;
}

void check_one_tier(CaseContext& ctx, const Kernels& K, std::size_t n,
                    util::Rng& rng) {
  const std::string tag =
      std::string(" [") + K.name + " n=" + std::to_string(n) + "]";

  const std::vector<double> a = vec(rng, n);
  const std::vector<double> b = vec(rng, n);

  // dot vs long-double reference.
  long double want_dot = 0.0L;
  for (std::size_t j = 0; j < n; ++j)
    want_dot += static_cast<long double>(a[j]) * b[j];
  ctx.check_near(K.dot(a.data(), b.data(), n),
                 static_cast<double>(want_dot), kSumTol, "dot" + tag);

  // reduce_sum / reduce_sq_dev.
  long double want_sum = 0.0L;
  for (double x : a) want_sum += x;
  ctx.check_near(K.reduce_sum(a.data(), n), static_cast<double>(want_sum),
                 kSumTol, "reduce_sum" + tag);
  const double mean = n > 0 ? static_cast<double>(want_sum) / n : 0.0;
  long double want_sq = 0.0L;
  for (double x : a) {
    const long double d = static_cast<long double>(x) - mean;
    want_sq += d * d;
  }
  ctx.check_near(K.reduce_sq_dev(a.data(), n, mean),
                 static_cast<double>(want_sq), kSumTol,
                 "reduce_sq_dev" + tag);

  // reduce_max / reduce_absmax are exact (no rounding), and the n == 0
  // edge is part of the contract: -inf and 0 respectively.
  double want_max = -std::numeric_limits<double>::infinity();
  double want_absmax = 0.0;
  for (double x : a) {
    want_max = std::max(want_max, x);
    want_absmax = std::max(want_absmax, std::fabs(x));
  }
  ctx.check(K.reduce_max(a.data(), n) == want_max, "reduce_max" + tag);
  ctx.check(K.reduce_absmax(a.data(), n) == want_absmax,
            "reduce_absmax" + tag);

  // axpy1 vs reference (fma-per-lane tolerance is still within kSumTol).
  const double alpha = rng.normal();
  std::vector<double> c = vec(rng, n);
  std::vector<double> c1 = c;
  K.axpy1(c1.data(), b.data(), alpha, n);
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double want = static_cast<double>(
        static_cast<long double>(c[j]) + static_cast<long double>(alpha) * b[j]);
    worst = std::max(worst, std::fabs(c1[j] - want) /
                                std::max(std::fabs(want), 1.0));
  }
  ctx.check_near(worst, 0.0, kSumTol, "axpy1" + tag);

  // axpy4 vs long-double reference. On the AVX2 tier the fused group is
  // additionally bit-identical to four ordered axpy1 calls (its FMA chain
  // is rooted at c[j]); the scalar tier sums the four products in one
  // expression, so there it only has to be *near* the sequential result —
  // its batch/single equality comes from both paths calling this same
  // axpy4, which the gemv-composition check below pins.
  const std::vector<double> b0 = vec(rng, n), b1 = vec(rng, n);
  const std::vector<double> b2 = vec(rng, n), b3 = vec(rng, n);
  const double a0 = rng.normal(), a1 = rng.normal();
  const double a2 = rng.normal(), a3 = rng.normal();
  std::vector<double> fused = c;
  K.axpy4(fused.data(), b0.data(), b1.data(), b2.data(), b3.data(), a0, a1,
          a2, a3, n);
  double worst4 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double want = static_cast<double>(
        static_cast<long double>(c[j]) + static_cast<long double>(a0) * b0[j] +
        static_cast<long double>(a1) * b1[j] +
        static_cast<long double>(a2) * b2[j] +
        static_cast<long double>(a3) * b3[j]);
    worst4 = std::max(worst4, std::fabs(fused[j] - want) /
                                  std::max(std::fabs(want), 1.0));
  }
  ctx.check_near(worst4, 0.0, kSumTol, "axpy4" + tag);
  if (std::string(K.name) == "avx2") {
    std::vector<double> seq = c;
    K.axpy1(seq.data(), b0.data(), a0, n);
    K.axpy1(seq.data(), b1.data(), a1, n);
    K.axpy1(seq.data(), b2.data(), a2, n);
    K.axpy1(seq.data(), b3.data(), a3, n);
    ctx.check(fused == seq, "axpy4 == 4x axpy1 bitwise" + tag);
  }

  // scale_div vs plain division (exact: same single fp op per lane).
  const double denom = 1.0 + std::fabs(rng.normal()) * 3.0;
  std::vector<double> scaled = c;
  K.scale_div(scaled.data(), denom, n);
  bool div_exact = true;
  for (std::size_t j = 0; j < n; ++j)
    div_exact = div_exact && scaled[j] == c[j] / denom;
  ctx.check(div_exact, "scale_div" + tag);
}

void check_gemv_tier(CaseContext& ctx, const Kernels& K, std::size_t k,
                     std::size_t n, util::Rng& rng) {
  const std::string tag = std::string(" [") + K.name + " k=" +
                          std::to_string(k) + " n=" + std::to_string(n) +
                          "]";
  const std::vector<double> a = vec(rng, k);
  const std::vector<double> b = vec(rng, k * n);
  std::vector<double> c0 = vec(rng, n);

  // Zero-row (k == 0) and zero-col (n == 0) must be well-defined no-ops.
  std::vector<double> c = c0;
  K.gemv(c.data(), a.data(), b.data(), k, n, n);
  if (k == 0 || n == 0) {
    ctx.check(c == c0, "gemv zero-shape is a no-op" + tag);
    return;
  }

  long double worst = 0.0L;
  for (std::size_t j = 0; j < n; ++j) {
    long double want = c0[j];
    for (std::size_t kk = 0; kk < k; ++kk)
      want += static_cast<long double>(a[kk]) * b[kk * n + j];
    const long double w = std::fabs(static_cast<long double>(c[j]) - want) /
                          std::max<long double>(std::fabs(want), 1.0L);
    worst = std::max(worst, w);
  }
  ctx.check_near(static_cast<double>(worst), 0.0, kSumTol, "gemv" + tag);

  // gemv must equal its own tier's grouped axpy composition bitwise — the
  // 1-row GEMM fast path depends on this.
  std::vector<double> grouped = c0;
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4)
    K.axpy4(grouped.data(), &b[kk * n], &b[(kk + 1) * n], &b[(kk + 2) * n],
            &b[(kk + 3) * n], a[kk], a[kk + 1], a[kk + 2], a[kk + 3], n);
  for (; kk < k; ++kk) K.axpy1(grouped.data(), &b[kk * n], a[kk], n);
  ctx.check(c == grouped, "gemv == grouped axpy bitwise" + tag);
}

}  // namespace

void check_kernel_tiers(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;
  const std::vector<const Kernels*> tiers = runnable_tiers();

  for (std::size_t n : spans(rng)) {
    ctx.begin_case();
    for (const Kernels* K : tiers) check_one_tier(ctx, *K, n, rng);

    // Cross-tier agreement: FMA reorders rounding, so scalar vs avx2 only
    // match to the oracle tolerance — but both must be near the truth, so
    // they must be near each other.
    if (tiers.size() > 1 && n > 0) {
      const std::vector<double> a = vec(rng, n), b = vec(rng, n);
      ctx.check_near(tiers[0]->dot(a.data(), b.data(), n),
                     tiers[1]->dot(a.data(), b.data(), n), kSumTol,
                     "scalar vs avx2 dot n=" + std::to_string(n));
    }
  }

  // gemv shapes: zero-row, zero-col, tiny, and one realistic FC panel.
  const std::size_t k_rand = gen::dim(rng, 5, 40);
  const std::size_t n_rand = gen::dim(rng, 5, 40);
  const struct { std::size_t k, n; } shapes[] = {
      {0, 7}, {7, 0}, {0, 0}, {1, 1}, {3, 9}, {k_rand, n_rand}, {64, 96}};
  for (const auto& s : shapes) {
    ctx.begin_case();
    for (const Kernels* K : tiers) check_gemv_tier(ctx, *K, s.k, s.n, rng);
  }
}

void check_quantize_roundtrip(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;
  const std::vector<const Kernels*> tiers = runnable_tiers();

  ctx.begin_case();
  const std::size_t in = gen::dim(rng, 1, 48);
  const std::size_t out = gen::dim(rng, 1, 24);
  tensor::Matrix weight = gen::matrix(rng, in, out, 2.0);
  // Force one all-zero column: its scale must fall back to 1 (never a
  // divide-by-zero) and its codes must all be zero.
  const std::size_t zero_col = rng.uniform_index(out);
  for (std::size_t i = 0; i < in; ++i) weight(i, zero_col) = 0.0;

  const nn::QuantizedLinear q = nn::quantize_weights(weight);
  ctx.check(q.valid() && q.in == in && q.out == out, "quantized dims");

  for (std::size_t j = 0; j < out; ++j) {
    const double s = q.scales[j];
    ctx.check(s > 0.0, "scale positive j=" + std::to_string(j));
    for (std::size_t i = 0; i < in; ++i) {
      const int code = q.weights[i * out + j];
      ctx.check(code >= -127 && code <= 127, "code range");
      // Round-to-nearest bound: |w - q*s| <= s/2 (+ a float-scale ulp).
      const double err = std::fabs(weight(i, j) - code * s);
      ctx.check(err <= 0.5 * s * (1.0 + 1e-6),
                "round-trip bound i=" + std::to_string(i) +
                    " j=" + std::to_string(j));
    }
    if (j == zero_col) {
      ctx.check(s == 1.0, "zero column scale falls back to 1");
      bool all_zero = true;
      for (std::size_t i = 0; i < in; ++i)
        all_zero = all_zero && q.weights[i * out + j] == 0;
      ctx.check(all_zero, "zero column codes are zero");
    }
  }

  // Empty matrices quantize to an inert result.
  ctx.check(!nn::quantize_weights(tensor::Matrix(0, 4)).valid(),
            "empty weight is invalid");

  // quantize_row and qgemv are exact integer kernels: every tier must
  // match a naive int64 reference bit-for-bit, including in == 0.
  ctx.begin_case();
  const std::vector<double> x = [&] {
    std::vector<double> v(in);
    for (double& e : v) e = rng.normal() * 3.0;
    return v;
  }();
  const double absmax = *std::max_element(
      x.begin(), x.end(), [](double l, double r) {
        return std::fabs(l) < std::fabs(r);
      });
  const double sx = std::fabs(absmax) > 0.0 ? std::fabs(absmax) / 127.0 : 1.0;
  std::vector<std::int8_t> want_q(in);
  for (std::size_t i = 0; i < in; ++i)
    want_q[i] = static_cast<std::int8_t>(
        std::clamp(std::lrint(x[i] / sx), -127L, 127L));
  for (const Kernels* K : tiers) {
    std::vector<std::int8_t> got_q(in);
    K->quantize_row(x.data(), 1.0 / sx, got_q.data(), in);
    ctx.check(got_q == want_q,
              std::string("quantize_row exact [") + K->name + "]");

    std::vector<std::int32_t> acc(out, 0);
    K->qgemv(want_q.data(), q.weights.data(), in, out, acc.data());
    bool exact = true;
    for (std::size_t j = 0; j < out; ++j) {
      std::int64_t want = 0;
      for (std::size_t i = 0; i < in; ++i)
        want += static_cast<std::int64_t>(want_q[i]) * q.weights[i * out + j];
      exact = exact && acc[j] == want;
    }
    ctx.check(exact, std::string("qgemv exact [") + K->name + "]");

    std::vector<std::int32_t> empty_acc(out, 7);
    K->qgemv(want_q.data(), q.weights.data(), 0, out, empty_acc.data());
    bool untouched = true;
    for (std::int32_t v : empty_acc) untouched = untouched && v == 7;
    ctx.check(untouched, std::string("qgemv in=0 no-op [") + K->name + "]");
  }

  // Tier-invariance of the full forward: the int8 path must produce the
  // same bits whichever tier served it (quantized.h contract).
  if (tiers.size() > 1) {
    ctx.begin_case();
    const tensor::Matrix input = gen::matrix(rng, 3, in, 2.0);
    const tensor::Matrix bias = gen::matrix(rng, 1, out);
    tensor::Matrix out_scalar, out_avx2;
    const bool forced =
        tensor::force_kernel_tier(tensor::KernelTier::kScalar);
    nn::quantized_forward(q, input, bias, out_scalar);
    if (forced) tensor::force_kernel_tier(tensor::KernelTier::kAvx2);
    nn::quantized_forward(q, input, bias, out_avx2);
    tensor::reset_kernel_tier();
    ctx.check(oracle::max_abs_diff(out_scalar, out_avx2) == 0.0,
              "quantized_forward bitwise tier-invariant");
  }
}

}  // namespace diagnet::testkit
