#include "testkit/differential.h"

#include <cmath>
#include <string>
#include <vector>

#include "core/attention.h"
#include "nn/coarse_net.h"
#include "nn/land_pooling.h"
#include "nn/softmax.h"
#include "tensor/ops.h"
#include "testkit/gen.h"
#include "testkit/oracle.h"

namespace diagnet::testkit {

namespace {

// Agreement bound for same-precision kernels that merely reorder the
// double-precision sums (tiling, sharding): relative to max(|a|,|b|,1).
constexpr double kSumTol = 1e-10;

struct GemmShape {
  std::size_t m, k, n;
  const char* regime;
};

/// One shape per dispatch regime of tensor::ops (kSmallMacs = 2^15 macs
/// separates the scalar loop from the tiled kernel; kParallelMacs = 2^22
/// sends the work to the thread pool).
std::vector<GemmShape> gemm_shapes(util::Rng& rng) {
  return {
      {gen::dim(rng, 1, 8), gen::dim(rng, 1, 16), gen::dim(rng, 1, 8),
       "scalar"},
      {gen::dim(rng, 33, 72), gen::dim(rng, 65, 140), gen::dim(rng, 33, 72),
       "tiled"},
      {gen::dim(rng, 150, 180), gen::dim(rng, 150, 180),
       gen::dim(rng, 150, 180), "parallel"},
  };
}

}  // namespace

void check_gemm_oracle(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;
  for (const GemmShape& shape : gemm_shapes(rng)) {
    ctx.begin_case();
    const std::string tag = std::string(" [") + shape.regime + " " +
                            std::to_string(shape.m) + "x" +
                            std::to_string(shape.k) + "x" +
                            std::to_string(shape.n) + "]";

    // C = A · B
    const tensor::Matrix a = gen::matrix(rng, shape.m, shape.k);
    const tensor::Matrix b = gen::matrix(rng, shape.k, shape.n);
    tensor::Matrix c(shape.m, shape.n);
    tensor::gemm(a, b, c);
    ctx.check_near(oracle::max_rel_diff(c, oracle::gemm(a, b)), 0.0, kSumTol,
                   "gemm vs oracle" + tag);

    // C = A^T · B with A stored (K x M)
    const tensor::Matrix at = gen::matrix(rng, shape.k, shape.m);
    tensor::Matrix c2(shape.m, shape.n);
    tensor::gemm_at_b(at, b, c2);
    const tensor::Matrix want_atb = oracle::gemm_at_b(at, b);
    ctx.check_near(oracle::max_rel_diff(c2, want_atb), 0.0, kSumTol,
                   "gemm_at_b vs oracle" + tag);

    // C += A^T · B on a random pre-filled accumulator
    const tensor::Matrix before = gen::matrix(rng, shape.m, shape.n);
    tensor::Matrix c3 = before;
    tensor::gemm_at_b_acc(at, b, c3);
    tensor::Matrix want_acc = want_atb;
    for (std::size_t i = 0; i < want_acc.rows(); ++i)
      for (std::size_t j = 0; j < want_acc.cols(); ++j)
        want_acc(i, j) += before(i, j);
    ctx.check_near(oracle::max_rel_diff(c3, want_acc), 0.0, kSumTol,
                   "gemm_at_b_acc vs oracle" + tag);

    // C = A · B^T with B stored (N x K)
    const tensor::Matrix bt = gen::matrix(rng, shape.n, shape.k);
    tensor::Matrix c4(shape.m, shape.n);
    tensor::gemm_a_bt(a, bt, c4);
    ctx.check_near(oracle::max_rel_diff(c4, oracle::gemm_a_bt(a, bt)), 0.0,
                   kSumTol, "gemm_a_bt vs oracle" + tag);
  }
}

void check_softmax_oracle(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;
  ctx.begin_case();
  const std::size_t batch = gen::dim(rng, 1, 12);
  const std::size_t classes = gen::dim(rng, 2, 9);
  // Large logits to exercise the max-shift stability path.
  const tensor::Matrix logits = gen::matrix(rng, batch, classes, 20.0);
  const std::vector<std::size_t> labels = gen::labels(rng, batch, classes);

  const tensor::Matrix probs = nn::softmax(logits);
  const tensor::Matrix want_probs = oracle::softmax(logits);
  ctx.check_near(oracle::max_abs_diff(probs, want_probs), 0.0, 1e-12,
                 "softmax vs oracle");
  for (std::size_t i = 0; i < batch; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < classes; ++j) sum += probs(i, j);
    ctx.check_near(sum, 1.0, 1e-12, "softmax row sum");
  }

  ctx.begin_case();
  tensor::Matrix grad, want_grad;
  const double loss = nn::softmax_cross_entropy(logits, labels, &grad);
  const double want_loss =
      oracle::softmax_cross_entropy(logits, labels, &want_grad);
  ctx.check_near(loss, want_loss, 1e-12, "cross-entropy loss vs oracle");
  ctx.check_near(oracle::max_abs_diff(grad, want_grad), 0.0, 1e-12,
                 "cross-entropy gradient vs oracle");

  // Sharded-sum variant: sum/B with grad_scale 1/B must equal the mean.
  ctx.begin_case();
  tensor::Matrix shard_grad;
  const double sum_loss = nn::softmax_cross_entropy_sum(
      logits, labels.data(), labels.size(), &shard_grad,
      1.0 / static_cast<double>(batch));
  ctx.check_near(sum_loss / static_cast<double>(batch), want_loss, 1e-12,
                 "sharded-sum loss vs oracle");
  ctx.check_near(oracle::max_abs_diff(shard_grad, want_grad), 0.0, 1e-12,
                 "sharded-sum gradient vs oracle");
}

void check_landpool_oracle(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;
  ctx.begin_case();
  const std::size_t k = gen::dim(rng, 2, 6);
  const std::size_t filters = gen::dim(rng, 2, 5);
  const std::size_t landmarks = gen::dim(rng, 2, 9);
  const std::size_t batch = gen::dim(rng, 1, 5);
  util::Rng layer_rng = rng.fork(11);
  nn::LandPooling pool(k, filters, nn::default_pool_ops(), layer_rng);
  const nn::LandBatch input = gen::land_batch(rng, batch, landmarks, k, 1);

  const tensor::Matrix out = pool.forward(input.land, input.mask);
  const tensor::Matrix want = oracle::land_pooling(
      pool.kernel().value, pool.bias().value, pool.ops(), input.land,
      input.mask);
  ctx.check_near(oracle::max_rel_diff(out, want), 0.0, 1e-9,
                 "LandPooling forward vs oracle");

  // Workspace path must match the member-cache path bit for bit.
  ctx.begin_case();
  nn::LandPooling::PoolContext ws;
  tensor::Matrix ws_out;
  pool.forward(input.land, input.mask, ws, ws_out);
  ctx.check(oracle::max_abs_diff(out, ws_out) == 0.0,
            "workspace forward must equal member forward bit-exact");

  // backward_input routes identically to backward's input gradient.
  ctx.begin_case();
  const tensor::Matrix grad_pooled =
      gen::matrix(rng, batch, pool.out_features());
  const tensor::Matrix dx_only = pool.backward_input(grad_pooled);
  pool.kernel().zero_grad();
  pool.bias().zero_grad();
  const tensor::Matrix dx_full = pool.backward(grad_pooled);
  ctx.check(oracle::max_abs_diff(dx_only, dx_full) == 0.0,
            "backward_input must equal backward's dx bit-exact");
}

void check_landpool_grad(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;
  ctx.begin_case();
  const std::size_t k = gen::dim(rng, 2, 4);
  const std::size_t filters = gen::dim(rng, 2, 3);
  const std::size_t landmarks = gen::dim(rng, 3, 6);
  util::Rng layer_rng = rng.fork(12);
  nn::LandPooling pool(k, filters, nn::default_pool_ops(), layer_rng);

  // The pooled output is only piecewise smooth (the sort can reorder),
  // so redraw until every pair of conv values inside one (sample, filter)
  // group has a margin far wider than the probe step.
  nn::LandBatch input;
  bool separated = false;
  for (std::size_t attempt = 0; attempt < 32 && !separated; ++attempt) {
    input = gen::land_batch(rng, 1, landmarks, k, 1, /*density=*/1.0);
    separated = true;
    for (std::size_t f = 0; f < filters && separated; ++f) {
      std::vector<double> values;
      for (std::size_t lam = 0; lam < landmarks; ++lam) {
        double s = pool.bias().value(0, f);
        for (std::size_t t = 0; t < k; ++t)
          s += pool.kernel().value(f, t) * input.land(0, lam * k + t);
        values.push_back(s);
      }
      for (std::size_t x = 0; x < values.size() && separated; ++x)
        for (std::size_t y = x + 1; y < values.size(); ++y)
          if (std::abs(values[x] - values[y]) < 1e-3) {
            separated = false;
            break;
          }
    }
  }
  if (!separated) return;  // pathologically tied draw: skip this iteration

  // Scalar loss L = Σ w ⊙ pool(land); dL/dpooled = w.
  const tensor::Matrix weights = gen::matrix(rng, 1, pool.out_features());
  const auto loss = [&](const tensor::Matrix& land) {
    const tensor::Matrix out = pool.forward(land, input.mask);
    double total = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j)
      total += weights(0, j) * out(0, j);
    return total;
  };

  pool.kernel().zero_grad();
  pool.bias().zero_grad();
  (void)pool.forward(input.land, input.mask);
  const tensor::Matrix dx = pool.backward(weights);

  const double eps = 1e-6;
  // Input gradient: probe a handful of coordinates.
  for (std::size_t probe = 0; probe < 6; ++probe) {
    const std::size_t col =
        static_cast<std::size_t>(rng.uniform_index(input.land.cols()));
    tensor::Matrix plus = input.land, minus = input.land;
    plus(0, col) += eps;
    minus(0, col) -= eps;
    const double fd = (loss(plus) - loss(minus)) / (2.0 * eps);
    ctx.check_near(dx(0, col), fd, 1e-4,
                   "input gradient vs finite difference, col " +
                       std::to_string(col));
  }

  // Parameter gradients: probe kernel and bias entries. Perturbing
  // parameters re-runs forward through the same layer, so restore after.
  const auto param_loss = [&]() { return loss(input.land); };
  for (std::size_t probe = 0; probe < 6; ++probe) {
    const std::size_t f =
        static_cast<std::size_t>(rng.uniform_index(filters));
    const std::size_t t = static_cast<std::size_t>(rng.uniform_index(k));
    double& entry = pool.kernel().value(f, t);
    const double saved = entry;
    entry = saved + eps;
    const double up = param_loss();
    entry = saved - eps;
    const double down = param_loss();
    entry = saved;
    ctx.check_near(pool.kernel().grad(f, t), (up - down) / (2.0 * eps), 1e-4,
                   "kernel gradient vs finite difference (" +
                       std::to_string(f) + "," + std::to_string(t) + ")");
  }
  for (std::size_t f = 0; f < filters; ++f) {
    double& entry = pool.bias().value(0, f);
    const double saved = entry;
    entry = saved + eps;
    const double up = param_loss();
    entry = saved - eps;
    const double down = param_loss();
    entry = saved;
    ctx.check_near(pool.bias().grad(0, f), (up - down) / (2.0 * eps), 1e-4,
                   "bias gradient vs finite difference, filter " +
                       std::to_string(f));
  }
}

void check_attention_batch(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;
  ctx.begin_case();
  const std::size_t L = gen::dim(rng, 3, 9);
  const netsim::Topology topo = gen::topology(rng, L);
  const data::FeatureSpace fs(topo);
  const nn::CoarseNetConfig config = gen::small_coarse_config(rng);
  util::Rng net_rng = rng.fork(13);
  nn::CoarseNet net(config, net_rng);

  const std::size_t batch = gen::dim(rng, 2, 6);
  const nn::LandBatch all = gen::land_batch(
      rng, batch, L, config.features_per_landmark, config.local_features);

  const std::vector<core::AttentionResult> batched =
      core::compute_attention_batch(net, all, fs);
  ctx.check_eq(batched.size(), batch, "one attention result per row");

  for (std::size_t r = 0; r < batch; ++r) {
    ctx.begin_case();
    nn::LandBatch row;
    row.land = tensor::Matrix(1, all.land.cols());
    row.mask = tensor::Matrix(1, all.mask.cols());
    row.local = tensor::Matrix(1, all.local.cols());
    for (std::size_t j = 0; j < all.land.cols(); ++j)
      row.land(0, j) = all.land(r, j);
    for (std::size_t j = 0; j < all.mask.cols(); ++j)
      row.mask(0, j) = all.mask(r, j);
    for (std::size_t j = 0; j < all.local.cols(); ++j)
      row.local(0, j) = all.local(r, j);

    const core::AttentionResult single =
        core::compute_attention(net, row, fs);
    ctx.check_eq(batched[r].coarse_argmax, single.coarse_argmax,
                 "argmax, row " + std::to_string(r));
    for (std::size_t c = 0; c < single.coarse_probs.size(); ++c)
      ctx.check(batched[r].coarse_probs[c] == single.coarse_probs[c],
                "coarse prob must be bit-identical, row " +
                    std::to_string(r));
    for (std::size_t j = 0; j < single.gamma.size(); ++j)
      ctx.check(batched[r].gamma[j] == single.gamma[j],
                "gamma must be bit-identical, row " + std::to_string(r) +
                    " feature " + std::to_string(j));
  }
}

}  // namespace diagnet::testkit
