#include "testkit/invariants.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "core/attention.h"
#include "core/ensemble.h"
#include "core/score_weighting.h"
#include "data/feature_space.h"
#include "nn/coarse_net.h"
#include "nn/land_pooling.h"
#include "testkit/gen.h"
#include "testkit/oracle.h"

namespace diagnet::testkit {

namespace {

constexpr double kTol = 1e-9;

/// Move every landmark block λ of `batch` to slot perm[λ].
nn::LandBatch permute_landmarks(const nn::LandBatch& batch,
                                const std::vector<std::size_t>& perm,
                                std::size_t k) {
  nn::LandBatch out;
  out.land = tensor::Matrix(batch.land.rows(), batch.land.cols());
  out.mask = tensor::Matrix(batch.mask.rows(), batch.mask.cols());
  out.local = batch.local;
  for (std::size_t i = 0; i < batch.land.rows(); ++i) {
    for (std::size_t lam = 0; lam < perm.size(); ++lam) {
      out.mask(i, perm[lam]) = batch.mask(i, lam);
      for (std::size_t t = 0; t < k; ++t)
        out.land(i, perm[lam] * k + t) = batch.land(i, lam * k + t);
    }
  }
  return out;
}

/// Feature index map induced by a landmark permutation: landmark features
/// follow their landmark, local features stay put.
std::vector<std::size_t> feature_map(const data::FeatureSpace& fs,
                                     const std::vector<std::size_t>& perm) {
  std::vector<std::size_t> map(fs.total());
  for (std::size_t j = 0; j < fs.total(); ++j) {
    if (fs.is_landmark_feature(j)) {
      map[j] = fs.landmark_feature(perm[fs.landmark_of(j)], fs.metric_of(j));
    } else {
      map[j] = j;
    }
  }
  return map;
}

/// Scores -> ranking with the deterministic (score desc, index asc)
/// ordering; only used to compare two rankings of near-identical scores.
std::vector<std::size_t> ranking_of(const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] != scores[b] ? scores[a] > scores[b] : a < b;
  });
  return order;
}

/// Two rankings agree position by position; a mismatch is tolerated only
/// where the scores are tied within `tol` (FP reordering noise).
bool rankings_agree(const std::vector<std::size_t>& a,
                    const std::vector<double>& scores_a,
                    const std::vector<std::size_t>& b,
                    const std::vector<double>& scores_b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r] == b[r]) continue;
    if (std::abs(scores_a[a[r]] - scores_b[b[r]]) > tol) return false;
  }
  return true;
}

}  // namespace

void check_pooling_permutation(CaseContext& ctx) {
  ctx.begin_case();
  util::Rng& rng = ctx.rng;
  const std::size_t k = gen::dim(rng, 2, 6);
  const std::size_t filters = gen::dim(rng, 2, 5);
  const std::size_t landmarks = gen::dim(rng, 3, 9);
  const std::size_t batch_size = gen::dim(rng, 1, 4);

  std::vector<nn::PoolOp> ops = nn::default_pool_ops();
  util::Rng layer_rng = rng.fork(1);
  nn::LandPooling pool(k, filters, ops, layer_rng);

  const nn::LandBatch batch =
      gen::land_batch(rng, batch_size, landmarks, k, 1);
  const auto perm = gen::permutation(rng, landmarks);
  const nn::LandBatch permuted = permute_landmarks(batch, perm, k);

  const tensor::Matrix base = pool.forward(batch.land, batch.mask);
  const tensor::Matrix out = pool.forward(permuted.land, permuted.mask);
  ctx.check_near(oracle::max_abs_diff(base, out), 0.0, kTol,
                 "pooled features must ignore landmark order");

  // End to end through a random coarse network (k = 5 / local = 5).
  ctx.begin_case();
  const nn::CoarseNetConfig config = gen::small_coarse_config(rng);
  util::Rng net_rng = rng.fork(2);
  nn::CoarseNet net(config, net_rng);
  const std::size_t L = gen::dim(rng, 3, 10);
  const nn::LandBatch nb = gen::land_batch(
      rng, batch_size, L, config.features_per_landmark,
      config.local_features);
  const auto nperm = gen::permutation(rng, L);
  const nn::LandBatch npermuted =
      permute_landmarks(nb, nperm, config.features_per_landmark);
  const tensor::Matrix logits = net.forward(nb);
  const tensor::Matrix logits_perm = net.forward(npermuted);
  ctx.check_near(oracle::max_abs_diff(logits, logits_perm), 0.0, kTol,
                 "coarse logits must ignore landmark order");
}

void check_ranking_permutation(CaseContext& ctx) {
  ctx.begin_case();
  util::Rng& rng = ctx.rng;
  const std::size_t L = gen::dim(rng, 4, 10);
  const netsim::Topology topo = gen::topology(rng, L);
  const data::FeatureSpace fs(topo);
  const std::size_t m = fs.total();

  const nn::CoarseNetConfig config = gen::small_coarse_config(rng);
  util::Rng net_rng = rng.fork(3);
  nn::CoarseNet net(config, net_rng);

  const nn::LandBatch sample = gen::land_batch(
      rng, 1, L, config.features_per_landmark, config.local_features);
  const auto perm = gen::permutation(rng, L);
  const nn::LandBatch permuted =
      permute_landmarks(sample, perm, config.features_per_landmark);
  const auto map = feature_map(fs, perm);

  const core::AttentionResult a = core::compute_attention(net, sample, fs);
  const core::AttentionResult b =
      core::compute_attention(net, permuted, fs);

  ctx.check_eq(a.coarse_argmax, b.coarse_argmax,
               "coarse argmax must ignore landmark order");
  for (std::size_t c = 0; c < a.coarse_probs.size(); ++c)
    ctx.check_near(b.coarse_probs[c], a.coarse_probs[c], kTol,
                   "coarse probability " + std::to_string(c));
  for (std::size_t j = 0; j < m; ++j)
    ctx.check_near(b.gamma[map[j]], a.gamma[j], kTol,
                   "attention gamma of feature " + std::to_string(j));

  // Algorithm 1 tail must commute with the feature permutation too.
  ctx.begin_case();
  const auto tuned_a =
      core::weight_scores(a.gamma, a.coarse_probs, a.coarse_argmax, fs);
  const auto tuned_b =
      core::weight_scores(b.gamma, b.coarse_probs, b.coarse_argmax, fs);
  for (std::size_t j = 0; j < m; ++j)
    ctx.check_near(tuned_b[map[j]], tuned_a[j], kTol,
                   "tuned score of feature " + std::to_string(j));

  // Ensemble blend and final ranking.
  ctx.begin_case();
  const auto aux_a = gen::distribution(rng, m);
  std::vector<double> aux_b(m);
  for (std::size_t j = 0; j < m; ++j) aux_b[map[j]] = aux_a[j];
  std::vector<std::size_t> unknown_a, unknown_b;
  for (std::size_t j = 0; j < m; ++j)
    if (fs.is_landmark_feature(j) && rng.bernoulli(0.25)) {
      unknown_a.push_back(j);
      unknown_b.push_back(map[j]);
    }
  double w_a = 0.0, w_b = 0.0;
  const auto final_a =
      core::ensemble_average(tuned_a, aux_a, unknown_a, &w_a);
  const auto final_b =
      core::ensemble_average(tuned_b, aux_b, unknown_b, &w_b);
  ctx.check_near(w_b, w_a, kTol, "ensemble weight w_U");
  for (std::size_t j = 0; j < m; ++j)
    ctx.check_near(final_b[map[j]], final_a[j], kTol,
                   "final score of feature " + std::to_string(j));

  std::vector<std::size_t> rank_a = ranking_of(final_a);
  for (auto& j : rank_a) j = map[j];  // into the permuted index space
  const std::vector<std::size_t> rank_b = ranking_of(final_b);
  std::vector<double> mapped_scores(m);
  for (std::size_t j = 0; j < m; ++j) mapped_scores[map[j]] = final_a[j];
  ctx.check(rankings_agree(rank_a, mapped_scores, rank_b, final_b, 1e-12),
            "final ranking must ignore landmark order");
}

void check_extensibility_dims(CaseContext& ctx) {
  ctx.begin_case();
  util::Rng& rng = ctx.rng;
  const nn::CoarseNetConfig config = gen::small_coarse_config(rng);
  util::Rng net_rng = rng.fork(4);
  nn::CoarseNet net(config, net_rng);
  const std::size_t expected =
      config.pool_ops.size() * config.filters;

  // Two batches with different landmark counts through the same network:
  // every output dimension must be independent of L.
  const std::size_t l1 = gen::dim(rng, 1, 6);
  const std::size_t l2 = gen::dim(rng, 7, 14);
  for (const std::size_t L : {l1, l2}) {
    const nn::LandBatch batch = gen::land_batch(
        rng, 2, L, config.features_per_landmark, config.local_features);
    tensor::Matrix pooled =
        net.pooling().forward(batch.land, batch.mask);
    ctx.check_eq(pooled.cols(), expected,
                 "pooled width with L=" + std::to_string(L));
    const tensor::Matrix logits = net.forward(batch);
    ctx.check_eq(logits.cols(), config.classes,
                 "logit width with L=" + std::to_string(L));
    ctx.check_eq(logits.rows(), batch.size(),
                 "logit rows with L=" + std::to_string(L));
  }
}

void check_extensibility_masked_noop(CaseContext& ctx) {
  ctx.begin_case();
  util::Rng& rng = ctx.rng;
  const std::size_t L = gen::dim(rng, 3, 8);
  const std::size_t extra = gen::dim(rng, 1, 3);
  const netsim::Topology topo_base = gen::topology(rng, L);
  const netsim::Topology topo_ext = gen::topology(rng, L + extra);
  const data::FeatureSpace fs_base(topo_base);
  const data::FeatureSpace fs_ext(topo_ext);

  const nn::CoarseNetConfig config = gen::small_coarse_config(rng);
  util::Rng net_rng = rng.fork(5);
  nn::CoarseNet net(config, net_rng);
  const std::size_t k = config.features_per_landmark;

  const nn::LandBatch base =
      gen::land_batch(rng, 1, L, k, config.local_features);
  nn::LandBatch ext;
  ext.local = base.local;
  ext.land = gen::matrix(rng, 1, (L + extra) * k, 10.0);  // garbage values
  ext.mask = tensor::Matrix(1, L + extra);                 // extras masked
  for (std::size_t lam = 0; lam < L; ++lam) {
    ext.mask(0, lam) = base.mask(0, lam);
    for (std::size_t t = 0; t < k; ++t)
      ext.land(0, lam * k + t) = base.land(0, lam * k + t);
  }

  const tensor::Matrix logits_base = net.forward(base);
  const tensor::Matrix logits_ext = net.forward(ext);
  ctx.check(oracle::max_abs_diff(logits_base, logits_ext) == 0.0,
            "masked extra landmarks must be a bit-exact no-op on logits");

  ctx.begin_case();
  const core::AttentionResult att_base =
      core::compute_attention(net, base, fs_base);
  const core::AttentionResult att_ext =
      core::compute_attention(net, ext, fs_ext);
  for (std::size_t c = 0; c < att_base.coarse_probs.size(); ++c)
    ctx.check(att_ext.coarse_probs[c] == att_base.coarse_probs[c],
              "coarse probs must be bit-exact under masked extension");
  for (std::size_t lam = 0; lam < L; ++lam)
    for (std::size_t t = 0; t < k; ++t) {
      const std::size_t j = lam * k + t;
      ctx.check(att_ext.gamma[j] == att_base.gamma[j],
                "surviving gamma must be bit-exact, feature " +
                    std::to_string(j));
    }
  for (std::size_t lam = L; lam < L + extra; ++lam)
    for (std::size_t t = 0; t < k; ++t)
      ctx.check(att_ext.gamma[lam * k + t] == 0.0,
                "masked-out landmark features must carry exactly 0 gamma");
  for (std::size_t t = 0; t < fs_base.local_count(); ++t) {
    const std::size_t jb = L * k + t;
    const std::size_t je = (L + extra) * k + t;
    ctx.check(att_ext.gamma[je] == att_base.gamma[jb],
              "local gamma must be bit-exact under masked extension");
  }
}

void check_extensibility_ranking(CaseContext& ctx) {
  ctx.begin_case();
  util::Rng& rng = ctx.rng;
  const std::size_t L = gen::dim(rng, 3, 8);
  const std::size_t extra = gen::dim(rng, 1, 3);
  const netsim::Topology topo_base = gen::topology(rng, L);
  const netsim::Topology topo_ext = gen::topology(rng, L + extra);
  const data::FeatureSpace fs_base(topo_base);
  const data::FeatureSpace fs_ext(topo_ext);
  const std::size_t k = fs_base.metrics_per_landmark();
  const std::size_t m_base = fs_base.total();
  const std::size_t m_ext = fs_ext.total();

  // Extend an attention distribution with zero mass on the new (never
  // probed) landmarks — exactly what a trained model produces for them —
  // and push both through Algorithm 1 + ensemble.
  const auto gamma_base = gen::distribution(rng, m_base);
  std::vector<double> gamma_ext(m_ext, 0.0);
  for (std::size_t lam = 0; lam < L; ++lam)
    for (std::size_t t = 0; t < k; ++t)
      gamma_ext[lam * k + t] = gamma_base[lam * k + t];
  for (std::size_t t = 0; t < fs_base.local_count(); ++t)
    gamma_ext[(L + extra) * k + t] = gamma_base[L * k + t];

  const auto coarse = gen::distribution(rng, netsim::kFaultFamilies);
  const auto argmax = static_cast<std::size_t>(
      std::max_element(coarse.begin(), coarse.end()) - coarse.begin());

  const auto tuned_base =
      core::weight_scores(gamma_base, coarse, argmax, fs_base);
  const auto tuned_ext =
      core::weight_scores(gamma_ext, coarse, argmax, fs_ext);

  const auto survivor_ext = [&](std::size_t j) -> std::size_t {
    // Index of base feature j inside the extended space.
    return fs_base.is_landmark_feature(j) ? j : j + extra * k;
  };
  for (std::size_t j = 0; j < m_base; ++j)
    ctx.check_near(tuned_ext[survivor_ext(j)], tuned_base[j], kTol,
                   "tuned survivor score, feature " + std::to_string(j));

  ctx.begin_case();
  const auto aux_base = gen::distribution(rng, m_base);
  std::vector<double> aux_ext(m_ext, 0.0);
  for (std::size_t j = 0; j < m_base; ++j)
    aux_ext[survivor_ext(j)] = aux_base[j];

  std::vector<std::size_t> unknown_base, unknown_ext;
  for (std::size_t j = 0; j < m_base; ++j)
    if (fs_base.is_landmark_feature(j) && rng.bernoulli(0.2)) {
      unknown_base.push_back(j);
      unknown_ext.push_back(j);
    }
  for (std::size_t lam = L; lam < L + extra; ++lam)
    for (std::size_t t = 0; t < k; ++t)
      unknown_ext.push_back(lam * k + t);  // new landmarks are unknown

  double w_base = 0.0, w_ext = 0.0;
  const auto final_base =
      core::ensemble_average(tuned_base, aux_base, unknown_base, &w_base);
  const auto final_ext =
      core::ensemble_average(tuned_ext, aux_ext, unknown_ext, &w_ext);
  ctx.check_near(w_ext, w_base, kTol,
                 "w_U must be unchanged by zero-mass landmarks");
  for (std::size_t j = 0; j < m_base; ++j)
    ctx.check_near(final_ext[survivor_ext(j)], final_base[j], kTol,
                   "final survivor score, feature " + std::to_string(j));

  // Ranking restricted to surviving features is stable.
  const auto rank_base = ranking_of(final_base);
  const auto rank_ext = ranking_of(final_ext);
  std::vector<std::size_t> survivors_in_ext;
  std::vector<std::size_t> ext_to_base(m_ext, static_cast<std::size_t>(-1));
  for (std::size_t j = 0; j < m_base; ++j)
    ext_to_base[survivor_ext(j)] = j;
  for (std::size_t r = 0; r < rank_ext.size(); ++r)
    if (ext_to_base[rank_ext[r]] != static_cast<std::size_t>(-1))
      survivors_in_ext.push_back(ext_to_base[rank_ext[r]]);
  ctx.check(rankings_agree(rank_base, final_base, survivors_in_ext,
                           final_base, 1e-12),
            "survivor ranking must be unchanged by added landmarks");
}

void check_score_weighting(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;
  const netsim::Topology topo = netsim::default_topology();
  const data::FeatureSpace fs(topo);
  const std::size_t m = fs.total();

  const auto coarse = gen::distribution(rng, netsim::kFaultFamilies);
  const auto argmax = static_cast<std::size_t>(
      std::max_element(coarse.begin(), coarse.end()) - coarse.begin());
  const auto family = static_cast<data::FaultFamily>(argmax);
  const std::vector<std::size_t> p = fs.features_of_family(family);
  std::vector<bool> in_family(m, false);
  for (std::size_t j : p) in_family[j] = true;

  // Case 1: generic random attention.
  ctx.begin_case();
  const auto gamma = gen::distribution(rng, m);
  const auto tuned = core::weight_scores(gamma, coarse, argmax, fs);
  ctx.check_eq(tuned.size(), m, "tuned score count");
  double sum = 0.0;
  for (double t : tuned) {
    ctx.check(t >= 0.0, "tuned scores must be non-negative");
    sum += t;
  }
  ctx.check_near(sum, 1.0, kTol, "tuned scores must stay a distribution");
  // Within-group monotonicity: the bonus/penalty factor is uniform inside
  // each side of the family split, so order within a side is preserved.
  for (std::size_t trial = 0; trial < 32; ++trial) {
    const auto a = static_cast<std::size_t>(rng.uniform_index(m));
    const auto b = static_cast<std::size_t>(rng.uniform_index(m));
    if (a == b || in_family[a] != in_family[b]) continue;
    ctx.check((gamma[a] < gamma[b]) == (tuned[a] < tuned[b]),
              "within-group ordering must be preserved (" +
                  std::to_string(a) + " vs " + std::to_string(b) + ")");
  }
  // Algorithm 1 moves the family mass from s to exactly w = ŷ_c.
  double s = 0.0, w_mass = 0.0;
  for (std::size_t j : p) {
    s += gamma[j];
    w_mass += tuned[j];
  }
  if (s > 0.0 && s < 1.0)
    ctx.check_near(w_mass, coarse[argmax], kTol,
                   "family mass must be re-weighted to the coarse confidence");

  // Cases 2/3 need a family that actually owns features (Nominal has none)
  // and one that leaves at least one feature outside.
  if (p.empty() || p.size() == m) return;

  // Case 2: a point mass inside the family — s is exactly 1, identity.
  ctx.begin_case();
  std::vector<double> gamma_in(m, 0.0);
  gamma_in[p[static_cast<std::size_t>(rng.uniform_index(p.size()))]] = 1.0;
  const auto tuned_in = core::weight_scores(gamma_in, coarse, argmax, fs);
  for (std::size_t j = 0; j < m; ++j)
    ctx.check(tuned_in[j] == gamma_in[j],
              "s=1 must be the identity, feature " + std::to_string(j));

  // Case 3: a point mass outside the family — s is exactly 0, identity.
  ctx.begin_case();
  std::vector<double> gamma_out(m, 0.0);
  std::vector<std::size_t> outside;
  for (std::size_t j = 0; j < m; ++j)
    if (!in_family[j]) outside.push_back(j);
  gamma_out[outside[static_cast<std::size_t>(
      rng.uniform_index(outside.size()))]] = 1.0;
  const auto tuned_out = core::weight_scores(gamma_out, coarse, argmax, fs);
  for (std::size_t j = 0; j < m; ++j)
    ctx.check(tuned_out[j] == gamma_out[j],
              "s=0 must be the identity, feature " + std::to_string(j));
}

void check_ensemble_convexity(CaseContext& ctx) {
  util::Rng& rng = ctx.rng;

  ctx.begin_case();
  const std::size_t m = gen::dim(rng, 8, 60);
  const auto tuned = gen::distribution(rng, m);
  const auto aux = gen::distribution(rng, m);
  std::vector<std::size_t> unknown;
  for (std::size_t j = 0; j < m; ++j)
    if (rng.bernoulli(0.3)) unknown.push_back(j);

  double w = -1.0;
  const auto blended = core::ensemble_average(tuned, aux, unknown, &w);
  ctx.check(w >= 0.0 && w <= 1.0, "w_U must lie in [0, 1]");
  double expected_w = 0.0;
  for (std::size_t j : unknown) expected_w += tuned[j];
  ctx.check_near(w, expected_w, kTol, "w_U must equal the unknown mass");

  double sum = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    ctx.check_near(blended[j], w * tuned[j] + (1.0 - w) * aux[j], kTol,
                   "blend must be the convex combination, cause " +
                       std::to_string(j));
    const double lo = std::min(tuned[j], aux[j]);
    const double hi = std::max(tuned[j], aux[j]);
    ctx.check(blended[j] >= lo - kTol && blended[j] <= hi + kTol,
              "blend must stay inside the convex hull, cause " +
                  std::to_string(j));
    sum += blended[j];
  }
  ctx.check_near(sum, 1.0, kTol, "blend must stay a distribution");

  // Degenerate case: nothing unknown — the auxiliary model decides alone.
  ctx.begin_case();
  double w_empty = -1.0;
  const auto pure_aux = core::ensemble_average(tuned, aux, {}, &w_empty);
  ctx.check(w_empty == 0.0, "empty unknown set must give w_U = 0");
  for (std::size_t j = 0; j < m; ++j)
    ctx.check(pure_aux[j] == aux[j],
              "empty unknown set must return the auxiliary scores");
}

}  // namespace diagnet::testkit
