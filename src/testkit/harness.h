// Property-testing harness: seeded, deterministic, dependency-free.
//
// A *suite* is a named property function run for K iterations. Iteration i
// of suite S under root seed N draws every random choice from
// Rng(N).fork(fnv1a64(S)).fork(i) — keyed by (seed, suite, iteration) only,
// never by call order across iterations — so any failure reproduces with
// the same --seed and an --iters of at least i+1, regardless of which other
// suites ran or in which order.
//
// The same suites back three front ends:
//   * `diagnet selfcheck --seed N --iters K` (tools/diagnet_cli.cpp),
//   * the tests/test_proptest_* gtest binaries (ctest label `property`),
//   * ad-hoc developer runs via run_selfcheck().
// Every failure message embeds `seed=N iter=i`, the one-command repro.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.h"

namespace diagnet::testkit {

/// FNV-1a 64-bit hash — stable across platforms, used to key suite
/// sub-streams (and by util::binary_io for bundle checksums).
std::uint64_t fnv1a64(const void* data, std::size_t n);
std::uint64_t fnv1a64(const std::string& s);

/// State handed to a property function for one iteration. A property
/// "case" is one randomized scenario; most suites run several cases per
/// iteration (begin_case() delimits them), so 50 iterations comfortably
/// clear 100+ randomized cases.
struct CaseContext {
  util::Rng rng;            // forked per (seed, suite, iteration)
  std::uint64_t seed = 0;   // root seed, for reproduction messages
  std::uint64_t iter = 0;   // iteration index within the suite
  std::size_t cases = 0;    // randomized cases exercised so far
  std::size_t checks = 0;   // individual assertions evaluated
  std::vector<std::string> errors;

  /// Mark the start of one randomized case.
  void begin_case() { ++cases; }

  void fail(const std::string& what);
  /// Record one assertion; on failure the message carries seed/iter.
  bool check(bool cond, const std::string& what);
  /// |got - want| <= tol * max(|got|, |want|, 1).
  bool check_near(double got, double want, double tol,
                  const std::string& what);
  /// Exact comparison for counts/dimensions.
  bool check_eq(std::size_t got, std::size_t want, const std::string& what);

  bool ok() const { return errors.empty(); }
};

using PropertyFn = std::function<void(CaseContext&)>;

struct Suite {
  std::string name;  // e.g. "oracle.gemm", "invariant.permutation"
  PropertyFn fn;
};

/// The registered suites, in execution order.
const std::vector<Suite>& all_suites();
/// Lookup by exact name; nullptr when unknown.
const Suite* find_suite(const std::string& name);

struct SuiteResult {
  std::string name;
  std::size_t iterations = 0;
  std::size_t cases = 0;
  std::size_t checks = 0;
  std::size_t failed_iterations = 0;
  /// First few failure messages, each with its reproducing seed/iter.
  std::vector<std::string> messages;

  bool ok() const { return failed_iterations == 0; }
};

/// Runs property functions for a fixed (seed, iters) budget.
class PropertyRunner {
 public:
  PropertyRunner(std::uint64_t seed, std::size_t iters);

  /// Run `fn` for the configured number of iterations; `extra_iters` are
  /// corpus-replay iteration indices executed first (the ReplayTestGenerator
  /// idiom: known-bad cases run before fresh random ones).
  SuiteResult run(const std::string& suite, const PropertyFn& fn,
                  const std::vector<std::uint64_t>& replay_iters = {}) const;

 private:
  std::uint64_t seed_;
  std::size_t iters_;
};

/// One-line human-readable summary of a suite result (for gtest messages).
std::string describe(const SuiteResult& result);

// ---------------------------------------------------------------------------
// Failure corpus: a plain-text file of "suite seed iter" lines. Failing
// cases are appended on every selfcheck run given --corpus, and replayed
// first on the next run, so a bug stays pinned until it is fixed.

struct CorpusEntry {
  std::string suite;
  std::uint64_t seed = 0;
  std::uint64_t iter = 0;
};

std::vector<CorpusEntry> load_corpus(const std::string& path);
void append_corpus(const std::string& path,
                   const std::vector<CorpusEntry>& entries);

// ---------------------------------------------------------------------------
// Selfcheck driver (shared by the CLI subcommand and CI).

struct SelfCheckConfig {
  std::uint64_t seed = 1;
  std::size_t iters = 50;
  /// Substring filter on suite names; empty = all suites.
  std::string filter;
  /// Optional failure-corpus path (see above).
  std::string corpus_path;
};

struct SelfCheckReport {
  std::vector<SuiteResult> suites;
  bool ok() const {
    for (const SuiteResult& s : suites)
      if (!s.ok()) return false;
    return true;
  }
};

/// Run every matching suite, streaming a progress/result table to `out`.
SelfCheckReport run_selfcheck(const SelfCheckConfig& config,
                              std::ostream& out);

/// Env-var overrides used by the gtest property binaries so CI can pin the
/// seed (DIAGNET_PROPTEST_SEED) and scale depth (DIAGNET_PROPTEST_ITERS).
std::uint64_t env_seed(std::uint64_t fallback);
std::size_t env_iters(std::size_t fallback);

}  // namespace diagnet::testkit
