#include "testkit/gen.h"

#include <algorithm>
#include <string>

#include "nn/land_pooling.h"
#include "util/require.h"

namespace diagnet::testkit::gen {

std::size_t dim(util::Rng& rng, std::size_t lo, std::size_t hi) {
  DIAGNET_REQUIRE(lo <= hi);
  return lo + static_cast<std::size_t>(rng.uniform_index(hi - lo + 1));
}

tensor::Matrix matrix(util::Rng& rng, std::size_t rows, std::size_t cols,
                      double scale) {
  tensor::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = scale * rng.normal();
  return m;
}

std::vector<double> distribution(util::Rng& rng, std::size_t n) {
  DIAGNET_REQUIRE(n > 0);
  std::vector<double> p(n);
  double sum = 0.0;
  for (double& x : p) {
    x = rng.uniform() + 1e-12;  // keep every mass strictly positive
    sum += x;
  }
  for (double& x : p) x /= sum;
  return p;
}

std::vector<std::size_t> permutation(util::Rng& rng, std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  rng.shuffle(p);
  return p;
}

std::vector<std::size_t> labels(util::Rng& rng, std::size_t n,
                                std::size_t classes) {
  std::vector<std::size_t> out(n);
  for (auto& l : out)
    l = static_cast<std::size_t>(rng.uniform_index(classes));
  return out;
}

nn::LandBatch land_batch(util::Rng& rng, std::size_t batch,
                         std::size_t landmarks, std::size_t k,
                         std::size_t local, double density) {
  nn::LandBatch out;
  out.land = matrix(rng, batch, landmarks * k);
  out.local = matrix(rng, batch, local);
  out.mask = tensor::Matrix(batch, landmarks);
  for (std::size_t i = 0; i < batch; ++i) {
    std::size_t avail = 0;
    for (std::size_t lam = 0; lam < landmarks; ++lam) {
      const bool on = rng.bernoulli(density);
      out.mask(i, lam) = on ? 1.0 : 0.0;
      avail += on ? 1 : 0;
    }
    if (avail == 0)
      out.mask(i, static_cast<std::size_t>(rng.uniform_index(landmarks))) =
          1.0;
  }
  return out;
}

nn::CoarseNetConfig small_coarse_config(util::Rng& rng) {
  nn::CoarseNetConfig config;
  config.features_per_landmark = netsim::kMetricsPerLandmark;
  config.local_features = netsim::kLocalFeatures;
  config.filters = dim(rng, 2, 6);
  config.classes = netsim::kFaultFamilies;

  // A random non-empty subset of the Table I pooling bank, in bank order.
  const std::vector<nn::PoolOp> bank = nn::default_pool_ops();
  config.pool_ops.clear();
  for (nn::PoolOp op : bank)
    if (rng.bernoulli(0.5)) config.pool_ops.push_back(op);
  if (config.pool_ops.empty())
    config.pool_ops.push_back(
        bank[static_cast<std::size_t>(rng.uniform_index(bank.size()))]);

  config.hidden.clear();
  const std::size_t layers = dim(rng, 1, 2);
  for (std::size_t l = 0; l < layers; ++l)
    config.hidden.push_back(dim(rng, 6, 20));
  return config;
}

netsim::Topology topology(util::Rng& rng, std::size_t regions) {
  DIAGNET_REQUIRE(regions > 0);
  std::vector<netsim::Region> specs;
  specs.reserve(regions);
  for (std::size_t i = 0; i < regions; ++i) {
    netsim::Region r;
    r.code = "T" + std::to_string(100 + i);
    r.provider = static_cast<netsim::Provider>(rng.uniform_index(4));
    r.location = {rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)};
    specs.push_back(std::move(r));
  }
  return netsim::Topology(std::move(specs));
}

data::CampaignConfig small_campaign(util::Rng& rng, std::size_t nominal,
                                    std::size_t fault) {
  data::CampaignConfig config;
  config.nominal_samples = nominal;
  config.fault_samples = fault;
  config.multi_fault_prob = rng.uniform(0.0, 0.3);
  config.client_in_fault_region_prob = rng.uniform(0.2, 0.8);
  config.clients_per_region = 1;
  config.duration_hours = 48.0;
  config.counterfactual_draws = 2;
  config.seed = rng.next_u64();
  return config;
}

TinyWorld::TinyWorld(std::uint64_t seed, std::size_t nominal,
                     std::size_t fault)
    : sim(netsim::Simulator::make_default(seed)), fs(sim.topology()) {
  sim.calibrate_qoe(16);
  util::Rng rng(seed ^ 0x7e57a1dULL);
  dataset = data::generate_campaign(sim, fs, small_campaign(rng, nominal, fault));
}

}  // namespace diagnet::testkit::gen
