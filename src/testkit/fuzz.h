// Byte-level fuzzing of the persistence formats (model bundles, campaign
// CSVs, the raw binary_io primitives). The contract under test is the
// paper's deployment story: a client that receives a damaged model bundle
// must reject it with a clean `error:` — never crash, never silently load
// a garbage model (registry v2's payload checksum makes even flipped bits
// inside weight doubles detectable).
#pragma once

#include <string>

#include "data/feature_space.h"
#include "testkit/harness.h"

namespace diagnet::testkit::fuzz {

/// One random corruption of `bytes`: truncation, bit flips, byte-range
/// scribbles, or a u64-aligned overwrite aimed at length fields (including
/// the allocation-bomb value ~0). The result always differs from the
/// input; `descr` (optional) receives a short label for failure messages.
std::string corrupt(util::Rng& rng, const std::string& bytes,
                    std::string* descr = nullptr);

/// A serialised trained model bundle over tiny_world(), built once per
/// process and cached (training a minimal model takes a moment).
const std::string& tiny_model_bundle();

/// The deployment the bundle (and campaign CSV) was built for.
const data::FeatureSpace& tiny_world_space();

/// A campaign CSV over tiny_world(), cached alongside the bundle.
const std::string& tiny_campaign_csv();

// Property suites (see testkit/harness.h for the CaseContext contract).

/// Corrupted model bundles are always rejected with a clean exception.
void check_bundle_fuzz(CaseContext& ctx);
/// Corrupted campaign CSVs either parse to a shape-consistent dataset or
/// throw — they never crash the reader.
void check_campaign_fuzz(CaseContext& ctx);
/// binary_io: exact roundtrip on clean streams; corrupt streams (incl.
/// hostile length fields) throw instead of over-allocating or crashing.
void check_binary_io_fuzz(CaseContext& ctx);
/// serve/framing.h under adversarial streams: chunk splits at every byte
/// boundary, embedded NUL/CR bytes, interleaved partial requests across
/// many framers, and oversized lines — the framed line sequence is always
/// byte-identical to whole-line ('\n'-split) parsing, and the length cap
/// is enforced stickily.
void check_wire_framing_fuzz(CaseContext& ctx);

}  // namespace diagnet::testkit::fuzz
