// Deterministic test harness for the epoll reactor (serve/reactor.h).
//
// The production reactor is event-driven end to end, which makes it
// testable without a single sleep: a ReactorSim owns one ReactorLoop whose
// connections are the server halves of socketpairs, and whose clock is an
// injectable FakeClock that only moves when the test says so. Tests drive
// the loop explicitly:
//
//  * pump() runs exactly one poll pass (timeout 0, so purely the work that
//    is already ready);
//  * wait_line() alternates blocking poll passes with client-side reads —
//    the blocking pass parks in epoll_wait and is woken by the completion
//    queue's eventfd the moment a DiagnosisService batch finishes, so
//    round-trips through the real micro-batcher cost zero polling loops
//    and zero sleeps;
//  * clock().advance() leaps the fake clock — the next pump() advances the
//    timer wheel that far, so a 5-second idle timeout is tested in
//    microseconds of wall time.
//
// Backpressure is made deterministic by shrinking the socketpair's kernel
// buffers (SimConn::shrink_buffers): a few statsz lines then fill the
// server's send buffer, the reactor's watermarks trip synchronously inside
// pump(), and the test asserts on ReactorStats transitions.
//
// The service behind the loop serves the cached tiny fuzz-fixture model
// (testkit/fuzz.h), with max_delay_us=0 so every batch forms immediately.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/reactor.h"
#include "serve/server.h"
#include "serve/service.h"

namespace diagnet::testkit {

/// Injectable clock: starts at the steady_clock epoch and moves only via
/// advance(). fn() adapts it to ReactorLoop::ClockFn (the sim must outlive
/// the loop, which ReactorSim guarantees by owning both).
class FakeClock {
 public:
  std::chrono::steady_clock::time_point now() const { return now_; }
  void advance(std::chrono::milliseconds delta) { now_ += delta; }
  serve::ReactorLoop::ClockFn fn() {
    return [this] { return now_; };
  }

 private:
  std::chrono::steady_clock::time_point now_{};
};

/// The client half of one simulated connection. Non-blocking; reads
/// buffer internally so lines can be popped as they complete.
class SimConn {
 public:
  SimConn() = default;
  explicit SimConn(int fd) : fd_(fd) {}
  SimConn(SimConn&& other) noexcept;
  SimConn& operator=(SimConn&& other) noexcept;
  SimConn(const SimConn&) = delete;
  SimConn& operator=(const SimConn&) = delete;
  ~SimConn();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write raw bytes toward the reactor. Returns false on a hard error
  /// (e.g. the reactor closed the connection). Partial non-blocking
  /// writes are retried inline; a completely full pipe drops the rest
  /// (only reachable with shrunken buffers and a stalled reader).
  bool send(const std::string& bytes);

  /// Drain whatever the reactor has written so far into the internal
  /// buffer. Returns false once the peer has closed (EOF seen).
  bool drain();

  /// Pop the next complete buffered line. Does not read the socket.
  bool next_line(std::string* line);

  /// True once EOF was observed (reactor closed its end) and every
  /// buffered byte has been consumed by next_line().
  bool closed_and_empty() const;
  bool eof() const { return saw_eof_; }

  /// Shrink SO_SNDBUF/SO_RCVBUF on this (client) end so backpressure
  /// scenarios fill kernel buffers with a handful of lines.
  void shrink_buffers(int bytes);

  /// Half-close: shutdown(SHUT_WR), delivering EOF to the reactor while
  /// keeping the read side open for in-flight responses.
  void finish_writing();

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool saw_eof_ = false;
};

/// The cached tiny serving fixture behind every ReactorSim — exposed so
/// tests can drive the same model and request pool over a *real*
/// transport too (the cross-listener bit-exactness suite).
std::shared_ptr<core::DiagNetModel> tiny_serving_model();
const data::FeatureSpace& tiny_serving_space();
std::size_t tiny_faulty_count();
/// A valid wire request line over the tiny deployment (faulty sample
/// `index` mod the pool, wire id = id; no trailing newline).
std::string tiny_request_line(std::size_t index, std::uint64_t id,
                              double deadline_ms = 0.0);

struct ReactorSimOptions {
  serve::ReactorConfig reactor;
  /// Service batching window; 0 (default) dispatches every batch as soon
  /// as the dispatcher sees it — deterministic single-request batches.
  std::uint64_t max_delay_us = 0;
  std::size_t queue_capacity = 64;
  /// Shrink both ends of every socketpair to roughly this many bytes
  /// (0 = leave kernel defaults).
  int socket_buffer_bytes = 0;
};

/// One ReactorLoop + DiagnosisService over the cached tiny model, driven
/// manually. See file comment for the testing model.
class ReactorSim {
 public:
  explicit ReactorSim(ReactorSimOptions options = {});
  ~ReactorSim();

  ReactorSim(const ReactorSim&) = delete;
  ReactorSim& operator=(const ReactorSim&) = delete;

  /// Open one socketpair connection: the server half is adopted by the
  /// loop (processed on the next pump), the client half is returned.
  SimConn connect();

  /// One poll pass; timeout 0 = only work that is already ready.
  int pump(int timeout_ms = 0);

  /// Pump until a pass finds no work (or max_passes). Returns passes run.
  int pump_until_idle(int max_passes = 64);

  /// Read lines off `conn`, pumping with a blocking timeout between
  /// attempts, until one full line arrives (true) or the connection
  /// closes / max_passes elapse (false). No sleeps: the blocking pass is
  /// epoll_wait, woken by service completions through the eventfd.
  bool wait_line(SimConn& conn, std::string* line, int max_passes = 256);

  /// A valid wire request line (faulty sample `index`, wire id = id).
  std::string request_line(std::size_t index, std::uint64_t id,
                           double deadline_ms = 0.0) const;
  std::size_t faulty_samples() const;

  FakeClock& clock() { return clock_; }
  serve::ReactorLoop& loop() { return *loop_; }
  serve::DiagnosisService& service() { return *service_; }
  serve::ReactorStats stats() const { return loop_->stats(); }
  const data::FeatureSpace& fs() const;

  /// What the statsz in-band hook returns (tests can swap it for a large
  /// payload to drive backpressure).
  std::string statsz_payload = "{\"sim\":true}";

 private:
  ReactorSimOptions options_;
  FakeClock clock_;
  serve::SessionHooks hooks_;
  std::shared_ptr<serve::ModelProvider> provider_;
  std::unique_ptr<serve::DiagnosisService> service_;
  std::unique_ptr<serve::ReactorLoop> loop_;
};

}  // namespace diagnet::testkit
