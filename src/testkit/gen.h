// Random-input generators for the property suites. Everything draws from
// an explicit util::Rng so a case is fully determined by its fork key; no
// generator touches global state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/feature_space.h"
#include "data/generator.h"
#include "netsim/simulator.h"
#include "nn/batch.h"
#include "nn/coarse_net.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace diagnet::testkit::gen {

/// Uniform dimension in [lo, hi].
std::size_t dim(util::Rng& rng, std::size_t lo, std::size_t hi);

/// rows x cols of N(0, scale²) entries.
tensor::Matrix matrix(util::Rng& rng, std::size_t rows, std::size_t cols,
                      double scale = 1.0);

/// Non-negative vector summing to exactly 1 (renormalised uniforms).
std::vector<double> distribution(util::Rng& rng, std::size_t n);

/// Uniform random permutation of [0, n).
std::vector<std::size_t> permutation(util::Rng& rng, std::size_t n);

/// n labels uniform in [0, classes).
std::vector<std::size_t> labels(util::Rng& rng, std::size_t n,
                                std::size_t classes);

/// Random LandBatch: (batch, landmarks·k) features, availability mask with
/// Bernoulli(density) per landmark but always ≥1 available per row, and
/// (batch, local) local features. Masked-out landmark columns hold garbage
/// on purpose — consumers must ignore them.
nn::LandBatch land_batch(util::Rng& rng, std::size_t batch,
                         std::size_t landmarks, std::size_t k,
                         std::size_t local, double density = 0.8);

/// Small random CoarseNet architecture compatible with the netsim feature
/// space (k = 5 landmark metrics, 5 local features, 7 classes): random
/// filter count, a random non-empty subset of the Table I pooling ops, and
/// one or two narrow hidden layers.
nn::CoarseNetConfig small_coarse_config(util::Rng& rng);

/// Random topology of `regions` plausible multi-cloud sites ("T000"...).
netsim::Topology topology(util::Rng& rng, std::size_t regions);

/// A self-contained simulated deployment + labelled campaign, kept alive
/// together because FeatureSpace borrows the simulator's topology. Sized
/// for property tests: tens of samples, not the paper's two weeks.
struct TinyWorld {
  netsim::Simulator sim;
  data::FeatureSpace fs;
  data::Dataset dataset;

  TinyWorld(std::uint64_t seed, std::size_t nominal, std::size_t fault);
};

/// Campaign-config generator for scenario-level suites: small sample
/// counts, random multi-fault probability and client placement.
data::CampaignConfig small_campaign(util::Rng& rng, std::size_t nominal,
                                    std::size_t fault);

}  // namespace diagnet::testkit::gen
