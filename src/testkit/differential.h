// Differential suites: production kernels vs the naive long-double oracles
// in testkit/oracle.h, across randomized shapes chosen to cross every
// dispatch threshold (scalar / tiled / parallel GEMM), plus finite-
// difference gradient checks for LandPooling and the batched-vs-sequential
// attention equivalence.
#pragma once

#include "testkit/harness.h"

namespace diagnet::testkit {

/// tensor::ops gemm / gemm_at_b / gemm_at_b_acc / gemm_a_bt against the
/// oracle, in the scalar, tiled and thread-pool shape regimes.
void check_gemm_oracle(CaseContext& ctx);

/// nn::softmax and softmax_cross_entropy (loss + gradient, mean and
/// sharded-sum variants) against the oracle.
void check_softmax_oracle(CaseContext& ctx);

/// LandPooling forward vs the from-first-principles oracle, and the
/// member-cache vs workspace paths plus backward vs backward_input
/// bit-equality.
void check_landpool_oracle(CaseContext& ctx);

/// LandPooling kernel/bias/input gradients vs central finite differences
/// (samples regenerated until the pooling sort has a safe margin, so the
/// loss is smooth within the probe step).
void check_landpool_grad(CaseContext& ctx);

/// compute_attention_batch row r is bit-identical to compute_attention on
/// row r alone.
void check_attention_batch(CaseContext& ctx);

}  // namespace diagnet::testkit
