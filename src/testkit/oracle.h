// Reference oracles: deliberately naive implementations of the numeric
// kernels, written for obviousness rather than speed, with long-double
// accumulation so they are strictly more precise than the production
// kernels they judge. A production kernel passes when it agrees with the
// oracle to within the error bound of double-precision reordering.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/land_pooling.h"
#include "tensor/matrix.h"

namespace diagnet::testkit::oracle {

using tensor::Matrix;

/// C = A · B, scalar triple loop, long-double accumulators.
Matrix gemm(const Matrix& a, const Matrix& b);
/// C = A^T · B for A stored (K x M).
Matrix gemm_at_b(const Matrix& a, const Matrix& b);
/// C = A · B^T for B stored (N x K).
Matrix gemm_a_bt(const Matrix& a, const Matrix& b);

/// Row-wise softmax with the max-shift, long-double sums.
Matrix softmax(const Matrix& logits);

/// Mean softmax cross-entropy; when grad != nullptr it receives
/// (softmax - onehot) / B, exactly the production contract.
double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::size_t>& labels,
                             Matrix* grad);

/// LandPooling forward from first principles: F[λ] = K·x[λ] + b per
/// available landmark, then each pooling operator over a sorted copy of
/// the available values. Output is (B, ops·f) like the production layer.
Matrix land_pooling(const Matrix& kernel, const Matrix& bias,
                    const std::vector<nn::PoolOp>& ops, const Matrix& land,
                    const Matrix& mask);

/// Largest |a - b| over all elements (shapes must match).
double max_abs_diff(const Matrix& a, const Matrix& b);
/// Largest |a - b| / max(|a|, |b|, 1) over all elements.
double max_rel_diff(const Matrix& a, const Matrix& b);

}  // namespace diagnet::testkit::oracle
