// Train/test split with the paper's hidden-landmark protocol (§IV-A(d,e)):
// three landmarks are hidden during training — their features are masked
// out of the training set and every sample whose primary cause sits at a
// hidden landmark is forced into the test set. The split is stratified
// 80/20 over faulty and nominal samples.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace diagnet::data {

struct SplitConfig {
  /// Landmarks hidden during training; empty = the paper's EAST/GRAV/SEAT.
  std::vector<std::size_t> hidden_landmarks;
  bool use_default_hidden = true;
  double train_fraction = 0.8;
  std::uint64_t seed = 7;
};

struct DataSplit {
  Dataset train;  // landmark_available excludes the hidden landmarks
  Dataset test;   // all landmarks available
  std::vector<std::size_t> hidden_landmarks;

  /// Whether a test sample's primary cause involves a hidden ("new")
  /// landmark — the paper's new-vs-known breakdown of Figs. 5-7.
  bool cause_is_new(const FeatureSpace& fs, const Sample& sample) const;
};

DataSplit make_split(const Dataset& full, const FeatureSpace& fs,
                     const SplitConfig& config);

}  // namespace diagnet::data
