// Feature normalisation with *per-metric-kind* statistics.
//
// Statistics are pooled across landmarks (all latency features share one
// mean/std, etc.), never kept per feature: a landmark that never appeared
// during training can still be normalised at inference time, which is what
// keeps the trained models root-cause extensible. Heavy-tailed metrics are
// log-transformed first; loss ratios are sqrt-transformed.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "data/feature_space.h"
#include "util/binary_io.h"

namespace diagnet::data {

class Normalizer {
 public:
  /// Fit pooled statistics on the training set, using only the features of
  /// available landmarks (plus all local features).
  void fit(const Dataset& train, const FeatureSpace& fs);

  /// z-scored transformed features; input is a raw feature vector.
  std::vector<double> apply(const std::vector<double>& raw) const;

  /// Normalise a single feature value.
  double apply_one(std::size_t feature, double value) const;

  bool fitted() const { return !stats_.empty(); }

  /// Binary (de)serialisation of the fitted statistics; load() rebinds the
  /// normaliser to `fs`.
  void save(util::BinaryWriter& writer) const;
  void load(util::BinaryReader& reader, const FeatureSpace& fs);

  /// Number of metric kinds (5 landmark metrics + 5 local features).
  static constexpr std::size_t kKinds =
      netsim::kMetricsPerLandmark + netsim::kLocalFeatures;

  /// The variance-stabilising transform applied before z-scoring.
  static double transform(std::size_t kind, double value);
  /// Metric-kind of a feature (landmark metric index, or 5 + local index).
  static std::size_t kind_of(const FeatureSpace& fs, std::size_t feature);

 private:
  struct KindStats {
    double mean = 0.0;
    double std = 1.0;
  };
  std::vector<KindStats> stats_;  // per kind
  const FeatureSpace* fs_ = nullptr;
};

}  // namespace diagnet::data
