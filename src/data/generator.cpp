#include "data/generator.h"

#include <algorithm>

#include "util/require.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace diagnet::data {

namespace {

using netsim::ActiveFaults;
using netsim::ClientCondition;
using netsim::ClientProfile;
using netsim::FaultFamily;
using netsim::FaultSpec;
using netsim::Simulator;

constexpr FaultFamily kInjectable[] = {
    FaultFamily::Uplink,    FaultFamily::Latency, FaultFamily::Jitter,
    FaultFamily::Loss,      FaultFamily::Bandwidth, FaultFamily::Load,
};

FaultSpec draw_fault(const std::vector<std::size_t>& regions,
                     util::Rng& rng) {
  const FaultFamily family =
      kInjectable[rng.uniform_index(std::size(kInjectable))];
  const std::size_t region = regions[rng.uniform_index(regions.size())];
  FaultSpec fault = netsim::default_fault(family, region);
  // "additional jitter (up to 100 msec)": the magnitude varies per scenario.
  if (family == FaultFamily::Jitter) fault.magnitude = rng.uniform(30.0, 100.0);
  return fault;
}

/// Median page-load time of `draws` replays under exactly `faults`.
double median_plt(const Simulator& sim, std::size_t service,
                  const ClientProfile& client, double time_hours,
                  const ActiveFaults& faults, std::size_t draws,
                  util::Rng rng) {
  const ClientCondition condition =
      ClientCondition::from_faults(faults, client.region);
  std::vector<double> plts;
  plts.reserve(draws);
  for (std::size_t d = 0; d < draws; ++d)
    plts.push_back(
        sim.visit(service, client, condition, time_hours, faults, rng));
  return util::percentile(std::move(plts), 0.5);
}

}  // namespace

Dataset generate_campaign(const Simulator& sim, const FeatureSpace& fs,
                          const CampaignConfig& config) {
  DIAGNET_REQUIRE_MSG(sim.qoe_calibrated(),
                      "simulator must be QoE-calibrated before generation");
  DIAGNET_REQUIRE(config.clients_per_region > 0);
  DIAGNET_REQUIRE(config.counterfactual_draws >= 1);

  const auto& topology = sim.topology();

  std::vector<std::size_t> fault_regions = config.fault_regions;
  if (fault_regions.empty())
    fault_regions = netsim::default_fault_regions(topology);

  std::vector<std::size_t> client_regions = config.active_client_regions;
  if (client_regions.empty()) {
    client_regions.resize(topology.region_count());
    for (std::size_t r = 0; r < client_regions.size(); ++r)
      client_regions[r] = r;
  }

  std::vector<std::size_t> services = config.services;
  if (services.empty()) {
    services.resize(sim.services().size());
    for (std::size_t s = 0; s < services.size(); ++s) services[s] = s;
  }

  const std::size_t total = config.nominal_samples + config.fault_samples;
  Dataset dataset;
  dataset.samples.resize(total);
  dataset.landmark_available.assign(sim.landmark_count(), true);

  const util::Rng root(config.seed);
  util::parallel_for(total, [&](std::size_t idx) {
    util::Rng rng = root.fork(idx);
    Sample& sample = dataset.samples[idx];

    sample.time_hours = rng.uniform(0.0, config.duration_hours);
    sample.service = services[rng.uniform_index(services.size())];

    // Injected faults for this scenario.
    if (idx >= config.nominal_samples) {
      if (!config.fixed_faults.empty()) {
        sample.injected = config.fixed_faults;
      } else {
        sample.injected.push_back(draw_fault(fault_regions, rng));
        if (rng.bernoulli(config.multi_fault_prob)) {
          for (int attempt = 0; attempt < 8; ++attempt) {
            const FaultSpec second = draw_fault(fault_regions, rng);
            if (second.family != sample.injected[0].family ||
                second.region != sample.injected[0].region) {
              sample.injected.push_back(second);
              break;
            }
          }
        }
      }
    }

    // Observed client.
    if (!sample.injected.empty() &&
        rng.bernoulli(config.client_in_fault_region_prob)) {
      sample.client_region = sample.injected[0].region;
    } else {
      sample.client_region =
          client_regions[rng.uniform_index(client_regions.size())];
    }
    const std::uint64_t client_id =
        sample.client_region * 1000 + rng.uniform_index(config.clients_per_region);
    const ClientProfile client =
        ClientProfile::make(sample.client_region, client_id, sim.seed());
    const ClientCondition condition =
        ClientCondition::from_faults(sample.injected, sample.client_region);

    // The measurement vector: l landmark probes + local metrics.
    sample.features.resize(fs.total());
    const auto probes = sim.probe_landmarks(client, condition,
                                            sample.time_hours,
                                            sample.injected, rng);
    for (std::size_t lam = 0; lam < probes.size(); ++lam) {
      sample.features[fs.landmark_feature(lam, Metric::Latency)] =
          probes[lam].latency_ms;
      sample.features[fs.landmark_feature(lam, Metric::Jitter)] =
          probes[lam].jitter_ms;
      sample.features[fs.landmark_feature(lam, Metric::Loss)] =
          probes[lam].loss_ratio;
      sample.features[fs.landmark_feature(lam, Metric::DownBw)] =
          probes[lam].down_mbps;
      sample.features[fs.landmark_feature(lam, Metric::UpBw)] =
          probes[lam].up_mbps;
    }
    const auto local =
        sim.measure_local(client, condition, sample.time_hours, rng);
    sample.features[fs.local_feature(LocalFeature::GatewayRtt)] =
        local.gateway_rtt_ms;
    sample.features[fs.local_feature(LocalFeature::CpuLoad)] = local.cpu_load;
    sample.features[fs.local_feature(LocalFeature::MemLoad)] = local.mem_load;
    sample.features[fs.local_feature(LocalFeature::ProcLoad)] =
        local.proc_load;
    sample.features[fs.local_feature(LocalFeature::DnsTime)] = local.dns_ms;

    // The visit itself.
    sample.page_load_ms =
        sim.visit(sample.service, client, condition, sample.time_hours,
                  sample.injected, rng);
    sample.qoe_degraded = sim.qoe_degraded(sample.service,
                                           sample.client_region,
                                           sample.page_load_ms);

    // Ground truth: counterfactual single-fault replays decide which
    // injected faults are relevant causes for THIS client/service pair.
    if (sample.qoe_degraded && !sample.injected.empty()) {
      const double threshold =
          sim.qoe_threshold(sample.service, sample.client_region);
      double best_impact = 0.0;
      for (std::size_t f = 0; f < sample.injected.size(); ++f) {
        const ActiveFaults alone{sample.injected[f]};
        const double median =
            median_plt(sim, sample.service, client, sample.time_hours, alone,
                       config.counterfactual_draws, rng.fork(1000 + f));
        if (median > threshold) {
          const std::size_t cause = fs.cause_of_fault(sample.injected[f]);
          sample.true_causes.push_back(cause);
          if (median > best_impact) {
            best_impact = median;
            sample.primary_cause = cause;
          }
        }
      }
      if (sample.primary_cause != kNoCause)
        sample.coarse_label = fs.family_of(sample.primary_cause);
    }
  });

  return dataset;
}

}  // namespace diagnet::data
