#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "netsim/event_engine.h"
#include "netsim/flow_model.h"
#include "util/require.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace diagnet::data {

namespace {

using netsim::ActiveFaults;
using netsim::ClientCondition;
using netsim::ClientProfile;
using netsim::FaultFamily;
using netsim::FaultSpec;
using netsim::PathProvider;
using netsim::Simulator;

constexpr FaultFamily kInjectable[] = {
    FaultFamily::Uplink,    FaultFamily::Latency, FaultFamily::Jitter,
    FaultFamily::Loss,      FaultFamily::Bandwidth, FaultFamily::Load,
};

FaultSpec draw_fault(const std::vector<std::size_t>& regions,
                     util::Rng& rng) {
  const FaultFamily family =
      kInjectable[rng.uniform_index(std::size(kInjectable))];
  const std::size_t region = regions[rng.uniform_index(regions.size())];
  FaultSpec fault = netsim::default_fault(family, region);
  // "additional jitter (up to 100 msec)": the magnitude varies per scenario.
  if (family == FaultFamily::Jitter) fault.magnitude = rng.uniform(30.0, 100.0);
  return fault;
}

/// Median page-load time of `draws` replays under exactly `faults`,
/// measured through `paths` (the base model classically, the flow model in
/// client mode).
double median_plt(const Simulator& sim, const PathProvider& paths,
                  std::size_t service, const ClientProfile& client,
                  double time_hours, const ActiveFaults& faults,
                  std::size_t draws, util::Rng rng) {
  const ClientCondition condition =
      ClientCondition::from_faults(faults, client.region);
  std::vector<double> plts;
  plts.reserve(draws);
  for (std::size_t d = 0; d < draws; ++d)
    plts.push_back(sim.visit(service, paths, client, condition, time_hours,
                             faults, rng));
  return util::percentile(std::move(plts), 0.5);
}

/// The config's index sets with the paper defaults filled in.
struct ResolvedConfig {
  std::vector<std::size_t> fault_regions;
  std::vector<std::size_t> client_regions;
  std::vector<std::size_t> services;
};

ResolvedConfig resolve(const Simulator& sim, const CampaignConfig& config) {
  ResolvedConfig resolved;

  resolved.fault_regions = config.fault_regions;
  if (resolved.fault_regions.empty())
    resolved.fault_regions = netsim::default_fault_regions(sim.topology());

  resolved.client_regions = config.active_client_regions;
  if (resolved.client_regions.empty()) {
    resolved.client_regions.resize(sim.topology().region_count());
    for (std::size_t r = 0; r < resolved.client_regions.size(); ++r)
      resolved.client_regions[r] = r;
  }

  resolved.services = config.services;
  if (resolved.services.empty()) {
    resolved.services.resize(sim.services().size());
    for (std::size_t s = 0; s < resolved.services.size(); ++s)
      resolved.services[s] = s;
  }
  return resolved;
}

/// Probe every landmark and the local host, writing the feature vector.
void fill_features(const Simulator& sim, const PathProvider& paths,
                   const FeatureSpace& fs, const ClientProfile& client,
                   const ClientCondition& condition, Sample& sample,
                   util::Rng& rng) {
  sample.features.resize(fs.total());
  const auto probes = sim.probe_landmarks(paths, client, condition,
                                          sample.time_hours,
                                          sample.injected, rng);
  for (std::size_t lam = 0; lam < probes.size(); ++lam) {
    sample.features[fs.landmark_feature(lam, Metric::Latency)] =
        probes[lam].latency_ms;
    sample.features[fs.landmark_feature(lam, Metric::Jitter)] =
        probes[lam].jitter_ms;
    sample.features[fs.landmark_feature(lam, Metric::Loss)] =
        probes[lam].loss_ratio;
    sample.features[fs.landmark_feature(lam, Metric::DownBw)] =
        probes[lam].down_mbps;
    sample.features[fs.landmark_feature(lam, Metric::UpBw)] =
        probes[lam].up_mbps;
  }
  const auto local =
      sim.measure_local(client, condition, sample.time_hours, rng);
  sample.features[fs.local_feature(LocalFeature::GatewayRtt)] =
      local.gateway_rtt_ms;
  sample.features[fs.local_feature(LocalFeature::CpuLoad)] = local.cpu_load;
  sample.features[fs.local_feature(LocalFeature::MemLoad)] = local.mem_load;
  sample.features[fs.local_feature(LocalFeature::ProcLoad)] = local.proc_load;
  sample.features[fs.local_feature(LocalFeature::DnsTime)] = local.dns_ms;
}

/// Ground truth: counterfactual single-fault replays decide which injected
/// faults are relevant causes for THIS client/service pair.
void label_sample(const Simulator& sim, const PathProvider& paths,
                  const FeatureSpace& fs, const CampaignConfig& config,
                  double threshold, const ClientProfile& client,
                  Sample& sample, util::Rng& rng) {
  if (!sample.qoe_degraded || sample.injected.empty()) return;
  double best_impact = 0.0;
  for (std::size_t f = 0; f < sample.injected.size(); ++f) {
    const ActiveFaults alone{sample.injected[f]};
    const double median =
        median_plt(sim, paths, sample.service, client, sample.time_hours,
                   alone, config.counterfactual_draws, rng.fork(1000 + f));
    if (median > threshold) {
      const std::size_t cause = fs.cause_of_fault(sample.injected[f]);
      sample.true_causes.push_back(cause);
      if (median > best_impact) {
        best_impact = median;
        sample.primary_cause = cause;
      }
    }
  }
  if (sample.primary_cause != kNoCause)
    sample.coarse_label = fs.family_of(sample.primary_cause);
}

/// One classic scenario sample — the draw sequence this function performs
/// is the original generate_campaign body verbatim, so classic campaigns
/// stay bit-identical across the streaming redesign.
void make_scenario_sample(const Simulator& sim, const FeatureSpace& fs,
                          const CampaignConfig& config,
                          const ResolvedConfig& resolved,
                          const util::Rng& root, std::size_t idx,
                          Sample& sample) {
  util::Rng rng = root.fork(idx);
  sample = Sample{};

  sample.time_hours = rng.uniform(0.0, config.duration_hours);
  sample.service =
      resolved.services[rng.uniform_index(resolved.services.size())];

  // Injected faults for this scenario.
  if (idx >= config.nominal_samples) {
    if (!config.fixed_faults.empty()) {
      sample.injected = config.fixed_faults;
    } else {
      sample.injected.push_back(draw_fault(resolved.fault_regions, rng));
      if (rng.bernoulli(config.multi_fault_prob)) {
        for (int attempt = 0; attempt < 8; ++attempt) {
          const FaultSpec second = draw_fault(resolved.fault_regions, rng);
          if (second.family != sample.injected[0].family ||
              second.region != sample.injected[0].region) {
            sample.injected.push_back(second);
            break;
          }
        }
      }
    }
  }

  // Observed client.
  if (!sample.injected.empty() &&
      rng.bernoulli(config.client_in_fault_region_prob)) {
    sample.client_region = sample.injected[0].region;
  } else {
    sample.client_region =
        resolved.client_regions[rng.uniform_index(
            resolved.client_regions.size())];
  }
  const std::uint64_t client_id =
      sample.client_region * 1000 + rng.uniform_index(config.clients_per_region);
  const ClientProfile client =
      ClientProfile::make(sample.client_region, client_id, sim.seed());
  const ClientCondition condition =
      ClientCondition::from_faults(sample.injected, sample.client_region);

  fill_features(sim, sim.paths(), fs, client, condition, sample, rng);

  // The visit itself.
  sample.page_load_ms =
      sim.visit(sample.service, client, condition, sample.time_hours,
                sample.injected, rng);
  sample.qoe_degraded = sim.qoe_degraded(sample.service, sample.client_region,
                                         sample.page_load_ms);

  label_sample(sim, sim.paths(), fs, config,
               sim.qoe_threshold(sample.service, sample.client_region),
               client, sample, rng);
}

// --- Client mode: fault episodes and flow-level visits ---------------------

/// A campaign-wide outage window. Episodes are disjoint and sorted.
struct Episode {
  double start_h = 0.0;
  double end_h = 0.0;
  ActiveFaults faults;
};

std::vector<Episode> draw_episodes(const CampaignConfig& config,
                                   const std::vector<std::size_t>& regions) {
  std::vector<Episode> episodes;
  if (config.episodes_per_day <= 0.0) return episodes;
  // Schedule stream, disjoint from both the per-sample content forks and
  // the event engine's per-client schedule forks.
  util::Rng rng(config.seed ^ 0xe9150deULL);
  const double rate = config.episodes_per_day / 24.0;
  double t = rng.exponential(rate);
  while (t < config.duration_hours) {
    Episode ep;
    ep.start_h = t;
    ep.end_h = t + rng.uniform(0.5, 2.0);
    if (!config.fixed_faults.empty()) {
      ep.faults = config.fixed_faults;
    } else {
      ep.faults.push_back(draw_fault(regions, rng));
      if (rng.bernoulli(config.multi_fault_prob)) {
        for (int attempt = 0; attempt < 8; ++attempt) {
          const FaultSpec second = draw_fault(regions, rng);
          if (second.family != ep.faults[0].family ||
              second.region != ep.faults[0].region) {
            ep.faults.push_back(second);
            break;
          }
        }
      }
    }
    episodes.push_back(std::move(ep));
    t = episodes.back().end_h + rng.exponential(rate);
  }
  return episodes;
}

ActiveFaults active_at(const std::vector<Episode>& episodes, double t) {
  auto it = std::upper_bound(
      episodes.begin(), episodes.end(), t,
      [](double v, const Episode& e) { return v < e.start_h; });
  if (it == episodes.begin()) return {};
  --it;
  if (t < it->end_h) return it->faults;
  return {};
}

/// QoE thresholds measured through an alternative path provider — the same
/// protocol as Simulator::calibrate_qoe, so flow-level page loads are
/// judged against flow-level medians rather than the base model's.
std::vector<double> calibrate_thresholds(const Simulator& sim,
                                         const PathProvider& paths,
                                         std::size_t visits_per_cell = 64) {
  const std::size_t regions = sim.topology().region_count();
  std::vector<double> thresholds(sim.services().size() * regions, 0.0);
  const util::Rng root(sim.seed() ^ 0xca11b8a7edULL);
  const ActiveFaults no_faults;
  for (std::size_t s = 0; s < sim.services().size(); ++s) {
    for (std::size_t r = 0; r < regions; ++r) {
      util::Rng rng = root.fork(s * regions + r);
      std::vector<double> plts;
      plts.reserve(visits_per_cell);
      for (std::size_t v = 0; v < visits_per_cell; ++v) {
        const ClientProfile client =
            ClientProfile::make(r, 900000 + v % 8, sim.seed());
        const double t = rng.uniform(0.0, 24.0);
        plts.push_back(
            sim.visit(s, paths, client, ClientCondition{}, t, no_faults, rng));
      }
      const double median = util::percentile(std::move(plts), 0.5);
      thresholds[s * regions + r] = 1.5 * median + 100.0;
    }
  }
  return thresholds;
}

/// One visit of an event-engine client through the flow-level model.
void make_client_sample(const Simulator& sim, const PathProvider& paths,
                        const FeatureSpace& fs, const CampaignConfig& config,
                        const ResolvedConfig& resolved,
                        const std::vector<Episode>& episodes,
                        const std::vector<double>& thresholds,
                        const util::Rng& root, std::uint64_t idx,
                        const netsim::Event& ev, Sample& sample) {
  util::Rng rng = root.fork(idx);
  sample = Sample{};

  sample.time_hours = ev.time_hours;
  sample.service =
      resolved.services[rng.uniform_index(resolved.services.size())];
  sample.injected = active_at(episodes, ev.time_hours);
  sample.client_region =
      resolved.client_regions[ev.client % resolved.client_regions.size()];

  const ClientProfile client =
      ClientProfile::make(sample.client_region, ev.client, sim.seed());
  const ClientCondition condition =
      ClientCondition::from_faults(sample.injected, sample.client_region);

  fill_features(sim, paths, fs, client, condition, sample, rng);

  sample.page_load_ms =
      sim.visit(sample.service, paths, client, condition, sample.time_hours,
                sample.injected, rng);
  const double threshold =
      thresholds[sample.service * sim.topology().region_count() +
                 sample.client_region];
  sample.qoe_degraded = sample.page_load_ms > threshold;

  label_sample(sim, paths, fs, config, threshold, client, sample, rng);
}

}  // namespace

util::Status CampaignConfig::validate(const netsim::Simulator& sim) const {
  const std::size_t regions = sim.topology().region_count();

  if (!sim.qoe_calibrated())
    return util::Status::failed_precondition(
        "simulator must be QoE-calibrated before generation");
  if (clients == 0 && nominal_samples + fault_samples == 0)
    return util::Status::invalid_argument(
        "campaign has zero samples (nominal_samples + fault_samples == 0)");
  if (clients_per_region == 0)
    return util::Status::invalid_argument("clients_per_region must be > 0");
  if (counterfactual_draws == 0)
    return util::Status::invalid_argument(
        "counterfactual_draws must be >= 1");
  if (!std::isfinite(multi_fault_prob) || multi_fault_prob < 0.0 ||
      multi_fault_prob > 1.0)
    return util::Status::invalid_argument(
        "multi_fault_prob must be a probability in [0, 1]");
  if (!std::isfinite(client_in_fault_region_prob) ||
      client_in_fault_region_prob < 0.0 || client_in_fault_region_prob > 1.0)
    return util::Status::invalid_argument(
        "client_in_fault_region_prob must be a probability in [0, 1]");
  if (!std::isfinite(duration_hours) || duration_hours <= 0.0)
    return util::Status::invalid_argument(
        "duration_hours must be finite and > 0");
  if (clients > 0) {
    if (!std::isfinite(mean_think_s) || mean_think_s <= 0.0)
      return util::Status::invalid_argument(
          "mean_think_s must be finite and > 0 in client mode");
    if (!std::isfinite(episodes_per_day) || episodes_per_day < 0.0)
      return util::Status::invalid_argument(
          "episodes_per_day must be finite and >= 0");
  }

  for (const std::size_t r : fault_regions)
    if (r >= regions)
      return util::Status::invalid_argument(
          "fault region index " + std::to_string(r) +
          " out of range (topology has " + std::to_string(regions) +
          " regions)");
  for (const std::size_t r : active_client_regions)
    if (r >= regions)
      return util::Status::invalid_argument(
          "client region index " + std::to_string(r) +
          " out of range (topology has " + std::to_string(regions) +
          " regions)");
  for (const std::size_t s : services)
    if (s >= sim.services().size())
      return util::Status::invalid_argument(
          "service index " + std::to_string(s) +
          " out of range (simulator has " +
          std::to_string(sim.services().size()) + " services)");
  for (const netsim::FaultSpec& fault : fixed_faults) {
    if (fault.region >= regions)
      return util::Status::invalid_argument(
          "fixed fault region index " + std::to_string(fault.region) +
          " out of range");
    if (!std::isfinite(fault.magnitude))
      return util::Status::invalid_argument(
          "fixed fault magnitude must be finite");
  }
  return {};
}

util::StatusOr<CampaignStats> stream_campaign(const Simulator& sim,
                                              const FeatureSpace& fs,
                                              const CampaignConfig& config,
                                              CampaignSink& sink) {
  if (util::Status s = config.validate(sim); !s.ok()) return s;
  const ResolvedConfig resolved = resolve(sim, config);
  const util::Rng root(config.seed);

  // A dedicated pool when the caller pins a thread count; the process
  // global one otherwise. Either way sample i forks its randomness from i,
  // so the choice never shows in the output.
  std::unique_ptr<util::ThreadPool> pool;
  if (config.threads != 0)
    pool = std::make_unique<util::ThreadPool>(config.threads);
  const auto pfor = [&](std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
    if (pool)
      pool->parallel_for(n, fn);
    else
      util::parallel_for(n, fn);
  };

  if (util::Status s =
          sink.begin(fs, std::vector<bool>(sim.landmark_count(), true));
      !s.ok())
    return s;

  CampaignStats stats;
  const std::size_t block_size = std::max<std::size_t>(1, config.stream_block);
  std::vector<Sample> block;

  const auto emit = [&](std::size_t n) -> util::Status {
    for (std::size_t i = 0; i < n; ++i) {
      const Sample& sample = block[i];
      if (sample.is_faulty()) ++stats.faulty;
      if (sample.qoe_degraded) ++stats.degraded;
      if (util::Status s = sink.append(sample); !s.ok()) return s;
    }
    stats.samples += n;
    return {};
  };

  if (config.clients == 0) {
    // Classic scenario-indexed mode, streamed in bounded blocks.
    const std::size_t total = config.nominal_samples + config.fault_samples;
    for (std::size_t base = 0; base < total; base += block_size) {
      const std::size_t n = std::min(block_size, total - base);
      block.resize(n);
      pfor(n, [&](std::size_t i) {
        make_scenario_sample(sim, fs, config, resolved, root, base + i,
                             block[i]);
      });
      if (util::Status s = emit(n); !s.ok()) return s;
    }
  } else {
    // Event-driven flow-level mode: per-client visit cycles through the
    // FlowModel, faults from a campaign-wide episode schedule.
    netsim::FlowConfig flow_config;
    flow_config.clients_per_region =
        static_cast<double>(config.clients) /
        static_cast<double>(resolved.client_regions.size());
    flow_config.duty_cycle = std::min(1.0, 5.0 / config.mean_think_s);
    const netsim::FlowModel flow(sim.paths(), flow_config);

    const std::vector<double> thresholds = calibrate_thresholds(sim, flow);
    const std::vector<Episode> episodes =
        draw_episodes(config, resolved.fault_regions);

    netsim::EventEngineConfig engine_config;
    engine_config.clients = config.clients;
    engine_config.duration_hours = config.duration_hours;
    engine_config.mean_think_s = config.mean_think_s;
    // Distinct stream from the per-sample content forks of `root`.
    engine_config.seed = config.seed ^ 0x5c8ed01eULL;
    netsim::EventEngine engine(engine_config);

    std::vector<netsim::Event> events;
    std::uint64_t base = 0;
    while (engine.next_window(&events)) {
      block.resize(events.size());
      pfor(events.size(), [&](std::size_t i) {
        make_client_sample(sim, flow, fs, config, resolved, episodes,
                           thresholds, root, base + i, events[i], block[i]);
      });
      if (util::Status s = emit(events.size()); !s.ok()) return s;
      base += events.size();
    }
    stats.clients = config.clients;
  }

  if (util::Status s = sink.finish(); !s.ok()) return s;
  return stats;
}

Dataset generate_campaign(const Simulator& sim, const FeatureSpace& fs,
                          const CampaignConfig& config) {
  // At this level config mistakes are programming errors (the historical
  // contract): surface validate()'s message as std::logic_error.
  const util::Status valid = config.validate(sim);
  DIAGNET_REQUIRE_MSG(valid.ok(), valid.message());

  DatasetSink sink;
  const auto stats = stream_campaign(sim, fs, config, sink);
  DIAGNET_REQUIRE_MSG(stats.ok(), stats.status().message());
  return sink.take();
}

}  // namespace diagnet::data
