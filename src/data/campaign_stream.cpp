#include "data/campaign_stream.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "data/io.h"
#include "util/binary_io.h"

namespace diagnet::data {

namespace {

// "DGNETCMP" — distinct from the model registry's magic so a model bundle
// fed to the campaign reader (or vice versa) fails loudly.
constexpr std::uint64_t kIndexMagic = 0x44474e4554434d50ULL;
constexpr std::uint64_t kIndexVersion = 1;
constexpr char kIndexName[] = "campaign.idx";

std::string shard_path(const std::string& dir, std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%05zu.bin", index);
  return dir + "/" + name;
}

void encode_sample(const Sample& sample, util::BinaryWriter& writer) {
  writer.write_doubles(sample.features);
  writer.write_u64(sample.client_region);
  writer.write_u64(sample.service);
  writer.write_double(sample.time_hours);
  writer.write_double(sample.page_load_ms);
  writer.write_bool(sample.qoe_degraded);
  writer.write_u64(sample.injected.size());
  for (const netsim::FaultSpec& fault : sample.injected) {
    writer.write_u64(static_cast<std::uint64_t>(fault.family));
    writer.write_u64(fault.region);
    writer.write_double(fault.magnitude);
  }
  writer.write_indices(sample.true_causes);
  writer.write_u64(sample.primary_cause);
  writer.write_u64(static_cast<std::uint64_t>(sample.coarse_label));
}

// Throws std::runtime_error on malformed bytes (BinaryReader's contract);
// the chunk loader turns that into data_loss.
Sample decode_sample(util::BinaryReader& reader, std::size_t feature_count) {
  Sample sample;
  sample.features = reader.read_doubles();
  if (sample.features.size() != feature_count)
    throw std::runtime_error("sample feature count mismatch");
  sample.client_region = reader.read_u64();
  sample.service = reader.read_u64();
  sample.time_hours = reader.read_double();
  sample.page_load_ms = reader.read_double();
  sample.qoe_degraded = reader.read_bool();
  const std::uint64_t injected = reader.read_u64();
  if (injected > 64) throw std::runtime_error("implausible fault count");
  for (std::uint64_t f = 0; f < injected; ++f) {
    netsim::FaultSpec fault;
    fault.family = static_cast<netsim::FaultFamily>(reader.read_u64());
    fault.region = reader.read_u64();
    fault.magnitude = reader.read_double();
    sample.injected.push_back(fault);
  }
  sample.true_causes = reader.read_indices();
  sample.primary_cause = reader.read_u64();
  sample.coarse_label = static_cast<netsim::FaultFamily>(reader.read_u64());
  return sample;
}

}  // namespace

// --- DatasetSink -----------------------------------------------------------

util::Status DatasetSink::begin(const FeatureSpace& fs,
                                const std::vector<bool>& landmark_available) {
  (void)fs;
  dataset_ = Dataset{};
  dataset_.landmark_available = landmark_available;
  return {};
}

util::Status DatasetSink::append(const Sample& sample) {
  dataset_.samples.push_back(sample);
  return {};
}

// --- ChunkedWriter ---------------------------------------------------------

ChunkedWriter::ChunkedWriter(std::string dir, ChunkedWriterConfig config)
    : dir_(std::move(dir)), config_(config) {
  if (config_.chunk_size == 0) config_.chunk_size = 4096;
  if (config_.samples_per_shard == 0) config_.samples_per_shard = 262144;
}

util::Status ChunkedWriter::begin(const FeatureSpace& fs,
                                  const std::vector<bool>& landmark_available) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    return util::Status::internal("cannot create campaign directory " + dir_ +
                                  ": " + ec.message());
  // Drop any previous seal so a half-written campaign is never mistaken for
  // a complete one.
  std::filesystem::remove(dir_ + "/" + kIndexName, ec);

  feature_count_ = fs.total();
  landmark_available_ = landmark_available;
  begun_ = true;
  return open_shard(0);
}

util::Status ChunkedWriter::open_shard(std::size_t index) {
  shard_.close();
  shard_.clear();
  const std::string path = shard_path(dir_, index);
  shard_.open(path, std::ios::binary | std::ios::trunc);
  if (!shard_)
    return util::Status::internal("cannot open campaign shard " + path);
  shard_index_ = index;
  shard_samples_ = 0;
  return {};
}

util::Status ChunkedWriter::flush_chunk() {
  if (chunk_samples_ == 0) return {};
  const std::string bytes = chunk_.str();
  ChunkEntry entry;
  entry.samples = chunk_samples_;
  entry.bytes = bytes.size();
  entry.checksum = util::fnv1a64(bytes.data(), bytes.size());
  chunks_.push_back(entry);
  shard_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!shard_)
    return util::Status::internal("write failed on campaign shard " +
                                  shard_path(dir_, shard_index_));
  chunk_.str({});
  chunk_.clear();
  chunk_samples_ = 0;
  return {};
}

util::Status ChunkedWriter::append(const Sample& sample) {
  if (!begun_)
    return util::Status::failed_precondition(
        "ChunkedWriter::append before begin()");
  if (sample.features.size() != feature_count_)
    return util::Status::invalid_argument(
        "sample feature count does not match the campaign's feature space");

  util::BinaryWriter writer(chunk_);
  encode_sample(sample, writer);
  ++chunk_samples_;
  ++shard_samples_;
  ++total_samples_;

  if (chunk_samples_ == config_.chunk_size ||
      shard_samples_ == config_.samples_per_shard) {
    if (util::Status s = flush_chunk(); !s.ok()) return s;
  }
  if (shard_samples_ == config_.samples_per_shard)
    return open_shard(shard_index_ + 1);
  return {};
}

util::Status ChunkedWriter::finish() {
  if (!begun_)
    return util::Status::failed_precondition(
        "ChunkedWriter::finish before begin()");
  if (util::Status s = flush_chunk(); !s.ok()) return s;
  shard_.close();

  std::ostringstream payload_os;
  util::BinaryWriter payload(payload_os);
  payload.write_u64(feature_count_);
  payload.write_u64(landmark_available_.size());
  for (const bool available : landmark_available_)
    payload.write_bool(available);
  payload.write_u64(config_.chunk_size);
  payload.write_u64(config_.samples_per_shard);
  payload.write_u64(total_samples_);
  payload.write_u64(chunks_.size());
  for (const ChunkEntry& chunk : chunks_) {
    payload.write_u64(chunk.samples);
    payload.write_u64(chunk.bytes);
    payload.write_u64(chunk.checksum);
  }
  const std::string bytes = payload_os.str();

  const std::string index_path = dir_ + "/" + kIndexName;
  std::ofstream os(index_path, std::ios::binary | std::ios::trunc);
  if (!os)
    return util::Status::internal("cannot open campaign index " + index_path);
  util::BinaryWriter writer(os);
  writer.write_u64(kIndexMagic);
  writer.write_u64(kIndexVersion);
  writer.write_u64(util::fnv1a64(bytes.data(), bytes.size()));
  writer.write_string(bytes);
  os.flush();
  if (!os)
    return util::Status::internal("write failed on campaign index " +
                                  index_path);
  return {};
}

// --- ChunkedReader ---------------------------------------------------------

util::StatusOr<ChunkedReader> ChunkedReader::open(const std::string& dir,
                                                  const FeatureSpace& fs) {
  const std::string index_path = dir + "/" + kIndexName;
  std::ifstream is(index_path, std::ios::binary);
  if (!is)
    return util::Status::not_found(
        "no " + index_path +
        " — not a chunked campaign directory (or the writer never sealed it)");

  ChunkedReader reader;
  reader.dir_ = dir;
  try {
    util::BinaryReader header(is);
    header.expect_u64(kIndexMagic, "campaign index magic");
    header.expect_u64(kIndexVersion, "campaign index version");
    const std::uint64_t checksum = header.read_u64();
    const std::string bytes = header.read_string();
    if (util::fnv1a64(bytes.data(), bytes.size()) != checksum)
      return util::Status::data_loss("campaign index checksum mismatch in " +
                                     index_path);

    std::istringstream payload_is(bytes);
    util::BinaryReader payload(payload_is);
    reader.feature_count_ = payload.read_u64();
    const std::uint64_t landmarks = payload.read_u64();
    if (landmarks > 4096)
      return util::Status::data_loss("implausible landmark count in " +
                                     index_path);
    reader.landmark_available_.resize(landmarks);
    for (std::uint64_t lam = 0; lam < landmarks; ++lam)
      reader.landmark_available_[lam] = payload.read_bool();
    payload.read_u64();  // chunk_size: informational for readers
    reader.samples_per_shard_ = payload.read_u64();
    reader.total_samples_ = payload.read_u64();
    const std::uint64_t chunk_count = payload.read_u64();
    reader.chunks_.reserve(chunk_count);
    std::uint64_t indexed = 0;
    for (std::uint64_t c = 0; c < chunk_count; ++c) {
      ChunkEntry entry;
      entry.samples = payload.read_u64();
      entry.bytes = payload.read_u64();
      entry.checksum = payload.read_u64();
      indexed += entry.samples;
      reader.chunks_.push_back(entry);
    }
    if (indexed != reader.total_samples_ || reader.samples_per_shard_ == 0)
      return util::Status::data_loss(
          "campaign index is internally inconsistent in " + index_path);
  } catch (const std::exception& e) {
    return util::Status::data_loss("corrupt campaign index " + index_path +
                                   ": " + e.what());
  }

  if (reader.feature_count_ != fs.total())
    return util::Status::invalid_argument(
        "campaign in " + dir + " was written for a different feature space");
  return reader;
}

util::Status ChunkedReader::load_chunk() {
  const ChunkEntry& chunk = chunks_[chunk_index_];

  if (!shard_open_ || shard_samples_read_ == samples_per_shard_) {
    const std::size_t index = shard_open_ ? shard_index_ + 1 : 0;
    const std::string path = shard_path(dir_, index);
    shard_.close();
    shard_.clear();
    shard_.open(path, std::ios::binary);
    if (!shard_)
      return util::Status::data_loss("missing campaign shard " + path);
    shard_open_ = true;
    shard_index_ = index;
    shard_samples_read_ = 0;
  }

  std::string bytes(chunk.bytes, '\0');
  shard_.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (static_cast<std::uint64_t>(shard_.gcount()) != chunk.bytes)
    return util::Status::data_loss(
        "campaign shard " + shard_path(dir_, shard_index_) +
        " is truncated (chunk " + std::to_string(chunk_index_) + ")");
  if (util::fnv1a64(bytes.data(), bytes.size()) != chunk.checksum)
    return util::Status::data_loss(
        "checksum mismatch in chunk " + std::to_string(chunk_index_) +
        " of campaign shard " + shard_path(dir_, shard_index_) +
        " — the campaign data is corrupted");

  decoded_.clear();
  decoded_.reserve(chunk.samples);
  try {
    std::istringstream is(bytes);
    util::BinaryReader reader(is);
    for (std::uint64_t s = 0; s < chunk.samples; ++s)
      decoded_.push_back(decode_sample(reader, feature_count_));
  } catch (const std::exception& e) {
    return util::Status::data_loss("corrupt sample in chunk " +
                                   std::to_string(chunk_index_) + ": " +
                                   e.what());
  }
  decoded_pos_ = 0;
  shard_samples_read_ += chunk.samples;
  ++chunk_index_;
  return {};
}

util::Status ChunkedReader::next(Sample* sample, bool* eof) {
  *eof = false;
  while (decoded_pos_ == decoded_.size()) {
    if (chunk_index_ == chunks_.size()) {
      *eof = true;
      return {};
    }
    if (util::Status s = load_chunk(); !s.ok()) return s;
  }
  *sample = std::move(decoded_[decoded_pos_]);
  ++decoded_pos_;
  return {};
}

// --- Whole-campaign loaders ------------------------------------------------

util::StatusOr<Dataset> try_read_chunked(const std::string& dir,
                                         const FeatureSpace& fs) {
  auto reader_or = ChunkedReader::open(dir, fs);
  if (!reader_or.ok()) return reader_or.status();
  ChunkedReader reader = std::move(reader_or).value();

  Dataset dataset;
  dataset.landmark_available = reader.landmark_available();
  dataset.samples.reserve(reader.size());
  Sample sample;
  bool eof = false;
  for (;;) {
    if (util::Status s = reader.next(&sample, &eof); !s.ok()) return s;
    if (eof) break;
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

util::StatusOr<Dataset> try_read_campaign(const std::string& path,
                                          const FeatureSpace& fs) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec))
    return try_read_chunked(path, fs);
  return try_read_csv_file(path, fs);
}

util::StatusOr<std::vector<bool>> for_each_campaign_sample(
    const std::string& path, const FeatureSpace& fs,
    const std::function<void(const Sample&)>& fn) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    auto reader_or = ChunkedReader::open(path, fs);
    if (!reader_or.ok()) return reader_or.status();
    ChunkedReader reader = std::move(reader_or).value();
    Sample sample;
    bool eof = false;
    for (;;) {
      if (util::Status s = reader.next(&sample, &eof); !s.ok()) return s;
      if (eof) break;
      fn(sample);
    }
    return reader.landmark_available();
  }
  auto dataset_or = try_read_csv_file(path, fs);
  if (!dataset_or.ok()) return dataset_or.status();
  for (const Sample& sample : dataset_or.value().samples) fn(sample);
  return dataset_or.value().landmark_available;
}

}  // namespace diagnet::data
