#include "data/dataset.h"

#include "util/require.h"

namespace diagnet::data {

std::size_t Dataset::count_faulty() const {
  std::size_t n = 0;
  for (const Sample& s : samples) n += s.is_faulty() ? 1 : 0;
  return n;
}

std::size_t Dataset::count_nominal() const {
  return samples.size() - count_faulty();
}

std::vector<bool> Dataset::feature_available(const FeatureSpace& fs) const {
  DIAGNET_REQUIRE(landmark_available.size() == fs.landmark_count());
  std::vector<bool> available(fs.total(), true);
  for (std::size_t j = 0; j < fs.total(); ++j) {
    if (fs.is_landmark_feature(j))
      available[j] = landmark_available[fs.landmark_of(j)];
  }
  return available;
}

}  // namespace diagnet::data
