// Labelled samples and datasets.
//
// A sample is one (client, service, instant) observation: the m raw
// features plus QoE and ground truth. Labelling follows the paper
// (§IV-A(c,e)): a sample is "faulty" only when its QoE is degraded AND an
// injected fault explains the degradation; injected faults that do not
// degrade QoE leave the sample "nominal".
#pragma once

#include <cstddef>
#include <vector>

#include "data/feature_space.h"
#include "netsim/fault.h"

namespace diagnet::data {

constexpr std::size_t kNoCause = static_cast<std::size_t>(-1);

struct Sample {
  std::vector<double> features;  // raw values, length FeatureSpace::total()
  std::size_t client_region = 0;
  std::size_t service = 0;
  double time_hours = 0.0;
  double page_load_ms = 0.0;
  bool qoe_degraded = false;

  netsim::ActiveFaults injected;
  /// Cause features whose fault individually degrades this visit's QoE
  /// (empty for nominal samples; can hold 2 entries in multi-fault
  /// scenarios — Fig. 10).
  std::vector<std::size_t> true_causes;
  /// The dominant cause (highest counterfactual impact), or kNoCause.
  std::size_t primary_cause = kNoCause;
  /// Fault family of the primary cause; Nominal when there is none.
  FaultFamily coarse_label = FaultFamily::Nominal;

  bool is_faulty() const { return primary_cause != kNoCause; }
};

struct Dataset {
  std::vector<Sample> samples;
  /// Landmark availability for consumers of this dataset (training sets
  /// hide the paper's three landmarks; test sets see all of them).
  std::vector<bool> landmark_available;

  std::size_t size() const { return samples.size(); }
  std::size_t count_faulty() const;
  std::size_t count_nominal() const;

  /// Per-feature availability derived from landmark_available (local
  /// features are always available).
  std::vector<bool> feature_available(const FeatureSpace& fs) const;
};

}  // namespace diagnet::data
