#include "data/encoding.h"

#include "util/require.h"

namespace diagnet::data {

nn::CoarseDataset encode_coarse(const Dataset& dataset,
                                const FeatureSpace& fs,
                                const Normalizer& normalizer) {
  const std::size_t n = dataset.size();
  const std::size_t L = fs.landmark_count();
  const std::size_t k = fs.metrics_per_landmark();
  DIAGNET_REQUIRE(dataset.landmark_available.size() == L);

  nn::CoarseDataset out;
  out.land = tensor::Matrix(n, L * k);
  out.mask = tensor::Matrix(n, L);
  out.local = tensor::Matrix(n, fs.local_count());
  out.labels.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    const Sample& sample = dataset.samples[i];
    const std::vector<double> z = normalizer.apply(sample.features);
    for (std::size_t lam = 0; lam < L; ++lam) {
      const bool avail = dataset.landmark_available[lam];
      out.mask(i, lam) = avail ? 1.0 : 0.0;
      for (std::size_t metric = 0; metric < k; ++metric) {
        const std::size_t j =
            fs.landmark_feature(lam, static_cast<Metric>(metric));
        out.land(i, lam * k + metric) = avail ? z[j] : 0.0;
      }
    }
    for (std::size_t t = 0; t < fs.local_count(); ++t)
      out.local(i, t) = z[fs.local_feature(static_cast<LocalFeature>(t))];
    out.labels[i] = static_cast<std::size_t>(sample.coarse_label);
  }
  return out;
}

nn::LandBatch encode_sample(const std::vector<double>& raw_features,
                            const FeatureSpace& fs,
                            const Normalizer& normalizer,
                            const std::vector<bool>& landmark_available) {
  const std::size_t L = fs.landmark_count();
  const std::size_t k = fs.metrics_per_landmark();
  DIAGNET_REQUIRE(landmark_available.size() == L);

  nn::LandBatch batch;
  batch.land = tensor::Matrix(1, L * k);
  batch.mask = tensor::Matrix(1, L);
  batch.local = tensor::Matrix(1, fs.local_count());

  const std::vector<double> z = normalizer.apply(raw_features);
  for (std::size_t lam = 0; lam < L; ++lam) {
    batch.mask(0, lam) = landmark_available[lam] ? 1.0 : 0.0;
    for (std::size_t metric = 0; metric < k; ++metric) {
      const std::size_t j =
          fs.landmark_feature(lam, static_cast<Metric>(metric));
      batch.land(0, lam * k + metric) = landmark_available[lam] ? z[j] : 0.0;
    }
  }
  for (std::size_t t = 0; t < fs.local_count(); ++t)
    batch.local(0, t) = z[fs.local_feature(static_cast<LocalFeature>(t))];
  return batch;
}

nn::LandBatch encode_batch(
    const std::vector<const std::vector<double>*>& raw_features,
    const FeatureSpace& fs, const Normalizer& normalizer,
    const std::vector<bool>& landmark_available) {
  const std::size_t n = raw_features.size();
  const std::size_t L = fs.landmark_count();
  const std::size_t k = fs.metrics_per_landmark();
  DIAGNET_REQUIRE(landmark_available.size() == L);

  nn::LandBatch batch;
  batch.land = tensor::Matrix(n, L * k);
  batch.mask = tensor::Matrix(n, L);
  batch.local = tensor::Matrix(n, fs.local_count());

  for (std::size_t i = 0; i < n; ++i) {
    DIAGNET_REQUIRE(raw_features[i] != nullptr);
    const std::vector<double> z = normalizer.apply(*raw_features[i]);
    for (std::size_t lam = 0; lam < L; ++lam) {
      batch.mask(i, lam) = landmark_available[lam] ? 1.0 : 0.0;
      for (std::size_t metric = 0; metric < k; ++metric) {
        const std::size_t j =
            fs.landmark_feature(lam, static_cast<Metric>(metric));
        batch.land(i, lam * k + metric) =
            landmark_available[lam] ? z[j] : 0.0;
      }
    }
    for (std::size_t t = 0; t < fs.local_count(); ++t)
      batch.local(i, t) = z[fs.local_feature(static_cast<LocalFeature>(t))];
  }
  return batch;
}

tensor::Matrix encode_flat(const Dataset& dataset, const FeatureSpace& fs,
                           const Normalizer& normalizer) {
  const std::vector<bool> available = dataset.feature_available(fs);
  tensor::Matrix x(dataset.size(), fs.total());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const std::vector<double> z =
        encode_flat_sample(dataset.samples[i].features, fs, normalizer,
                           available);
    std::copy(z.begin(), z.end(), x.row_ptr(i));
  }
  return x;
}

std::vector<double> encode_flat_sample(const std::vector<double>& raw,
                                       const FeatureSpace& fs,
                                       const Normalizer& normalizer,
                                       const std::vector<bool>& available) {
  DIAGNET_REQUIRE(available.size() == fs.total());
  std::vector<double> z = normalizer.apply(raw);
  for (std::size_t j = 0; j < z.size(); ++j)
    if (!available[j]) z[j] = 0.0;
  return z;
}

std::vector<std::size_t> cause_labels(const Dataset& dataset,
                                      std::size_t nominal_marker) {
  std::vector<std::size_t> labels(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Sample& sample = dataset.samples[i];
    labels[i] = sample.is_faulty() ? sample.primary_cause : nominal_marker;
  }
  return labels;
}

}  // namespace diagnet::data
