// Encoders turning labelled Samples into model inputs:
//  * the coarse network consumes (land, mask, local) batches of normalised
//    features, labelled with the coarse fault family;
//  * the flat-vector models (Random Forest, Naive Bayes) consume fixed-size
//    vectors where features of unavailable landmarks are zero-filled
//    ("we naively set the features dimension to the maximum possible size,
//    and we set to zero the missing landmarks values", §IV-B.a).
#pragma once

#include "data/dataset.h"
#include "data/normalizer.h"
#include "nn/trainer.h"
#include "tensor/matrix.h"

namespace diagnet::data {

/// Whole dataset -> coarse-net training set. Labels are the coarse fault
/// family indices (FaultFamily cast); mask rows reflect the dataset's
/// landmark availability.
nn::CoarseDataset encode_coarse(const Dataset& dataset,
                                const FeatureSpace& fs,
                                const Normalizer& normalizer);

/// One raw feature vector -> a single-row LandBatch.
/// `landmark_available` selects the mask (may differ from training).
nn::LandBatch encode_sample(const std::vector<double>& raw_features,
                            const FeatureSpace& fs,
                            const Normalizer& normalizer,
                            const std::vector<bool>& landmark_available);

/// N raw feature vectors -> an N-row LandBatch sharing one availability
/// mask. Row i is encoded exactly as encode_sample(*raw_features[i], ...)
/// would encode it (the batched diagnosis engine relies on this).
nn::LandBatch encode_batch(
    const std::vector<const std::vector<double>*>& raw_features,
    const FeatureSpace& fs, const Normalizer& normalizer,
    const std::vector<bool>& landmark_available);

/// Whole dataset -> flat (n x m) design matrix with zero-filled
/// unavailable features. Values are normalised.
tensor::Matrix encode_flat(const Dataset& dataset, const FeatureSpace& fs,
                           const Normalizer& normalizer);

/// One raw feature vector -> flat normalised vector (all m features).
std::vector<double> encode_flat_sample(const std::vector<double>& raw,
                                       const FeatureSpace& fs,
                                       const Normalizer& normalizer,
                                       const std::vector<bool>& available);

/// Per-sample root-cause labels for the flat-vector models: the primary
/// cause feature index, or the model's nominal marker.
std::vector<std::size_t> cause_labels(const Dataset& dataset,
                                      std::size_t nominal_marker);

}  // namespace diagnet::data
