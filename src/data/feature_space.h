// The feature space IS the root-cause space (paper §III-A): each of the
// m = ℓ·k + local features doubles as a diagnosable root cause — a remote
// (landmark, metric) pair or a local client metric. This class is the
// single source of truth for that indexing, the feature → fault-family map
// used by Algorithm 1, and the fault → cause-feature map used to label
// ground truth.
//
// Layout: feature j for j < ℓ·k is landmark feature (λ = j / k,
// metric = j % k); the last `kLocalFeatures` features are local.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netsim/fault.h"
#include "netsim/measurement.h"
#include "netsim/topology.h"

namespace diagnet::data {

using netsim::FaultFamily;

/// The k = 5 per-landmark metrics, in feature order.
enum class Metric : std::size_t {
  Latency = 0,
  Jitter = 1,
  Loss = 2,
  DownBw = 3,
  UpBw = 4,
};

/// The 5 local features, in feature order (matches LocalMeasurement).
enum class LocalFeature : std::size_t {
  GatewayRtt = 0,
  CpuLoad = 1,
  MemLoad = 2,
  ProcLoad = 3,
  DnsTime = 4,
};

const char* metric_name(Metric metric);
const char* local_feature_name(LocalFeature feature);

FaultFamily metric_family(Metric metric);
FaultFamily local_feature_family(LocalFeature feature);

class FeatureSpace {
 public:
  explicit FeatureSpace(const netsim::Topology& topology);

  std::size_t landmark_count() const { return landmarks_; }
  std::size_t metrics_per_landmark() const {
    return netsim::kMetricsPerLandmark;
  }
  std::size_t local_count() const { return netsim::kLocalFeatures; }
  /// m — the total feature/root-cause count (55 by default).
  std::size_t total() const {
    return landmarks_ * metrics_per_landmark() + local_count();
  }

  std::size_t landmark_feature(std::size_t landmark, Metric metric) const;
  std::size_t local_feature(LocalFeature feature) const;

  bool is_landmark_feature(std::size_t j) const;
  std::size_t landmark_of(std::size_t j) const;   // requires landmark feature
  Metric metric_of(std::size_t j) const;          // requires landmark feature
  LocalFeature local_of(std::size_t j) const;     // requires local feature

  /// Fault family of the root cause identified with feature j — the family
  /// assignment of Algorithm 1 ("we manually assign each feature to a
  /// coarse class").
  FaultFamily family_of(std::size_t j) const;

  /// Features sharing the given family (the set `p` of Algorithm 1).
  std::vector<std::size_t> features_of_family(FaultFamily family) const;

  /// The cause feature a fault maps to for an affected client: remote
  /// faults map to (landmark of the fault's region, family metric), Uplink
  /// maps to the local gateway-RTT feature, Load to the local CPU feature.
  std::size_t cause_of_fault(const netsim::FaultSpec& fault) const;

  /// Human-readable feature/cause name, e.g. "GRAV/latency", "local/cpu".
  std::string name(std::size_t j) const;

  const netsim::Topology& topology() const { return *topology_; }

 private:
  const netsim::Topology* topology_;
  std::size_t landmarks_;
};

}  // namespace diagnet::data
