// Streaming campaign data path: a sink interface the generator pushes
// samples through one at a time, plus a chunked on-disk format so
// million-sample campaigns never have to exist in RAM.
//
// On-disk layout (directory):
//   shard-00000.bin, shard-00001.bin, ...   raw concatenated sample
//                                           payloads, samples_per_shard
//                                           samples per shard
//   campaign.idx                            manifest + per-chunk table
//                                           {sample count, byte length,
//                                           fnv1a64 checksum}, itself
//                                           checksummed like the v2 model
//                                           registry
//
// Chunks are bookkeeping over the shard byte stream — they never span a
// shard boundary, and the shard bytes are a pure function of the sample
// sequence. Two campaigns with the same samples therefore produce
// bit-identical shards for ANY chunk size and any writer thread count; only
// the index's chunk table reflects the chosen granularity.
//
// The index is written last, so a crashed writer leaves no campaign.idx and
// the reader reports not_found instead of serving a torn campaign. Corrupt
// chunk bytes are refused with data_loss at read time.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace diagnet::data {

/// Receives a campaign as an ordered stream of samples. begin() is called
/// once before the first sample, finish() once after the last; samples
/// arrive in canonical campaign order exactly once each.
class CampaignSink {
 public:
  virtual ~CampaignSink() = default;
  virtual util::Status begin(const FeatureSpace& fs,
                             const std::vector<bool>& landmark_available) = 0;
  virtual util::Status append(const Sample& sample) = 0;
  virtual util::Status finish() = 0;
};

/// Collects the stream into an in-RAM Dataset — the adapter that keeps
/// generate_campaign's historical return-by-value contract.
class DatasetSink final : public CampaignSink {
 public:
  util::Status begin(const FeatureSpace& fs,
                     const std::vector<bool>& landmark_available) override;
  util::Status append(const Sample& sample) override;
  util::Status finish() override { return {}; }

  Dataset take() { return std::move(dataset_); }
  const Dataset& dataset() const { return dataset_; }

 private:
  Dataset dataset_;
};

struct ChunkedWriterConfig {
  /// Samples per checksummed chunk (the unit of corruption detection and of
  /// reader buffering).
  std::size_t chunk_size = 4096;
  /// Samples per shard file. Must be a chunk multiple is NOT required —
  /// chunks are simply cut at shard boundaries.
  std::size_t samples_per_shard = 262144;
};

/// Streams samples into a chunked on-disk campaign directory.
class ChunkedWriter final : public CampaignSink {
 public:
  explicit ChunkedWriter(std::string dir, ChunkedWriterConfig config = {});

  util::Status begin(const FeatureSpace& fs,
                     const std::vector<bool>& landmark_available) override;
  util::Status append(const Sample& sample) override;
  util::Status finish() override;

  std::uint64_t written() const { return total_samples_; }

 private:
  struct ChunkEntry {
    std::uint64_t samples = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
  };

  util::Status flush_chunk();
  util::Status open_shard(std::size_t index);

  std::string dir_;
  ChunkedWriterConfig config_;
  std::size_t feature_count_ = 0;
  std::vector<bool> landmark_available_;

  std::ofstream shard_;
  std::size_t shard_index_ = 0;
  std::size_t shard_samples_ = 0;

  std::ostringstream chunk_;
  std::size_t chunk_samples_ = 0;

  std::vector<ChunkEntry> chunks_;
  std::uint64_t total_samples_ = 0;
  bool begun_ = false;
};

/// Sequential reader over a chunked campaign directory. Holds one decoded
/// chunk in memory at a time, so consumers can iterate campaigns far larger
/// than RAM. Each chunk's checksum is verified before any sample from it is
/// served.
class ChunkedReader {
 public:
  ChunkedReader() = default;

  static util::StatusOr<ChunkedReader> open(const std::string& dir,
                                            const FeatureSpace& fs);

  std::uint64_t size() const { return total_samples_; }
  const std::vector<bool>& landmark_available() const {
    return landmark_available_;
  }

  /// Reads the next sample into *sample; sets *eof (and leaves *sample
  /// untouched) once the campaign is exhausted.
  util::Status next(Sample* sample, bool* eof);

 private:
  struct ChunkEntry {
    std::uint64_t samples = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
  };

  util::Status load_chunk();

  std::string dir_;
  std::size_t feature_count_ = 0;
  std::vector<bool> landmark_available_;
  std::uint64_t total_samples_ = 0;
  std::size_t samples_per_shard_ = 0;
  std::vector<ChunkEntry> chunks_;

  std::size_t chunk_index_ = 0;
  std::ifstream shard_;
  bool shard_open_ = false;
  std::size_t shard_index_ = 0;
  std::size_t shard_samples_read_ = 0;

  std::vector<Sample> decoded_;
  std::size_t decoded_pos_ = 0;
};

/// Loads a whole chunked campaign directory into a Dataset.
util::StatusOr<Dataset> try_read_chunked(const std::string& dir,
                                         const FeatureSpace& fs);

/// Campaign loader used by the CLI: a directory is treated as a chunked
/// campaign, anything else as a CSV file.
util::StatusOr<Dataset> try_read_campaign(const std::string& path,
                                          const FeatureSpace& fs);

/// Streams every sample of a campaign (chunked directory or CSV file)
/// through `fn` — chunked campaigns are iterated one chunk at a time
/// without materializing the whole Dataset. Returns the campaign's
/// landmark-availability mask.
util::StatusOr<std::vector<bool>> for_each_campaign_sample(
    const std::string& path, const FeatureSpace& fs,
    const std::function<void(const Sample&)>& fn);

}  // namespace diagnet::data
