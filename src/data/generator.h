// Measurement-campaign generator: reproduces the paper's data collection
// (§IV-A) against the simulator — emulated clients in every active region
// probing all landmarks and visiting mock-up services, with faults injected
// uniformly over regions and families, multi-fault scenarios included.
//
// Ground truth follows the paper's protocol: a sample is labelled with a
// root cause only when its QoE is degraded; the set of *relevant* causes is
// established counterfactually by replaying the visit with each injected
// fault alone (cheap in a simulator; the paper used knowledge of the
// injected faults instead). Samples whose QoE survives the faults are
// labelled nominal.
#pragma once

#include <cstdint>

#include "data/campaign_stream.h"
#include "data/dataset.h"
#include "netsim/simulator.h"
#include "util/status.h"

namespace diagnet::data {

struct CampaignConfig {
  /// Scenarios without injected faults.
  std::size_t nominal_samples = 8000;
  /// Scenarios with injected fault(s); those that do not degrade QoE still
  /// end up labelled nominal.
  std::size_t fault_samples = 16000;

  /// Probability that a fault scenario injects a second fault.
  double multi_fault_prob = 0.15;
  /// Probability that the observed client sits in the (first) fault's
  /// region — keeps client-local fault families represented.
  double client_in_fault_region_prob = 0.5;

  /// Regions receiving injected faults; empty = paper defaults.
  std::vector<std::size_t> fault_regions;
  /// Regions with active clients; empty = all regions (Fig. 8 varies this).
  std::vector<std::size_t> active_client_regions;
  /// Service indices to visit; empty = all of the simulator's services.
  std::vector<std::size_t> services;
  /// When non-empty, every fault scenario injects exactly these faults
  /// (used by the Fig. 10 simultaneous-fault experiment).
  netsim::ActiveFaults fixed_faults;

  std::size_t clients_per_region = 4;
  double duration_hours = 336.0;  // two weeks, as in the paper
  /// Replays per injected fault when establishing relevance.
  std::size_t counterfactual_draws = 5;
  std::uint64_t seed = 42;

  // --- Event-driven flow-level client mode (stream_campaign only) ---
  /// Emulated concurrent clients. 0 keeps the classic scenario-indexed mode
  /// above; > 0 switches stream_campaign to the netsim::EventEngine with
  /// the flow-level path model: every sample is a visit of one of these
  /// clients, fault episodes follow a campaign-wide schedule, and sample
  /// count emerges from clients x duration / think time.
  std::uint64_t clients = 0;
  /// Mean think time between a client's consecutive visits, seconds.
  double mean_think_s = 86400.0;
  /// Mean fault episodes injected per 24 simulated hours (client mode).
  double episodes_per_day = 12.0;

  /// Worker threads for generation (0 = the process-global pool). The
  /// output is bit-identical for every value.
  std::size_t threads = 0;
  /// Samples generated per parallel block — bounds the generator's working
  /// set regardless of campaign size.
  std::size_t stream_block = 8192;

  /// Checks the whole config against the simulator: out-of-range region or
  /// service indices, zero samples, non-finite probabilities, an
  /// uncalibrated simulator. Both generate_campaign and stream_campaign
  /// call this; the CLI renders a failure as a one-line `error:` exit.
  util::Status validate(const netsim::Simulator& sim) const;
};

/// What a streamed campaign produced.
struct CampaignStats {
  std::uint64_t samples = 0;
  std::uint64_t faulty = 0;    // primary_cause labelled
  std::uint64_t degraded = 0;  // QoE over threshold
  std::uint64_t clients = 0;   // client mode only
};

/// Stream a labelled campaign into `sink` without ever materializing it.
/// Deterministic in (simulator seed, config): sample i derives its whole
/// content randomness from fork(i) of the config seed, and the event
/// engine's canonical ordering fixes i independently of worker threads,
/// chunk sizes, or shard counts — the streamed bytes are bit-identical for
/// any parallelism.
util::StatusOr<CampaignStats> stream_campaign(const netsim::Simulator& sim,
                                              const FeatureSpace& fs,
                                              const CampaignConfig& config,
                                              CampaignSink& sink);

/// Generate a labelled campaign in RAM — a thin adapter over
/// stream_campaign with a DatasetSink. The simulator must be QoE-calibrated
/// (config errors are programming errors here and throw std::logic_error,
/// the historical contract).
Dataset generate_campaign(const netsim::Simulator& sim,
                          const FeatureSpace& fs,
                          const CampaignConfig& config);

}  // namespace diagnet::data
