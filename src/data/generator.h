// Measurement-campaign generator: reproduces the paper's data collection
// (§IV-A) against the simulator — emulated clients in every active region
// probing all landmarks and visiting mock-up services, with faults injected
// uniformly over regions and families, multi-fault scenarios included.
//
// Ground truth follows the paper's protocol: a sample is labelled with a
// root cause only when its QoE is degraded; the set of *relevant* causes is
// established counterfactually by replaying the visit with each injected
// fault alone (cheap in a simulator; the paper used knowledge of the
// injected faults instead). Samples whose QoE survives the faults are
// labelled nominal.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "netsim/simulator.h"

namespace diagnet::data {

struct CampaignConfig {
  /// Scenarios without injected faults.
  std::size_t nominal_samples = 8000;
  /// Scenarios with injected fault(s); those that do not degrade QoE still
  /// end up labelled nominal.
  std::size_t fault_samples = 16000;

  /// Probability that a fault scenario injects a second fault.
  double multi_fault_prob = 0.15;
  /// Probability that the observed client sits in the (first) fault's
  /// region — keeps client-local fault families represented.
  double client_in_fault_region_prob = 0.5;

  /// Regions receiving injected faults; empty = paper defaults.
  std::vector<std::size_t> fault_regions;
  /// Regions with active clients; empty = all regions (Fig. 8 varies this).
  std::vector<std::size_t> active_client_regions;
  /// Service indices to visit; empty = all of the simulator's services.
  std::vector<std::size_t> services;
  /// When non-empty, every fault scenario injects exactly these faults
  /// (used by the Fig. 10 simultaneous-fault experiment).
  netsim::ActiveFaults fixed_faults;

  std::size_t clients_per_region = 4;
  double duration_hours = 336.0;  // two weeks, as in the paper
  /// Replays per injected fault when establishing relevance.
  std::size_t counterfactual_draws = 5;
  std::uint64_t seed = 42;
};

/// Generate a labelled campaign. The simulator must be QoE-calibrated.
/// Deterministic in (simulator seed, config); sample i derives its whole
/// randomness from fork(i), so generation parallelises without affecting
/// results.
Dataset generate_campaign(const netsim::Simulator& sim,
                          const FeatureSpace& fs,
                          const CampaignConfig& config);

}  // namespace diagnet::data
