#include "data/normalizer.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"
#include "util/stats.h"

namespace diagnet::data {

double Normalizer::transform(std::size_t kind, double value) {
  switch (kind) {
    case static_cast<std::size_t>(Metric::Latency):
    case static_cast<std::size_t>(Metric::Jitter):
    case static_cast<std::size_t>(Metric::DownBw):
    case static_cast<std::size_t>(Metric::UpBw):
      return std::log1p(std::max(0.0, value));
    case static_cast<std::size_t>(Metric::Loss):
      return std::sqrt(std::max(0.0, value));
    default:
      break;
  }
  const auto local = static_cast<LocalFeature>(
      kind - netsim::kMetricsPerLandmark);
  switch (local) {
    case LocalFeature::GatewayRtt:
    case LocalFeature::DnsTime:
      return std::log1p(std::max(0.0, value));
    default:
      return value;  // load fractions are already in [0, 1]
  }
}

std::size_t Normalizer::kind_of(const FeatureSpace& fs, std::size_t feature) {
  if (fs.is_landmark_feature(feature))
    return static_cast<std::size_t>(fs.metric_of(feature));
  return netsim::kMetricsPerLandmark +
         static_cast<std::size_t>(fs.local_of(feature));
}

void Normalizer::fit(const Dataset& train, const FeatureSpace& fs) {
  DIAGNET_REQUIRE(!train.samples.empty());
  fs_ = &fs;
  const std::vector<bool> available = train.feature_available(fs);

  std::vector<util::RunningStats> acc(kKinds);
  for (const Sample& sample : train.samples) {
    DIAGNET_REQUIRE(sample.features.size() == fs.total());
    for (std::size_t j = 0; j < fs.total(); ++j) {
      if (!available[j]) continue;
      const std::size_t kind = kind_of(fs, j);
      acc[kind].add(transform(kind, sample.features[j]));
    }
  }

  stats_.resize(kKinds);
  for (std::size_t kind = 0; kind < kKinds; ++kind) {
    stats_[kind].mean = acc[kind].mean();
    // A near-constant feature has a stddev that is pure numerical noise;
    // dividing by it turns tiny fluctuations into astronomical z-scores
    // that saturate the MLP. Any spread negligible relative to the
    // feature's own magnitude is treated as constant: no scaling.
    const double floor = 1e-6 * std::max(1.0, std::abs(acc[kind].mean()));
    const double std = acc[kind].stddev();
    stats_[kind].std = std > floor ? std : 1.0;
  }
}

double Normalizer::apply_one(std::size_t feature, double value) const {
  DIAGNET_REQUIRE_MSG(fitted(), "normalizer not fitted");
  const std::size_t kind = kind_of(*fs_, feature);
  return (transform(kind, value) - stats_[kind].mean) / stats_[kind].std;
}

std::vector<double> Normalizer::apply(const std::vector<double>& raw) const {
  DIAGNET_REQUIRE_MSG(fitted(), "normalizer not fitted");
  DIAGNET_REQUIRE(raw.size() == fs_->total());
  std::vector<double> out(raw.size());
  for (std::size_t j = 0; j < raw.size(); ++j) out[j] = apply_one(j, raw[j]);
  return out;
}

}  // namespace diagnet::data

namespace diagnet::data {

void Normalizer::save(util::BinaryWriter& writer) const {
  DIAGNET_REQUIRE_MSG(fitted(), "cannot save an unfitted normalizer");
  writer.write_u64(0x40a11e70ULL);
  writer.write_u64(stats_.size());
  for (const KindStats& s : stats_) {
    writer.write_double(s.mean);
    writer.write_double(s.std);
  }
}

void Normalizer::load(util::BinaryReader& reader, const FeatureSpace& fs) {
  reader.expect_u64(0x40a11e70ULL, "Normalizer");
  const std::uint64_t count = reader.read_u64();
  stats_.resize(count);
  for (auto& s : stats_) {
    s.mean = reader.read_double();
    s.std = reader.read_double();
  }
  fs_ = &fs;
}

}  // namespace diagnet::data
