#include "data/split.h"

#include <algorithm>

#include "util/require.h"
#include "util/rng.h"

namespace diagnet::data {

bool DataSplit::cause_is_new(const FeatureSpace& fs,
                             const Sample& sample) const {
  if (!sample.is_faulty() || !fs.is_landmark_feature(sample.primary_cause))
    return false;
  const std::size_t landmark = fs.landmark_of(sample.primary_cause);
  return std::find(hidden_landmarks.begin(), hidden_landmarks.end(),
                   landmark) != hidden_landmarks.end();
}

DataSplit make_split(const Dataset& full, const FeatureSpace& fs,
                     const SplitConfig& config) {
  DIAGNET_REQUIRE(config.train_fraction > 0.0 && config.train_fraction < 1.0);

  DataSplit split;
  split.hidden_landmarks = config.hidden_landmarks;
  if (split.hidden_landmarks.empty() && config.use_default_hidden)
    split.hidden_landmarks = netsim::default_hidden_landmarks(fs.topology());

  const std::size_t landmarks = fs.landmark_count();
  split.train.landmark_available.assign(landmarks, true);
  split.test.landmark_available.assign(landmarks, true);
  for (std::size_t lam : split.hidden_landmarks) {
    DIAGNET_REQUIRE(lam < landmarks);
    split.train.landmark_available[lam] = false;
  }

  // Partition indices: hidden-cause samples go straight to test; the rest
  // are shuffled per stratum (faulty/nominal) and cut at train_fraction.
  std::vector<std::size_t> strata[2];  // 0 = nominal, 1 = faulty
  for (std::size_t i = 0; i < full.samples.size(); ++i) {
    const Sample& sample = full.samples[i];
    const bool hidden_cause = [&] {
      if (!sample.is_faulty() || !fs.is_landmark_feature(sample.primary_cause))
        return false;
      const std::size_t lam = fs.landmark_of(sample.primary_cause);
      return std::find(split.hidden_landmarks.begin(),
                       split.hidden_landmarks.end(),
                       lam) != split.hidden_landmarks.end();
    }();
    if (hidden_cause) {
      split.test.samples.push_back(sample);
    } else {
      strata[sample.is_faulty() ? 1 : 0].push_back(i);
    }
  }

  util::Rng rng(config.seed);
  for (auto& stratum : strata) {
    rng.shuffle(stratum);
    const auto cut = static_cast<std::size_t>(
        config.train_fraction * static_cast<double>(stratum.size()));
    for (std::size_t p = 0; p < stratum.size(); ++p) {
      (p < cut ? split.train : split.test)
          .samples.push_back(full.samples[stratum[p]]);
    }
  }

  DIAGNET_REQUIRE_MSG(!split.train.samples.empty(), "empty training split");
  return split;
}

}  // namespace diagnet::data
