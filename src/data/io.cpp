#include "data/io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/require.h"

namespace diagnet::data {

namespace {

constexpr const char* kMetaColumns =
    "client_region,service,time_hours,page_load_ms,qoe_degraded,"
    "primary_cause,coarse_label,true_causes,injected";

using util::Status;

/// Strict numeric cell parsers: the whole cell must be consumed, so a
/// malformed row fails loudly instead of silently truncating a value.
bool parse_double_cell(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  errno = 0;
  *out = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size() && errno != ERANGE;
}

bool parse_uint_cell(const std::string& cell, std::size_t* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(cell.c_str(), &end, 10);
  if (end != cell.c_str() + cell.size() || errno == ERANGE) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

std::string encode_faults(const netsim::ActiveFaults& faults) {
  std::ostringstream os;
  os << std::setprecision(17);  // magnitudes must round-trip exactly
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i > 0) os << ';';
    os << static_cast<std::size_t>(faults[i].family) << '@'
       << faults[i].region << '@' << faults[i].magnitude;
  }
  return os.str();
}

Status decode_faults(const std::string& text, netsim::ActiveFaults* out) {
  out->clear();
  if (text.empty()) return {};
  std::istringstream items(text);
  std::string item;
  while (std::getline(items, item, ';')) {
    netsim::FaultSpec fault;
    std::size_t family = 0;
    char sep1 = 0, sep2 = 0;
    std::istringstream is(item);
    if (!(is >> family >> sep1 >> fault.region >> sep2 >> fault.magnitude) ||
        sep1 != '@' || sep2 != '@')
      return Status::invalid_argument(
          "dataset csv: malformed fault spec: " + item);
    fault.family = static_cast<netsim::FaultFamily>(family);
    out->push_back(fault);
  }
  return {};
}

std::string encode_causes(const std::vector<std::size_t>& causes) {
  std::ostringstream os;
  for (std::size_t i = 0; i < causes.size(); ++i) {
    if (i > 0) os << ';';
    os << causes[i];
  }
  return os.str();
}

Status decode_causes(const std::string& text,
                     std::vector<std::size_t>* out) {
  out->clear();
  if (text.empty()) return {};
  std::istringstream items(text);
  std::string item;
  while (std::getline(items, item, ';')) {
    std::size_t cause = 0;
    if (!parse_uint_cell(item, &cause))
      return Status::invalid_argument(
          "dataset csv: malformed cause list: " + text);
    out->push_back(cause);
  }
  return {};
}

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::istringstream is(line);
  std::string cell;
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  // A trailing empty cell is dropped by getline; restore it.
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

Status parse_row(const std::vector<std::string>& cells,
                 const FeatureSpace& fs, std::size_t row, Sample* sample) {
  const auto bad_cell = [&](std::size_t col) {
    return Status::invalid_argument(
        "dataset csv: malformed value in row " + std::to_string(row) +
        ", column " + std::to_string(col) + ": '" + cells[col] + "'");
  };
  sample->features.resize(fs.total());
  for (std::size_t j = 0; j < fs.total(); ++j)
    if (!parse_double_cell(cells[j], &sample->features[j]))
      return bad_cell(j);
  std::size_t c = fs.total();
  if (!parse_uint_cell(cells[c], &sample->client_region)) return bad_cell(c);
  ++c;
  if (!parse_uint_cell(cells[c], &sample->service)) return bad_cell(c);
  ++c;
  if (!parse_double_cell(cells[c], &sample->time_hours)) return bad_cell(c);
  ++c;
  if (!parse_double_cell(cells[c], &sample->page_load_ms)) return bad_cell(c);
  ++c;
  sample->qoe_degraded = cells[c++] == "1";
  if (cells[c].empty()) {
    sample->primary_cause = kNoCause;
  } else if (!parse_uint_cell(cells[c], &sample->primary_cause)) {
    return bad_cell(c);
  }
  ++c;
  std::size_t coarse = 0;
  if (!parse_uint_cell(cells[c], &coarse)) return bad_cell(c);
  sample->coarse_label = static_cast<netsim::FaultFamily>(coarse);
  ++c;
  if (Status s = decode_causes(cells[c++], &sample->true_causes); !s.ok())
    return s;
  return decode_faults(cells[c], &sample->injected);
}

}  // namespace

util::Status try_write_csv(const Dataset& dataset, const FeatureSpace& fs,
                           std::ostream& os) {
  // Line 1: landmark availability of this dataset.
  os << "#landmark_available";
  for (bool available : dataset.landmark_available)
    os << ',' << (available ? 1 : 0);
  os << '\n';

  // Header.
  for (std::size_t j = 0; j < fs.total(); ++j) os << fs.name(j) << ',';
  os << kMetaColumns << '\n';

  os << std::setprecision(17);
  for (const Sample& sample : dataset.samples) {
    if (sample.features.size() != fs.total())
      return Status::invalid_argument(
          "dataset csv: sample has " +
          std::to_string(sample.features.size()) + " features, expected " +
          std::to_string(fs.total()));
    for (double v : sample.features) os << v << ',';
    os << sample.client_region << ',' << sample.service << ','
       << sample.time_hours << ',' << sample.page_load_ms << ','
       << (sample.qoe_degraded ? 1 : 0) << ',';
    if (sample.is_faulty())
      os << sample.primary_cause;
    os << ',' << static_cast<std::size_t>(sample.coarse_label) << ','
       << encode_causes(sample.true_causes) << ','
       << encode_faults(sample.injected) << '\n';
  }
  if (!os) return Status::data_loss("dataset csv: write failed");
  return {};
}

util::Status try_write_csv_file(const Dataset& dataset,
                                const FeatureSpace& fs,
                                const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::not_found("dataset csv: cannot open " + path);
  if (Status s = try_write_csv(dataset, fs, os); !s.ok()) return s;
  if (!os)
    return Status::data_loss("dataset csv: write failed: " + path);
  return {};
}

util::StatusOr<Dataset> try_read_csv(std::istream& is,
                                     const FeatureSpace& fs) {
  Dataset dataset;
  std::string line;

  // Availability preamble.
  if (!std::getline(is, line))
    return Status::invalid_argument("dataset csv: empty input");
  {
    const auto cells = split_line(line);
    if (cells.empty() || cells[0] != "#landmark_available" ||
        cells.size() != fs.landmark_count() + 1)
      return Status::invalid_argument(
          "dataset csv: bad availability preamble");
    dataset.landmark_available.resize(fs.landmark_count());
    for (std::size_t lam = 0; lam < fs.landmark_count(); ++lam)
      dataset.landmark_available[lam] = cells[lam + 1] == "1";
  }

  // Header check.
  if (!std::getline(is, line))
    return Status::invalid_argument("dataset csv: missing header");
  {
    const auto cells = split_line(line);
    if (cells.size() != fs.total() + 9)
      return Status::invalid_argument(
          "dataset csv: header width mismatch");
    for (std::size_t j = 0; j < fs.total(); ++j)
      if (cells[j] != fs.name(j))
        return Status::invalid_argument(
            "dataset csv: header names do not match the feature space "
            "(col " + std::to_string(j) + ")");
  }

  std::size_t row = 2;  // 0-based file line of the first sample row
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    const auto cells = split_line(line);
    if (cells.size() != fs.total() + 9)
      return Status::invalid_argument("dataset csv: row width mismatch");
    Sample sample;
    if (Status s = parse_row(cells, fs, row, &sample); !s.ok()) return s;
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

util::StatusOr<Dataset> try_read_csv_file(const std::string& path,
                                          const FeatureSpace& fs) {
  std::ifstream is(path);
  if (!is) return Status::not_found("dataset csv: cannot open " + path);
  return try_read_csv(is, fs);
}

}  // namespace diagnet::data
