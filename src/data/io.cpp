#include "data/io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/require.h"

namespace diagnet::data {

namespace {

constexpr const char* kMetaColumns =
    "client_region,service,time_hours,page_load_ms,qoe_degraded,"
    "primary_cause,coarse_label,true_causes,injected";

std::string encode_faults(const netsim::ActiveFaults& faults) {
  std::ostringstream os;
  os << std::setprecision(17);  // magnitudes must round-trip exactly
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i > 0) os << ';';
    os << static_cast<std::size_t>(faults[i].family) << '@'
       << faults[i].region << '@' << faults[i].magnitude;
  }
  return os.str();
}

netsim::ActiveFaults decode_faults(const std::string& text) {
  netsim::ActiveFaults faults;
  if (text.empty()) return faults;
  std::istringstream items(text);
  std::string item;
  while (std::getline(items, item, ';')) {
    netsim::FaultSpec fault;
    std::size_t family = 0;
    char sep1 = 0, sep2 = 0;
    std::istringstream is(item);
    if (!(is >> family >> sep1 >> fault.region >> sep2 >> fault.magnitude) ||
        sep1 != '@' || sep2 != '@')
      throw std::runtime_error("dataset csv: malformed fault spec: " + item);
    fault.family = static_cast<netsim::FaultFamily>(family);
    faults.push_back(fault);
  }
  return faults;
}

std::string encode_causes(const std::vector<std::size_t>& causes) {
  std::ostringstream os;
  for (std::size_t i = 0; i < causes.size(); ++i) {
    if (i > 0) os << ';';
    os << causes[i];
  }
  return os.str();
}

std::vector<std::size_t> decode_causes(const std::string& text) {
  std::vector<std::size_t> causes;
  if (text.empty()) return causes;
  std::istringstream items(text);
  std::string item;
  while (std::getline(items, item, ';'))
    causes.push_back(std::stoull(item));
  return causes;
}

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::istringstream is(line);
  std::string cell;
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  // A trailing empty cell is dropped by getline; restore it.
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

void write_csv(const Dataset& dataset, const FeatureSpace& fs,
               std::ostream& os) {
  // Line 1: landmark availability of this dataset.
  os << "#landmark_available";
  for (bool available : dataset.landmark_available)
    os << ',' << (available ? 1 : 0);
  os << '\n';

  // Header.
  for (std::size_t j = 0; j < fs.total(); ++j) os << fs.name(j) << ',';
  os << kMetaColumns << '\n';

  os << std::setprecision(17);
  for (const Sample& sample : dataset.samples) {
    DIAGNET_REQUIRE(sample.features.size() == fs.total());
    for (double v : sample.features) os << v << ',';
    os << sample.client_region << ',' << sample.service << ','
       << sample.time_hours << ',' << sample.page_load_ms << ','
       << (sample.qoe_degraded ? 1 : 0) << ',';
    if (sample.is_faulty())
      os << sample.primary_cause;
    os << ',' << static_cast<std::size_t>(sample.coarse_label) << ','
       << encode_causes(sample.true_causes) << ','
       << encode_faults(sample.injected) << '\n';
  }
}

void write_csv_file(const Dataset& dataset, const FeatureSpace& fs,
                    const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("dataset csv: cannot open " + path);
  write_csv(dataset, fs, os);
  if (!os) throw std::runtime_error("dataset csv: write failed: " + path);
}

Dataset read_csv(std::istream& is, const FeatureSpace& fs) {
  Dataset dataset;
  std::string line;

  // Availability preamble.
  if (!std::getline(is, line))
    throw std::runtime_error("dataset csv: empty input");
  {
    const auto cells = split_line(line);
    if (cells.empty() || cells[0] != "#landmark_available" ||
        cells.size() != fs.landmark_count() + 1)
      throw std::runtime_error("dataset csv: bad availability preamble");
    dataset.landmark_available.resize(fs.landmark_count());
    for (std::size_t lam = 0; lam < fs.landmark_count(); ++lam)
      dataset.landmark_available[lam] = cells[lam + 1] == "1";
  }

  // Header check.
  if (!std::getline(is, line))
    throw std::runtime_error("dataset csv: missing header");
  {
    const auto cells = split_line(line);
    if (cells.size() != fs.total() + 9)
      throw std::runtime_error("dataset csv: header width mismatch");
    for (std::size_t j = 0; j < fs.total(); ++j)
      if (cells[j] != fs.name(j))
        throw std::runtime_error("dataset csv: header names do not match "
                                 "the feature space (col " +
                                 std::to_string(j) + ")");
  }

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_line(line);
    if (cells.size() != fs.total() + 9)
      throw std::runtime_error("dataset csv: row width mismatch");
    Sample sample;
    sample.features.resize(fs.total());
    for (std::size_t j = 0; j < fs.total(); ++j)
      sample.features[j] = std::stod(cells[j]);
    std::size_t c = fs.total();
    sample.client_region = std::stoull(cells[c++]);
    sample.service = std::stoull(cells[c++]);
    sample.time_hours = std::stod(cells[c++]);
    sample.page_load_ms = std::stod(cells[c++]);
    sample.qoe_degraded = cells[c++] == "1";
    sample.primary_cause =
        cells[c].empty() ? kNoCause : std::stoull(cells[c]);
    ++c;
    sample.coarse_label =
        static_cast<netsim::FaultFamily>(std::stoull(cells[c++]));
    sample.true_causes = decode_causes(cells[c++]);
    sample.injected = decode_faults(cells[c++]);
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

Dataset read_csv_file(const std::string& path, const FeatureSpace& fs) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("dataset csv: cannot open " + path);
  return read_csv(is, fs);
}

}  // namespace diagnet::data
