// Dataset persistence: CSV export/import of labelled campaigns. One row
// per sample: the m features (named per FeatureSpace) followed by the
// metadata and ground-truth columns. Lets campaigns be generated once,
// inspected with standard tooling, and re-used across runs — the analogue
// of the paper's two-week measurement archive.
//
// Parsing is Status-based (try_*): malformed input comes back as
// util::Status (invalid_argument / not_found) rather than exceptions, so
// the CLI `error:` exit and any service ingesting campaigns render the
// same failure.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace diagnet::data {

/// Write the dataset (features + ground truth) as CSV.
util::Status try_write_csv(const Dataset& dataset, const FeatureSpace& fs,
                           std::ostream& os);
util::Status try_write_csv_file(const Dataset& dataset,
                                const FeatureSpace& fs,
                                const std::string& path);

/// Parse a CSV previously produced by write_csv. The header must match the
/// feature space; malformed input is invalid_argument, a missing file
/// not_found. landmark_available is restored from the embedded
/// per-dataset line.
util::StatusOr<Dataset> try_read_csv(std::istream& is,
                                     const FeatureSpace& fs);
util::StatusOr<Dataset> try_read_csv_file(const std::string& path,
                                          const FeatureSpace& fs);

}  // namespace diagnet::data
