// Dataset persistence: CSV export/import of labelled campaigns. One row
// per sample: the m features (named per FeatureSpace) followed by the
// metadata and ground-truth columns. Lets campaigns be generated once,
// inspected with standard tooling, and re-used across runs — the analogue
// of the paper's two-week measurement archive.
//
// Parsing is Status-based (try_*): malformed input comes back as
// util::Status (invalid_argument / not_found) rather than exceptions, so
// the CLI `error:` exit and any service ingesting campaigns render the
// same failure. The historic throwing names remain as thin forwarders.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace diagnet::data {

/// Write the dataset (features + ground truth) as CSV.
util::Status try_write_csv(const Dataset& dataset, const FeatureSpace& fs,
                           std::ostream& os);
util::Status try_write_csv_file(const Dataset& dataset,
                                const FeatureSpace& fs,
                                const std::string& path);

/// Parse a CSV previously produced by write_csv. The header must match the
/// feature space; malformed input is invalid_argument, a missing file
/// not_found. landmark_available is restored from the embedded
/// per-dataset line.
util::StatusOr<Dataset> try_read_csv(std::istream& is,
                                     const FeatureSpace& fs);
util::StatusOr<Dataset> try_read_csv_file(const std::string& path,
                                          const FeatureSpace& fs);

/// Deprecated throwing forwarders (std::runtime_error) over the Status
/// API, kept so existing callers compile unchanged.
void write_csv(const Dataset& dataset, const FeatureSpace& fs,
               std::ostream& os);
void write_csv_file(const Dataset& dataset, const FeatureSpace& fs,
                    const std::string& path);
Dataset read_csv(std::istream& is, const FeatureSpace& fs);
Dataset read_csv_file(const std::string& path, const FeatureSpace& fs);

}  // namespace diagnet::data
