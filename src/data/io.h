// Dataset persistence: CSV export/import of labelled campaigns. One row
// per sample: the m features (named per FeatureSpace) followed by the
// metadata and ground-truth columns. Lets campaigns be generated once,
// inspected with standard tooling, and re-used across runs — the analogue
// of the paper's two-week measurement archive.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace diagnet::data {

/// Write the dataset (features + ground truth) as CSV.
void write_csv(const Dataset& dataset, const FeatureSpace& fs,
               std::ostream& os);
void write_csv_file(const Dataset& dataset, const FeatureSpace& fs,
                    const std::string& path);

/// Parse a CSV previously produced by write_csv. The header must match the
/// feature space; malformed input throws std::runtime_error.
/// landmark_available is restored from the embedded per-dataset line.
Dataset read_csv(std::istream& is, const FeatureSpace& fs);
Dataset read_csv_file(const std::string& path, const FeatureSpace& fs);

}  // namespace diagnet::data
