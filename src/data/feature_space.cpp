#include "data/feature_space.h"

#include "util/require.h"

namespace diagnet::data {

const char* metric_name(Metric metric) {
  switch (metric) {
    case Metric::Latency: return "latency";
    case Metric::Jitter: return "jitter";
    case Metric::Loss: return "loss";
    case Metric::DownBw: return "down_bw";
    case Metric::UpBw: return "up_bw";
  }
  return "?";
}

const char* local_feature_name(LocalFeature feature) {
  switch (feature) {
    case LocalFeature::GatewayRtt: return "gateway_rtt";
    case LocalFeature::CpuLoad: return "cpu";
    case LocalFeature::MemLoad: return "mem";
    case LocalFeature::ProcLoad: return "proc";
    case LocalFeature::DnsTime: return "dns";
  }
  return "?";
}

FaultFamily metric_family(Metric metric) {
  switch (metric) {
    case Metric::Latency: return FaultFamily::Latency;
    case Metric::Jitter: return FaultFamily::Jitter;
    case Metric::Loss: return FaultFamily::Loss;
    case Metric::DownBw:
    case Metric::UpBw: return FaultFamily::Bandwidth;
  }
  return FaultFamily::Nominal;
}

FaultFamily local_feature_family(LocalFeature feature) {
  switch (feature) {
    case LocalFeature::GatewayRtt: return FaultFamily::Uplink;
    case LocalFeature::CpuLoad:
    case LocalFeature::MemLoad:
    case LocalFeature::ProcLoad: return FaultFamily::Load;
    case LocalFeature::DnsTime: return FaultFamily::Latency;
  }
  return FaultFamily::Nominal;
}

FeatureSpace::FeatureSpace(const netsim::Topology& topology)
    : topology_(&topology), landmarks_(topology.region_count()) {}

std::size_t FeatureSpace::landmark_feature(std::size_t landmark,
                                           Metric metric) const {
  DIAGNET_REQUIRE(landmark < landmarks_);
  return landmark * metrics_per_landmark() + static_cast<std::size_t>(metric);
}

std::size_t FeatureSpace::local_feature(LocalFeature feature) const {
  return landmarks_ * metrics_per_landmark() +
         static_cast<std::size_t>(feature);
}

bool FeatureSpace::is_landmark_feature(std::size_t j) const {
  DIAGNET_REQUIRE(j < total());
  return j < landmarks_ * metrics_per_landmark();
}

std::size_t FeatureSpace::landmark_of(std::size_t j) const {
  DIAGNET_REQUIRE(is_landmark_feature(j));
  return j / metrics_per_landmark();
}

Metric FeatureSpace::metric_of(std::size_t j) const {
  DIAGNET_REQUIRE(is_landmark_feature(j));
  return static_cast<Metric>(j % metrics_per_landmark());
}

LocalFeature FeatureSpace::local_of(std::size_t j) const {
  DIAGNET_REQUIRE(j < total() && !is_landmark_feature(j));
  return static_cast<LocalFeature>(j - landmarks_ * metrics_per_landmark());
}

FaultFamily FeatureSpace::family_of(std::size_t j) const {
  return is_landmark_feature(j) ? metric_family(metric_of(j))
                                : local_feature_family(local_of(j));
}

std::vector<std::size_t> FeatureSpace::features_of_family(
    FaultFamily family) const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < total(); ++j)
    if (family_of(j) == family) out.push_back(j);
  return out;
}

std::size_t FeatureSpace::cause_of_fault(
    const netsim::FaultSpec& fault) const {
  switch (fault.family) {
    case FaultFamily::Latency:
      return landmark_feature(fault.region, Metric::Latency);
    case FaultFamily::Jitter:
      return landmark_feature(fault.region, Metric::Jitter);
    case FaultFamily::Loss:
      return landmark_feature(fault.region, Metric::Loss);
    case FaultFamily::Bandwidth:
      return landmark_feature(fault.region, Metric::DownBw);
    case FaultFamily::Uplink:
      return local_feature(LocalFeature::GatewayRtt);
    case FaultFamily::Load:
      return local_feature(LocalFeature::CpuLoad);
    case FaultFamily::Nominal:
      break;
  }
  DIAGNET_REQUIRE_MSG(false, "nominal fault has no cause feature");
}

std::string FeatureSpace::name(std::size_t j) const {
  if (is_landmark_feature(j)) {
    return topology_->region(landmark_of(j)).code + "/" +
           metric_name(metric_of(j));
  }
  return std::string("local/") + local_feature_name(local_of(j));
}

}  // namespace diagnet::data
