// Transports for the serving subsystem: a line-delimited JSON session
// over std::istream/std::ostream (the stdio transport `diagnet serve`
// uses by default, and what the tests drive with string streams), plus an
// optional loopback-TCP listener on POSIX hosts.
//
// A session reads one request per line, submits it to the
// DiagnosisService, and writes one response line per request *in
// submission order* (a dedicated writer thread waits on the per-request
// futures, so reading and writing overlap and a client may pipeline
// thousands of requests without reading). EOF triggers the graceful
// drain: every accepted request is answered before the session returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "data/feature_space.h"
#include "serve/service.h"

namespace diagnet::serve {

struct SessionStats {
  std::uint64_t requests = 0;   // lines read (including malformed ones)
  std::uint64_t responses = 0;  // lines written
  std::uint64_t errors = 0;     // non-OK responses among them
};

/// Optional per-session capabilities a transport exposes to in-band admin
/// commands. A request line of {"cmd":"statsz"} answers with one
/// statsz() line instead of being submitted as a diagnosis; sessions
/// without hooks answer such lines with an unimplemented error.
struct SessionHooks {
  std::function<std::string()> statsz;  // one-line JSON snapshot
};

/// Run one stdio-style session to completion (EOF on `in`, or
/// `stop_flag` becoming true between lines — e.g. from a SIGINT handler).
/// Does NOT stop the service: the caller owns its lifetime, so several
/// sessions (TCP connections) can share one service.
SessionStats run_session(DiagnosisService& service,
                         const data::FeatureSpace& fs, std::istream& in,
                         std::ostream& out, std::size_t default_top_k = 5,
                         const std::atomic<bool>* stop_flag = nullptr,
                         const SessionHooks* hooks = nullptr);

/// Loopback TCP listener: accepts connections on 127.0.0.1:`port` (0 =
/// kernel-assigned; the chosen port is echoed on stderr and published
/// through *bound_port when non-null — how tests and the load generator
/// discover a kernel-assigned port) and runs one session per connection,
/// all sharing `service`. Returns when `stop_flag` becomes true (checked
/// between accepts) or on a fatal socket error. On non-POSIX builds
/// returns unavailable.
util::Status run_tcp_listener(DiagnosisService& service,
                              const data::FeatureSpace& fs,
                              std::uint16_t port,
                              std::size_t default_top_k,
                              const std::atomic<bool>& stop_flag,
                              std::atomic<std::uint16_t>* bound_port =
                                  nullptr,
                              const SessionHooks* hooks = nullptr);

}  // namespace diagnet::serve
