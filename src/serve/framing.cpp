#include "serve/framing.h"

#include <cstring>

namespace diagnet::serve {

void LineFramer::feed(const char* data, std::size_t n) {
  if (overflowed_ || n == 0) return;
  const std::size_t old_size = buffer_.size();
  buffer_.append(data, n);
  // Track where the unterminated tail begins by scanning only the new
  // chunk for its last newline (never re-scanning old bytes).
  const void* last_nl = nullptr;
  for (std::size_t i = n; i > 0; --i) {
    if (data[i - 1] == '\n') {
      last_nl = data + (i - 1);
      break;
    }
  }
  if (last_nl != nullptr) {
    tail_start_ = old_size +
                  static_cast<std::size_t>(static_cast<const char*>(last_nl) -
                                           data) +
                  1;
  }
  // Overflow is judged on the unterminated tail only: every complete line
  // already in the buffer stays deliverable, so a pipelined burst whose
  // *last* line is oversized still gets answers for the earlier ones.
  if (buffer_.size() - tail_start_ > max_line_bytes_) {
    overflowed_ = true;
    // Drop the partial oversized tail; keep the complete lines before it.
    buffer_.resize(tail_start_);
    if (scanned_ > buffer_.size()) scanned_ = buffer_.size();
  }
}

bool LineFramer::next(std::string* line) {
  const char* base = buffer_.data();
  const char* found = static_cast<const char*>(
      std::memchr(base + scanned_, '\n', buffer_.size() - scanned_));
  if (found == nullptr) {
    scanned_ = buffer_.size();
    // Compact once the dead prefix dominates, so a long-lived connection
    // does not keep every byte it ever sent.
    if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
      buffer_.erase(0, consumed_);
      scanned_ -= consumed_;
      tail_start_ -= consumed_;
      consumed_ = 0;
    }
    return false;
  }
  const std::size_t pos = static_cast<std::size_t>(found - base);
  if (pos - consumed_ > max_line_bytes_) {
    // A terminated-but-oversized line (possible when the whole line arrived
    // inside one feed chunk): same sticky overflow as an unterminated one.
    overflowed_ = true;
    buffer_.clear();
    consumed_ = 0;
    scanned_ = 0;
    tail_start_ = 0;
    return false;
  }
  line->assign(buffer_, consumed_, pos - consumed_);
  consumed_ = pos + 1;
  scanned_ = pos + 1;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
    scanned_ = 0;
    tail_start_ = 0;
  }
  return true;
}

}  // namespace diagnet::serve
