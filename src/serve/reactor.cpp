#include "serve/reactor.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "serve/framing.h"
#include "serve/wire.h"

#if defined(__linux__)
#define DIAGNET_SERVE_HAS_EPOLL 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DIAGNET_SERVE_HAS_EPOLL 0
#endif

namespace diagnet::serve {

namespace detail {

ReactorStats ReactorCounters::snapshot() const {
  ReactorStats s;
  s.accepted = accepted.load(std::memory_order_relaxed);
  s.closed = closed.load(std::memory_order_relaxed);
  s.active = active.load(std::memory_order_relaxed);
  s.requests = requests.load(std::memory_order_relaxed);
  s.responses = responses.load(std::memory_order_relaxed);
  s.idle_timeouts = idle_timeouts.load(std::memory_order_relaxed);
  s.backpressure_stalls = backpressure_stalls.load(std::memory_order_relaxed);
  s.slow_reader_closes = slow_reader_closes.load(std::memory_order_relaxed);
  s.over_capacity = over_capacity.load(std::memory_order_relaxed);
  s.oversized_lines = oversized_lines.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
  s.buffered_bytes = buffered_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace detail

bool reactor_supported() { return DIAGNET_SERVE_HAS_EPOLL != 0; }

#if DIAGNET_SERVE_HAS_EPOLL

namespace {

using steady = std::chrono::steady_clock;

constexpr std::uint64_t kWakeupId = 0;
constexpr std::uint64_t kListenerId = 1;
constexpr std::uint64_t kFirstConnId = 2;

/// One formatted response line handed back from a dispatcher thread.
struct Completed {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  std::string line;
  bool is_error = false;
};

/// MPSC handoff from DiagnosisService completion callbacks to the loop
/// thread, with an eventfd so a blocking epoll_wait returns immediately.
/// Held by shared_ptr from both the loop and every in-flight callback, so
/// a completion that lands after the loop is torn down writes into a
/// queue nobody will read — harmless — instead of freed memory.
class CompletionQueue {
 public:
  CompletionQueue() {
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  }
  ~CompletionQueue() {
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  int wake_fd() const { return wake_fd_; }

  void push(Completed item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    wake();
  }

  void wake() {
    if (wake_fd_ < 0) return;
    const std::uint64_t one = 1;
    // Full eventfd counter (would need 2^64 unread wakes) degrades to a
    // missed edge, and the queue is re-drained every poll pass anyway.
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof one);
  }

  /// Reset the eventfd *before* taking items: a push that slips between
  /// the two costs one spurious wakeup, never a lost item.
  std::vector<Completed> drain() {
    if (wake_fd_ >= 0) {
      std::uint64_t count = 0;
      [[maybe_unused]] const ssize_t n =
          ::read(wake_fd_, &count, sizeof count);
    }
    std::lock_guard<std::mutex> lock(mu_);
    return std::exchange(items_, {});
  }

 private:
  int wake_fd_ = -1;
  std::mutex mu_;
  std::vector<Completed> items_;
};

/// Hashed timer wheel for idle timeouts. Lazy: entries are not moved on
/// connection activity; when one fires, the owner re-checks the real
/// last-activity time and either closes or asks for a reschedule. Slot
/// advancement is clamped to one lap, so a clock jump (fake clocks leap
/// hours) costs at most kSlots slot scans.
class TimerWheel {
 public:
  explicit TimerWheel(std::chrono::milliseconds timeout) {
    enabled_ = timeout.count() > 0;
    if (!enabled_) return;
    granularity_ms_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(timeout.count()) / 64, 10);
    slots_.resize(kSlots);
  }

  bool enabled() const { return enabled_; }
  int granularity_ms() const { return static_cast<int>(granularity_ms_); }

  void schedule(std::uint64_t conn_id, steady::time_point due) {
    if (!enabled_) return;
    // +1 rounds up (never fire early); clamping to the cursor keeps an
    // already-due entry in the very next slot to be scanned rather than a
    // slot the cursor just passed (which would wait a whole lap).
    const std::uint64_t tick =
        std::max<std::uint64_t>(tick_of(due) + 1, cursor_);
    slots_[tick % kSlots].push_back(Entry{conn_id, tick});
  }

  /// Visit every entry due at or before `now`; on_due(id) may call
  /// schedule() (entries it adds are in the future, so they are skipped
  /// even when appended to the slot being scanned).
  template <typename Fn>
  void advance(steady::time_point now, Fn&& on_due) {
    if (!enabled_) return;
    const std::uint64_t now_tick = tick_of(now);
    if (!started_) {
      started_ = true;
      cursor_ = now_tick;
    }
    if (now_tick < cursor_) return;
    const std::uint64_t span =
        std::min<std::uint64_t>(now_tick - cursor_ + 1, kSlots);
    for (std::uint64_t i = 0; i < span; ++i) {
      auto& slot = slots_[(cursor_ + i) % kSlots];
      for (std::size_t j = 0; j < slot.size();) {
        if (slot[j].due_tick <= now_tick) {
          const std::uint64_t id = slot[j].conn_id;
          slot[j] = slot.back();
          slot.pop_back();
          on_due(id);
        } else {
          ++j;
        }
      }
    }
    cursor_ = now_tick + 1;
  }

 private:
  struct Entry {
    std::uint64_t conn_id = 0;
    std::uint64_t due_tick = 0;
  };
  static constexpr std::size_t kSlots = 256;

  std::uint64_t tick_of(steady::time_point t) const {
    return static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   t.time_since_epoch())
                   .count()) /
           granularity_ms_;
  }

  bool enabled_ = false;
  bool started_ = false;
  std::uint64_t granularity_ms_ = 1;
  std::uint64_t cursor_ = 0;
  std::vector<std::vector<Entry>> slots_;
};

struct ReadyLine {
  std::string line;
  bool is_error = false;
};

/// Why a connection is being closed — picks the counter to bump.
enum class CloseKind {
  kNatural,     // peer EOF / drain complete / post-error flush done
  kIdle,        // timer wheel
  kSlowReader,  // write buffer crossed write_close_bytes
  kError,       // read/write syscall error, epoll registration failure
};

struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  LineFramer framer;

  // Outgoing bytes: out[out_off..) is still to be written.
  std::string out;
  std::size_t out_off = 0;

  // Submission-order response delivery: request k on this connection gets
  // seq k; completions park in `ready` until every earlier seq has been
  // appended to `out`. Same contract as run_session's writer thread.
  std::uint64_t next_issue_seq = 0;
  std::uint64_t next_write_seq = 0;
  std::map<std::uint64_t, ReadyLine> ready;

  bool epoll_in = true;        // EPOLLIN currently armed
  bool epoll_out = false;      // EPOLLOUT currently armed
  bool stalled = false;        // reads paused by backpressure
  bool draining = false;       // no more reads; close once flushed
  bool doomed = false;         // close decided; reaped at end of pass
  steady::time_point last_activity{};
};

int set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct ReactorLoop::Impl {
  DiagnosisService& service;
  const data::FeatureSpace& fs;
  ReactorConfig config;
  const SessionHooks* hooks;
  ClockFn clock;
  std::shared_ptr<detail::ReactorCounters> counters;
  std::shared_ptr<CompletionQueue> cq;
  TimerWheel wheel;

  int epoll_fd = -1;
  int listener_fd = -1;
  bool listener_paused = false;
  std::function<void(int)> dispatch;

  const std::atomic<bool>* stop_source = nullptr;
  bool draining = false;
  steady::time_point drain_started{};

  std::uint64_t next_conn_id = kFirstConnId;
  std::unordered_map<std::uint64_t, Conn> conns;
  std::vector<std::uint64_t> doomed_ids;  // reaped at end of each pass
  std::atomic<std::size_t> open_count{0};

  std::mutex inbox_mu;
  std::vector<int> inbox;

  Impl(DiagnosisService& service_in, const data::FeatureSpace& fs_in,
       const ReactorConfig& config_in, const SessionHooks* hooks_in,
       ClockFn clock_in, std::shared_ptr<detail::ReactorCounters> counters_in)
      : service(service_in),
        fs(fs_in),
        config(config_in),
        hooks(hooks_in),
        clock(clock_in ? std::move(clock_in)
                       : ClockFn([] { return steady::now(); })),
        counters(counters_in ? std::move(counters_in)
                             : std::make_shared<detail::ReactorCounters>()),
        cq(std::make_shared<CompletionQueue>()),
        wheel(config.idle_timeout) {
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd >= 0 && cq->wake_fd() >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kWakeupId;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, cq->wake_fd(), &ev);
    }
  }

  ~Impl() {
    for (auto& [id, conn] : conns) ::close(conn.fd);
    {
      std::lock_guard<std::mutex> lock(inbox_mu);
      for (int fd : inbox) ::close(fd);
    }
    if (listener_fd >= 0) ::close(listener_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  // ---- connection lifecycle ------------------------------------------

  /// Refuse a socket that would exceed the global cap: one error line,
  /// best-effort, then close. Lives here (not in accept) so externally
  /// adopted fds — other loops' round-robin hand-offs, the test harness's
  /// socketpairs — hit the same admission control.
  bool refuse_if_over_capacity(int fd) {
    if (counters->active.load(std::memory_order_relaxed) <
        config.max_connections)
      return false;
    counters->over_capacity.fetch_add(1, std::memory_order_relaxed);
    DIAGNET_COUNT("reactor.over_capacity");
    const std::string refusal =
        format_error(0, util::Status::resource_exhausted(
                            "connection limit reached")) +
        "\n";
#if defined(MSG_NOSIGNAL)
    [[maybe_unused]] const ssize_t n =
        ::send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
#else
    [[maybe_unused]] const ssize_t n =
        ::write(fd, refusal.data(), refusal.size());
#endif
    ::close(fd);
    return true;
  }

  void adopt_now(int fd) {
    if (refuse_if_over_capacity(fd)) return;
    if (set_nonblocking(fd) != 0) {
      ::close(fd);
      return;
    }
    const std::uint64_t id = next_conn_id++;
    Conn conn;
    conn.fd = fd;
    conn.id = id;
    conn.framer = LineFramer(config.max_line_bytes);
    conn.last_activity = clock();

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return;
    }
    if (config.idle_timeout.count() > 0)
      wheel.schedule(id, conn.last_activity + config.idle_timeout);
    const bool drain_now = draining;
    auto [it, inserted] = conns.emplace(id, std::move(conn));
    counters->accepted.fetch_add(1, std::memory_order_relaxed);
    counters->active.fetch_add(1, std::memory_order_relaxed);
    open_count.fetch_add(1, std::memory_order_relaxed);
    DIAGNET_COUNT("reactor.accepted");
    if (drain_now) {
      it->second.draining = true;
      update_state(it->second);
    }
  }

  void doom(Conn& conn, CloseKind kind) {
    if (conn.doomed) return;
    conn.doomed = true;
    doomed_ids.push_back(conn.id);
    switch (kind) {
      case CloseKind::kIdle:
        counters->idle_timeouts.fetch_add(1, std::memory_order_relaxed);
        DIAGNET_COUNT("reactor.idle_timeouts");
        break;
      case CloseKind::kSlowReader:
        counters->slow_reader_closes.fetch_add(1, std::memory_order_relaxed);
        DIAGNET_COUNT("reactor.slow_reader_closes");
        break;
      case CloseKind::kNatural:
      case CloseKind::kError:
        break;
    }
  }

  void finish_close(std::uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& conn = it->second;
    adjust_buffered(-(std::int64_t)(conn.out.size() - conn.out_off));
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conns.erase(it);
    counters->closed.fetch_add(1, std::memory_order_relaxed);
    counters->active.fetch_sub(1, std::memory_order_relaxed);
    open_count.fetch_sub(1, std::memory_order_relaxed);
    // An EMFILE-paused listener can make progress again now that a
    // descriptor freed up.
    if (listener_paused && listener_fd >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kListenerId;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, listener_fd, &ev) == 0)
        listener_paused = false;
    }
  }

  int reap_doomed() {
    if (doomed_ids.empty()) return 0;
    int reaped = 0;
    for (const std::uint64_t id : doomed_ids) {
      finish_close(id);
      ++reaped;
    }
    doomed_ids.clear();
    return reaped;
  }

  void adjust_buffered(std::int64_t delta) {
    if (delta >= 0)
      counters->buffered_bytes.fetch_add(
          static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
    else
      counters->buffered_bytes.fetch_sub(
          static_cast<std::uint64_t>(-delta), std::memory_order_relaxed);
  }

  // ---- I/O ------------------------------------------------------------

  void handle_readable(Conn& conn) {
    const steady::time_point now = clock();
    for (int round = 0; round < 8; ++round) {
      char buf[16384];
      const ssize_t n = ::read(conn.fd, buf, sizeof buf);
      if (n > 0) {
        conn.framer.feed(buf, static_cast<std::size_t>(n));
        conn.last_activity = now;
        if (conn.framer.overflowed()) break;
        if (static_cast<std::size_t>(n) < sizeof buf) break;
      } else if (n == 0) {
        // Peer half-closed: answer what it already sent, then close.
        conn.draining = true;
        break;
      } else if (errno == EINTR) {
        continue;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        doom(conn, CloseKind::kError);
        return;
      }
    }
    std::string line;
    while (!conn.doomed && conn.framer.next(&line)) process_line(conn, line);
    if (conn.doomed) return;
    if (conn.framer.overflowed()) {
      counters->oversized_lines.fetch_add(1, std::memory_order_relaxed);
      DIAGNET_COUNT("reactor.oversized_lines");
      deliver_immediate(
          conn,
          format_error(0, util::Status::invalid_argument(
                              "request line exceeds " +
                              std::to_string(config.max_line_bytes) +
                              " bytes")),
          /*is_error=*/true);
      conn.draining = true;  // flush the error, then close
    }
    update_state(conn);
  }

  void handle_writable(Conn& conn) {
    flush(conn);
    if (!conn.doomed) update_state(conn);
  }

  void flush(Conn& conn) {
    const steady::time_point now = clock();
    while (conn.out_off < conn.out.size()) {
#if defined(MSG_NOSIGNAL)
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
#else
      const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_off,
                                conn.out.size() - conn.out_off);
#endif
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        conn.last_activity = now;
        adjust_buffered(-n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        doom(conn, CloseKind::kError);
        return;
      }
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    } else if (conn.out_off > (64u << 10) &&
               conn.out_off * 2 > conn.out.size()) {
      conn.out.erase(0, conn.out_off);
      conn.out_off = 0;
    }
  }

  /// Recompute epoll interest + backpressure state after any change to a
  /// connection's buffers, and close it when its work is done.
  void update_state(Conn& conn) {
    if (conn.doomed) return;
    const std::size_t pending = conn.out.size() - conn.out_off;
    if (pending > config.write_close_bytes) {
      doom(conn, CloseKind::kSlowReader);
      return;
    }
    const bool want_read = !conn.draining && !conn.framer.overflowed();
    if (want_read) {
      if (!conn.stalled && pending > config.write_stall_bytes) {
        conn.stalled = true;
        counters->backpressure_stalls.fetch_add(1,
                                                std::memory_order_relaxed);
        DIAGNET_COUNT("reactor.backpressure_stalls");
      } else if (conn.stalled && pending <= config.write_resume_bytes) {
        conn.stalled = false;
      }
    }
    const bool all_answered = conn.next_write_seq == conn.next_issue_seq;
    if (pending == 0 && all_answered && conn.draining) {
      doom(conn, CloseKind::kNatural);
      return;
    }
    const bool arm_in = want_read && !conn.stalled;
    const bool arm_out = pending > 0;
    if (arm_in != conn.epoll_in || arm_out != conn.epoll_out) {
      epoll_event ev{};
      ev.events = (arm_in ? EPOLLIN : 0u) | (arm_out ? EPOLLOUT : 0u);
      ev.data.u64 = conn.id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
        conn.epoll_in = arm_in;
        conn.epoll_out = arm_out;
      }
    }
  }

  // ---- request processing --------------------------------------------

  void deliver_immediate(Conn& conn, std::string line, bool is_error) {
    const std::uint64_t seq = conn.next_issue_seq++;
    enqueue_response(conn, seq, std::move(line), is_error);
  }

  void enqueue_response(Conn& conn, std::uint64_t seq, std::string line,
                        bool is_error) {
    conn.ready.emplace(seq, ReadyLine{std::move(line), is_error});
    while (!conn.ready.empty() &&
           conn.ready.begin()->first == conn.next_write_seq) {
      auto node = conn.ready.begin();
      adjust_buffered(static_cast<std::int64_t>(node->second.line.size()) +
                      1);
      conn.out += node->second.line;
      conn.out += '\n';
      counters->responses.fetch_add(1, std::memory_order_relaxed);
      if (node->second.is_error)
        counters->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      ++conn.next_write_seq;
      conn.ready.erase(node);
    }
    flush(conn);
  }

  /// One request line, mirroring run_session byte for byte: "cmd" objects
  /// are in-band admin commands, anything else follows the request schema.
  void process_line(Conn& conn, const std::string& line) {
    if (line.empty()) return;
    DIAGNET_SPAN("serve.request");
    DIAGNET_COUNT("serve.requests");
    counters->requests.fetch_add(1, std::memory_order_relaxed);
    auto tree = parse_json(line);
    const JsonValue* cmd =
        tree.ok() && tree->kind() == JsonValue::Kind::Object
            ? tree->find("cmd")
            : nullptr;
    if (cmd != nullptr) {
      if (cmd->kind() != JsonValue::Kind::String) {
        deliver_immediate(
            conn,
            format_error(0, util::Status::invalid_argument(
                                "'cmd' must be a string")),
            /*is_error=*/true);
      } else if (cmd->as_string() == "statsz") {
        if (hooks != nullptr && hooks->statsz) {
          deliver_immediate(conn, hooks->statsz(), /*is_error=*/false);
        } else {
          deliver_immediate(
              conn,
              format_error(0, util::Status::unavailable(
                                  "statsz is not available on this "
                                  "session")),
              /*is_error=*/true);
        }
      } else {
        deliver_immediate(
            conn,
            format_error(0, util::Status::invalid_argument(
                                "unknown cmd '" + cmd->as_string() + "'")),
            /*is_error=*/true);
      }
      return;
    }
    auto parsed = tree.ok() ? parse_request(*tree)
                            : util::StatusOr<WireRequest>(tree.status());
    if (!parsed.ok()) {
      deliver_immediate(conn, format_error(0, parsed.status()),
                        /*is_error=*/true);
      return;
    }
    const std::uint64_t seq = conn.next_issue_seq++;
    const std::uint64_t wire_id = parsed->id;
    const std::size_t top_k =
        parsed->top_k == 0 ? config.default_top_k : parsed->top_k;
    const std::uint64_t conn_id = conn.id;
    const steady::time_point submitted = clock();
    // The callback runs on a dispatcher thread (or synchronously for
    // immediate rejections): it formats the line off-loop and hands only
    // the finished string across the completion queue.
    service.submit(
        std::move(parsed->request), parsed->deadline_ms,
        [queue = cq, clk = clock, fsp = &fs, wire_id, top_k, conn_id, seq,
         submitted](core::DiagnoseResponse response) {
          Completed done;
          done.conn_id = conn_id;
          done.seq = seq;
          done.is_error = !response.ok();
          if (response.ok()) {
            const double latency_ms =
                std::chrono::duration<double, std::milli>(clk() - submitted)
                    .count();
            done.line =
                format_response(wire_id, response, *fsp, top_k, latency_ms);
          } else {
            done.line = format_error(wire_id, response.status,
                                     response.trace.request_id);
          }
          queue->push(std::move(done));
        });
  }

  // ---- accept ---------------------------------------------------------

  int do_accept() {
    int accepted = 0;
    while (listener_fd >= 0 && !listener_paused) {
      const int fd = ::accept4(listener_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EMFILE || errno == ENFILE) {
          // Out of descriptors: stop polling the listener (otherwise LT
          // epoll spins on it) until a close frees one.
          epoll_event ev{};
          ev.events = 0;
          ev.data.u64 = kListenerId;
          if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, listener_fd, &ev) == 0)
            listener_paused = true;
        }
        break;  // EAGAIN, ECONNABORTED, ...: try again on the next event
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      // Refusal at accept, before the round-robin hand-off, so a flood at
      // the cap never bounces through another loop's inbox first (adopt_now
      // re-checks for fds adopted directly).
      if (refuse_if_over_capacity(fd)) continue;
      ++accepted;
      if (dispatch)
        dispatch(fd);
      else
        adopt_now(fd);
    }
    return accepted;
  }

  // ---- drains ---------------------------------------------------------

  int drain_inbox() {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> lock(inbox_mu);
      fds.swap(inbox);
    }
    for (const int fd : fds) adopt_now(fd);
    return static_cast<int>(fds.size());
  }

  int drain_completions() {
    std::vector<Completed> items = cq->drain();
    for (Completed& item : items) {
      auto it = conns.find(item.conn_id);
      if (it == conns.end() || it->second.doomed) continue;  // gone: drop
      Conn& conn = it->second;
      enqueue_response(conn, item.seq, std::move(item.line), item.is_error);
      if (!conn.doomed) update_state(conn);
    }
    return static_cast<int>(items.size());
  }

  void begin_drain() {
    draining = true;
    drain_started = clock();
    if (listener_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener_fd, nullptr);
      ::close(listener_fd);
      listener_fd = -1;
    }
    for (auto& [id, conn] : conns) {
      if (conn.doomed) continue;
      conn.draining = true;
      update_state(conn);
    }
  }

  int force_close_all() {
    int forced = 0;
    for (auto& [id, conn] : conns) {
      if (conn.doomed) continue;
      doom(conn, CloseKind::kNatural);
      ++forced;
    }
    return forced;
  }

  void advance_timers() {
    if (!wheel.enabled()) return;
    const steady::time_point now = clock();
    wheel.advance(now, [&](std::uint64_t id) {
      auto it = conns.find(id);
      if (it == conns.end() || it->second.doomed) return;
      Conn& conn = it->second;
      const steady::time_point idle_at =
          conn.last_activity + config.idle_timeout;
      if (idle_at <= now)
        doom(conn, CloseKind::kIdle);
      else
        wheel.schedule(id, idle_at);
    });
  }

  void publish_gauges() {
    DIAGNET_GAUGE_SET(
        "reactor.open_connections",
        static_cast<double>(counters->active.load(std::memory_order_relaxed)));
    DIAGNET_GAUGE_SET("reactor.buffered_bytes",
                      static_cast<double>(counters->buffered_bytes.load(
                          std::memory_order_relaxed)));
  }

  // ---- the pass -------------------------------------------------------

  int poll_once(int timeout_ms) {
    int work = 0;
    if (stop_source != nullptr && stop_source->load() && !draining) {
      begin_drain();
      ++work;
    }
    work += drain_inbox();
    work += drain_completions();
    if (draining) {
      if (clock() - drain_started >= config.drain_timeout)
        work += force_close_all();
      work += reap_doomed();
      if (conns.empty()) return work;  // fully drained: never block again
    }
    int wait = timeout_ms;
    if (wheel.enabled() &&
        (wait < 0 || wait > wheel.granularity_ms()))
      wait = wheel.granularity_ms();
    epoll_event events[64];
    int n = ::epoll_wait(epoll_fd, events, 64, wait);
    if (n < 0) n = 0;  // EINTR: treat as a timeout tick
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kWakeupId) {
        work += drain_completions();
        work += drain_inbox();
      } else if (id == kListenerId) {
        work += do_accept();
      } else {
        auto it = conns.find(id);
        if (it == conns.end()) continue;
        Conn& conn = it->second;
        if (conn.doomed) continue;
        if (events[i].events & EPOLLIN) handle_readable(conn);
        if (!conn.doomed && (events[i].events & EPOLLOUT))
          handle_writable(conn);
        if (!conn.doomed &&
            (events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
            (events[i].events & EPOLLIN) == 0)
          doom(conn, CloseKind::kError);
        ++work;
      }
    }
    advance_timers();
    work += reap_doomed();
    publish_gauges();
    return work;
  }
};

ReactorLoop::ReactorLoop(DiagnosisService& service,
                         const data::FeatureSpace& fs,
                         const ReactorConfig& config,
                         const SessionHooks* hooks, ClockFn clock,
                         std::shared_ptr<detail::ReactorCounters> counters)
    : impl_(std::make_unique<Impl>(service, fs, config, hooks,
                                   std::move(clock), std::move(counters))) {}

ReactorLoop::~ReactorLoop() = default;

util::Status ReactorLoop::adopt(int fd) {
  if (impl_->epoll_fd < 0)
    return util::Status::unavailable("reactor: epoll is not available");
  {
    std::lock_guard<std::mutex> lock(impl_->inbox_mu);
    impl_->inbox.push_back(fd);
  }
  wake();
  return {};
}

void ReactorLoop::attach_listener(int listener_fd,
                                  std::function<void(int)> dispatch) {
  set_nonblocking(listener_fd);
  impl_->listener_fd = listener_fd;
  impl_->dispatch = std::move(dispatch);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, listener_fd, &ev);
}

int ReactorLoop::poll_once(int timeout_ms) {
  return impl_->poll_once(timeout_ms);
}

void ReactorLoop::wake() { impl_->cq->wake(); }

void ReactorLoop::set_stop_source(const std::atomic<bool>* stop) {
  impl_->stop_source = stop;
}

bool ReactorLoop::drained() const {
  return impl_->draining && impl_->conns.empty();
}

std::size_t ReactorLoop::open_connections() const {
  return impl_->open_count.load(std::memory_order_relaxed);
}

ReactorStats ReactorLoop::stats() const { return impl_->counters->snapshot(); }

// ---- multi-loop reactor ------------------------------------------------

Reactor::Reactor(DiagnosisService& service, const data::FeatureSpace& fs,
                 ReactorConfig config, const SessionHooks* hooks,
                 ReactorLoop::ClockFn clock)
    : config_(std::move(config)),
      counters_(std::make_shared<detail::ReactorCounters>()) {
  if (config_.loops == 0) config_.loops = 1;
  for (std::size_t i = 0; i < config_.loops; ++i)
    loops_.push_back(std::make_unique<ReactorLoop>(
        service, fs, config_, hooks, clock, counters_));
}

Reactor::~Reactor() = default;

util::Status Reactor::listen(std::uint16_t port,
                             std::atomic<std::uint16_t>* bound_port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0)
    return util::Status::unavailable("reactor: socket() failed");
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // Deep backlog: an open-loop load test connects tens of thousands of
  // sockets in a burst, and SYNs beyond the backlog are dropped.
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 4096) != 0) {
    ::close(listener);
    return util::Status::unavailable(
        "reactor: cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (bound_port != nullptr) bound_port->store(ntohs(addr.sin_port));
  std::fprintf(stderr, "serve: listening on 127.0.0.1:%u (epoll, %zu %s)\n",
               static_cast<unsigned>(ntohs(addr.sin_port)), config_.loops,
               config_.loops == 1 ? "loop" : "loops");

  listener_fd_ = listener;
  loops_[0]->attach_listener(listener, [this](int conn_fd) {
    const std::size_t i =
        round_robin_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    if (!loops_[i]->adopt(conn_fd).ok()) ::close(conn_fd);
  });
  return {};
}

util::Status Reactor::run(const std::atomic<bool>& stop_flag) {
  for (auto& loop : loops_) loop->set_stop_source(&stop_flag);
  const auto body = [](ReactorLoop* loop) {
    while (!loop->drained()) loop->poll_once(50);
  };
  std::vector<std::thread> threads;
  threads.reserve(loops_.size() - 1);
  for (std::size_t i = 1; i < loops_.size(); ++i)
    threads.emplace_back(body, loops_[i].get());
  body(loops_[0].get());
  for (auto& t : threads) t.join();
  return {};
}

ReactorStats Reactor::stats() const { return counters_->snapshot(); }

#else  // !DIAGNET_SERVE_HAS_EPOLL

struct ReactorLoop::Impl {};

ReactorLoop::ReactorLoop(DiagnosisService&, const data::FeatureSpace&,
                         const ReactorConfig&, const SessionHooks*, ClockFn,
                         std::shared_ptr<detail::ReactorCounters>) {}
ReactorLoop::~ReactorLoop() = default;

util::Status ReactorLoop::adopt(int) {
  return util::Status::unavailable(
      "the epoll reactor is not available on this platform");
}
void ReactorLoop::attach_listener(int, std::function<void(int)>) {}
int ReactorLoop::poll_once(int) { return 0; }
void ReactorLoop::wake() {}
void ReactorLoop::set_stop_source(const std::atomic<bool>*) {}
bool ReactorLoop::drained() const { return true; }
std::size_t ReactorLoop::open_connections() const { return 0; }
ReactorStats ReactorLoop::stats() const { return {}; }

Reactor::Reactor(DiagnosisService&, const data::FeatureSpace&,
                 ReactorConfig config, const SessionHooks*,
                 ReactorLoop::ClockFn)
    : config_(std::move(config)),
      counters_(std::make_shared<detail::ReactorCounters>()) {}
Reactor::~Reactor() = default;

util::Status Reactor::listen(std::uint16_t, std::atomic<std::uint16_t>*) {
  return util::Status::unavailable(
      "the epoll reactor is not available on this platform; use --listener "
      "threads");
}

util::Status Reactor::run(const std::atomic<bool>&) {
  return util::Status::unavailable(
      "the epoll reactor is not available on this platform; use --listener "
      "threads");
}

ReactorStats Reactor::stats() const { return counters_->snapshot(); }

#endif  // DIAGNET_SERVE_HAS_EPOLL

}  // namespace diagnet::serve
