// Incremental line framing for the non-blocking transports: bytes arrive
// in arbitrary chunks (whatever one read() returned), complete lines come
// out. The contract matches what std::getline gave the thread-per-
// connection transport — lines are split on '\n' only, the terminator is
// not part of the line, '\r' and NUL bytes pass through untouched — so a
// client sees byte-identical framing whichever listener it connected to.
//
// Unlike getline, the framer enforces a maximum line length: a client
// that streams forever without a newline would otherwise grow the read
// buffer without bound (at C1M connection counts that is a trivial memory
// DoS). Crossing the limit makes the framer sticky-overflowed; the owner
// is expected to answer with one error line and close the connection.
//
// Amortised O(1) per byte: the newline scan never revisits bytes
// (`scanned_` high-water mark) and consumed prefixes are compacted only
// once they dominate the buffer.
#pragma once

#include <cstddef>
#include <string>

namespace diagnet::serve {

class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Append one chunk of raw transport bytes. No-op once overflowed.
  void feed(const char* data, std::size_t n);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Pop the next complete line (terminator stripped) into *line.
  /// Returns false when no complete line is buffered (or after overflow).
  /// Empty lines are surfaced too — the session layer skips them, exactly
  /// as the getline loop did.
  bool next(std::string* line);

  /// Sticky: true once a line exceeded max_line_bytes. Complete lines
  /// framed before the oversized one remain poppable via next(); the
  /// partial oversized tail is discarded and further feeds are ignored.
  bool overflowed() const { return overflowed_; }

  /// Bytes buffered but not yet returned as lines.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  std::size_t max_line_bytes() const { return max_line_bytes_; }

  static constexpr std::size_t kDefaultMaxLineBytes = 1u << 20;

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;    // prefix already returned as lines
  std::size_t scanned_ = 0;     // newline-scan high-water mark
  std::size_t tail_start_ = 0;  // first byte after the last '\n' seen
  bool overflowed_ = false;
};

}  // namespace diagnet::serve
