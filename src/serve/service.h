// The long-lived diagnosis service behind `diagnet serve`: a dynamic
// micro-batching queue in front of core::BatchDiagnoser.
//
// Concurrent producers enqueue single DiagnoseRequests through submit(),
// which returns a per-request future. One dispatcher thread drains up to
// max_batch requests — or whatever arrived within max_delay_us of the
// first waiting request, whichever happens first — and runs them through
// the batched engine, so the per-batch network passes (one forward + one
// backward for the whole batch) are amortised across callers who never
// coordinated. The batch engine's bit-exactness contract makes this
// invisible: every response is bit-identical to an unbatched
// DiagNetModel::diagnose() of the same request.
//
// Admission control and backpressure:
//  * bounded queue — submit() on a full queue resolves the future
//    immediately with resource_exhausted ("queue full"), it never blocks;
//  * per-request deadlines — a request whose deadline passed while queued
//    is shed with deadline_exceeded *before* it wastes a batch slot;
//  * graceful drain — stop() stops admission (unavailable), lets the
//    dispatcher finish every accepted request, then joins. The destructor
//    stops implicitly, so no future is ever abandoned.
//
// Model hot-swap: the service reads its model through a ModelProvider,
// which hands out shared_ptr snapshots. swap()/reload_from() atomically
// replace the pointer; a batch in flight keeps the old model alive until
// it completes, while the next batch picks up the new one. Requests are
// never mixed across models within a batch.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_diagnoser.h"
#include "core/diagnet.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace diagnet::serve {

/// Atomic handle to the currently-served model. Thread-safe; cheap to
/// snapshot (one mutex-protected shared_ptr copy).
class ModelProvider {
 public:
  explicit ModelProvider(std::shared_ptr<core::DiagNetModel> model,
                         std::uint64_t checksum = 0);

  /// Load the initial model from a registry bundle; remembers the file's
  /// mtime so a subsequent poll_and_reload() only fires on a newer write.
  static util::StatusOr<std::shared_ptr<ModelProvider>> from_file(
      const std::string& path, const data::FeatureSpace& fs);

  /// The model new batches should use. Never null.
  std::shared_ptr<core::DiagNetModel> current() const;

  /// Atomically publish a new model. In-flight users of the old snapshot
  /// are unaffected (shared ownership keeps it alive).
  void swap(std::shared_ptr<core::DiagNetModel> next);

  /// Publish a new model together with its payload checksum in one
  /// generation bump — the router path, where the served model is merged
  /// from several bundle files and the checksum is the combination the
  /// caller computed over all of them.
  void swap(std::shared_ptr<core::DiagNetModel> next, std::uint64_t checksum);

  /// Load a bundle through the v2 checksummed registry and swap it in.
  /// On any error (missing file, corrupt bundle, wrong deployment shape)
  /// the current model stays and the Status says why — a bad bundle can
  /// never take down a serving process.
  util::Status reload_from(const std::string& path,
                           const data::FeatureSpace& fs);

  /// Poll `path` for a newer modification time than the last successful
  /// (re)load and reload when seen. Returns true when a swap happened;
  /// errors are reported through *status (which is OK on no-op).
  bool poll_and_reload(const std::string& path,
                       const data::FeatureSpace& fs, util::Status* status);

  /// Generation counter: starts at 1, +1 per successful swap/reload.
  std::uint64_t generation() const;

  /// FNV-1a payload checksum of the bundle behind current(), as recorded
  /// by the v2 registry at load time — statsz exposes it so an operator
  /// can verify which trained weights a process serves. 0 when the model
  /// was handed in directly (no bundle ever loaded).
  std::uint64_t checksum() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<core::DiagNetModel> model_;
  std::uint64_t generation_ = 1;
  std::uint64_t checksum_ = 0;
  std::filesystem::file_time_type last_mtime_{};
  bool has_mtime_ = false;
};

struct ServiceConfig {
  /// Batch-forming caps: dispatch when max_batch requests are waiting, or
  /// max_delay_us after the oldest arrival, whichever comes first.
  std::size_t max_batch = 64;
  std::uint64_t max_delay_us = 2000;
  /// Admission bound; submissions beyond this are rejected (queue_full).
  std::size_t queue_capacity = 1024;
  /// Workers for the inner BatchDiagnoser (1 = run batches serially on
  /// the dispatcher thread, the deterministic single-core default).
  std::size_t worker_threads = 1;
};

class DiagnosisService {
 public:
  DiagnosisService(std::shared_ptr<ModelProvider> models,
                   ServiceConfig config = {});
  ~DiagnosisService();  // graceful stop()

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  /// Enqueue one request. Always returns a future that will be fulfilled:
  /// with a diagnosis, or with a Status response (queue full, deadline
  /// exceeded, validation failure, server stopping). Never blocks beyond
  /// the internal mutex. deadline_ms == 0 means no deadline.
  std::future<core::DiagnoseResponse> submit(core::DiagnoseRequest request,
                                             double deadline_ms = 0.0);

  /// Callback flavour for event-loop transports (the epoll reactor): the
  /// same admission/shedding/batching semantics, but completion is
  /// delivered by invoking `done` exactly once instead of through a
  /// future. `done` runs on the dispatcher thread for batched results and
  /// shed deadlines, or synchronously on the caller's thread for
  /// immediate rejections (queue full, stopping) — it must be cheap,
  /// non-throwing, and must not call back into this service.
  using Completion = std::function<void(core::DiagnoseResponse)>;
  void submit(core::DiagnoseRequest request, double deadline_ms,
              Completion done);

  /// Graceful drain: stop admitting, complete every accepted request,
  /// join the dispatcher. Idempotent; safe from any thread (including a
  /// signal-triggered watcher, but not the dispatcher itself).
  void stop();

  bool stopping() const;

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;   // queue-full refusals
    std::uint64_t shed = 0;       // deadline-exceeded drops
    std::uint64_t completed = 0;  // diagnoses actually produced
    std::uint64_t batches = 0;    // dispatched batches
  };
  Stats stats() const;

  /// Live introspection for statsz: requests currently waiting for a
  /// batch slot, and batches currently executing (0 or 1 with a single
  /// dispatcher, but the contract does not promise that).
  std::size_t queue_depth() const;
  std::uint64_t in_flight_batches() const {
    return in_flight_batches_.load(std::memory_order_relaxed);
  }

  const ServiceConfig& config() const { return config_; }

 private:
  struct Pending {
    core::DiagnoseRequest request;
    std::promise<core::DiagnoseResponse> promise;
    Completion done;  // when set, delivery bypasses the promise
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    std::uint64_t request_id = 0;
    bool has_deadline = false;

    void resolve(core::DiagnoseResponse&& response) {
      if (done)
        done(std::move(response));
      else
        promise.set_value(std::move(response));
    }
  };

  static Pending make_pending(core::DiagnoseRequest request,
                              double deadline_ms, std::uint64_t request_id);
  void enqueue(Pending pending);
  void dispatch_loop();
  void run_batch(std::vector<Pending> batch,
                 std::chrono::steady_clock::time_point formed);

  std::shared_ptr<ModelProvider> models_;
  ServiceConfig config_;
  util::ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  Stats stats_;
  /// Request ids are assigned at submit() — including rejected requests,
  /// so a reject in a client log still has a server-side identity.
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> in_flight_batches_{0};

  std::mutex stop_mu_;  // serialises the dispatcher join in stop()
  std::thread dispatcher_;
};

}  // namespace diagnet::serve
