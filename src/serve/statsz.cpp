#include "serve/statsz.h"

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/report.h"
#include "obs/telemetry.h"
#include "tensor/dispatch.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIAGNET_SERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DIAGNET_SERVE_HAS_TCP 0
#endif

namespace diagnet::serve {

namespace {

using clock = std::chrono::steady_clock;

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

std::string checksum_hex(std::uint64_t checksum) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

/// Prometheus metric name: "serve.latency_ms" -> "diagnet_serve_latency_ms"
/// (the exposition grammar only allows [a-zA-Z0-9_:]).
std::string prom_name(const std::string& name) {
  std::string out = "diagnet_";
  for (const char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    out += (std::isalnum(u) || c == ':') ? c : '_';
  }
  return out;
}

}  // namespace

std::string statsz_json(const StatszSource& source) {
  std::string out = "{";
  out += "\"uptime_s\":";
  append_number(out, std::chrono::duration<double>(clock::now() -
                                                   source.start)
                         .count());
  if (source.service != nullptr) {
    const DiagnosisService::Stats stats = source.service->stats();
    out += ",\"queue_depth\":" +
           std::to_string(source.service->queue_depth());
    out += ",\"in_flight_batches\":" +
           std::to_string(source.service->in_flight_batches());
    out += ",\"service\":{";
    out += "\"accepted\":" + std::to_string(stats.accepted);
    out += ",\"rejected\":" + std::to_string(stats.rejected);
    out += ",\"shed\":" + std::to_string(stats.shed);
    out += ",\"completed\":" + std::to_string(stats.completed);
    out += ",\"batches\":" + std::to_string(stats.batches);
    out += ",\"queue_capacity\":" +
           std::to_string(source.service->config().queue_capacity);
    out += ",\"max_batch\":" +
           std::to_string(source.service->config().max_batch);
    out += '}';
  }
  if (source.reactor != nullptr) {
    const ReactorStats r = source.reactor->stats();
    out += ",\"reactor\":{";
    out += "\"loops\":" + std::to_string(source.reactor->config().loops);
    out += ",\"open_connections\":" + std::to_string(r.active);
    out += ",\"accepted\":" + std::to_string(r.accepted);
    out += ",\"closed\":" + std::to_string(r.closed);
    out += ",\"requests\":" + std::to_string(r.requests);
    out += ",\"responses\":" + std::to_string(r.responses);
    out += ",\"buffered_bytes\":" + std::to_string(r.buffered_bytes);
    out += ",\"idle_timeouts\":" + std::to_string(r.idle_timeouts);
    out += ",\"backpressure_stalls\":" +
           std::to_string(r.backpressure_stalls);
    out += ",\"slow_reader_closes\":" +
           std::to_string(r.slow_reader_closes);
    out += ",\"over_capacity\":" + std::to_string(r.over_capacity);
    out += ",\"oversized_lines\":" + std::to_string(r.oversized_lines);
    out += ",\"protocol_errors\":" + std::to_string(r.protocol_errors);
    // The serving-SLO rollup: reactor-level failures only (not client
    // mistakes); the CI loadgen gate asserts this stays 0.
    out += ",\"errors\":" + std::to_string(r.errors());
    out += '}';
  }
  if (source.provider != nullptr) {
    out += ",\"model\":{";
    out += "\"generation\":" + std::to_string(source.provider->generation());
    out += ",\"checksum\":\"" + checksum_hex(source.provider->checksum());
    out += "\"";
    const auto model = source.provider->current();
    out += ",\"quantized\":";
    out += model != nullptr && model->quantized() ? "true" : "false";
    if (model != nullptr) {
      out += ",\"specialized_services\":[";
      bool first = true;
      for (const std::size_t s : model->specialized_services()) {
        if (!first) out += ',';
        out += std::to_string(s);
        first = false;
      }
      out += ']';
    }
    out += '}';
  }
  out += ",\"kernel\":{";
  out += "\"tier\":\"" + std::string(tensor::active_kernel_tier_name());
  out += "\",\"cpu\":\"" + tensor::cpu_features_string() + "\"}";
  out += ",\"metrics\":" + obs::metrics_to_json();
  out += '}';
  return out;
}

std::string statsz_prometheus(const StatszSource& source) {
  std::string out;
  const auto emit = [&](const std::string& name, const char* type,
                        double value) {
    out += "# TYPE " + name + ' ' + type + '\n';
    out += name + ' ';
    append_number(out, value);
    out += '\n';
  };

  emit("diagnet_uptime_seconds", "gauge",
       std::chrono::duration<double>(clock::now() - source.start).count());
  if (source.service != nullptr) {
    const DiagnosisService::Stats stats = source.service->stats();
    emit("diagnet_serve_queue_depth", "gauge",
         static_cast<double>(source.service->queue_depth()));
    emit("diagnet_serve_in_flight_batches", "gauge",
         static_cast<double>(source.service->in_flight_batches()));
    emit("diagnet_serve_accepted_total", "counter",
         static_cast<double>(stats.accepted));
    emit("diagnet_serve_rejected_total", "counter",
         static_cast<double>(stats.rejected));
    emit("diagnet_serve_shed_total", "counter",
         static_cast<double>(stats.shed));
    emit("diagnet_serve_completed_total", "counter",
         static_cast<double>(stats.completed));
    emit("diagnet_serve_batches_total", "counter",
         static_cast<double>(stats.batches));
  }
  if (source.reactor != nullptr) {
    const ReactorStats r = source.reactor->stats();
    emit("diagnet_reactor_open_connections", "gauge",
         static_cast<double>(r.active));
    emit("diagnet_reactor_buffered_bytes", "gauge",
         static_cast<double>(r.buffered_bytes));
    emit("diagnet_reactor_accepted_total", "counter",
         static_cast<double>(r.accepted));
    emit("diagnet_reactor_closed_total", "counter",
         static_cast<double>(r.closed));
    emit("diagnet_reactor_requests_total", "counter",
         static_cast<double>(r.requests));
    emit("diagnet_reactor_responses_total", "counter",
         static_cast<double>(r.responses));
    emit("diagnet_reactor_idle_timeouts_total", "counter",
         static_cast<double>(r.idle_timeouts));
    emit("diagnet_reactor_backpressure_stalls_total", "counter",
         static_cast<double>(r.backpressure_stalls));
    emit("diagnet_reactor_slow_reader_closes_total", "counter",
         static_cast<double>(r.slow_reader_closes));
    emit("diagnet_reactor_over_capacity_total", "counter",
         static_cast<double>(r.over_capacity));
    emit("diagnet_reactor_oversized_lines_total", "counter",
         static_cast<double>(r.oversized_lines));
    emit("diagnet_reactor_protocol_errors_total", "counter",
         static_cast<double>(r.protocol_errors));
    emit("diagnet_reactor_errors_total", "counter",
         static_cast<double>(r.errors()));
  }
  if (source.provider != nullptr) {
    emit("diagnet_model_generation", "gauge",
         static_cast<double>(source.provider->generation()));
    // The checksum does not fit a float64 exactly; expose it as a label
    // on a constant-1 info metric, the Prometheus idiom for identities.
    out += "# TYPE diagnet_model_info gauge\n";
    out += "diagnet_model_info{checksum=\"" +
           checksum_hex(source.provider->checksum()) + "\"} 1\n";
    const auto model = source.provider->current();
    emit("diagnet_model_quantized", "gauge",
         model != nullptr && model->quantized() ? 1.0 : 0.0);
    emit("diagnet_model_specialized_services", "gauge",
         model != nullptr
             ? static_cast<double>(model->specialized_services().size())
             : 0.0);
  }
  // Same info-metric idiom for the dispatched kernel tier: the tier and the
  // probed CPU features ride as labels on a constant 1.
  out += "# TYPE diagnet_kernel_info gauge\n";
  out += "diagnet_kernel_info{tier=\"";
  out += tensor::active_kernel_tier_name();
  out += "\",cpu=\"" + tensor::cpu_features_string() + "\"} 1\n";

  obs::Registry& registry = obs::Registry::instance();
  for (const auto& [name, value] : registry.counters())
    emit(prom_name(name) + "_total", "counter",
         static_cast<double>(value));
  for (const auto& [name, value] : registry.gauges())
    emit(prom_name(name), "gauge", value);
  for (const auto& [name, snapshot] : registry.tail_histograms()) {
    if (snapshot.count == 0) continue;
    const std::string metric = prom_name(name);
    out += "# TYPE " + metric + " summary\n";
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      out += metric + "{quantile=\"";
      append_number(out, q);
      out += "\"} ";
      append_number(out, snapshot.percentile(q));
      out += '\n';
    }
    out += metric + "_sum ";
    append_number(out, snapshot.sum);
    out += '\n';
    out += metric + "_count " + std::to_string(snapshot.count) + '\n';
  }
  return out;
}

#if DIAGNET_SERVE_HAS_TCP

namespace {

/// Read until the end of the HTTP request head ("\r\n\r\n") or a small
/// size cap — this is an admin endpoint for GET requests, not a general
/// HTTP server, so anything oversized or slow (>2s) is dropped.
bool read_request_head(int fd, std::string* head) {
  char buf[1024];
  while (head->size() < 8192) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) return false;
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) return false;
    head->append(buf, static_cast<std::size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos)
      return true;
  }
  return false;
}

void write_http_response(int fd, const char* status,
                         const char* content_type, const std::string& body) {
  std::string response = "HTTP/1.1 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  const char* data = response.data();
  std::size_t left = response.size();
  while (left > 0) {
#if defined(MSG_NOSIGNAL)
    const ssize_t written = ::send(fd, data, left, MSG_NOSIGNAL);
#else
    const ssize_t written = ::write(fd, data, left);
#endif
    if (written <= 0) return;
    data += written;
    left -= static_cast<std::size_t>(written);
  }
}

}  // namespace

util::Status run_admin_listener(const StatszSource& source,
                                std::uint16_t port,
                                const std::atomic<bool>& stop_flag,
                                std::atomic<std::uint16_t>* bound_port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0)
    return util::Status::unavailable("admin: socket() failed");
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 4) != 0) {
    ::close(listener);
    return util::Status::unavailable(
        "admin: cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  const std::uint16_t actual = ntohs(addr.sin_port);
  if (bound_port != nullptr) bound_port->store(actual);
  std::fprintf(stderr, "serve: statsz on http://127.0.0.1:%u/statsz\n",
               static_cast<unsigned>(actual));

  while (!stop_flag.load()) {
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) break;
    if (ready == 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    std::string head;
    if (read_request_head(conn, &head)) {
      // "GET <path> ..." — only the method and path matter here.
      std::string path;
      if (head.rfind("GET ", 0) == 0) {
        const std::size_t end = head.find(' ', 4);
        if (end != std::string::npos) path = head.substr(4, end - 4);
      }
      if (path == "/statsz" || path == "/statsz/")
        write_http_response(conn, "200 OK", "application/json",
                            statsz_json(source) + "\n");
      else if (path == "/metrics" || path == "/metrics/")
        write_http_response(conn, "200 OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            statsz_prometheus(source));
      else
        write_http_response(conn, "404 Not Found", "text/plain",
                            "not found; try /statsz or /metrics\n");
    }
    ::close(conn);
  }
  ::close(listener);
  return {};
}

#else  // !DIAGNET_SERVE_HAS_TCP

util::Status run_admin_listener(const StatszSource&, std::uint16_t,
                                const std::atomic<bool>&,
                                std::atomic<std::uint16_t>*) {
  return util::Status::unavailable(
      "admin listener is not available on this platform");
}

#endif  // DIAGNET_SERVE_HAS_TCP

}  // namespace diagnet::serve
