#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/telemetry.h"  // append_json_escaped
#include "util/require.h"

namespace diagnet::serve {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}
JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}
JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::as_bool() const {
  DIAGNET_REQUIRE(kind_ == Kind::Bool);
  return bool_;
}
double JsonValue::as_number() const {
  DIAGNET_REQUIRE(kind_ == Kind::Number);
  return number_;
}
const std::string& JsonValue::as_string() const {
  DIAGNET_REQUIRE(kind_ == Kind::String);
  return string_;
}
const std::vector<JsonValue>& JsonValue::items() const {
  DIAGNET_REQUIRE(kind_ == Kind::Array);
  return items_;
}
const std::map<std::string, JsonValue>& JsonValue::members() const {
  DIAGNET_REQUIRE(kind_ == Kind::Object);
  return members_;
}
std::vector<JsonValue>& JsonValue::items() {
  DIAGNET_REQUIRE(kind_ == Kind::Array);
  return items_;
}
std::map<std::string, JsonValue>& JsonValue::members() {
  DIAGNET_REQUIRE(kind_ == Kind::Object);
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

namespace {

using util::Status;

/// Recursive-descent parser over a string view with a depth cap (hostile
/// input on a network-facing transport must not overflow the stack).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  util::StatusOr<JsonValue> parse() {
    JsonValue value;
    if (Status s = parse_value(&value, 0); !s.ok()) return s;
    skip_ws();
    if (pos_ != text_.size())
      return error("trailing characters after JSON value");
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  Status error(const std::string& what) const {
    return Status::invalid_argument("json: " + what + " at offset " +
                                    std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Status parse_value(JsonValue* out, std::size_t depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') return parse_string(out);
    if (c == 't' || c == 'f') {
      if (consume_word("true")) {
        *out = JsonValue::boolean(true);
        return {};
      }
      if (consume_word("false")) {
        *out = JsonValue::boolean(false);
        return {};
      }
      return error("unexpected token");
    }
    if (c == 'n') {
      if (consume_word("null")) {
        *out = JsonValue();
        return {};
      }
      return error("unexpected token");
    }
    return parse_number(out);
  }

  Status parse_object(JsonValue* out, std::size_t depth) {
    consume('{');
    *out = JsonValue::object();
    skip_ws();
    if (consume('}')) return {};
    while (true) {
      skip_ws();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return error("expected object key string");
      if (Status s = parse_string(&key); !s.ok()) return s;
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      JsonValue value;
      if (Status s = parse_value(&value, depth + 1); !s.ok()) return s;
      out->members()[key.as_string()] = std::move(value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return {};
      return error("expected ',' or '}'");
    }
  }

  Status parse_array(JsonValue* out, std::size_t depth) {
    consume('[');
    *out = JsonValue::array();
    skip_ws();
    if (consume(']')) return {};
    while (true) {
      JsonValue value;
      if (Status s = parse_value(&value, depth + 1); !s.ok()) return s;
      out->items().push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return {};
      return error("expected ',' or ']'");
    }
  }

  Status parse_string(JsonValue* out) {
    consume('"');
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        return error("control character in string");
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) return error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return error("bad \\u escape");
          }
          // UTF-8 encode the code point (BMP only; surrogate pairs are
          // rejected — metric names and error texts never need them).
          if (code >= 0xD800 && code <= 0xDFFF)
            return error("surrogate \\u escapes unsupported");
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return error("bad escape character");
      }
    }
    *out = JsonValue::string(std::move(s));
    return {};
  }

  Status parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return error("unexpected token");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return error("malformed number '" + token + "'");
    *out = JsonValue::number(value);
    return {};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_value(std::string& out, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::Null:
      out += "null";
      return;
    case JsonValue::Kind::Bool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::Number: {
      const double d = value.as_number();
      if (!std::isfinite(d)) {
        out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
      return;
    }
    case JsonValue::Kind::String:
      out += '"';
      obs::append_json_escaped(out, value.as_string());
      out += '"';
      return;
    case JsonValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out += ',';
        first = false;
        append_value(out, item);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        obs::append_json_escaped(out, key);
        out += "\":";
        append_value(out, member);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

util::StatusOr<JsonValue> parse_json(const std::string& text) {
  return Parser(text).parse();
}

std::string to_json(const JsonValue& value) {
  std::string out;
  append_value(out, value);
  return out;
}

}  // namespace diagnet::serve
