#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "serve/json.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIAGNET_SERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DIAGNET_SERVE_HAS_TCP 0
#endif

namespace diagnet::serve {

#if DIAGNET_SERVE_HAS_TCP

namespace {

using clock = std::chrono::steady_clock;

/// splitmix64: deterministic per-connection pool sampling.
std::uint64_t next_rand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One request awaiting its response on a connection. Responses arrive in
/// submission order per connection, so matching is FIFO.
struct InFlight {
  clock::time_point measured_from{};
  bool is_statsz = false;
};

/// One multiplexed client connection.
struct ClientConn {
  int fd = -1;
  std::size_t index = 0;      // global connection index
  std::uint64_t rng = 0;
  std::string inbuf;
  std::string outbuf;         // partial non-blocking sends
  std::size_t out_off = 0;
  std::deque<InFlight> in_flight;
  std::size_t next_j = 0;     // next global request index (step = conns)
  std::size_t handled = 0;    // responses fully received
  std::size_t share = 0;      // total requests this connection will send
  std::size_t issued = 0;     // requests sent so far
  bool statsz_sent = false;
  bool dead = false;

  bool done() const {
    return dead || (issued >= share && in_flight.empty() &&
                    out_off >= outbuf.size());
  }
};

/// Blocking connect with retries until the deadline — the benchmark
/// script starts server and loadgen concurrently, and a 10k-connection
/// burst can also overrun the listener backlog transiently.
util::Status connect_one(std::uint16_t port, clock::time_point deadline,
                         int* out_fd) {
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return util::Status::unavailable("loadgen: socket()");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      *out_fd = fd;
      return {};
    }
    ::close(fd);
    if (clock::now() >= deadline)
      return util::Status::unavailable(
          "loadgen: cannot connect to 127.0.0.1:" + std::to_string(port));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Shared, mutex-merged result sinks for the worker threads.
struct Sinks {
  std::mutex mu;
  obs::LogLinearHistogram latency_ms;
  std::uint64_t sent = 0, ok = 0, rejected = 0, errors = 0, connected = 0;
  std::string statsz;
  util::Status connect_error;  // first connect failure, if any
};

class Worker {
 public:
  Worker(const LoadgenConfig& config, std::size_t total_conns,
         clock::time_point start, Sinks& sinks)
      : config_(config),
        total_conns_(total_conns),
        start_(start),
        sinks_(sinks) {}

  void add_connection(std::size_t index) { indices_.push_back(index); }

  void run() {
    const auto connect_deadline =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(
                               config_.connect_timeout_s));
    conns_.reserve(indices_.size());
    for (const std::size_t index : indices_) {
      ClientConn conn;
      conn.index = index;
      conn.rng = config_.seed * 0x9e3779b97f4a7c15ULL + index;
      conn.next_j = index;
      conn.share = config_.requests / total_conns_ +
                   (index < config_.requests % total_conns_ ? 1 : 0);
      int fd = -1;
      if (util::Status s = connect_one(config_.port, connect_deadline, &fd);
          !s.ok()) {
        std::lock_guard<std::mutex> lock(sinks_.mu);
        if (sinks_.connect_error.ok()) sinks_.connect_error = s;
        conn.dead = true;
      } else {
        conn.fd = fd;
        ++connected_;
      }
      conns_.push_back(std::move(conn));
    }

    // Closed loop: prime one request per connection; further sends are
    // triggered by responses. Open loop: sends are triggered by slots.
    if (config_.target_rps <= 0.0)
      for (ClientConn& conn : conns_)
        if (!conn.dead && conn.issued < conn.share) issue(conn);

    std::vector<pollfd> pfds;
    std::vector<ClientConn*> pfd_owner;
    while (true) {
      bool all_done = true;
      clock::time_point next_slot = clock::time_point::max();
      const clock::time_point now = clock::now();
      for (ClientConn& conn : conns_) {
        if (conn.done()) continue;
        all_done = false;
        if (config_.target_rps > 0.0)
          while (conn.issued < conn.share && slot_of(conn.next_j) <= now)
            issue(conn);
        if (conn.done()) continue;
        if (config_.target_rps > 0.0 && conn.issued < conn.share)
          next_slot = std::min(next_slot, slot_of(conn.next_j));
      }
      if (all_done) break;

      pfds.clear();
      pfd_owner.clear();
      for (ClientConn& conn : conns_) {
        if (conn.dead || conn.fd < 0 || conn.done()) continue;
        short events = 0;
        if (!conn.in_flight.empty()) events |= POLLIN;
        if (conn.out_off < conn.outbuf.size()) events |= POLLOUT;
        if (events == 0) continue;
        pfds.push_back(pollfd{conn.fd, events, 0});
        pfd_owner.push_back(&conn);
      }

      int timeout_ms = 100;
      if (next_slot != clock::time_point::max()) {
        const auto until =
            std::chrono::duration_cast<std::chrono::milliseconds>(next_slot -
                                                                  now)
                .count();
        timeout_ms = static_cast<int>(std::clamp<long long>(until, 0, 100));
      }
      if (pfds.empty()) {
        // Nothing readable/writable, only future slots: sleep to the next.
        if (timeout_ms > 0)
          std::this_thread::sleep_for(
              std::chrono::milliseconds(timeout_ms));
        continue;
      }
      const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                               timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        ClientConn& conn = *pfd_owner[i];
        if (pfds[i].revents & POLLOUT) flush(conn);
        if (!conn.dead && (pfds[i].revents & (POLLIN | POLLHUP)))
          drain(conn);
      }
    }

    std::lock_guard<std::mutex> lock(sinks_.mu);
    sinks_.sent += sent_;
    sinks_.ok += ok_;
    sinks_.rejected += rejected_;
    sinks_.errors += errors_;
    sinks_.connected += connected_;
    for (ClientConn& conn : conns_)
      if (conn.fd >= 0) ::close(conn.fd);
    if (!statsz_.empty()) sinks_.statsz = std::move(statsz_);
    for (const double v : latency_samples_) sinks_.latency_ms.observe(v);
  }

 private:
  clock::time_point slot_of(std::size_t j) const {
    return start_ + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(j) / config_.target_rps));
  }

  void fail(ClientConn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    ++errors_;
    if (conn.fd >= 0) {
      ::close(conn.fd);
      conn.fd = -1;
    }
  }

  /// Queue one scheduled request (and possibly the statsz probe) on the
  /// connection's outbuf and try to push it to the socket.
  void issue(ClientConn& conn) {
    const std::string& line =
        config_.pool[next_rand(conn.rng) % config_.pool.size()];
    InFlight flight;
    flight.measured_from = config_.target_rps > 0.0
                               ? slot_of(conn.next_j)
                               : clock::now();
    conn.outbuf += line;
    conn.outbuf += '\n';
    conn.in_flight.push_back(flight);
    ++sent_;
    ++conn.issued;
    conn.next_j += total_conns_;
    // Mid-run introspection probe: issued from connection 0 once half its
    // share is out, while every other connection keeps the load up.
    if (config_.probe_statsz && conn.index == 0 && !conn.statsz_sent &&
        conn.issued >= conn.share / 2 + 1) {
      conn.statsz_sent = true;
      conn.outbuf += "{\"cmd\":\"statsz\"}\n";
      InFlight probe;
      probe.is_statsz = true;
      conn.in_flight.push_back(probe);
    }
    flush(conn);
  }

  void flush(ClientConn& conn) {
    while (conn.out_off < conn.outbuf.size()) {
#if defined(MSG_NOSIGNAL)
      const ssize_t n =
          ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                 conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
#else
      const ssize_t n = ::write(conn.fd, conn.outbuf.data() + conn.out_off,
                                conn.outbuf.size() - conn.out_off);
#endif
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        fail(conn);
        return;
      }
    }
    if (conn.out_off == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_off = 0;
    } else if (conn.out_off > 4096 &&
               conn.out_off * 2 > conn.outbuf.size()) {
      conn.outbuf.erase(0, conn.out_off);
      conn.out_off = 0;
    }
  }

  void drain(ClientConn& conn) {
    char chunk[8192];
    while (true) {
      const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
      if (n > 0) {
        conn.inbuf.append(chunk, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof chunk) break;
      } else if (n == 0) {
        fail(conn);
        return;
      } else if (errno == EINTR) {
        continue;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        fail(conn);
        return;
      }
    }
    std::size_t from = 0;
    while (true) {
      const std::size_t nl = conn.inbuf.find('\n', from);
      if (nl == std::string::npos) break;
      handle_response(conn, conn.inbuf.substr(from, nl - from));
      from = nl + 1;
      if (conn.dead) return;
    }
    if (from > 0) conn.inbuf.erase(0, from);
  }

  void handle_response(ClientConn& conn, const std::string& response) {
    if (conn.in_flight.empty()) {
      // A response with no outstanding request is a protocol violation.
      fail(conn);
      return;
    }
    const InFlight flight = conn.in_flight.front();
    conn.in_flight.pop_front();
    if (flight.is_statsz) {
      statsz_ = response;
      return;
    }
    latency_samples_.push_back(std::chrono::duration<double, std::milli>(
                                   clock::now() - flight.measured_from)
                                   .count());
    auto tree = parse_json(response);
    if (!tree.ok() || tree->kind() != JsonValue::Kind::Object) {
      ++errors_;
    } else if (const JsonValue* okv = tree->find("ok");
               okv != nullptr && okv->kind() == JsonValue::Kind::Bool &&
               okv->as_bool()) {
      ++ok_;
    } else {
      ++rejected_;
    }
    ++conn.handled;
    // Closed loop: one response unlocks the next request.
    if (config_.target_rps <= 0.0 && conn.issued < conn.share) issue(conn);
  }

  const LoadgenConfig& config_;
  const std::size_t total_conns_;
  const clock::time_point start_;
  Sinks& sinks_;

  std::vector<std::size_t> indices_;
  std::vector<ClientConn> conns_;
  std::vector<double> latency_samples_;
  std::uint64_t sent_ = 0, ok_ = 0, rejected_ = 0, errors_ = 0,
                connected_ = 0;
  std::string statsz_;
};

}  // namespace

util::StatusOr<LoadgenReport> run_loadgen(const LoadgenConfig& config) {
  if (config.pool.empty())
    return util::Status::invalid_argument("loadgen: empty request pool");
  if (config.requests == 0)
    return util::Status::invalid_argument("loadgen: requests must be > 0");
  if (config.concurrency == 0)
    return util::Status::invalid_argument(
        "loadgen: concurrency must be > 0");
  const std::size_t conns = std::min(config.concurrency, config.requests);
  std::size_t threads = config.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::clamp<std::size_t>(hw == 0 ? 2 : hw, 1, 8);
  }
  threads = std::min(threads, conns);

  Sinks sinks;
  const auto start = clock::now();
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    workers.push_back(std::make_unique<Worker>(config, conns, start, sinks));
  for (std::size_t c = 0; c < conns; ++c)
    workers[c % threads]->add_connection(c);

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (auto& worker : workers)
    pool.emplace_back([&worker] { worker->run(); });
  for (std::thread& thread : pool) thread.join();
  const double wall_seconds =
      std::chrono::duration<double>(clock::now() - start).count();

  if (sinks.sent == 0) {
    if (!sinks.connect_error.ok()) return sinks.connect_error;
    return util::Status::unavailable("loadgen: no request was ever sent");
  }

  LoadgenReport report;
  report.connected = sinks.connected;
  report.sent = sinks.sent;
  report.ok = sinks.ok;
  report.rejected = sinks.rejected;
  report.errors = sinks.errors;
  report.wall_seconds = wall_seconds;
  report.achieved_rps =
      wall_seconds > 0.0 ? static_cast<double>(report.sent) / wall_seconds
                         : 0.0;
  report.latency_ms = sinks.latency_ms.snapshot();
  report.statsz = std::move(sinks.statsz);
  return report;
}

#else  // !DIAGNET_SERVE_HAS_TCP

util::StatusOr<LoadgenReport> run_loadgen(const LoadgenConfig&) {
  return util::Status::unavailable(
      "loadgen needs the POSIX TCP client, unavailable on this platform");
}

#endif  // DIAGNET_SERVE_HAS_TCP

}  // namespace diagnet::serve
