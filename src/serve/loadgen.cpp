#include "serve/loadgen.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "serve/json.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIAGNET_SERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DIAGNET_SERVE_HAS_TCP 0
#endif

namespace diagnet::serve {

#if DIAGNET_SERVE_HAS_TCP

namespace {

using clock = std::chrono::steady_clock;

/// splitmix64: deterministic per-thread pool sampling.
std::uint64_t next_rand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One connected client: line-oriented send/receive over a socket.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Connect with retries until the deadline — the benchmark script
  /// starts server and loadgen concurrently, so the listener may not be
  /// up on the first attempt.
  util::Status connect(std::uint16_t port, double timeout_s) {
    const auto deadline =
        clock::now() + std::chrono::duration<double>(timeout_s);
    while (true) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) return util::Status::unavailable("loadgen: socket()");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port);
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0) {
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return {};
      }
      ::close(fd_);
      fd_ = -1;
      if (clock::now() >= deadline)
        return util::Status::unavailable(
            "loadgen: cannot connect to 127.0.0.1:" + std::to_string(port));
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  bool send_line(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    const char* data = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
#if defined(MSG_NOSIGNAL)
      const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
#else
      const ssize_t n = ::write(fd_, data, left);
#endif
      if (n <= 0) return false;
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_line(std::string* line) {
    line->clear();
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace

util::StatusOr<LoadgenReport> run_loadgen(const LoadgenConfig& config) {
  if (config.pool.empty())
    return util::Status::invalid_argument("loadgen: empty request pool");
  if (config.requests == 0)
    return util::Status::invalid_argument("loadgen: requests must be > 0");
  if (config.concurrency == 0)
    return util::Status::invalid_argument(
        "loadgen: concurrency must be > 0");
  const std::size_t concurrency =
      std::min(config.concurrency, config.requests);

  obs::LogLinearHistogram latency_ms;
  std::atomic<std::uint64_t> sent{0}, ok{0}, rejected{0}, errors{0};
  std::mutex statsz_mu;
  std::string statsz;
  std::mutex connect_error_mu;
  util::Status connect_error;

  const auto start = clock::now();
  std::vector<std::thread> workers;
  workers.reserve(concurrency);
  for (std::size_t t = 0; t < concurrency; ++t) {
    workers.emplace_back([&, t] {
      Connection conn;
      if (util::Status s =
              conn.connect(config.port, config.connect_timeout_s);
          !s.ok()) {
        std::lock_guard<std::mutex> lock(connect_error_mu);
        if (connect_error.ok()) connect_error = s;
        return;
      }
      std::uint64_t rng = config.seed * 0x9e3779b97f4a7c15ULL + t;
      // Request j goes to connection j % concurrency; in open-loop mode
      // its send slot is start + j/target_rps on the shared schedule.
      std::size_t handled = 0;
      const std::size_t share =
          config.requests / concurrency +
          (t < config.requests % concurrency ? 1 : 0);
      for (std::size_t j = t; j < config.requests; j += concurrency) {
        const std::string& line =
            config.pool[next_rand(rng) % config.pool.size()];
        clock::time_point measured_from = clock::now();
        if (config.target_rps > 0.0) {
          const auto slot =
              start + std::chrono::duration_cast<clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(j) / config.target_rps));
          std::this_thread::sleep_until(slot);
          // Coordinated-omission-safe: latency counts from when the
          // request SHOULD have been sent, so a stalled server inflates
          // the tail instead of silently slowing the generator.
          measured_from = slot;
        }
        if (!conn.send_line(line)) {
          errors.fetch_add(1, std::memory_order_relaxed);
          break;  // connection is dead; no point continuing this thread
        }
        sent.fetch_add(1, std::memory_order_relaxed);
        std::string response;
        if (!conn.recv_line(&response)) {
          errors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        latency_ms.observe(std::chrono::duration<double, std::milli>(
                               clock::now() - measured_from)
                               .count());
        auto tree = parse_json(response);
        if (!tree.ok() || tree->kind() != JsonValue::Kind::Object) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else if (const JsonValue* okv = tree->find("ok");
                   okv != nullptr && okv->kind() == JsonValue::Kind::Bool &&
                   okv->as_bool()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
        ++handled;
        // Mid-run introspection probe: issued from one connection once
        // half its share is done, while the other connections keep the
        // server under load.
        if (config.probe_statsz && t == 0 && handled == share / 2 + 1) {
          std::string snapshot;
          if (conn.send_line("{\"cmd\":\"statsz\"}") &&
              conn.recv_line(&snapshot)) {
            std::lock_guard<std::mutex> lock(statsz_mu);
            statsz = std::move(snapshot);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration<double>(clock::now() - start).count();

  if (sent.load() == 0) {
    std::lock_guard<std::mutex> lock(connect_error_mu);
    if (!connect_error.ok()) return connect_error;
    return util::Status::unavailable("loadgen: no request was ever sent");
  }

  LoadgenReport report;
  report.sent = sent.load();
  report.ok = ok.load();
  report.rejected = rejected.load();
  report.errors = errors.load();
  report.wall_seconds = wall_seconds;
  report.achieved_rps =
      wall_seconds > 0.0 ? static_cast<double>(report.sent) / wall_seconds
                         : 0.0;
  report.latency_ms = latency_ms.snapshot();
  report.statsz = statsz;
  return report;
}

#else  // !DIAGNET_SERVE_HAS_TCP

util::StatusOr<LoadgenReport> run_loadgen(const LoadgenConfig&) {
  return util::Status::unavailable(
      "loadgen needs the POSIX TCP client, unavailable on this platform");
}

#endif  // DIAGNET_SERVE_HAS_TCP

}  // namespace diagnet::serve
