// Load generator for a live `diagnet serve` TCP endpoint — the repo's
// serving benchmarks are *driven*, not simulated: loadgen opens real
// connections, speaks the production wire protocol, and measures
// end-to-end latency from the client side into the same log-linear
// histograms the server uses, so BENCH_serve.json percentiles are
// directly comparable with the server's own serve.latency_ms.
//
// Two driving modes:
//  * closed loop (target_rps == 0) — each of `concurrency` connections
//    keeps exactly one request in flight (send, wait, repeat); measures
//    the server's best-case latency under a fixed concurrency.
//  * open loop (target_rps > 0) — requests are assigned wall-clock send
//    slots on a fixed schedule shared across connections, and latency is
//    measured from the *scheduled* time, not the actual send: a server
//    that falls behind sees queueing delay counted against it
//    (coordinated-omission-safe, per Gil Tene's critique). Sends are
//    pipelined: a connection whose earlier request has no response yet
//    still sends at its slot, and responses are matched FIFO per
//    connection (the server answers in submission order).
//
// Connections are multiplexed: `threads` poll()-driven workers share the
// `concurrency` non-blocking sockets, so holding 10k+ concurrent
// connections against the epoll listener costs a handful of client
// threads, not 10k of them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/loglin_histogram.h"
#include "util/status.h"

namespace diagnet::serve {

struct LoadgenConfig {
  std::uint16_t port = 0;       // TCP port of a live server (required)
  std::size_t requests = 1000;  // total requests across all connections
  double target_rps = 0.0;      // 0 = closed loop
  std::size_t concurrency = 4;  // parallel connections
  std::size_t threads = 0;      // poll workers; 0 = auto (≤ 8)
  std::uint64_t seed = 1;       // request-pool sampling
  /// Pre-formatted request lines (format_request output, no newline).
  /// Sampled with replacement, deterministically from `seed`.
  std::vector<std::string> pool;
  /// Issue an in-band {"cmd":"statsz"} probe from connection 0 halfway
  /// through its share, proving introspection works under load.
  bool probe_statsz = true;
  double connect_timeout_s = 5.0;  // retry window for the first connect
};

struct LoadgenReport {
  std::uint64_t connected = 0;  // connections actually opened
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;        // ok:true wire responses
  std::uint64_t rejected = 0;  // ok:false wire responses (queue full, ...)
  std::uint64_t errors = 0;    // transport failures / unparseable lines
  double wall_seconds = 0.0;
  double achieved_rps = 0.0;   // sent / wall_seconds
  obs::LogLinearHistogram::Snapshot latency_ms;  // end-to-end, client side
  std::string statsz;          // mid-run statsz line ("" when not probed)
};

/// Run one load-generation campaign against 127.0.0.1:config.port.
/// invalid_argument on an empty pool or zero requests/concurrency;
/// unavailable when the server cannot be reached (or on non-POSIX
/// builds, which lack the TCP client).
util::StatusOr<LoadgenReport> run_loadgen(const LoadgenConfig& config);

}  // namespace diagnet::serve
