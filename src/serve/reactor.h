// Epoll reactor: the C1M-serving transport. Where run_tcp_listener spends
// one OS thread per connection (fine for tens of sessions, hopeless for
// the paper's fleets of mostly-idle end-user agents), the reactor holds
// every connection in a non-blocking epoll set and multiplexes the whole
// population over one — or a few — event-loop threads.
//
// Anatomy of one ReactorLoop:
//  * non-blocking sockets, level-triggered epoll readiness;
//  * per-connection read buffers with incremental line framing
//    (serve/framing.h) — byte-identical line semantics to the getline
//    loop of the thread transport, plus an enforced max line length;
//  * per-connection write buffers with watermark backpressure: a
//    connection whose responses are not draining stops being *read*
//    above write_stall_bytes (so a slow reader cannot pump unbounded
//    work into the service), resumes below write_resume_bytes, and is
//    closed outright at write_close_bytes;
//  * requests go to the DiagnosisService through its callback submit();
//    completions are formatted off-loop on the dispatcher thread, pushed
//    onto a completion queue, and an eventfd (pipe elsewhere) wakes the
//    loop to write them back — the loop thread never blocks on a future.
//    Responses are written in per-connection submission order (a
//    sequence-numbered reorder buffer), the same contract run_session's
//    writer thread gives pipelining clients;
//  * idle timeouts on a hashed timer wheel, driven by an injectable
//    clock — src/testkit/reactor_sim.h swaps in a fake clock so timeout
//    and backpressure paths are tested without real sleeps;
//  * connection caps: accepts beyond max_connections are answered with
//    one error line and closed.
//
// Scaling: Reactor runs N ReactorLoops. The listening socket lives in
// loop 0; accepted connections are handed out round-robin through each
// loop's adoption inbox + wakeup (accept-fd round-robin rather than
// SO_REUSEPORT, so one process owns admission control and the stats).
//
// The service layer above (micro-batcher, hot reload, statsz) is
// unchanged: the reactor is just another transport, selected by
// `diagnet serve --listener epoll` (the default; `--listener threads`
// keeps the previous behaviour for one release).
//
// Linux-only (epoll); reactor_supported() reports availability and the
// CLI falls back to the thread listener elsewhere.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "data/feature_space.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/status.h"

namespace diagnet::serve {

struct ReactorConfig {
  /// Event-loop threads. Loop 0 owns the listener and deals accepted
  /// connections round-robin.
  std::size_t loops = 1;
  /// Global connection cap across all loops; accepts beyond it get one
  /// error line and an immediate close.
  std::size_t max_connections = 100000;
  /// Framing cap: a request line longer than this answers with one error
  /// line and closes the connection (see serve/framing.h).
  std::size_t max_line_bytes = 1u << 20;
  /// Write-buffer backpressure watermarks, per connection, in bytes.
  std::size_t write_stall_bytes = 256u << 10;   // stop reading above
  std::size_t write_resume_bytes = 64u << 10;   // resume reading below
  std::size_t write_close_bytes = 8u << 20;     // close the slow reader
  /// Close a connection with no bytes in either direction for this long.
  /// Zero disables idle timeouts.
  std::chrono::milliseconds idle_timeout{0};
  /// Forced-close deadline for the graceful drain after stop.
  std::chrono::milliseconds drain_timeout{5000};
  /// Causes per response when the request does not say.
  std::size_t default_top_k = 5;
};

/// Counter snapshot for statsz / tests. `active` and `buffered_bytes` are
/// gauges; everything else is monotonic.
struct ReactorStats {
  std::uint64_t accepted = 0;            // connections ever admitted
  std::uint64_t closed = 0;              // connections fully closed
  std::uint64_t active = 0;              // currently open
  std::uint64_t requests = 0;            // request lines processed
  std::uint64_t responses = 0;           // response lines written
  std::uint64_t idle_timeouts = 0;       // closes by the timer wheel
  std::uint64_t backpressure_stalls = 0; // read-pause transitions
  std::uint64_t slow_reader_closes = 0;  // write_close_bytes closes
  std::uint64_t over_capacity = 0;       // accepts refused at the cap
  std::uint64_t oversized_lines = 0;     // framing-limit violations
  std::uint64_t protocol_errors = 0;     // error lines written
  std::uint64_t buffered_bytes = 0;      // pending response bytes

  /// The "reactor-level errors" rollup the serving SLO gate checks: not
  /// client mistakes (protocol_errors) but serving failures — readers we
  /// had to kill, lines we refused, connections we turned away.
  std::uint64_t errors() const {
    return slow_reader_closes + over_capacity + oversized_lines;
  }
};

namespace detail {
/// Shared atomic counters behind ReactorStats — one block per Reactor,
/// shared by its loops (a standalone ReactorLoop owns a private block).
struct ReactorCounters {
  std::atomic<std::uint64_t> accepted{0}, closed{0}, active{0},
      requests{0}, responses{0}, idle_timeouts{0}, backpressure_stalls{0},
      slow_reader_closes{0}, over_capacity{0}, oversized_lines{0},
      protocol_errors{0}, buffered_bytes{0};
  ReactorStats snapshot() const;
};
}  // namespace detail

/// True when this build has the epoll reactor (Linux).
bool reactor_supported();

/// One event loop. Drive it either through Reactor::run (production) or
/// manually with poll_once() from a test harness. All methods are
/// loop-thread-only unless noted.
class ReactorLoop {
 public:
  using ClockFn = std::function<std::chrono::steady_clock::time_point()>;

  ReactorLoop(DiagnosisService& service, const data::FeatureSpace& fs,
              const ReactorConfig& config,
              const SessionHooks* hooks = nullptr, ClockFn clock = {},
              std::shared_ptr<detail::ReactorCounters> counters = nullptr);
  ~ReactorLoop();

  ReactorLoop(const ReactorLoop&) = delete;
  ReactorLoop& operator=(const ReactorLoop&) = delete;

  /// Take ownership of a connected socket (made non-blocking). Thread-
  /// safe: queues the fd on the adoption inbox and wakes the loop.
  util::Status adopt(int fd);

  /// Take ownership of a listening socket; this loop accepts from it and
  /// hands each connection to `dispatch` (nullptr = adopt locally).
  void attach_listener(int listener_fd, std::function<void(int)> dispatch);

  /// One epoll pass: drain completions and adoptions, wait up to
  /// `timeout_ms` for readiness (0 = poll), handle events, advance
  /// timers. Returns the number of units of work done (0 = pure
  /// timeout), so a harness can pump to quiescence.
  int poll_once(int timeout_ms);

  /// Thread-safe: make a blocking poll_once return now.
  void wake();

  /// Production stop wiring: once *stop becomes true, the next poll_once
  /// begins the graceful drain (stop accepting/reading, flush pending
  /// responses, then close). Checked inside poll_once.
  void set_stop_source(const std::atomic<bool>* stop);

  /// True once draining and every connection is closed.
  bool drained() const;

  /// Thread-safe gauge: connections currently owned by this loop.
  std::size_t open_connections() const;

  ReactorStats stats() const;

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

/// The multi-loop reactor transport behind `diagnet serve --listener
/// epoll`: owns the loops, the listening socket, and the loop threads.
class Reactor {
 public:
  Reactor(DiagnosisService& service, const data::FeatureSpace& fs,
          ReactorConfig config, const SessionHooks* hooks = nullptr,
          ReactorLoop::ClockFn clock = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Bind 127.0.0.1:port (0 = kernel-assigned, published through
  /// *bound_port) and register the listener with loop 0.
  util::Status listen(std::uint16_t port,
                      std::atomic<std::uint16_t>* bound_port = nullptr);

  /// Run every loop until `stop_flag` becomes true, then drain
  /// gracefully (in-flight responses are flushed before close, bounded
  /// by config.drain_timeout). Blocks; loop 0 runs on the caller's
  /// thread. unavailable on non-Linux builds.
  util::Status run(const std::atomic<bool>& stop_flag);

  ReactorStats stats() const;
  const ReactorConfig& config() const { return config_; }

 private:
  ReactorConfig config_;
  std::shared_ptr<detail::ReactorCounters> counters_;
  std::vector<std::unique_ptr<ReactorLoop>> loops_;
  int listener_fd_ = -1;
  std::atomic<std::size_t> round_robin_{0};
};

}  // namespace diagnet::serve
