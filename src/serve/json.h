// Minimal JSON value model + recursive-descent parser for the serving
// wire protocol (line-delimited JSON requests/responses). Deliberately
// small: objects, arrays, strings, numbers (as double), booleans, null —
// no streaming, no comments, no \uXXXX beyond Latin-1 passthrough. The
// telemetry JSON *writers* in src/obs are unrelated (write-only); this is
// the repo's only JSON *reader*, and it exists solely so `diagnet serve`
// needs no external dependency.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace diagnet::serve {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;  // null
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }

  /// Typed accessors: programming error (DIAGNET_REQUIRE) on wrong kind —
  /// wire-level validation goes through the get_* helpers below.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::map<std::string, JsonValue>& members() const;

  std::vector<JsonValue>& items();
  std::map<std::string, JsonValue>& members();

  /// Object field lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parse one complete JSON document; trailing non-space input is an
/// invalid_argument error (a line must be exactly one value).
util::StatusOr<JsonValue> parse_json(const std::string& text);

/// Serialise (compact, no whitespace). Doubles use round-trippable
/// precision; non-finite doubles serialise as null (JSON has no NaN).
std::string to_json(const JsonValue& value);

}  // namespace diagnet::serve
