#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "core/registry.h"
#include "obs/obs.h"
#include "util/require.h"

namespace diagnet::serve {

namespace {
namespace fs = std::filesystem;
using clock = std::chrono::steady_clock;
}  // namespace

// ---------------------------------------------------------------------------
// ModelProvider

ModelProvider::ModelProvider(std::shared_ptr<core::DiagNetModel> model,
                             std::uint64_t checksum)
    : model_(std::move(model)), checksum_(checksum) {
  DIAGNET_REQUIRE_MSG(model_ != nullptr, "ModelProvider needs a model");
}

util::StatusOr<std::shared_ptr<ModelProvider>> ModelProvider::from_file(
    const std::string& path, const data::FeatureSpace& feature_space) {
  core::ModelBundleInfo info;
  auto loaded = core::try_load_model_file(path, feature_space, &info);
  if (!loaded.ok()) return loaded.status();
  auto provider = std::make_shared<ModelProvider>(
      std::shared_ptr<core::DiagNetModel>(std::move(loaded).value()));
  provider->checksum_ = info.checksum;
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (!ec) {
    provider->last_mtime_ = mtime;
    provider->has_mtime_ = true;
  }
  return provider;
}

std::shared_ptr<core::DiagNetModel> ModelProvider::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

void ModelProvider::swap(std::shared_ptr<core::DiagNetModel> next) {
  DIAGNET_REQUIRE_MSG(next != nullptr, "cannot swap in a null model");
  std::lock_guard<std::mutex> lock(mu_);
  model_ = std::move(next);
  ++generation_;
  DIAGNET_COUNT("serve.model_swaps");
}

void ModelProvider::swap(std::shared_ptr<core::DiagNetModel> next,
                         std::uint64_t checksum) {
  DIAGNET_REQUIRE_MSG(next != nullptr, "cannot swap in a null model");
  std::lock_guard<std::mutex> lock(mu_);
  model_ = std::move(next);
  checksum_ = checksum;
  ++generation_;
  DIAGNET_COUNT("serve.model_swaps");
}

util::Status ModelProvider::reload_from(const std::string& path,
                                        const data::FeatureSpace& fs) {
  core::ModelBundleInfo info;
  auto loaded = core::try_load_model_file(path, fs, &info);
  if (!loaded.ok()) return loaded.status();
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  swap(std::move(loaded).value());
  std::lock_guard<std::mutex> lock(mu_);
  checksum_ = info.checksum;
  if (!ec) {
    last_mtime_ = mtime;
    has_mtime_ = true;
  }
  return {};
}

bool ModelProvider::poll_and_reload(const std::string& path,
                                    const data::FeatureSpace& fs,
                                    util::Status* status) {
  *status = util::Status();
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) {
    // A transiently missing file (e.g. mid-rename during an atomic
    // publish) is not an error; the current model keeps serving.
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (has_mtime_ && mtime <= last_mtime_) return false;
  }
  *status = reload_from(path, fs);
  if (!status->ok()) {
    // Remember the bad bundle's mtime so a broken file is not re-parsed
    // every poll tick; the next *newer* write retries.
    std::lock_guard<std::mutex> lock(mu_);
    last_mtime_ = mtime;
    has_mtime_ = true;
    return false;
  }
  return true;
}

std::uint64_t ModelProvider::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::uint64_t ModelProvider::checksum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checksum_;
}

// ---------------------------------------------------------------------------
// DiagnosisService

DiagnosisService::DiagnosisService(std::shared_ptr<ModelProvider> models,
                                   ServiceConfig config)
    : models_(std::move(models)),
      config_(config),
      pool_(config.worker_threads == 0 ? 1 : config.worker_threads) {
  DIAGNET_REQUIRE_MSG(models_ != nullptr, "DiagnosisService needs models");
  DIAGNET_REQUIRE(config_.max_batch > 0);
  DIAGNET_REQUIRE(config_.queue_capacity > 0);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

DiagnosisService::~DiagnosisService() { stop(); }

DiagnosisService::Pending DiagnosisService::make_pending(
    core::DiagnoseRequest request, double deadline_ms,
    std::uint64_t request_id) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = clock::now();
  pending.request_id = request_id;
  pending.has_deadline = deadline_ms > 0.0;  // NaN compares false: no deadline
  if (pending.has_deadline) {
    // Cap at ~10 years: the value is client-controlled, and an unbounded
    // double would overflow the int64 microsecond cast (UB) and the
    // time_point addition below.
    constexpr double kMaxDeadlineMs = 3.2e11;
    const double clamped = std::min(deadline_ms, kMaxDeadlineMs);
    pending.deadline =
        pending.enqueued +
        std::chrono::microseconds(static_cast<std::int64_t>(clamped * 1000.0));
  } else {
    pending.deadline = clock::time_point::max();
  }
  return pending;
}

std::future<core::DiagnoseResponse> DiagnosisService::submit(
    core::DiagnoseRequest request, double deadline_ms) {
  Pending pending =
      make_pending(std::move(request), deadline_ms,
                   next_request_id_.fetch_add(1, std::memory_order_relaxed));
  std::future<core::DiagnoseResponse> future =
      pending.promise.get_future();
  enqueue(std::move(pending));
  return future;
}

void DiagnosisService::submit(core::DiagnoseRequest request,
                              double deadline_ms, Completion done) {
  Pending pending =
      make_pending(std::move(request), deadline_ms,
                   next_request_id_.fetch_add(1, std::memory_order_relaxed));
  pending.done = std::move(done);
  enqueue(std::move(pending));
}

void DiagnosisService::enqueue(Pending pending) {
  const auto reject = [&](util::Status status) {
    core::DiagnoseResponse response;
    response.status = std::move(status);
    // Rejections carry the assigned id too, so a client-side log line can
    // still be matched against server-side telemetry.
    response.trace.request_id = pending.request_id;
    pending.resolve(std::move(response));
  };

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    lock.unlock();
    DIAGNET_COUNT("serve.rejected");
    reject(util::Status::unavailable("server is stopping"));
    return;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.rejected;
    lock.unlock();
    DIAGNET_COUNT("serve.rejected");
    reject(util::Status::resource_exhausted(
        "queue full (" + std::to_string(config_.queue_capacity) +
        " requests waiting)"));
    return;
  }
  ++stats_.accepted;
  queue_.push_back(std::move(pending));
  DIAGNET_GAUGE_SET("serve.queue_depth", queue_.size());
  lock.unlock();
  DIAGNET_COUNT("serve.accepted");
  cv_.notify_one();
}

void DiagnosisService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // stop_mu_ serialises the join so concurrent stop() calls (user +
  // destructor, or a signal watcher) are safe.
  std::lock_guard<std::mutex> join_lock(stop_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

bool DiagnosisService::stopping() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopping_;
}

DiagnosisService::Stats DiagnosisService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t DiagnosisService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void DiagnosisService::dispatch_loop() {
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;

      // Batch-forming window: from the oldest waiting request's arrival,
      // wait at most max_delay_us for the batch to fill. A full batch or
      // a stop request cuts the wait short. While draining, batches form
      // immediately (the drain should finish, not linger).
      const auto window_end =
          queue_.front().enqueued +
          std::chrono::microseconds(config_.max_delay_us);
      cv_.wait_until(lock, window_end, [&] {
        return queue_.size() >= config_.max_batch || stopping_;
      });

      const std::size_t take = std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.batches += 1;
      DIAGNET_GAUGE_SET("serve.queue_depth", queue_.size());
    }
    run_batch(std::move(batch), clock::now());
  }
}

void DiagnosisService::run_batch(std::vector<Pending> batch,
                                 clock::time_point formed) {
  DIAGNET_SPAN("serve.batch");
  in_flight_batches_.fetch_add(1, std::memory_order_relaxed);
  struct InFlightGuard {
    std::atomic<std::uint64_t>& counter;
    ~InFlightGuard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  } in_flight_guard{in_flight_batches_};
  const auto now = formed;

  // Deadline shedding: anything already past its deadline is answered
  // without occupying a batch slot or a network pass.
  std::vector<Pending> live;
  live.reserve(batch.size());
  std::uint64_t shed = 0;
  for (Pending& pending : batch) {
    if (pending.has_deadline && pending.deadline < now) {
      core::DiagnoseResponse response;
      response.status = util::Status::deadline_exceeded(
          "deadline passed before dispatch");
      response.trace.request_id = pending.request_id;
      pending.resolve(std::move(response));
      ++shed;
      continue;
    }
    live.push_back(std::move(pending));
  }
  if (shed > 0) {
    DIAGNET_COUNT_N("serve.shed", shed);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.shed += shed;
  }
  if (live.empty()) return;

  DIAGNET_OBSERVE("serve.batch.size", static_cast<double>(live.size()));

  // One model snapshot per batch: a hot-swap that lands mid-batch takes
  // effect on the next batch, and shared ownership keeps this snapshot
  // alive until the batch completes.
  const std::shared_ptr<core::DiagNetModel> model = models_->current();
  const std::uint64_t model_generation = models_->generation();
  core::BatchDiagnoserConfig batch_config;
  batch_config.batch_size = config_.max_batch;
  batch_config.pool = &pool_;

  std::vector<core::DiagnoseRequest> requests;
  requests.reserve(live.size());
  for (Pending& pending : live)
    requests.push_back(std::move(pending.request));

  const auto inference_start = clock::now();
  std::vector<core::DiagnoseResponse> responses;
  {
    DIAGNET_SPAN("serve.batch.inference");
    try {
      const core::BatchDiagnoser batcher(*model, batch_config);
      responses = batcher.run(requests);
    } catch (const std::exception& e) {
      // A whole-batch failure (programming error surfaced by REQUIRE) must
      // still answer every caller — an online server cannot drop futures.
      core::DiagnoseResponse failure;
      failure.status = util::Status::internal(e.what());
      responses.assign(live.size(), failure);
    }
  }
  const auto inference_end = clock::now();
  const double inference_us =
      std::chrono::duration<double, std::micro>(inference_end -
                                                inference_start)
          .count();
  const double assembly_us =
      std::chrono::duration<double, std::micro>(inference_start - formed)
          .count();
  DIAGNET_OBSERVE_TAIL("serve.inference_ms", inference_us / 1000.0);

  DIAGNET_SPAN("serve.batch.write_back");
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const auto stamp = clock::now();
    core::RequestTrace& trace = responses[i].trace;
    trace.request_id = live[i].request_id;
    trace.queue_us =
        std::chrono::duration<double, std::micro>(formed - live[i].enqueued)
            .count();
    trace.assembly_us = assembly_us;
    trace.inference_us = inference_us;
    trace.write_back_us =
        std::chrono::duration<double, std::micro>(stamp - inference_end)
            .count();
    trace.batch_size = live.size();
    trace.model_generation = model_generation;
    const double latency_ms =
        std::chrono::duration<double, std::milli>(stamp - live[i].enqueued)
            .count();
    DIAGNET_OBSERVE_TAIL("serve.latency_ms", latency_ms);
    DIAGNET_OBSERVE_TAIL("serve.queue_wait_ms", trace.queue_us / 1000.0);
    completed += responses[i].ok() ? 1 : 0;
    live[i].resolve(std::move(responses[i]));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.completed += completed;
  }
}

}  // namespace diagnet::serve
