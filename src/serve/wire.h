// Wire protocol of the serving subsystem: line-delimited JSON over any
// byte transport (stdin/stdout by default, loopback TCP optionally).
//
// Request line (one JSON object per line):
//   {"id": 7,                    // optional caller correlation id
//    "features": [ ... ],        // required, fs.total() doubles
//    "service": 2,               // optional, default 0
//    "general": false,           // optional: force the general model
//    "landmarks": [1,1,0, ...],  // optional per-landmark availability
//    "deadline_ms": 50,          // optional; 0/absent = no deadline
//    "top_k": 5}                 // optional; how many causes to return
//
// Success response:
//   {"id":7,"ok":true,"causes":["dns_ber","..."],"cause_ids":[3,9],
//    "scores":[0.41,0.17],"coarse_family":2,"w_unknown":0.12,
//    "latency_ms":1.9,"request_id":12345,
//    "trace":{"queue_us":810.2,"assembly_us":14.0,"inference_us":950.7,
//             "write_back_us":3.1,"batch_size":8,"model_generation":1}}
// The request_id/trace fields appear only when the response passed
// through a DiagnosisService (request_id != 0), and always AFTER
// latency_ms so older positional parsers keep working.
// Rejection/error response (Status-rendered, same codes the CLI prints):
//   {"id":7,"ok":false,"code":"resource_exhausted","error":"queue full",
//    "request_id":12346}
//
// In-band admin command (instead of a request line):
//   {"cmd":"statsz"}   ->   one statsz JSON snapshot line (see statsz.h)
#pragma once

#include <cstdint>
#include <string>

#include "core/diagnet.h"
#include "data/feature_space.h"
#include "serve/json.h"
#include "util/status.h"

namespace diagnet::serve {

/// One request as decoded off the wire.
struct WireRequest {
  std::uint64_t id = 0;
  core::DiagnoseRequest request;
  double deadline_ms = 0.0;  // 0 = none
  std::size_t top_k = 0;     // 0 = use the session default
};

/// Parse one request line. Shape errors (malformed JSON, missing
/// "features", non-numeric entries) are invalid_argument; the feature
/// count itself is validated later by the model so a mis-sized request
/// still gets a response carrying its id.
util::StatusOr<WireRequest> parse_request(const std::string& line);

/// Same, from an already-parsed JSON object — the session layer parses
/// each line once to peek at "cmd" (in-band admin commands) and hands the
/// tree here rather than re-parsing the text.
util::StatusOr<WireRequest> parse_request(const JsonValue& object);

/// Render a request as one wire line (no trailing newline): the exact
/// inverse of parse_request, shared by `diagnet mkrequests` and the load
/// generator so every request producer speaks one dialect. Omits fields
/// at their defaults.
std::string format_request(const WireRequest& wire);

/// Render a success response line (no trailing newline).
std::string format_response(std::uint64_t id,
                            const core::Diagnosis& diagnosis,
                            const data::FeatureSpace& fs, std::size_t top_k,
                            double latency_ms);

/// Trace-carrying overload: identical prefix to the above, then appends
/// "request_id" and the "trace" object when response.trace.request_id is
/// non-zero (i.e. the response went through a DiagnosisService).
std::string format_response(std::uint64_t id,
                            const core::DiagnoseResponse& response,
                            const data::FeatureSpace& fs, std::size_t top_k,
                            double latency_ms);

/// Render a rejection/error response line from a Status. request_id != 0
/// appends the service-assigned id (rejections have one too).
std::string format_error(std::uint64_t id, const util::Status& status,
                         std::uint64_t request_id = 0);

}  // namespace diagnet::serve
