// Wire protocol of the serving subsystem: line-delimited JSON over any
// byte transport (stdin/stdout by default, loopback TCP optionally).
//
// Request line (one JSON object per line):
//   {"id": 7,                    // optional caller correlation id
//    "features": [ ... ],        // required, fs.total() doubles
//    "service": 2,               // optional, default 0
//    "general": false,           // optional: force the general model
//    "landmarks": [1,1,0, ...],  // optional per-landmark availability
//    "deadline_ms": 50,          // optional; 0/absent = no deadline
//    "top_k": 5}                 // optional; how many causes to return
//
// Success response:
//   {"id":7,"ok":true,"causes":["dns_ber","..."],"cause_ids":[3,9],
//    "scores":[0.41,0.17],"coarse_family":2,"w_unknown":0.12,
//    "latency_ms":1.9}
// Rejection/error response (Status-rendered, same codes the CLI prints):
//   {"id":7,"ok":false,"code":"resource_exhausted","error":"queue full"}
#pragma once

#include <cstdint>
#include <string>

#include "core/diagnet.h"
#include "data/feature_space.h"
#include "util/status.h"

namespace diagnet::serve {

/// One request as decoded off the wire.
struct WireRequest {
  std::uint64_t id = 0;
  core::DiagnoseRequest request;
  double deadline_ms = 0.0;  // 0 = none
  std::size_t top_k = 0;     // 0 = use the session default
};

/// Parse one request line. Shape errors (malformed JSON, missing
/// "features", non-numeric entries) are invalid_argument; the feature
/// count itself is validated later by the model so a mis-sized request
/// still gets a response carrying its id.
util::StatusOr<WireRequest> parse_request(const std::string& line);

/// Render a success response line (no trailing newline).
std::string format_response(std::uint64_t id,
                            const core::Diagnosis& diagnosis,
                            const data::FeatureSpace& fs, std::size_t top_k,
                            double latency_ms);

/// Render a rejection/error response line from a Status.
std::string format_error(std::uint64_t id, const util::Status& status);

}  // namespace diagnet::serve
