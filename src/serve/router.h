// Per-service specialized-model router for `diagnet serve`.
//
// A serving process can load more than one bundle: a default bundle (the
// general model, possibly with baked-in specialized heads) plus any number
// of per-service head bundles produced by `diagnet train --freeze-kernel
// --service <id>`. The router merges them into ONE serving model — each
// donor's specialized head is moved in via DiagNetModel::adopt_specialized,
// which verifies the head was fine-tuned from the same frozen LandPooling
// parameters — and publishes the merge through the ModelProvider in a
// single generation bump. Because every merged head shares the frozen
// pooling kernel bit-for-bit, the batched engine pools a mixed-service
// micro-batch once and fans out only the per-service FC stacks
// (core/batch_diagnoser.h).
//
// Hot reload follows the same all-or-nothing rule: poll_and_reload()
// watches every bundle file, and when any of them changes it rebuilds the
// whole merge from scratch and swaps once. A batch therefore never sees a
// half-updated set of heads — generations are atomic across all services,
// extending the single-bundle hot-swap guarantee ("requests are never
// mixed across models within a batch") to the multi-bundle case. A broken
// bundle never takes down serving: the previous merge keeps serving and
// the Status says why.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "data/feature_space.h"
#include "serve/service.h"
#include "util/status.h"

namespace diagnet::serve {

/// One per-service bundle mapping: serve `service` with the specialized
/// head found in the bundle at `path`.
struct ServiceModelSpec {
  std::size_t service = 0;
  std::string path;
};

/// Parse a `--service-models` value: comma-separated `id:path` pairs, e.g.
/// "0:svc0.dnet,3:svc3.dnet". Rejects malformed ids, empty paths and
/// duplicate service ids.
util::StatusOr<std::vector<ServiceModelSpec>> parse_service_models(
    const std::string& spec);

class ModelRouter {
 public:
  struct Config {
    std::string default_path;                 // the base (general) bundle
    std::vector<ServiceModelSpec> services;   // per-service head bundles
    bool quantize = false;                    // int8 FC stacks (--quantize)
  };

  /// Load every bundle, merge, and build the provider the service reads
  /// from. Any load/merge failure is returned as-is (nothing is served).
  static util::StatusOr<std::shared_ptr<ModelRouter>> create(
      const Config& config, const data::FeatureSpace& fs);

  /// The provider serving the current merge. Never null.
  const std::shared_ptr<ModelProvider>& provider() const { return provider_; }

  /// Services with a routed specialized head in the current merge.
  std::vector<std::size_t> services() const;

  /// Re-stat every bundle file; when any is newer than the last successful
  /// (or last attempted) merge, rebuild the full merge and publish it with
  /// one generation bump. Returns true when a swap happened; on failure the
  /// previous merge keeps serving and *status says why (OK on no-op).
  bool poll_and_reload(util::Status* status);

 private:
  struct Merged {
    std::shared_ptr<core::DiagNetModel> model;
    std::uint64_t checksum = 0;
    std::vector<std::filesystem::file_time_type> mtimes;  // per watched file
  };

  ModelRouter(Config config, const data::FeatureSpace& fs);

  /// Load default + per-service bundles and merge. Stats every file into
  /// `out.mtimes` (default bundle first, then services in config order).
  util::Status build(Merged& out) const;

  Config config_;
  const data::FeatureSpace* fs_;
  std::shared_ptr<ModelProvider> provider_;

  mutable std::mutex mu_;
  std::vector<std::filesystem::file_time_type> last_mtimes_;
  bool has_mtimes_ = false;
};

}  // namespace diagnet::serve
