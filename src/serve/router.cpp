#include "serve/router.h"

#include <algorithm>
#include <utility>

#include "core/registry.h"
#include "obs/obs.h"
#include "util/require.h"

namespace diagnet::serve {

namespace {
namespace fs = std::filesystem;

/// Fold one 64-bit word into an FNV-1a style running hash, so the merged
/// model's checksum deterministically combines every bundle's payload
/// checksum (and the service id it is routed to).
std::uint64_t fold_checksum(std::uint64_t h, std::uint64_t word) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xffULL;
    h *= kPrime;
  }
  return h;
}

}  // namespace

util::StatusOr<std::vector<ServiceModelSpec>> parse_service_models(
    const std::string& spec) {
  std::vector<ServiceModelSpec> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      if (spec.empty()) break;
      return util::Status::invalid_argument(
          "--service-models has an empty entry");
    }
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == entry.size())
      return util::Status::invalid_argument(
          "--service-models entry '" + entry + "' is not id:path");
    const std::string id = entry.substr(0, colon);
    if (id.find_first_not_of("0123456789") != std::string::npos)
      return util::Status::invalid_argument(
          "--service-models entry '" + entry + "' has a non-numeric id");
    ServiceModelSpec parsed;
    try {
      parsed.service = std::stoull(id);
    } catch (const std::exception&) {
      return util::Status::invalid_argument(
          "--service-models id '" + id + "' is out of range");
    }
    parsed.path = entry.substr(colon + 1);
    for (const ServiceModelSpec& seen : out)
      if (seen.service == parsed.service)
        return util::Status::invalid_argument(
            "--service-models routes service " + id + " twice");
    out.push_back(std::move(parsed));
  }
  return out;
}

ModelRouter::ModelRouter(Config config, const data::FeatureSpace& fs)
    : config_(std::move(config)), fs_(&fs) {}

util::StatusOr<std::shared_ptr<ModelRouter>> ModelRouter::create(
    const Config& config, const data::FeatureSpace& fs) {
  std::shared_ptr<ModelRouter> router(new ModelRouter(config, fs));
  Merged merged;
  util::Status status = router->build(merged);
  if (!status.ok()) return status;
  router->provider_ =
      std::make_shared<ModelProvider>(std::move(merged.model), merged.checksum);
  router->last_mtimes_ = std::move(merged.mtimes);
  router->has_mtimes_ = true;
  return router;
}

util::Status ModelRouter::build(Merged& out) const {
  out.mtimes.clear();
  const auto stat = [&](const std::string& path) {
    std::error_code ec;
    const auto mtime = fs::last_write_time(path, ec);
    out.mtimes.push_back(ec ? fs::file_time_type{} : mtime);
  };

  core::ModelBundleInfo info;
  stat(config_.default_path);
  auto base = core::try_load_model_file(config_.default_path, *fs_, &info);
  if (!base.ok()) return base.status();
  std::shared_ptr<core::DiagNetModel> model(std::move(base).value());
  std::uint64_t checksum = fold_checksum(14695981039346656037ULL,
                                         info.checksum);

  for (const ServiceModelSpec& spec : config_.services) {
    stat(spec.path);
    core::ModelBundleInfo donor_info;
    auto donor = core::try_load_model_file(spec.path, *fs_, &donor_info);
    if (!donor.ok()) return donor.status();
    util::Status adopted =
        model->adopt_specialized(spec.service, *std::move(donor).value());
    if (!adopted.ok()) return adopted;
    checksum = fold_checksum(checksum, spec.service);
    checksum = fold_checksum(checksum, donor_info.checksum);
  }
  if (config_.quantize) model->set_quantized(true);

  out.model = std::move(model);
  out.checksum = checksum;
  return {};
}

std::vector<std::size_t> ModelRouter::services() const {
  return provider_->current()->specialized_services();
}

bool ModelRouter::poll_and_reload(util::Status* status) {
  *status = util::Status();

  // Stat every watched file. A transiently missing file (mid-rename during
  // an atomic publish) is not a change; the current merge keeps serving.
  std::vector<fs::file_time_type> mtimes;
  mtimes.reserve(1 + config_.services.size());
  const auto stat_or_bail = [&](const std::string& path) {
    std::error_code ec;
    const auto mtime = fs::last_write_time(path, ec);
    if (ec) return false;
    mtimes.push_back(mtime);
    return true;
  };
  if (!stat_or_bail(config_.default_path)) return false;
  for (const ServiceModelSpec& spec : config_.services)
    if (!stat_or_bail(spec.path)) return false;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (has_mtimes_ && mtimes.size() == last_mtimes_.size()) {
      bool newer = false;
      for (std::size_t i = 0; i < mtimes.size(); ++i)
        newer = newer || mtimes[i] > last_mtimes_[i];
      if (!newer) return false;
    }
  }

  // Something changed: rebuild the whole merge, then publish it in one
  // swap so no batch ever sees a partial set of heads.
  Merged merged;
  *status = build(merged);
  std::lock_guard<std::mutex> lock(mu_);
  // Remember the attempted mtimes either way, so a broken bundle is not
  // re-parsed every poll tick; the next newer write retries.
  last_mtimes_ = std::move(merged.mtimes);
  has_mtimes_ = true;
  if (!status->ok()) return false;
  provider_->swap(std::move(merged.model), merged.checksum);
  DIAGNET_COUNT("serve.router_reloads");
  return true;
}

}  // namespace diagnet::serve
