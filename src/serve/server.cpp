#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <string>
#include <deque>
#include <future>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "serve/wire.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIAGNET_SERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DIAGNET_SERVE_HAS_TCP 0
#endif

namespace diagnet::serve {

namespace {

using clock = std::chrono::steady_clock;

/// One queued outgoing response: either an immediate (pre-formatted) error
/// line, or a pending future the writer thread must wait on.
struct Outgoing {
  bool immediate = false;
  bool immediate_is_error = true;  // false for admin-command answers
  std::string immediate_line;
  std::uint64_t id = 0;
  std::size_t top_k = 5;
  clock::time_point submitted;
  std::future<core::DiagnoseResponse> future;
};

}  // namespace

SessionStats run_session(DiagnosisService& service,
                         const data::FeatureSpace& fs, std::istream& in,
                         std::ostream& out, std::size_t default_top_k,
                         const std::atomic<bool>* stop_flag,
                         const SessionHooks* hooks) {
  SessionStats stats;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Outgoing> pending;
  bool reader_done = false;

  // Writer thread: answers strictly in submission order, so a pipelining
  // client can match responses positionally as well as by id. Waiting on
  // future k never starves k+1 — batching completes them together anyway.
  std::thread writer([&] {
    while (true) {
      Outgoing next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || reader_done; });
        if (pending.empty() && reader_done) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      std::string line;
      bool ok = true;
      if (next.immediate) {
        line = std::move(next.immediate_line);
        ok = !next.immediate_is_error;
      } else {
        core::DiagnoseResponse response = next.future.get();
        const double latency_ms =
            std::chrono::duration<double, std::milli>(clock::now() -
                                                      next.submitted)
                .count();
        ok = response.ok();
        line = ok ? format_response(next.id, response, fs, next.top_k,
                                    latency_ms)
                  : format_error(next.id, response.status,
                                 response.trace.request_id);
      }
      out << line << '\n';
      out.flush();
      {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.responses;
        if (!ok) ++stats.errors;
      }
    }
  });

  std::string line;
  while ((stop_flag == nullptr || !stop_flag->load()) &&
         std::getline(in, line)) {
    if (line.empty()) continue;
    DIAGNET_SPAN("serve.request");
    DIAGNET_COUNT("serve.requests");
    Outgoing outgoing;
    // Each line is parsed once; an object carrying "cmd" is an in-band
    // admin command, anything else follows the request schema.
    auto tree = parse_json(line);
    const JsonValue* cmd =
        tree.ok() && tree->kind() == JsonValue::Kind::Object
            ? tree->find("cmd")
            : nullptr;
    if (cmd != nullptr) {
      outgoing.immediate = true;
      if (cmd->kind() != JsonValue::Kind::String) {
        outgoing.immediate_line = format_error(
            0, util::Status::invalid_argument("'cmd' must be a string"));
      } else if (cmd->as_string() == "statsz") {
        if (hooks != nullptr && hooks->statsz) {
          outgoing.immediate_is_error = false;
          outgoing.immediate_line = hooks->statsz();
        } else {
          outgoing.immediate_line = format_error(
              0, util::Status::unavailable(
                     "statsz is not available on this session"));
        }
      } else {
        outgoing.immediate_line = format_error(
            0, util::Status::invalid_argument("unknown cmd '" +
                                              cmd->as_string() + "'"));
      }
    } else {
      auto parsed = tree.ok() ? parse_request(*tree)
                              : util::StatusOr<WireRequest>(tree.status());
      if (!parsed.ok()) {
        outgoing.immediate = true;
        outgoing.immediate_line = format_error(0, parsed.status());
      } else {
        outgoing.id = parsed->id;
        outgoing.top_k = parsed->top_k == 0 ? default_top_k : parsed->top_k;
        outgoing.submitted = clock::now();
        outgoing.future =
            service.submit(std::move(parsed->request), parsed->deadline_ms);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ++stats.requests;
      pending.push_back(std::move(outgoing));
    }
    cv.notify_one();
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    reader_done = true;
  }
  cv.notify_all();
  writer.join();
  return stats;
}

#if DIAGNET_SERVE_HAS_TCP

namespace {

/// Minimal streambuf over a connected socket: buffered reads, write-
/// through output. Enough for a line protocol; not seekable.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {}

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, buffer_, sizeof buffer_);
    if (n <= 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type c) override {
    if (traits_type::eq_int_type(c, traits_type::eof()))
      return traits_type::not_eof(c);
    const char byte = traits_type::to_char_type(c);
    return write_all(&byte, 1) ? c : traits_type::eof();
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return write_all(s, static_cast<std::size_t>(n))
               ? n
               : std::streamsize(0);
  }

 private:
  bool write_all(const char* data, std::size_t n) {
    while (n > 0) {
      // MSG_NOSIGNAL: a client that hangs up before reading must surface
      // as a write error here, not as a process-killing SIGPIPE.
#if defined(MSG_NOSIGNAL)
      const ssize_t written = ::send(fd_, data, n, MSG_NOSIGNAL);
#else
      const ssize_t written = ::write(fd_, data, n);
#endif
      if (written <= 0) return false;
      data += written;
      n -= static_cast<std::size_t>(written);
    }
    return true;
  }

  int fd_;
  char buffer_[4096];
};

/// One accepted connection: the session thread sets `done` when the
/// client side ends; the accept loop joins finished sessions and owns
/// closing `fd` (only after the join, so a shutdown() from the stop path
/// can never hit a recycled descriptor).
struct TcpSession {
  explicit TcpSession(int fd) : fd(fd) {}
  const int fd;
  std::atomic<bool> done{false};
  std::thread thread;
};

}  // namespace

util::Status run_tcp_listener(DiagnosisService& service,
                              const data::FeatureSpace& fs,
                              std::uint16_t port,
                              std::size_t default_top_k,
                              const std::atomic<bool>& stop_flag,
                              std::atomic<std::uint16_t>* bound_port,
                              const SessionHooks* hooks) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0)
    return util::Status::unavailable("tcp: socket() failed");
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    ::close(listener);
    return util::Status::unavailable("tcp: cannot listen on 127.0.0.1:" +
                                     std::to_string(port));
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (bound_port != nullptr) bound_port->store(ntohs(addr.sin_port));
  std::fprintf(stderr, "serve: listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(ntohs(addr.sin_port)));

  std::list<std::unique_ptr<TcpSession>> sessions;
  const auto reap_finished = [&sessions] {
    for (auto it = sessions.begin(); it != sessions.end();) {
      if ((*it)->done.load()) {
        (*it)->thread.join();
        ::close((*it)->fd);
        it = sessions.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (!stop_flag.load()) {
    // Poll with a short timeout so the stop flag is honoured between
    // accepts, and reap finished sessions each tick — a long-lived server
    // must not accumulate joinable threads (or their fds) across
    // short-lived connections.
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    reap_finished();
    DIAGNET_GAUGE_SET("serve.tcp_sessions",
                      static_cast<double>(sessions.size()));
    if (ready < 0) {
      // A signal (SIGINT forwarded to every thread, a debugger attach)
      // interrupts poll with EINTR; that must not tear down the listener.
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    // Nagle + the client's delayed ACK turns every small response line
    // into a ~40ms stall; a line protocol wants its writes on the wire
    // immediately.
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
#if defined(SO_NOSIGPIPE)
    ::setsockopt(conn, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);
#endif
    auto session = std::make_unique<TcpSession>(conn);
    TcpSession* raw = session.get();
    session->thread =
        std::thread([&service, &fs, default_top_k, &stop_flag, hooks, raw] {
          FdStreambuf buf(raw->fd);
          std::istream in(&buf);
          std::ostream out(&buf);
          run_session(service, fs, in, out, default_top_k, &stop_flag,
                      hooks);
          raw->done.store(true);
        });
    sessions.push_back(std::move(session));
  }
  ::close(listener);
  // Drain: SHUT_RD delivers EOF to sessions blocked in read() on idle
  // connections (otherwise shutdown would wait for every connected client
  // to hang up) while leaving the write side open, so in-flight responses
  // still reach their clients before the join.
  for (const auto& session : sessions) ::shutdown(session->fd, SHUT_RD);
  for (const auto& session : sessions) {
    session->thread.join();
    ::close(session->fd);
  }
  sessions.clear();
  DIAGNET_GAUGE_SET("serve.tcp_sessions", 0.0);
  return {};
}

#else  // !DIAGNET_SERVE_HAS_TCP

util::Status run_tcp_listener(DiagnosisService&, const data::FeatureSpace&,
                              std::uint16_t, std::size_t,
                              const std::atomic<bool>&,
                              std::atomic<std::uint16_t>*,
                              const SessionHooks*) {
  return util::Status::unavailable(
      "tcp transport is not available on this platform; use the stdio "
      "transport");
}

#endif  // DIAGNET_SERVE_HAS_TCP

}  // namespace diagnet::serve
