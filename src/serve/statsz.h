// Live introspection for the serving subsystem: one snapshot function
// rendered two ways, reachable over two surfaces.
//
//  * statsz_json()       — a single-line JSON object: uptime, queue depth,
//                          in-flight batches, admission-control counters,
//                          the model's generation + registry checksum, and
//                          the full telemetry registry (counters / gauges /
//                          histograms / tail histograms).
//  * statsz_prometheus() — the same data in Prometheus text exposition
//                          format (counters, gauges, and summary-style
//                          quantile series for the tail histograms).
//
// Surfaces:
//  * in-band — a wire line {"cmd":"statsz"} on any session answers with
//    one statsz_json() line (wired through serve::SessionHooks);
//  * out-of-band — run_admin_listener() serves GET /statsz (JSON) and
//    GET /metrics (Prometheus) over a minimal loopback HTTP listener, so
//    an operator can curl a live server without speaking the wire
//    protocol, and a Prometheus scraper can point at it unmodified.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "serve/reactor.h"
#include "serve/service.h"
#include "util/status.h"

namespace diagnet::serve {

/// What a statsz snapshot reads from. Non-owning; everything must outlive
/// the listener/session using the source.
struct StatszSource {
  DiagnosisService* service = nullptr;    // may be null (fields omitted)
  ModelProvider* provider = nullptr;      // may be null (fields omitted)
  std::chrono::steady_clock::time_point start{};  // process serve start
  const Reactor* reactor = nullptr;       // epoll listener (fields omitted)
};

/// One-line JSON snapshot (no trailing newline).
std::string statsz_json(const StatszSource& source);

/// Prometheus text exposition format (multi-line, trailing newline).
std::string statsz_prometheus(const StatszSource& source);

/// Minimal HTTP/1.1 listener on 127.0.0.1:`port` (0 = kernel-assigned;
/// the bound port is published through *bound_port when non-null).
/// Serves GET /statsz and GET /metrics, 404 elsewhere; one connection at
/// a time (an admin surface, not a data plane). Returns when `stop_flag`
/// becomes true (checked between accepts) or on a fatal socket error.
/// On non-POSIX builds returns unavailable.
util::Status run_admin_listener(const StatszSource& source,
                                std::uint16_t port,
                                const std::atomic<bool>& stop_flag,
                                std::atomic<std::uint16_t>* bound_port =
                                    nullptr);

}  // namespace diagnet::serve
