#include "serve/wire.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/telemetry.h"  // append_json_escaped
#include "serve/json.h"

namespace diagnet::serve {

namespace {

using util::Status;

Status field_error(const char* field, const char* what) {
  return Status::invalid_argument("request field '" + std::string(field) +
                                  "' " + what);
}

/// Largest integer a double represents exactly (2^53). Values above it
/// are rejected rather than cast: float-to-int conversion out of the
/// destination's range is undefined behaviour, and this field arrives
/// from untrusted network input.
constexpr double kMaxExactUint = 9007199254740992.0;

/// Read an optional non-negative integer field.
Status read_uint(const JsonValue& object, const char* field,
                 std::uint64_t* out) {
  const JsonValue* v = object.find(field);
  if (v == nullptr) return {};
  if (v->kind() != JsonValue::Kind::Number)
    return field_error(field, "must be a non-negative integer");
  const double n = v->as_number();
  if (!std::isfinite(n) || n < 0.0 || std::floor(n) != n)
    return field_error(field, "must be a non-negative integer");
  if (n > kMaxExactUint) return field_error(field, "is too large");
  *out = static_cast<std::uint64_t>(n);
  return {};
}

}  // namespace

util::StatusOr<WireRequest> parse_request(const std::string& line) {
  auto parsed = parse_json(line);
  if (!parsed.ok()) return parsed.status();
  return parse_request(*parsed);
}

util::StatusOr<WireRequest> parse_request(const JsonValue& object) {
  if (object.kind() != JsonValue::Kind::Object)
    return Status::invalid_argument("request must be a JSON object");

  WireRequest wire;
  if (Status s = read_uint(object, "id", &wire.id); !s.ok()) return s;

  const JsonValue* features = object.find("features");
  if (features == nullptr)
    return field_error("features", "is required");
  if (features->kind() != JsonValue::Kind::Array)
    return field_error("features", "must be an array of numbers");
  wire.request.features.reserve(features->items().size());
  for (const JsonValue& v : features->items()) {
    if (v.kind() != JsonValue::Kind::Number)
      return field_error("features", "must be an array of numbers");
    wire.request.features.push_back(v.as_number());
  }

  std::uint64_t service = 0;
  if (Status s = read_uint(object, "service", &service); !s.ok()) return s;
  wire.request.service = static_cast<std::size_t>(service);

  if (const JsonValue* general = object.find("general")) {
    if (general->kind() != JsonValue::Kind::Bool)
      return field_error("general", "must be a boolean");
    wire.request.use_general = general->as_bool();
  }

  if (const JsonValue* landmarks = object.find("landmarks")) {
    if (landmarks->kind() != JsonValue::Kind::Array)
      return field_error("landmarks", "must be an array of 0/1 or booleans");
    wire.request.landmark_available.reserve(landmarks->items().size());
    for (const JsonValue& v : landmarks->items()) {
      if (v.kind() == JsonValue::Kind::Bool)
        wire.request.landmark_available.push_back(v.as_bool());
      else if (v.kind() == JsonValue::Kind::Number)
        wire.request.landmark_available.push_back(v.as_number() != 0.0);
      else
        return field_error("landmarks",
                           "must be an array of 0/1 or booleans");
    }
  }

  if (const JsonValue* deadline = object.find("deadline_ms")) {
    if (deadline->kind() != JsonValue::Kind::Number ||
        !std::isfinite(deadline->as_number()) ||
        deadline->as_number() < 0.0)
      return field_error("deadline_ms", "must be a finite non-negative number");
    wire.deadline_ms = deadline->as_number();
  }

  if (object.find("top_k") != nullptr) {
    std::uint64_t top_k = 0;
    if (Status s = read_uint(object, "top_k", &top_k); !s.ok()) return s;
    if (top_k == 0) return field_error("top_k", "must be positive");
    wire.top_k = static_cast<std::size_t>(top_k);
  }
  return wire;
}

std::string format_response(std::uint64_t id,
                            const core::Diagnosis& diagnosis,
                            const data::FeatureSpace& fs, std::size_t top_k,
                            double latency_ms) {
  const std::size_t k = std::min(top_k, diagnosis.ranking.size());
  char buf[32];
  std::string out = "{\"id\":" + std::to_string(id) + ",\"ok\":true";
  out += ",\"causes\":[";
  for (std::size_t r = 0; r < k; ++r) {
    if (r > 0) out += ',';
    out += '"';
    obs::append_json_escaped(out, fs.name(diagnosis.ranking[r]));
    out += '"';
  }
  out += "],\"cause_ids\":[";
  for (std::size_t r = 0; r < k; ++r) {
    if (r > 0) out += ',';
    out += std::to_string(diagnosis.ranking[r]);
  }
  out += "],\"scores\":[";
  for (std::size_t r = 0; r < k; ++r) {
    if (r > 0) out += ',';
    std::snprintf(buf, sizeof buf, "%.17g",
                  diagnosis.scores[diagnosis.ranking[r]]);
    out += buf;
  }
  out += "],\"coarse_family\":" + std::to_string(diagnosis.coarse_argmax);
  std::snprintf(buf, sizeof buf, "%.6g", diagnosis.w_unknown);
  out += ",\"w_unknown\":";
  out += buf;
  std::snprintf(buf, sizeof buf, "%.3f", latency_ms);
  out += ",\"latency_ms\":";
  out += buf;
  out += '}';
  return out;
}

std::string format_response(std::uint64_t id,
                            const core::DiagnoseResponse& response,
                            const data::FeatureSpace& fs, std::size_t top_k,
                            double latency_ms) {
  std::string out =
      format_response(id, response.diagnosis, fs, top_k, latency_ms);
  const core::RequestTrace& trace = response.trace;
  if (trace.request_id == 0) return out;
  // Splice the trace before the closing brace: the un-traced prefix stays
  // byte-identical, which the positional stdio tests rely on.
  out.pop_back();
  char buf[32];
  out += ",\"request_id\":" + std::to_string(trace.request_id);
  out += ",\"trace\":{";
  const auto field = [&](const char* name, double us, bool first = false) {
    if (!first) out += ',';
    out += '"';
    out += name;
    out += "\":";
    std::snprintf(buf, sizeof buf, "%.1f", us);
    out += buf;
  };
  field("queue_us", trace.queue_us, /*first=*/true);
  field("assembly_us", trace.assembly_us);
  field("inference_us", trace.inference_us);
  field("write_back_us", trace.write_back_us);
  out += ",\"batch_size\":" + std::to_string(trace.batch_size);
  out += ",\"model_generation\":" + std::to_string(trace.model_generation);
  out += "}}";
  return out;
}

std::string format_error(std::uint64_t id, const util::Status& status,
                         std::uint64_t request_id) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"ok\":false";
  out += ",\"code\":\"";
  out += util::status_code_name(status.code());
  out += "\",\"error\":\"";
  obs::append_json_escaped(out, status.message());
  out += '"';
  if (request_id != 0)
    out += ",\"request_id\":" + std::to_string(request_id);
  out += '}';
  return out;
}

std::string format_request(const WireRequest& wire) {
  char buf[32];
  std::string out = "{";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  if (wire.id != 0) {
    sep();
    out += "\"id\":" + std::to_string(wire.id);
  }
  sep();
  out += "\"features\":[";
  for (std::size_t i = 0; i < wire.request.features.size(); ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof buf, "%.17g", wire.request.features[i]);
    out += buf;
  }
  out += ']';
  if (wire.request.service != 0) {
    sep();
    out += "\"service\":" + std::to_string(wire.request.service);
  }
  if (wire.request.use_general) {
    sep();
    out += "\"general\":true";
  }
  if (!wire.request.landmark_available.empty()) {
    sep();
    out += "\"landmarks\":[";
    for (std::size_t i = 0; i < wire.request.landmark_available.size(); ++i) {
      if (i > 0) out += ',';
      out += wire.request.landmark_available[i] ? '1' : '0';
    }
    out += ']';
  }
  if (wire.deadline_ms > 0.0) {
    sep();
    std::snprintf(buf, sizeof buf, "%.17g", wire.deadline_ms);
    out += "\"deadline_ms\":";
    out += buf;
  }
  if (wire.top_k != 0) {
    sep();
    out += "\"top_k\":" + std::to_string(wire.top_k);
  }
  out += '}';
  return out;
}

}  // namespace diagnet::serve
