#include "agent/window.h"

#include <algorithm>

#include "util/require.h"
#include "util/stats.h"

namespace diagnet::agent {

MeasurementWindow::MeasurementWindow(const data::FeatureSpace& fs,
                                     std::size_t capacity)
    : fs_(&fs), capacity_(capacity) {
  DIAGNET_REQUIRE(capacity_ > 0);
  values_.assign(fs.total() * capacity_, 0.0);
  size_.assign(fs.total(), 0);
  head_.assign(fs.total(), 0);
}

void MeasurementWindow::push(std::size_t feature, double value) {
  values_[feature * capacity_ + head_[feature]] = value;
  head_[feature] = (head_[feature] + 1) % capacity_;
  size_[feature] = std::min(capacity_, size_[feature] + 1);
}

void MeasurementWindow::record_probe(
    std::size_t landmark, const netsim::LandmarkMeasurement& measurement) {
  using data::Metric;
  push(fs_->landmark_feature(landmark, Metric::Latency),
       measurement.latency_ms);
  push(fs_->landmark_feature(landmark, Metric::Jitter),
       measurement.jitter_ms);
  push(fs_->landmark_feature(landmark, Metric::Loss), measurement.loss_ratio);
  push(fs_->landmark_feature(landmark, Metric::DownBw),
       measurement.down_mbps);
  push(fs_->landmark_feature(landmark, Metric::UpBw), measurement.up_mbps);
}

void MeasurementWindow::record_local(
    const netsim::LocalMeasurement& measurement) {
  using data::LocalFeature;
  push(fs_->local_feature(LocalFeature::GatewayRtt),
       measurement.gateway_rtt_ms);
  push(fs_->local_feature(LocalFeature::CpuLoad), measurement.cpu_load);
  push(fs_->local_feature(LocalFeature::MemLoad), measurement.mem_load);
  push(fs_->local_feature(LocalFeature::ProcLoad), measurement.proc_load);
  push(fs_->local_feature(LocalFeature::DnsTime), measurement.dns_ms);
}

bool MeasurementWindow::has_landmark(std::size_t landmark) const {
  return size_[fs_->landmark_feature(landmark, data::Metric::Latency)] > 0;
}

std::vector<bool> MeasurementWindow::landmark_coverage() const {
  std::vector<bool> coverage(fs_->landmark_count());
  for (std::size_t lam = 0; lam < coverage.size(); ++lam)
    coverage[lam] = has_landmark(lam);
  return coverage;
}

std::vector<double> MeasurementWindow::snapshot() const {
  std::vector<double> features(fs_->total(), 0.0);
  std::vector<double> window;
  for (std::size_t j = 0; j < fs_->total(); ++j) {
    if (size_[j] == 0) continue;
    window.assign(values_.begin() + static_cast<std::ptrdiff_t>(j * capacity_),
                  values_.begin() +
                      static_cast<std::ptrdiff_t>(j * capacity_ + size_[j]));
    features[j] = util::percentile(std::move(window), 0.5);
  }
  return features;
}

std::size_t MeasurementWindow::count(std::size_t feature) const {
  DIAGNET_REQUIRE(feature < fs_->total());
  return size_[feature];
}

void MeasurementWindow::clear() {
  std::fill(size_.begin(), size_.end(), 0);
  std::fill(head_.begin(), head_.end(), 0);
}

}  // namespace diagnet::agent
