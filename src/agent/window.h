// Windowed measurement aggregation. The paper's clients "periodically
// fetch network features from landmarks" (§IV-A(c)); a diagnosis then
// needs one feature vector summarising the recent window. This class keeps
// a small ring of recent values per feature and summarises each with the
// median — robust to the measurement noise of individual probes.
#pragma once

#include <cstddef>
#include <vector>

#include "data/feature_space.h"
#include "netsim/measurement.h"

namespace diagnet::agent {

class MeasurementWindow {
 public:
  /// `capacity` — probes retained per feature (older ones are evicted).
  MeasurementWindow(const data::FeatureSpace& fs, std::size_t capacity = 8);

  /// Record one probe of a landmark (its k metrics enter the window).
  void record_probe(std::size_t landmark,
                    const netsim::LandmarkMeasurement& measurement);

  /// Record one local-metrics observation.
  void record_local(const netsim::LocalMeasurement& measurement);

  /// Whether any probe of this landmark is in the window.
  bool has_landmark(std::size_t landmark) const;
  /// Landmarks with at least one probe in the window — the availability
  /// mask a diagnosis should use.
  std::vector<bool> landmark_coverage() const;

  /// Per-feature medians over the window. Features of landmarks without
  /// data are 0 (they must be masked via landmark_coverage()).
  std::vector<double> snapshot() const;

  /// Number of observations currently held for one feature.
  std::size_t count(std::size_t feature) const;

  /// Drop everything (e.g. after a network change invalidates history).
  void clear();

 private:
  void push(std::size_t feature, double value);

  const data::FeatureSpace* fs_;
  std::size_t capacity_;
  // Ring buffer per feature: values_ is (feature x capacity), sizes/heads
  // track occupancy.
  std::vector<double> values_;
  std::vector<std::size_t> size_;
  std::vector<std::size_t> head_;
};

}  // namespace diagnet::agent
