// The client-side agent of the paper's deployment (Fig. 1): the browser
// probe that periodically measures landmarks under a probe budget,
// maintains a measurement window, evaluates QoE on every service visit,
// and asks the analysis model for a ranked diagnosis when the experience
// degrades.
//
// The agent only talks to the *measurement* surface of the simulator (the
// same interfaces a real probe would expose) plus a trained DiagNetModel;
// it never sees injected faults or any ground truth.
#pragma once

#include <cstdint>
#include <optional>

#include "agent/window.h"
#include "core/diagnet.h"
#include "fleet/fleet.h"
#include "netsim/simulator.h"

namespace diagnet::agent {

struct AgentConfig {
  std::size_t region = 0;
  std::uint64_t client_id = 0;
  fleet::ProbeBudget probe_budget;
  std::size_t window_capacity = 8;
  std::uint64_t seed = 1;
};

/// Outcome of one service visit.
struct VisitOutcome {
  double page_load_ms = 0.0;
  bool degraded = false;
  /// Present iff degraded: the ranked root causes from the current window.
  std::optional<core::Diagnosis> diagnosis;
};

class ClientAgent {
 public:
  /// The model must already be trained; the fleet tells the agent which
  /// landmarks are reachable at probe time.
  ClientAgent(const netsim::Simulator& sim, const fleet::LandmarkFleet& fleet,
              core::DiagNetModel& model, const data::FeatureSpace& fs,
              const AgentConfig& config);

  /// One probe epoch: select landmarks (budget ∩ fleet availability),
  /// measure them plus the local metrics, fold into the window. `faults`
  /// is the simulator-side world state the agent cannot observe directly.
  void probe_epoch(double time_hours, const netsim::ActiveFaults& faults);

  /// Visit a service; on degraded QoE, diagnose from the window.
  VisitOutcome visit(std::size_t service, double time_hours,
                     const netsim::ActiveFaults& faults);

  const MeasurementWindow& window() const { return window_; }
  std::size_t probes_sent() const { return probes_sent_; }

 private:
  const netsim::Simulator* sim_;
  const fleet::LandmarkFleet* fleet_;
  core::DiagNetModel* model_;
  const data::FeatureSpace* fs_;
  AgentConfig config_;
  netsim::ClientProfile profile_;
  fleet::ProbeScheduler scheduler_;
  MeasurementWindow window_;
  util::Rng rng_;
  std::uint64_t epoch_ = 0;
  std::size_t probes_sent_ = 0;
};

}  // namespace diagnet::agent
