#include "agent/agent.h"

#include "obs/obs.h"
#include "util/require.h"

namespace diagnet::agent {

ClientAgent::ClientAgent(const netsim::Simulator& sim,
                         const fleet::LandmarkFleet& fleet,
                         core::DiagNetModel& model,
                         const data::FeatureSpace& fs,
                         const AgentConfig& config)
    : sim_(&sim),
      fleet_(&fleet),
      model_(&model),
      fs_(&fs),
      config_(config),
      profile_(netsim::ClientProfile::make(config.region, config.client_id,
                                           sim.seed())),
      scheduler_(sim.topology(), config.probe_budget, config.seed),
      window_(fs, config.window_capacity),
      rng_(config.seed ^ (config.client_id * 0x9e3779b97f4a7c15ULL)) {
  DIAGNET_REQUIRE(config.region < sim.topology().region_count());
  DIAGNET_REQUIRE_MSG(model.trained(), "agent needs a trained model");
  DIAGNET_REQUIRE_MSG(sim.qoe_calibrated(), "simulator must be calibrated");
}

void ClientAgent::probe_epoch(double time_hours,
                              const netsim::ActiveFaults& faults) {
  const netsim::ClientCondition condition =
      netsim::ClientCondition::from_faults(faults, config_.region);
  const std::vector<bool> reachable = fleet_->availability(time_hours);
  const std::vector<bool> selected = scheduler_.select(
      config_.region, reachable, config_.client_id, epoch_++);

  // One full sweep is cheapest through probe_landmarks; only the selected
  // subset enters the window (the rest was never measured).
  const auto probes =
      sim_->probe_landmarks(profile_, condition, time_hours, faults, rng_);
  std::size_t sent = 0;
  for (std::size_t lam = 0; lam < probes.size(); ++lam) {
    if (!selected[lam]) continue;
    window_.record_probe(lam, probes[lam]);
    ++sent;
  }
  probes_sent_ += sent;
  DIAGNET_COUNT("agent.probe_epochs");
  DIAGNET_COUNT_N("agent.probes", sent);
  window_.record_local(
      sim_->measure_local(profile_, condition, time_hours, rng_));
}

VisitOutcome ClientAgent::visit(std::size_t service, double time_hours,
                                const netsim::ActiveFaults& faults) {
  const netsim::ClientCondition condition =
      netsim::ClientCondition::from_faults(faults, config_.region);

  VisitOutcome outcome;
  outcome.page_load_ms =
      sim_->visit(service, profile_, condition, time_hours, faults, rng_);
  outcome.degraded =
      sim_->qoe_degraded(service, config_.region, outcome.page_load_ms);
  DIAGNET_COUNT("agent.visits");
  if (!outcome.degraded) return outcome;
  DIAGNET_COUNT("agent.degraded_visits");

  // Diagnose from whatever the window currently covers.
  DIAGNET_SPAN("agent.diagnose");
  const std::vector<bool> coverage = window_.landmark_coverage();
  bool any = false;
  for (bool c : coverage) any |= c;
  DIAGNET_REQUIRE_MSG(any, "degraded visit before any probe epoch");
  core::DiagnoseResponse response =
      model_->diagnose({window_.snapshot(), service, false, coverage});
  response.status.throw_if_error();
  outcome.diagnosis = std::move(response.diagnosis);
  return outcome;
}

}  // namespace diagnet::agent
