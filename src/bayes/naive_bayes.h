// The paper's "Extensible Naive Bayes Classifier" baseline (§IV-B.b).
//
// Classes are the root causes, which DiagNet identifies with the input
// features themselves (cause index == feature index). Following the paper:
//
//  * flat priors: P(C_k) = 1 for every cause — unseen causes have no prior
//    and this also cancels dataset imbalance;
//  * per-(class, feature) likelihoods are Kernel Density Estimates fitted
//    on the training samples of that class;
//  * *generic* likelihoods are built per measure family as the union KDE of
//    the measures of every landmark available during training, and used
//    whenever a specific likelihood is unavailable (unseen class, or a
//    feature hidden during training).
//
// Two generic tables are kept per family t:
//   affected[t]  — values of the *cause's own* feature under family-t
//                  faults (how a family-t metric looks when its landmark is
//                  the faulty one), used for the unseen cause's own feature;
//   background[t] — the union of all family-t measurements over all
//                  training samples, used for every other fallback.
// This concretises the paper's single-index P(x_t | C_t) notation; the
// qualitative behaviour it reports (a bias towards unseen causes, KDE-merge
// flattening under client diversity) emerges from this construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bayes/kde.h"
#include "tensor/matrix.h"

namespace diagnet::bayes {

using tensor::Matrix;

struct NaiveBayesConfig {
  /// Fixed KDE bandwidth; <= 0 selects Silverman's rule per KDE.
  double bandwidth = 0.0;
  /// Specific likelihoods need at least this many class samples.
  std::size_t min_class_samples = 5;
};

class ExtensibleNaiveBayes {
 public:
  static constexpr std::size_t kNominal = static_cast<std::size_t>(-1);

  /// x: (n x m) training features. y_cause[i] in [0, m) or kNominal.
  /// feature_family[j]: measure-family id of feature j (shared by the cause
  /// j). available[j]: whether feature j was measured during training
  /// (features of hidden landmarks are not).
  void fit(const Matrix& x, const std::vector<std::size_t>& y_cause,
           const std::vector<std::size_t>& feature_family,
           const std::vector<bool>& available,
           const NaiveBayesConfig& config = {});

  /// Posterior-proportional scores over all m causes (sums to 1).
  /// `sample` has the full m features (new landmarks included).
  std::vector<double> score_causes(const double* sample) const;
  std::vector<double> score_causes(const std::vector<double>& sample) const;

  bool trained() const { return feature_count_ > 0; }
  std::size_t feature_count() const { return feature_count_; }
  bool cause_is_trained(std::size_t cause) const;

 private:
  std::size_t feature_count_ = 0;
  std::size_t family_count_ = 0;
  std::vector<std::size_t> family_;
  std::vector<bool> available_;
  std::vector<bool> cause_trained_;
  // specific_[c * m + j]: KDE index + 1, or 0 when absent.
  std::vector<std::uint32_t> specific_;
  std::vector<Kde> specific_kdes_;
  std::vector<Kde> affected_;        // per family; may be unfitted
  std::vector<Kde> background_;      // per family; may be unfitted
};

}  // namespace diagnet::bayes
