#include "bayes/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace diagnet::bayes {

namespace {
constexpr double kLogFloor = -27.631021115928547;  // log(1e-12)
}

void ExtensibleNaiveBayes::fit(const Matrix& x,
                               const std::vector<std::size_t>& y_cause,
                               const std::vector<std::size_t>& feature_family,
                               const std::vector<bool>& available,
                               const NaiveBayesConfig& config) {
  const std::size_t m = x.cols();
  DIAGNET_REQUIRE(m > 0 && x.rows() > 0);
  DIAGNET_REQUIRE(y_cause.size() == x.rows());
  DIAGNET_REQUIRE(feature_family.size() == m && available.size() == m);

  feature_count_ = m;
  family_ = feature_family;
  available_ = available;
  family_count_ = 1 + *std::max_element(family_.begin(), family_.end());

  // Group training rows by cause.
  std::vector<std::vector<std::size_t>> rows_of_cause(m);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (y_cause[i] == kNominal) continue;
    DIAGNET_REQUIRE(y_cause[i] < m);
    rows_of_cause[y_cause[i]].push_back(i);
  }

  cause_trained_.assign(m, false);
  specific_.assign(m * m, 0);
  specific_kdes_.clear();

  // Specific likelihoods: one KDE per (trained cause, available feature).
  std::vector<double> pool;
  for (std::size_t c = 0; c < m; ++c) {
    if (rows_of_cause[c].size() < config.min_class_samples) continue;
    cause_trained_[c] = true;
    for (std::size_t j = 0; j < m; ++j) {
      if (!available_[j]) continue;
      pool.clear();
      pool.reserve(rows_of_cause[c].size());
      for (std::size_t i : rows_of_cause[c]) pool.push_back(x(i, j));
      Kde kde;
      kde.fit(pool, config.bandwidth);
      specific_kdes_.push_back(std::move(kde));
      specific_[c * m + j] =
          static_cast<std::uint32_t>(specific_kdes_.size());
    }
  }

  // Generic likelihoods per measure family.
  affected_.assign(family_count_, Kde{});
  background_.assign(family_count_, Kde{});
  for (std::size_t t = 0; t < family_count_; ++t) {
    // affected[t]: the cause's own feature values under family-t faults,
    // pooled over every trained cause of family t.
    pool.clear();
    for (std::size_t c = 0; c < m; ++c) {
      if (!cause_trained_[c] || family_[c] != t || !available_[c]) continue;
      for (std::size_t i : rows_of_cause[c]) pool.push_back(x(i, c));
    }
    if (!pool.empty()) affected_[t].fit(pool, config.bandwidth);

    // background[t]: union of all available family-t measurements.
    pool.clear();
    for (std::size_t j = 0; j < m; ++j) {
      if (family_[j] != t || !available_[j]) continue;
      for (std::size_t i = 0; i < x.rows(); ++i) pool.push_back(x(i, j));
    }
    if (!pool.empty()) background_[t].fit(pool, config.bandwidth);
  }
}

bool ExtensibleNaiveBayes::cause_is_trained(std::size_t cause) const {
  DIAGNET_REQUIRE(cause < feature_count_);
  return cause_trained_[cause];
}

std::vector<double> ExtensibleNaiveBayes::score_causes(
    const double* sample) const {
  DIAGNET_REQUIRE_MSG(trained(), "score on an unfitted model");
  const std::size_t m = feature_count_;
  std::vector<double> log_scores(m, 0.0);

  // Background log-likelihood per feature is shared by most (cause, feature)
  // pairs — compute once.
  std::vector<double> bg(m);
  for (std::size_t j = 0; j < m; ++j) {
    const Kde& kde = background_[family_[j]];
    bg[j] = kde.fitted() ? kde.log_density(sample[j]) : kLogFloor;
  }
  double bg_sum = 0.0;
  for (double v : bg) bg_sum += v;

  for (std::size_t c = 0; c < m; ++c) {
    double ls = bg_sum;
    if (cause_trained_[c]) {
      // Replace the background terms by specific likelihoods where known.
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint32_t slot = specific_[c * m + j];
        if (slot == 0) continue;
        ls += specific_kdes_[slot - 1].log_density(sample[j]) - bg[j];
      }
    } else {
      // Unseen cause: its own feature uses the family's affected-KDE.
      const Kde& kde = affected_[family_[c]];
      const double own =
          kde.fitted() ? kde.log_density(sample[c]) : kLogFloor;
      ls += own - bg[c];
    }
    log_scores[c] = ls;
  }

  // Flat priors: posterior ∝ likelihood; normalise via log-sum-exp.
  const double mx = *std::max_element(log_scores.begin(), log_scores.end());
  double sum = 0.0;
  std::vector<double> scores(m);
  for (std::size_t c = 0; c < m; ++c) {
    scores[c] = std::exp(log_scores[c] - mx);
    sum += scores[c];
  }
  for (auto& s : scores) s /= sum;
  return scores;
}

std::vector<double> ExtensibleNaiveBayes::score_causes(
    const std::vector<double>& sample) const {
  DIAGNET_REQUIRE(sample.size() == feature_count_);
  return score_causes(sample.data());
}

}  // namespace diagnet::bayes
