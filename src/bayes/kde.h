// Gaussian-kernel density estimation (Rosenblatt 1956 — paper ref [26])
// with Silverman's rule-of-thumb bandwidth.
//
// Densities are queried millions of times while scoring the Naive-Bayes
// baseline, so fit() precomputes the density on a uniform grid spanning the
// data ± 4 bandwidths; density() then costs one linear interpolation.
// Outside the grid the density continues with the exact Gaussian tails of
// the two extreme grid anchors, keeping log-densities finite.
#pragma once

#include <cstddef>
#include <vector>

namespace diagnet::bayes {

class Kde {
 public:
  /// bandwidth <= 0 selects Silverman's rule:
  ///   h = 0.9 * min(sigma, IQR/1.34) * n^(-1/5),
  /// with a positive floor when the sample is (nearly) degenerate.
  void fit(const std::vector<double>& values, double bandwidth = 0.0,
           std::size_t grid_points = 512);

  /// Estimated density at x (>= tiny positive floor, never exactly 0).
  double density(double x) const;
  double log_density(double x) const;

  /// Exact (non-gridded) density — O(n); used by tests to bound the grid
  /// approximation error.
  double density_exact(double x) const;

  double bandwidth() const { return bandwidth_; }
  std::size_t sample_count() const { return values_.size(); }
  bool fitted() const { return !values_.empty(); }

 private:
  std::vector<double> values_;
  double bandwidth_ = 0.0;
  // Grid cache.
  double grid_lo_ = 0.0;
  double grid_step_ = 0.0;
  std::vector<double> grid_density_;
};

/// Merge several value pools and fit one KDE over the union — the paper's
/// "union KDE" used for generic likelihoods (§IV-B.b).
Kde union_kde(const std::vector<const std::vector<double>*>& pools,
              double bandwidth = 0.0);

}  // namespace diagnet::bayes
