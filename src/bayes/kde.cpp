#include "bayes/kde.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/require.h"
#include "util/stats.h"

namespace diagnet::bayes {

namespace {

constexpr double kDensityFloor = 1e-12;

double gaussian(double u) {
  return std::exp(-0.5 * u * u) / std::sqrt(2.0 * std::numbers::pi);
}

}  // namespace

void Kde::fit(const std::vector<double>& values, double bandwidth,
              std::size_t grid_points) {
  DIAGNET_REQUIRE_MSG(!values.empty(), "KDE needs at least one value");
  DIAGNET_REQUIRE(grid_points >= 2);
  values_ = values;
  std::sort(values_.begin(), values_.end());

  // Large pools are quantile-subsampled: evenly spaced picks from the sorted
  // values preserve the empirical distribution while bounding both the grid
  // build and density_exact() at O(kMaxSamples).
  constexpr std::size_t kMaxSamples = 2048;
  if (values_.size() > kMaxSamples) {
    std::vector<double> sub(kMaxSamples);
    const double stride = static_cast<double>(values_.size() - 1) /
                          static_cast<double>(kMaxSamples - 1);
    for (std::size_t i = 0; i < kMaxSamples; ++i)
      sub[i] = values_[static_cast<std::size_t>(
          std::round(stride * static_cast<double>(i)))];
    values_ = std::move(sub);
  }

  if (bandwidth > 0.0) {
    bandwidth_ = bandwidth;
  } else {
    const double n = static_cast<double>(values_.size());
    const double sigma = std::sqrt(util::variance(values_));
    const double iqr = util::percentile_sorted(values_, 0.75) -
                       util::percentile_sorted(values_, 0.25);
    double spread = sigma;
    if (iqr > 0.0) spread = std::min(spread > 0.0 ? spread : iqr, iqr / 1.34);
    bandwidth_ = 0.9 * spread * std::pow(n, -0.2);
    if (bandwidth_ <= 0.0) {
      // Degenerate sample (all values equal): pick a floor relative to the
      // value's magnitude so the density is a narrow but finite bump.
      const double scale = std::abs(values_.front());
      bandwidth_ = std::max(scale * 1e-3, 1e-6);
    }
  }

  // Precompute densities on a uniform grid covering the data ± 4h.
  grid_lo_ = values_.front() - 4.0 * bandwidth_;
  const double hi = values_.back() + 4.0 * bandwidth_;
  grid_step_ = (hi - grid_lo_) / static_cast<double>(grid_points - 1);
  grid_density_.resize(grid_points);
  const double inv_nh =
      1.0 / (static_cast<double>(values_.size()) * bandwidth_);
  for (std::size_t g = 0; g < grid_points; ++g) {
    const double x = grid_lo_ + grid_step_ * static_cast<double>(g);
    double d = 0.0;
    for (double v : values_) d += gaussian((x - v) / bandwidth_);
    grid_density_[g] = std::max(d * inv_nh, kDensityFloor);
  }
}

double Kde::density(double x) const {
  DIAGNET_REQUIRE_MSG(fitted(), "density on an unfitted KDE");
  const double pos = (x - grid_lo_) / grid_step_;
  if (pos <= 0.0 || pos >= static_cast<double>(grid_density_.size() - 1)) {
    // Beyond the grid: all kernels are > 4h away; floor the density.
    return kDensityFloor;
  }
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  return grid_density_[lo] +
         frac * (grid_density_[lo + 1] - grid_density_[lo]);
}

double Kde::log_density(double x) const { return std::log(density(x)); }

double Kde::density_exact(double x) const {
  DIAGNET_REQUIRE_MSG(fitted(), "density on an unfitted KDE");
  double d = 0.0;
  for (double v : values_) d += gaussian((x - v) / bandwidth_);
  return std::max(
      d / (static_cast<double>(values_.size()) * bandwidth_), kDensityFloor);
}

Kde union_kde(const std::vector<const std::vector<double>*>& pools,
              double bandwidth) {
  std::vector<double> merged;
  for (const auto* pool : pools) {
    DIAGNET_REQUIRE(pool != nullptr);
    merged.insert(merged.end(), pool->begin(), pool->end());
  }
  Kde kde;
  kde.fit(merged, bandwidth);
  return kde;
}

}  // namespace diagnet::bayes
