// HDR-style log-linear histogram for live tail latency: fixed buckets,
// bounded memory, lock-free recording, mergeable snapshots.
//
// Why a second histogram type next to obs::Histogram? The reservoir
// histogram keeps at most 4096 samples, so over a million-request serving
// run the p999 is estimated from ~4 surviving tail samples — useless for
// the SLO gates the serving PRs are measured by. This histogram instead
// counts every observation into one of ~3.3k fixed buckets:
//
//  * log-linear layout — each power-of-two "major" bucket [2^e, 2^(e+1))
//    is split into 64 linear sub-buckets, so the half-bucket-width error
//    of reporting a bucket's midpoint is bounded at 1/128 < 0.8% of the
//    value, uniformly across ~15 decades (2^-20 .. 2^31). Exact tails:
//    the p999 over millions of samples is as accurate as the p50.
//  * lock-free hot path — observe() is one relaxed atomic increment plus
//    a handful of relaxed CAS updates (count/sum/min/max); it never takes
//    the registry mutex, so serving-path recording cannot serialise the
//    threads it is timing.
//  * mergeable — Snapshot::merge() adds bucket counts, so per-connection
//    loadgen recorders can be combined into one exact distribution.
//
// When to use which (also in README "Observability"): reservoir
// `Histogram` for batch-job stage timings where a few thousand samples
// describe the distribution; `LogLinearHistogram` for anything long-lived
// or tail-sensitive (all `serve.*` latency metrics, loadgen).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace diagnet::obs {

class LogLinearHistogram {
 public:
  /// 64 linear sub-buckets per power of two: midpoint relative error
  /// <= 1/(2*64) < 0.8%, well inside the 2% the serve gate demands.
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  /// Covered value range [2^kMinExp2, 2^(kMaxExp2+1)): with values in
  /// milliseconds that is ~1 ns .. ~25 days. Values below the range land
  /// in the dedicated underflow bucket (reported as 0, i.e. "too small to
  /// resolve"), values at or above the top clamp into the overflow bucket
  /// (reported at the range top); min()/max() stay exact regardless.
  static constexpr int kMinExp2 = -20;
  static constexpr int kMaxExp2 = 30;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp2 - kMinExp2 + 1) * kSubBuckets +
      2;  // + underflow [0] + overflow [last]

  /// Bucket index for a value (total order, clamped at both ends).
  /// Exposed for the accuracy tests; NaN records as underflow.
  static std::size_t bucket_index(double v);
  /// Representative (midpoint) value re-materialised from a bucket index.
  static double bucket_midpoint(std::size_t index);

  /// Lock-free; safe from any number of threads concurrently with
  /// snapshot(). Relaxed ordering throughout: buckets are independent
  /// counters and snapshots are statistical, not linearisable.
  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // exact observed extremes (0 when empty)
    double max = 0.0;
    std::vector<std::uint64_t> buckets;  // kBucketCount wide (empty if count==0)

    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    /// Percentile q in [0,1] by cumulative bucket walk; the bucket
    /// midpoint clamped to [min, max]. NaN when empty.
    double percentile(double q) const;
    /// Pointwise bucket addition (exact: merging then querying equals
    /// querying the union stream).
    void merge(const Snapshot& other);
  };

  /// Point-in-time copy, safe while writers observe(). Concurrent
  /// observations may be torn across count/buckets by at most the number
  /// of in-flight writers — statistically invisible at serving rates.
  Snapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
};

}  // namespace diagnet::obs
