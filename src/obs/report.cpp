#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/telemetry.h"
#include "tensor/dispatch.h"
#include "util/table.h"

namespace diagnet::obs {

namespace {

struct ExitReport {
  std::mutex mu;
  std::string trace_path;
  std::string metrics_path;
  bool print_summary = false;
  bool hook_installed = false;
};

ExitReport& exit_report() {
  static auto* report = new ExitReport();  // leaked: read during atexit
  return *report;
}

void run_exit_report() {
  if (force_disabled()) return;  // DIAGNET_OBS=0: no sinks, no summary
  ExitReport& report = exit_report();
  std::lock_guard<std::mutex> lock(report.mu);
  if (!report.trace_path.empty()) {
    if (write_trace_file(report.trace_path))
      std::cerr << "[obs] trace written to " << report.trace_path << '\n';
    else
      std::cerr << "[obs] failed to write trace " << report.trace_path << '\n';
  }
  if (!report.metrics_path.empty() &&
      !write_metrics_file(report.metrics_path))
    std::cerr << "[obs] failed to write metrics " << report.metrics_path
              << '\n';
  if (report.print_summary) std::cout << render_summary();
}

void append_json_number(std::string& out, double v) {
  char buf[64];
  // NaN (empty histogram percentiles) is not valid JSON; emit null.
  if (v != v) {
    out += "null";
    return;
  }
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string render_summary() {
  Registry& registry = Registry::instance();
  std::string out = util::banner("telemetry summary");

  const auto histograms = registry.histograms();
  if (!histograms.empty()) {
    util::Table table({"histogram", "count", "mean", "p50", "p95", "p99",
                       "max", "total"});
    for (const auto& [name, snap] : histograms) {
      if (snap.stats.count() == 0) continue;
      table.add_row({name, std::to_string(snap.stats.count()),
                     util::fmt(snap.stats.mean(), 3),
                     util::fmt(snap.percentile(0.50), 3),
                     util::fmt(snap.percentile(0.95), 3),
                     util::fmt(snap.percentile(0.99), 3),
                     util::fmt(snap.stats.max(), 3),
                     util::fmt(snap.stats.mean() *
                                   static_cast<double>(snap.stats.count()),
                               3)});
    }
    out += table.to_string();
  }

  const auto tails = registry.tail_histograms();
  if (!tails.empty()) {
    util::Table table({"tail histogram", "count", "mean", "p50", "p90",
                       "p99", "p999", "max"});
    for (const auto& [name, snap] : tails) {
      if (snap.count == 0) continue;
      table.add_row({name, std::to_string(snap.count),
                     util::fmt(snap.mean(), 3),
                     util::fmt(snap.percentile(0.50), 3),
                     util::fmt(snap.percentile(0.90), 3),
                     util::fmt(snap.percentile(0.99), 3),
                     util::fmt(snap.percentile(0.999), 3),
                     util::fmt(snap.max, 3)});
    }
    out += table.to_string();
  }

  const auto counters = registry.counters();
  const auto gauges = registry.gauges();
  if (!counters.empty() || !gauges.empty()) {
    util::Table table({"metric", "value"});
    for (const auto& [name, value] : counters)
      table.add_row({name, std::to_string(value)});
    for (const auto& [name, value] : gauges)
      table.add_row({name, util::fmt(value, 4)});
    out += table.to_string();
  }

  if (histograms.empty() && tails.empty() && counters.empty() &&
      gauges.empty())
    out += "(no telemetry recorded)\n";
  return out;
}

std::string metrics_to_json() {
  Registry& registry = Registry::instance();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
    append_json_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":{\"count\":" + std::to_string(snap.stats.count());
    const std::pair<const char*, double> fields[] = {
        {"mean", snap.stats.mean()},       {"min", snap.stats.min()},
        {"max", snap.stats.max()},         {"stddev", snap.stats.stddev()},
        {"p50", snap.percentile(0.50)},    {"p95", snap.percentile(0.95)},
        {"p99", snap.percentile(0.99)}};
    for (const auto& [key, value] : fields) {
      out += ",\"";
      out += key;
      out += "\":";
      append_json_number(out, value);
    }
    out += '}';
  }
  out += "},\"tail_histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.tail_histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":{\"count\":" + std::to_string(snap.count);
    const std::pair<const char*, double> fields[] = {
        {"mean", snap.mean()},           {"min", snap.min},
        {"max", snap.max},               {"p50", snap.percentile(0.50)},
        {"p90", snap.percentile(0.90)},  {"p99", snap.percentile(0.99)},
        {"p999", snap.percentile(0.999)}};
    for (const auto& [key, value] : fields) {
      out += ",\"";
      out += key;
      out += "\":";
      append_json_number(out, value);
    }
    out += '}';
  }
  out += "}}";
  return out;
}

std::string run_metadata_json() {
#if defined(DIAGNET_GIT_SHA)
  const char* git_sha = DIAGNET_GIT_SHA;
#else
  const char* git_sha = "unknown";
#endif
#if defined(DIAGNET_BUILD_TYPE)
  const char* build_type = DIAGNET_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
#if defined(__unix__) || defined(__APPLE__)
  if (std::tm utc{}; gmtime_r(&now, &utc) != nullptr)
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
#else
  if (const std::tm* utc = std::gmtime(&now); utc != nullptr)
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", utc);
#endif
  std::string out = "\"timestamp\":\"";
  out += stamp;
  out += "\",\"git_sha\":\"";
  append_json_escaped(out, git_sha);
  out += "\",\"hardware_threads\":";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ",\"build_type\":\"";
  append_json_escaped(out, build_type);
  out += "\",\"cpu_features\":\"";
  append_json_escaped(out, tensor::cpu_features_string());
  out += "\",\"kernel_tier\":\"";
  append_json_escaped(out, tensor::active_kernel_tier_name());
  out += '"';
  return out;
}

bool write_metrics_file(const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << metrics_to_json() << '\n';
  return static_cast<bool>(file);
}

void configure_exit_report(const std::string& trace_path,
                           const std::string& metrics_path,
                           bool print_summary) {
  ExitReport& report = exit_report();
  std::lock_guard<std::mutex> lock(report.mu);
  report.trace_path = trace_path;
  report.metrics_path = metrics_path;
  report.print_summary = print_summary;
  if (!trace_path.empty() || !metrics_path.empty() || print_summary)
    set_enabled(true);
  if (!report.hook_installed) {
    report.hook_installed = true;
    std::atexit(run_exit_report);
  }
}

bool init_from_env() {
  const char* trace = std::getenv("DIAGNET_TRACE");
  const char* metrics = std::getenv("DIAGNET_METRICS");
  const char* telemetry = std::getenv("DIAGNET_TELEMETRY");
  const bool summary =
      telemetry != nullptr && std::string(telemetry) != "0" &&
      std::string(telemetry) != "";
  if ((trace && *trace) || (metrics && *metrics) || summary)
    configure_exit_report(trace ? trace : "", metrics ? metrics : "",
                          summary);
  const char* obs = std::getenv("DIAGNET_OBS");
  if (obs && std::string(obs) == "0") set_force_disabled(true);
  return enabled();
}

std::size_t peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace diagnet::obs
