// Report sinks for the telemetry registry: a human-readable summary table
// (rendered through util::Table so it matches the bench output style), a
// machine-readable metrics JSON, and the environment / exit-hook wiring the
// CLI and bench binaries share.
#pragma once

#include <string>

namespace diagnet::obs {

/// Render every counter, gauge and histogram currently in the registry as
/// banner + ASCII tables. Reservoir histograms report count / mean / p50 /
/// p95 / p99 / max / total; tail (log-linear) histograms report count /
/// mean / p50 / p90 / p99 / p999 / max.
std::string render_summary();

/// Same content as JSON:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count":..,"mean":..,"p50":..,...}, ...},
///    "tail_histograms": {"name": {"count":..,"p50":..,"p999":..}, ...}}
std::string metrics_to_json();

/// Run metadata shared by every BENCH_*.json emitter so perf trajectories
/// are comparable across machines and commits: a comma-joined fragment of
/// key:value pairs (no braces) —
///   "timestamp":"2026-08-08T12:00:00Z","git_sha":"abc1234",
///   "hardware_threads":8,"build_type":"Release"
/// git_sha/build_type come from compile definitions (DIAGNET_GIT_SHA,
/// DIAGNET_BUILD_TYPE, wired in src/obs/CMakeLists.txt), "unknown" when
/// absent; the timestamp is wall-clock UTC at call time.
std::string run_metadata_json();

/// metrics_to_json() straight to a file; returns false on I/O failure.
bool write_metrics_file(const std::string& path);

/// Exit-time behaviour, applied once at process exit (std::atexit):
///  * trace_path  != "" — write the Chrome trace JSON there,
///  * metrics_path != "" — write metrics_to_json() there,
///  * print_summary — print render_summary() to stdout.
/// Each call overwrites the previous configuration; enabling any sink also
/// turns telemetry on.
void configure_exit_report(const std::string& trace_path,
                           const std::string& metrics_path,
                           bool print_summary);

/// Honour the environment, intended as the first statement of main():
///  * DIAGNET_TRACE=<path>   — enable telemetry, write trace there at exit;
///  * DIAGNET_METRICS=<path> — enable telemetry, write metrics JSON there;
///  * DIAGNET_TELEMETRY=1    — enable telemetry, print the summary at exit;
///  * DIAGNET_OBS=0          — force-disable telemetry (wins over all).
/// Returns true when telemetry ended up enabled.
bool init_from_env();

/// Peak resident set size of this process in KiB (0 where unsupported).
std::size_t peak_rss_kib();

}  // namespace diagnet::obs
