// Umbrella header + instrumentation macros for the telemetry subsystem.
//
// Instrumented code uses ONLY these macros, never the classes directly, so
// a build with -DDIAGNET_OBS_DISABLE compiles every probe out entirely
// (macro arguments are not evaluated — keep them side-effect free). In a
// normal build the probes still cost only one relaxed atomic load while
// telemetry is off (the default); see telemetry.h for the runtime switch.
//
//   DIAGNET_SPAN("pipeline.train");          // RAII scope timer
//   DIAGNET_COUNT("diagnose.calls");         // counter += 1
//   DIAGNET_COUNT_N("agent.probes", sent);   // counter += n
//   DIAGNET_GAUGE_SET("trainer.best_val_loss", loss);
//   DIAGNET_OBSERVE("diagnose.latency_ms", ms);  // histogram sample
#pragma once

#include "obs/report.h"
#include "obs/telemetry.h"

#if defined(DIAGNET_OBS_DISABLE)

#define DIAGNET_SPAN(name) ((void)0)
#define DIAGNET_COUNT(name) ((void)0)
#define DIAGNET_COUNT_N(name, n) ((void)0)
#define DIAGNET_GAUGE_SET(name, value) ((void)0)
#define DIAGNET_OBSERVE(name, value) ((void)0)

#else

#define DIAGNET_OBS_CONCAT_INNER(a, b) a##b
#define DIAGNET_OBS_CONCAT(a, b) DIAGNET_OBS_CONCAT_INNER(a, b)

#define DIAGNET_SPAN(name) \
  ::diagnet::obs::Span DIAGNET_OBS_CONCAT(diagnet_obs_span_, __LINE__)(name)
#define DIAGNET_COUNT(name) ::diagnet::obs::count(name)
#define DIAGNET_COUNT_N(name, n) \
  ::diagnet::obs::count(name, static_cast<std::uint64_t>(n))
#define DIAGNET_GAUGE_SET(name, value) \
  ::diagnet::obs::gauge_set(name, static_cast<double>(value))
#define DIAGNET_OBSERVE(name, value) \
  ::diagnet::obs::observe(name, static_cast<double>(value))

#endif  // DIAGNET_OBS_DISABLE
