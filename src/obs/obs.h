// Umbrella header + instrumentation macros for the telemetry subsystem.
//
// Instrumented code uses ONLY these macros, never the classes directly, so
// a build with -DDIAGNET_OBS_DISABLE compiles every probe out entirely
// (macro arguments are not evaluated — keep them side-effect free). In a
// normal build the probes still cost only one relaxed atomic load while
// telemetry is off (the default); see telemetry.h for the runtime switch.
//
// Hot-path contract: `name` must be a string literal (one fixed name per
// call site). Each macro caches its metric pointer in a function-local
// static on first use, so steady-state recording is ONE atomic operation —
// the registry mutex and its linear name scan are paid once per call site,
// not once per event. Metric objects live for the process lifetime
// (Registry::reset_for_test zeroes values, never destroys entries), so the
// cached reference cannot dangle. For dynamic names, call the obs::count /
// observe / gauge_set helpers directly and pay the lookup.
//
//   DIAGNET_SPAN("pipeline.train");          // RAII scope timer
//   DIAGNET_COUNT("diagnose.calls");         // counter += 1
//   DIAGNET_COUNT_N("agent.probes", sent);   // counter += n
//   DIAGNET_GAUGE_SET("trainer.best_val_loss", loss);
//   DIAGNET_OBSERVE("diagnose.latency_ms", ms);  // reservoir histogram
//   DIAGNET_OBSERVE_TAIL("serve.latency_ms", ms);  // log-linear tails
#pragma once

#include "obs/report.h"
#include "obs/telemetry.h"

#if defined(DIAGNET_OBS_DISABLE)

#define DIAGNET_SPAN(name) ((void)0)
#define DIAGNET_COUNT(name) ((void)0)
#define DIAGNET_COUNT_N(name, n) ((void)0)
#define DIAGNET_GAUGE_SET(name, value) ((void)0)
#define DIAGNET_OBSERVE(name, value) ((void)0)
#define DIAGNET_OBSERVE_TAIL(name, value) ((void)0)

#else

#define DIAGNET_OBS_CONCAT_INNER(a, b) a##b
#define DIAGNET_OBS_CONCAT(a, b) DIAGNET_OBS_CONCAT_INNER(a, b)

// The span's "<name>.ms" histogram pointer is cached in the static
// SpanSite, so closing a span is a clock read + one histogram insert — no
// registry lookup, no string concatenation.
#define DIAGNET_SPAN(name)                                                \
  static ::diagnet::obs::SpanSite DIAGNET_OBS_CONCAT(diagnet_obs_site_,   \
                                                     __LINE__){name};     \
  ::diagnet::obs::Span DIAGNET_OBS_CONCAT(diagnet_obs_span_, __LINE__)(   \
      DIAGNET_OBS_CONCAT(diagnet_obs_site_, __LINE__))

#define DIAGNET_COUNT_N(name, n)                                          \
  do {                                                                    \
    if (::diagnet::obs::enabled()) {                                      \
      static ::diagnet::obs::Counter& diagnet_obs_metric =                \
          ::diagnet::obs::Registry::instance().counter(name);             \
      diagnet_obs_metric.add(static_cast<std::uint64_t>(n));              \
    }                                                                     \
  } while (0)
#define DIAGNET_COUNT(name) DIAGNET_COUNT_N(name, 1)

#define DIAGNET_GAUGE_SET(name, value)                                    \
  do {                                                                    \
    if (::diagnet::obs::enabled()) {                                      \
      static ::diagnet::obs::Gauge& diagnet_obs_metric =                  \
          ::diagnet::obs::Registry::instance().gauge(name);               \
      diagnet_obs_metric.set(static_cast<double>(value));                 \
    }                                                                     \
  } while (0)

#define DIAGNET_OBSERVE(name, value)                                      \
  do {                                                                    \
    if (::diagnet::obs::enabled()) {                                      \
      static ::diagnet::obs::Histogram& diagnet_obs_metric =              \
          ::diagnet::obs::Registry::instance().histogram(name);           \
      diagnet_obs_metric.observe(static_cast<double>(value));             \
    }                                                                     \
  } while (0)

#define DIAGNET_OBSERVE_TAIL(name, value)                                 \
  do {                                                                    \
    if (::diagnet::obs::enabled()) {                                      \
      static ::diagnet::obs::LogLinearHistogram& diagnet_obs_metric =     \
          ::diagnet::obs::Registry::instance().tail_histogram(name);      \
      diagnet_obs_metric.observe(static_cast<double>(value));             \
    }                                                                     \
  } while (0)

#endif  // DIAGNET_OBS_DISABLE
