#include "obs/loglin_histogram.h"

#include <algorithm>
#include <cmath>

namespace diagnet::obs {

namespace {

/// Relaxed CAS accumulate/min/max over atomic<double> (fetch_add on
/// floating atomics is C++20-library-optional; the CAS loop is portable
/// and the contention here is a handful of writer threads).
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t LogLinearHistogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN: underflow bucket
  int exp;                   // v = frac * 2^exp, frac in [0.5, 1)
  const double frac = std::frexp(v, &exp);
  const int e = exp - 1;  // v in [2^e, 2^(e+1))
  if (e < kMinExp2) return 0;
  if (e > kMaxExp2) return kBucketCount - 1;
  // frac in [0.5, 1) -> linear sub-bucket 0..63 within the major bucket.
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 +
         static_cast<std::size_t>(e - kMinExp2) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double LogLinearHistogram::bucket_midpoint(std::size_t index) {
  if (index == 0) return 0.0;  // "smaller than the resolvable range"
  if (index >= kBucketCount - 1)
    return std::ldexp(1.0, kMaxExp2 + 1);  // overflow: range top
  const std::size_t linear = index - 1;
  const int e = kMinExp2 + static_cast<int>(linear / kSubBuckets);
  const double sub = static_cast<double>(linear % kSubBuckets);
  // Midpoint of [2^e * (1 + sub/64), 2^e * (1 + (sub+1)/64)).
  return std::ldexp(1.0 + (sub + 0.5) / kSubBuckets, e);
}

void LogLinearHistogram::observe(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    atomic_add(sum_, v);
    atomic_min(min_, v);
    atomic_max(max_, v);
  }
}

LogLinearHistogram::Snapshot LogLinearHistogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  const double min = min_.load(std::memory_order_relaxed);
  const double max = max_.load(std::memory_order_relaxed);
  snap.min = std::isfinite(min) ? min : 0.0;
  snap.max = std::isfinite(max) ? max : 0.0;
  snap.buckets.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i)
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return snap;
}

void LogLinearHistogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double LogLinearHistogram::Snapshot::percentile(double q) const {
  if (buckets.empty()) return std::nan("");
  // Total from the buckets themselves: under concurrent writes `count`
  // can momentarily run ahead of the bucket array copy.
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) > rank)
      return std::clamp(bucket_midpoint(i), min, max);
  }
  return max;
}

void LogLinearHistogram::Snapshot::merge(const Snapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  if (buckets.empty()) buckets.resize(kBucketCount);
  for (std::size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i)
    buckets[i] += other.buckets[i];
}

}  // namespace diagnet::obs
