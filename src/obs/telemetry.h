// Telemetry core: a process-wide registry of named counters, gauges and
// histograms, plus RAII spans that feed both the histogram registry and a
// Chrome-trace-compatible event buffer.
//
// Design constraints (every later perf PR reports against this layer, so it
// must not distort what it measures):
//
//  * Near-zero cost when disabled. Telemetry is OFF by default; every
//    recording helper early-outs on one relaxed atomic load. Defining
//    DIAGNET_OBS_DISABLE (see obs.h) compiles the instrumentation macros
//    out entirely.
//  * Thread-safe. Counters/gauges are lock-free atomics; histograms take a
//    per-histogram mutex; trace events append to per-thread buffers that
//    only lock their own (uncontended) mutex.
//  * Deterministic names. Metrics use dotted lower-case paths
//    ("pipeline.train.wall_ms", "diagnose.latency_ms"); spans contribute a
//    histogram named "<span>.ms" automatically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/loglin_histogram.h"
#include "util/stats.h"

namespace diagnet::obs {

/// Runtime on/off switch (default off). Recording helpers and spans check
/// this first; toggling mid-run is safe (in-flight spans stay balanced).
bool enabled();
void set_enabled(bool on);

/// Sticky kill switch (DIAGNET_OBS=0): while forced off, set_enabled(true)
/// is a no-op, so a later --trace/--telemetry sink cannot re-enable
/// recording behind the user's back.
bool force_disabled();
void set_force_disabled(bool force);

/// Monotonically increasing event count (lock-free).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of observed values: exact running moments plus a bounded
/// sample reservoir for percentile queries.
class Histogram {
 public:
  /// Reservoir size; beyond this, observations replace a pseudo-random
  /// (deterministically seeded) slot so percentiles stay representative.
  static constexpr std::size_t kReservoirCap = 4096;

  void observe(double v);

  /// Point-in-time copy safe to read while other threads observe().
  struct Snapshot {
    util::RunningStats stats;
    std::vector<double> samples;  // unsorted reservoir

    double percentile(double q) const;  // NaN when empty
  };
  Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  util::RunningStats stats_;
  std::vector<double> samples_;
  std::uint64_t reservoir_state_ = 0x9e3779b97f4a7c15ULL;
};

/// One completed span, in the Chrome trace-event "X" (complete) phase.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // start, monotonic microseconds since process epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

/// Process-wide registry. Metric objects live for the process lifetime, so
/// references returned here never dangle (reset_for_test zeroes values, it
/// does not destroy entries).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Tail (log-linear) histogram family: exact p999 over unbounded
  /// streams, lock-free recording — all `serve.*` latency metrics live
  /// here (see loglin_histogram.h for when to use which family).
  LogLinearHistogram& tail_histogram(const std::string& name);

  /// Sorted-by-name snapshots for the report sinks.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms() const;
  std::vector<std::pair<std::string, LogLinearHistogram::Snapshot>>
  tail_histograms() const;

  /// Zero every metric and drop buffered trace events (test isolation).
  void reset_for_test();

 private:
  Registry() = default;
  template <typename T>
  T& lookup(std::vector<std::pair<std::string, std::unique_ptr<T>>>& entries,
            const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
  std::vector<std::pair<std::string, std::unique_ptr<LogLinearHistogram>>>
      tail_histograms_;
};

/// Convenience recording helpers; all no-ops while disabled. These take
/// the registry mutex for a linear name scan on every call — fine for
/// dynamic names, but instrumented call sites with literal names should
/// go through the obs.h macros, which cache the metric pointer in a
/// function-local static so steady-state recording is one atomic op.
void count(const char* name, std::uint64_t delta = 1);
void gauge_set(const char* name, double value);
void observe(const char* name, double value);
void observe_tail(const char* name, double value);

/// One instrumented span call site (created as a function-local static by
/// DIAGNET_SPAN): caches the "<name>.ms" histogram pointer after the
/// first recording so the span hot path never re-does the registry
/// lookup + string concatenation. Metric objects live for the process
/// lifetime (reset_for_test zeroes, never destroys), so the cached
/// pointer cannot dangle.
struct SpanSite {
  explicit SpanSite(const char* span_name) : name(span_name) {}
  const char* name;
  std::atomic<Histogram*> histogram{nullptr};
};

/// Scoped timer. On destruction (if telemetry was enabled at construction)
/// it appends a trace event and observes "<name>.ms" in the registry.
/// Nesting is expressed through event containment per thread, which is how
/// Perfetto / chrome://tracing reconstruct the stack.
class Span {
 public:
  explicit Span(const char* name);
  explicit Span(SpanSite& site);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  SpanSite* site_;  // nullptr for uncached (dynamic-name) spans
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

/// All trace events recorded so far (flushes every live thread's buffer).
std::vector<TraceEvent> collect_trace_events();

/// Serialise the buffered events as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}) loadable by Perfetto / chrome://tracing.
std::string trace_to_json();

/// trace_to_json() straight to a file; returns false on I/O failure.
bool write_trace_file(const std::string& path);

/// Append `s` to `out` as the body of a JSON string (escapes quotes,
/// backslashes and control characters). Shared by every JSON sink so
/// arbitrary metric/span names stay well-formed.
void append_json_escaped(std::string& out, const std::string& s);

}  // namespace diagnet::obs
