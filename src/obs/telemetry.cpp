#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace diagnet::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_force_disabled{false};

/// Monotonic process epoch shared by every span so trace timestamps align.
std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

double us_since_epoch(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - process_epoch())
      .count();
}

/// Global cap on buffered trace events — a runaway campaign must not OOM
/// the process it is observing.
constexpr std::size_t kMaxTraceEvents = 1u << 22;  // ~4M events
std::atomic<std::size_t> g_trace_events{0};

/// Per-thread trace buffer. Each buffer has its own mutex so a collecting
/// thread can read buffers of still-live threads; the owning thread's
/// appends stay effectively uncontended.
struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceBufferList {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

TraceBufferList& trace_buffers() {
  static auto* list = new TraceBufferList();  // leaked: outlives all threads
  return *list;
}

ThreadTraceBuffer& local_trace_buffer() {
  // shared_ptr keeps the buffer alive in the global list after thread exit
  // so events from short-lived workers still reach the export.
  thread_local std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto b = std::make_shared<ThreadTraceBuffer>();
    TraceBufferList& list = trace_buffers();
    std::lock_guard<std::mutex> lock(list.mu);
    b->tid = list.next_tid++;
    list.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

std::string fmt_us(double v) {
  // Fixed 3-decimal microseconds keeps files compact and locale-free.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  g_enabled.store(on && !g_force_disabled.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

bool force_disabled() {
  return g_force_disabled.load(std::memory_order_relaxed);
}
void set_force_disabled(bool force) {
  g_force_disabled.store(force, std::memory_order_relaxed);
  if (force) g_enabled.store(false, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.add(v);
  if (samples_.size() < kReservoirCap) {
    samples_.push_back(v);
    return;
  }
  // splitmix64 step: deterministic reservoir replacement.
  reservoir_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = reservoir_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  if (const std::uint64_t slot = z % stats_.count(); slot < kReservoirCap)
    samples_[static_cast<std::size_t>(slot)] = v;
}

double Histogram::Snapshot::percentile(double q) const {
  if (samples.empty()) return std::nan("");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  return util::percentile_sorted(sorted, q);
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.stats = stats_;
  snap.samples = samples_;
  return snap;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = util::RunningStats();
  samples_.clear();
}

Registry& Registry::instance() {
  static auto* registry = new Registry();  // leaked: usable during atexit
  return *registry;
}

template <typename T>
T& Registry::lookup(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>& entries,
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [entry_name, metric] : entries)
    if (entry_name == name) return *metric;
  entries.emplace_back(name, std::make_unique<T>());
  return *entries.back().second;
}

Counter& Registry::counter(const std::string& name) {
  return lookup(counters_, name);
}
Gauge& Registry::gauge(const std::string& name) {
  return lookup(gauges_, name);
}
Histogram& Registry::histogram(const std::string& name) {
  return lookup(histograms_, name);
}
LogLinearHistogram& Registry::tail_histogram(const std::string& name) {
  return lookup(tail_histograms_, name);
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, metric] : counters_)
    out.emplace_back(name, metric->value());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::vector<std::pair<std::string, double>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, metric] : gauges_)
    out.emplace_back(name, metric->value());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>> Registry::histograms()
    const {
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, metric] : histograms_)
      out.emplace_back(name, metric->snapshot());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<std::string, LogLinearHistogram::Snapshot>>
Registry::tail_histograms() const {
  std::vector<std::pair<std::string, LogLinearHistogram::Snapshot>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, metric] : tail_histograms_)
      out.emplace_back(name, metric->snapshot());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Registry::reset_for_test() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, metric] : counters_) metric->reset();
    for (auto& [name, metric] : gauges_) metric->set(0.0);
    for (auto& [name, metric] : histograms_) metric->reset();
    for (auto& [name, metric] : tail_histograms_) metric->reset();
  }
  TraceBufferList& list = trace_buffers();
  std::lock_guard<std::mutex> lock(list.mu);
  for (auto& buffer : list.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  g_trace_events.store(0, std::memory_order_relaxed);
}

void count(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  Registry::instance().counter(name).add(delta);
}

void gauge_set(const char* name, double value) {
  if (!enabled()) return;
  Registry::instance().gauge(name).set(value);
}

void observe(const char* name, double value) {
  if (!enabled()) return;
  Registry::instance().histogram(name).observe(value);
}

void observe_tail(const char* name, double value) {
  if (!enabled()) return;
  Registry::instance().tail_histogram(name).observe(value);
}

Span::Span(const char* name)
    : name_(name), site_(nullptr), active_(enabled()) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

Span::Span(SpanSite& site)
    : name_(site.name), site_(&site), active_(enabled()) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  const double dur_us =
      std::chrono::duration<double, std::micro>(end - start_).count();
  Histogram* histogram =
      site_ != nullptr ? site_->histogram.load(std::memory_order_acquire)
                       : nullptr;
  if (histogram == nullptr) {
    histogram = &Registry::instance().histogram(std::string(name_) + ".ms");
    if (site_ != nullptr)
      site_->histogram.store(histogram, std::memory_order_release);
  }
  histogram->observe(dur_us / 1000.0);
  if (g_trace_events.fetch_add(1, std::memory_order_relaxed) >=
      kMaxTraceEvents)
    return;
  ThreadTraceBuffer& buffer = local_trace_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      {name_, us_since_epoch(start_), dur_us, buffer.tid});
}

std::vector<TraceEvent> collect_trace_events() {
  std::vector<TraceEvent> out;
  TraceBufferList& list = trace_buffers();
  std::lock_guard<std::mutex> lock(list.mu);
  for (auto& buffer : list.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.dur_us > b.dur_us;
  });
  return out;
}

std::string trace_to_json() {
  const std::vector<TraceEvent> events = collect_trace_events();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, event.name);
    out += "\",\"cat\":\"diagnet\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":";
    out += fmt_us(event.ts_us);
    out += ",\"dur\":";
    out += fmt_us(event.dur_us);
    out += '}';
  }
  out += "]}";
  return out;
}

bool write_trace_file(const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << trace_to_json() << '\n';
  return static_cast<bool>(file);
}

}  // namespace diagnet::obs
