// Landmark-fleet management (paper §II-D): "Many factors can alter the
// availability of these landmarks (failures, maintenance or saturated
// capacity). Conversely, if the system contains a very high number of
// landmarks, individual clients cannot be expected to probe every landmark."
//
// LandmarkFleet models the availability of each landmark over the campaign
// horizon (periodic maintenance windows plus random failures), and
// ProbeScheduler picks which of the available landmarks a given client
// probes under a probe budget. Both feed the availability masks that
// DiagNet's LandPooling consumes — no retraining is ever involved.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/topology.h"
#include "util/rng.h"

namespace diagnet::fleet {

struct FleetConfig {
  /// Poisson rate of unplanned outages, per landmark per day.
  double failures_per_day = 0.05;
  /// Outage durations are exponential with this mean.
  double mean_outage_hours = 4.0;
  /// Periodic maintenance: every `maintenance_period_days`, each landmark
  /// goes down for `maintenance_hours` (phase randomised per landmark).
  double maintenance_period_days = 7.0;
  double maintenance_hours = 2.0;
  /// Availability horizon that outages are materialised for.
  double horizon_hours = 24.0 * 28.0;
  std::uint64_t seed = 1;
};

class LandmarkFleet {
 public:
  LandmarkFleet(std::size_t landmark_count, const FleetConfig& config);

  std::size_t landmark_count() const { return up_intervals_.size(); }

  /// Whether a landmark is reachable at the given time.
  bool available(std::size_t landmark, double time_hours) const;

  /// Availability mask over the whole fleet.
  std::vector<bool> availability(double time_hours) const;

  std::size_t available_count(double time_hours) const;

  /// Total downtime of one landmark across the horizon (for tests/reports).
  double downtime_hours(std::size_t landmark) const;

 private:
  // Sorted, merged outage intervals [start, end) per landmark.
  std::vector<std::vector<std::pair<double, double>>> up_intervals_;
  double horizon_hours_;
};

/// How a client selects the landmarks it probes.
enum class ProbeStrategy {
  RandomK,   // uniform among available landmarks
  NearestK,  // lowest base RTT from the client's region
  SpreadK,   // half nearest (fault locality), half random (coverage)
};

const char* probe_strategy_name(ProbeStrategy strategy);

struct ProbeBudget {
  std::size_t max_probes = 10;
  ProbeStrategy strategy = ProbeStrategy::SpreadK;
};

class ProbeScheduler {
 public:
  ProbeScheduler(const netsim::Topology& topology, ProbeBudget budget,
                 std::uint64_t seed = 1);

  /// Landmarks the client probes this epoch: a subset of `available` of
  /// size <= budget. Deterministic in (client_id, epoch).
  std::vector<bool> select(std::size_t client_region,
                           const std::vector<bool>& available,
                           std::uint64_t client_id,
                           std::uint64_t epoch) const;

  const ProbeBudget& budget() const { return budget_; }

 private:
  const netsim::Topology* topology_;
  ProbeBudget budget_;
  util::Rng root_;
};

}  // namespace diagnet::fleet
