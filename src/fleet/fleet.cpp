#include "fleet/fleet.h"

#include <algorithm>
#include <numeric>

#include "util/require.h"

namespace diagnet::fleet {

LandmarkFleet::LandmarkFleet(std::size_t landmark_count,
                             const FleetConfig& config)
    : horizon_hours_(config.horizon_hours) {
  DIAGNET_REQUIRE(landmark_count > 0);
  DIAGNET_REQUIRE(config.horizon_hours > 0.0);
  up_intervals_.resize(landmark_count);

  const util::Rng root(config.seed);
  for (std::size_t lam = 0; lam < landmark_count; ++lam) {
    util::Rng rng = root.fork(lam);
    std::vector<std::pair<double, double>> outages;

    // Periodic maintenance with a per-landmark phase.
    if (config.maintenance_hours > 0.0 &&
        config.maintenance_period_days > 0.0) {
      const double period = config.maintenance_period_days * 24.0;
      double start = rng.uniform(0.0, period);
      while (start < horizon_hours_) {
        outages.emplace_back(start, start + config.maintenance_hours);
        start += period;
      }
    }

    // Unplanned failures: Poisson arrivals, exponential repair times.
    if (config.failures_per_day > 0.0) {
      const double rate_per_hour = config.failures_per_day / 24.0;
      double t = rng.exponential(rate_per_hour);
      while (t < horizon_hours_) {
        const double repair =
            rng.exponential(1.0 / std::max(0.01, config.mean_outage_hours));
        outages.emplace_back(t, t + repair);
        t += repair + rng.exponential(rate_per_hour);
      }
    }

    // Merge overlapping outages so queries are a single binary search.
    std::sort(outages.begin(), outages.end());
    std::vector<std::pair<double, double>> merged;
    for (const auto& outage : outages) {
      if (!merged.empty() && outage.first <= merged.back().second)
        merged.back().second = std::max(merged.back().second, outage.second);
      else
        merged.push_back(outage);
    }
    up_intervals_[lam] = std::move(merged);
  }
}

bool LandmarkFleet::available(std::size_t landmark, double time_hours) const {
  DIAGNET_REQUIRE(landmark < up_intervals_.size());
  const auto& outages = up_intervals_[landmark];
  // First outage starting after t; the previous one is the only candidate
  // that can cover t.
  auto it = std::upper_bound(
      outages.begin(), outages.end(), time_hours,
      [](double t, const auto& interval) { return t < interval.first; });
  if (it == outages.begin()) return true;
  --it;
  return time_hours >= it->second;
}

std::vector<bool> LandmarkFleet::availability(double time_hours) const {
  std::vector<bool> mask(landmark_count());
  for (std::size_t lam = 0; lam < mask.size(); ++lam)
    mask[lam] = available(lam, time_hours);
  return mask;
}

std::size_t LandmarkFleet::available_count(double time_hours) const {
  std::size_t n = 0;
  for (std::size_t lam = 0; lam < landmark_count(); ++lam)
    n += available(lam, time_hours) ? 1 : 0;
  return n;
}

double LandmarkFleet::downtime_hours(std::size_t landmark) const {
  DIAGNET_REQUIRE(landmark < up_intervals_.size());
  double total = 0.0;
  for (const auto& [start, end] : up_intervals_[landmark])
    total += std::min(end, horizon_hours_) - std::min(start, horizon_hours_);
  return total;
}

const char* probe_strategy_name(ProbeStrategy strategy) {
  switch (strategy) {
    case ProbeStrategy::RandomK: return "random-k";
    case ProbeStrategy::NearestK: return "nearest-k";
    case ProbeStrategy::SpreadK: return "spread-k";
  }
  return "?";
}

ProbeScheduler::ProbeScheduler(const netsim::Topology& topology,
                               ProbeBudget budget, std::uint64_t seed)
    : topology_(&topology), budget_(budget), root_(seed) {
  DIAGNET_REQUIRE(budget.max_probes > 0);
}

std::vector<bool> ProbeScheduler::select(std::size_t client_region,
                                         const std::vector<bool>& available,
                                         std::uint64_t client_id,
                                         std::uint64_t epoch) const {
  DIAGNET_REQUIRE(available.size() == topology_->region_count());
  DIAGNET_REQUIRE(client_region < topology_->region_count());

  std::vector<std::size_t> candidates;
  for (std::size_t lam = 0; lam < available.size(); ++lam)
    if (available[lam]) candidates.push_back(lam);
  DIAGNET_REQUIRE_MSG(!candidates.empty(), "no landmark available");

  std::vector<bool> selected(available.size(), false);
  if (candidates.size() <= budget_.max_probes) {
    for (std::size_t lam : candidates) selected[lam] = true;
    return selected;
  }

  util::Rng rng = root_.fork(client_id * 1000003ULL + epoch);
  const auto by_rtt = [&](std::size_t a, std::size_t b) {
    return topology_->base_rtt_ms(client_region, a) <
           topology_->base_rtt_ms(client_region, b);
  };

  switch (budget_.strategy) {
    case ProbeStrategy::RandomK: {
      const auto picks = rng.sample_without_replacement(
          candidates.size(), budget_.max_probes);
      for (std::size_t p : picks) selected[candidates[p]] = true;
      break;
    }
    case ProbeStrategy::NearestK: {
      std::sort(candidates.begin(), candidates.end(), by_rtt);
      for (std::size_t i = 0; i < budget_.max_probes; ++i)
        selected[candidates[i]] = true;
      break;
    }
    case ProbeStrategy::SpreadK: {
      // Half the budget on the nearest landmarks (fault locality), the
      // rest uniformly over the remainder (global coverage).
      std::sort(candidates.begin(), candidates.end(), by_rtt);
      const std::size_t near = (budget_.max_probes + 1) / 2;
      for (std::size_t i = 0; i < near; ++i) selected[candidates[i]] = true;
      std::vector<std::size_t> rest(candidates.begin() + near,
                                    candidates.end());
      const auto picks = rng.sample_without_replacement(
          rest.size(), budget_.max_probes - near);
      for (std::size_t p : picks) selected[rest[p]] = true;
      break;
    }
  }
  return selected;
}

}  // namespace diagnet::fleet
