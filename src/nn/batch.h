// Input batch for the coarse network: landmark features + availability mask
// + local (landmark-independent) features. Rows across the three matrices
// refer to the same samples.
#pragma once

#include "tensor/matrix.h"

namespace diagnet::nn {

struct LandBatch {
  tensor::Matrix land;   // (B, L·k), landmark-major
  tensor::Matrix mask;   // (B, L), 1.0 = available
  tensor::Matrix local;  // (B, n_local)

  std::size_t size() const { return land.rows(); }
};

}  // namespace diagnet::nn
