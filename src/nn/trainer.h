// Mini-batch trainer for the coarse network, with validation-based early
// stopping ("we consider that the training is done when the validation loss
// is no longer decreasing", paper §IV-F) and per-epoch loss capture used to
// regenerate Fig. 9.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "nn/batch.h"
#include "nn/coarse_net.h"
#include "nn/sgd.h"

namespace diagnet::nn {

/// Flat training set: row i of each matrix plus labels[i] form one sample.
struct CoarseDataset {
  Matrix land;
  Matrix mask;
  Matrix local;
  std::vector<std::size_t> labels;  // coarse fault-family index in [0, c)

  std::size_t size() const { return labels.size(); }
  /// Gather the given rows into a contiguous batch.
  LandBatch gather(const std::vector<std::size_t>& rows) const;
  std::vector<std::size_t> gather_labels(
      const std::vector<std::size_t>& rows) const;
  /// Allocation-free variants: gather `n` rows into reused buffers
  /// (capacity-aware resize) — the steady-state training path.
  void gather(const std::size_t* rows, std::size_t n, LandBatch& out) const;
  void gather_labels(const std::size_t* rows, std::size_t n,
                     std::vector<std::size_t>& out) const;
};

struct TrainerConfig {
  std::size_t batch_size = 64;
  std::size_t max_epochs = 60;
  /// Stop after this many consecutive epochs without a new best validation
  /// loss (see EarlyStopper for the exact plateau semantics).
  std::size_t patience = 5;
  /// An epoch only counts as an improvement when it beats the best
  /// validation loss by more than this margin ("the training is done when
  /// the validation loss is no longer decreasing", §IV-F).
  double min_delta = 0.0;
  /// Fraction of the training set held out for validation.
  double validation_fraction = 0.1;
  /// Global-norm gradient clipping: when the L2 norm of the whole
  /// minibatch gradient exceeds this, every gradient is scaled down to it
  /// before the optimizer step (0 disables). Balanced campaigns never get
  /// near the default — their step norms stay under ~25 — so this leaves
  /// healthy trajectories untouched. It exists for heavily imbalanced
  /// campaigns (client-mode streaming runs are >99% nominal), where
  /// momentum-aligned one-class gradients can otherwise drive the logits
  /// into a self-reinforcing exponential blow-up: gradient magnitude
  /// scales with the weights, so one oversized kick compounds to inf/NaN
  /// within a few hundred steps. Clipping is applied after the
  /// deterministic ascending-shard reduce, in fixed parameter order, so
  /// the trajectory stays bit-identical for every thread count.
  double clip_norm = 100.0;
  SgdConfig sgd;
  std::uint64_t seed = 1;
  /// Restore the parameters of the best validation epoch on completion.
  bool restore_best = true;
  /// Worker threads for minibatch sharding: 0 = the process-wide pool
  /// (sized to the machine), 1 = serial on the caller, N = a dedicated
  /// N-thread pool. The training trajectory is BIT-IDENTICAL for every
  /// value: each minibatch is cut into fixed 16-row shards (a partition
  /// that depends only on the batch, never on the worker count), each
  /// shard's gradients go to its own accumulator, and shard results are
  /// reduced in ascending shard order.
  std::size_t threads = 0;
};

/// Early-stopping state machine ("the training is done when the validation
/// loss is no longer decreasing", §IV-F). An epoch is an improvement only
/// when it beats the best validation loss seen so far by more than
/// min_delta; every other epoch — including one whose loss exactly equals
/// the best when min_delta is 0 — is stale. A run of `patience` consecutive
/// stale epochs triggers the stop. (The previous inline logic required
/// patience + 1 stale epochs, so a perfectly flat plateau overran the
/// configured patience by one epoch.)
class EarlyStopper {
 public:
  EarlyStopper(double min_delta, std::size_t patience)
      : min_delta_(min_delta), patience_(patience) {}

  /// Record one epoch's validation loss. Returns true when training should
  /// stop after this epoch.
  bool update(double val_loss) {
    if (val_loss < best_ - min_delta_) {
      best_ = val_loss;
      stale_ = 0;
      improved_ = true;
      return false;
    }
    improved_ = false;
    return ++stale_ >= patience_;
  }

  /// Whether the most recent update() was a new best.
  bool improved() const { return improved_; }
  double best() const { return best_; }
  std::size_t stale() const { return stale_; }

 private:
  double min_delta_;
  std::size_t patience_;
  double best_ = std::numeric_limits<double>::infinity();
  std::size_t stale_ = 0;
  bool improved_ = false;
};

struct EpochStats {
  double train_loss = 0.0;
  double validation_loss = 0.0;
};

struct TrainingHistory {
  std::vector<EpochStats> epochs;
  std::size_t best_epoch = 0;    // index into `epochs`
  double wall_seconds = 0.0;

  std::size_t epochs_run() const { return epochs.size(); }
};

/// Train `net` on `data`. Shuffling, the train/validation split, and batch
/// order derive from config.seed only.
TrainingHistory train_coarse(CoarseNet& net, const CoarseDataset& data,
                             const TrainerConfig& config);

/// Mean softmax cross-entropy of `net` over a dataset (no gradient).
double evaluate_loss(CoarseNet& net, const CoarseDataset& data,
                     std::size_t batch_size = 256);

}  // namespace diagnet::nn
