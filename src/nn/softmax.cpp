#include "nn/softmax.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace diagnet::nn {

Matrix softmax(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double* row = out.row_ptr(r);
    const double mx = *std::max_element(row, row + out.cols());
    double sum = 0.0;
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] /= sum;
  }
  return out;
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::size_t>& labels,
                             Matrix* grad) {
  DIAGNET_REQUIRE(labels.size() == logits.rows());
  const Matrix probs = softmax(logits);
  const double inv_b = 1.0 / static_cast<double>(logits.rows());
  double loss = 0.0;
  if (grad) *grad = probs;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    DIAGNET_REQUIRE(labels[r] < logits.cols());
    // Clamp avoids -inf on (pathological) zero probability.
    loss -= std::log(std::max(probs(r, labels[r]), 1e-300));
    if (grad) {
      (*grad)(r, labels[r]) -= 1.0;
      double* row = grad->row_ptr(r);
      for (std::size_t c = 0; c < grad->cols(); ++c) row[c] *= inv_b;
    }
  }
  return loss * inv_b;
}

Matrix ideal_label_grad(const Matrix& logits_row, std::size_t target) {
  DIAGNET_REQUIRE(logits_row.rows() == 1 && target < logits_row.cols());
  Matrix g = softmax(logits_row);
  g(0, target) -= 1.0;
  return g;
}

Matrix ideal_label_grads(const Matrix& logits,
                         const std::vector<std::size_t>& targets) {
  DIAGNET_REQUIRE(targets.size() == logits.rows());
  Matrix g = softmax(logits);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    DIAGNET_REQUIRE(targets[r] < g.cols());
    g(r, targets[r]) -= 1.0;
  }
  return g;
}

}  // namespace diagnet::nn
