#include "nn/softmax.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/require.h"

namespace diagnet::nn {

Matrix softmax(const Matrix& logits) {
  Matrix out = logits;
  // Dispatched max/divide; both are exact under any evaluation order, so
  // softmax produces identical bits on every kernel tier (the sum of
  // exponentials stays sequential on purpose).
  const tensor::detail::Kernels& K = tensor::detail::active_kernels();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double* row = out.row_ptr(r);
    const double mx = K.reduce_max(row, out.cols());
    double sum = 0.0;
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    K.scale_div(row, sum, out.cols());
  }
  return out;
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::size_t>& labels,
                             Matrix* grad) {
  DIAGNET_REQUIRE(labels.size() == logits.rows());
  const Matrix probs = softmax(logits);
  const double inv_b = 1.0 / static_cast<double>(logits.rows());
  double loss = 0.0;
  if (grad) *grad = probs;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    DIAGNET_REQUIRE(labels[r] < logits.cols());
    // Clamp avoids -inf on (pathological) zero probability.
    loss -= std::log(std::max(probs(r, labels[r]), 1e-300));
    if (grad) {
      (*grad)(r, labels[r]) -= 1.0;
      double* row = grad->row_ptr(r);
      for (std::size_t c = 0; c < grad->cols(); ++c) row[c] *= inv_b;
    }
  }
  return loss * inv_b;
}

double softmax_cross_entropy_sum(const Matrix& logits,
                                 const std::size_t* labels, std::size_t n,
                                 Matrix* grad, double grad_scale) {
  DIAGNET_REQUIRE(n == logits.rows());
  if (grad) grad->resize(logits.rows(), logits.cols());
  const std::size_t c = logits.cols();
  const tensor::detail::Kernels& K = tensor::detail::active_kernels();
  double loss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    DIAGNET_REQUIRE(labels[r] < c);
    const double* in = logits.row_ptr(r);
    const double mx = K.reduce_max(in, c);
    // One pass computes the exponentials (into the grad row when wanted)
    // and their sum; no per-row heap temporary.
    double sum = 0.0;
    if (grad) {
      double* out = grad->row_ptr(r);
      for (std::size_t j = 0; j < c; ++j) {
        out[j] = std::exp(in[j] - mx);
        sum += out[j];
      }
      const double inv = 1.0 / sum;
      loss -= std::log(std::max(out[labels[r]] * inv, 1e-300));
      for (std::size_t j = 0; j < c; ++j) out[j] *= inv;
      out[labels[r]] -= 1.0;
      for (std::size_t j = 0; j < c; ++j) out[j] *= grad_scale;
    } else {
      double p_label = 0.0;
      for (std::size_t j = 0; j < c; ++j) {
        const double e = std::exp(in[j] - mx);
        sum += e;
        if (j == labels[r]) p_label = e;
      }
      loss -= std::log(std::max(p_label / sum, 1e-300));
    }
  }
  return loss;
}

Matrix ideal_label_grad(const Matrix& logits_row, std::size_t target) {
  DIAGNET_REQUIRE(logits_row.rows() == 1 && target < logits_row.cols());
  Matrix g = softmax(logits_row);
  g(0, target) -= 1.0;
  return g;
}

Matrix ideal_label_grads(const Matrix& logits,
                         const std::vector<std::size_t>& targets) {
  DIAGNET_REQUIRE(targets.size() == logits.rows());
  Matrix g = softmax(logits);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    DIAGNET_REQUIRE(targets[r] < g.cols());
    g(r, targets[r]) -= 1.0;
  }
  return g;
}

}  // namespace diagnet::nn
