#include "nn/coarse_net.h"

#include <algorithm>
#include <utility>

#include "util/require.h"

namespace diagnet::nn {

namespace {

/// In-place ReLU. Gating backward on the post-activation (x > 0) is exactly
/// equivalent to gating on the pre-activation, so no pre-ReLU copy is kept.
void relu_inplace(Matrix& m) {
  double* p = m.data();
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; ++i)
    if (p[i] < 0.0) p[i] = 0.0;
}

/// Zero grad entries whose post-activation is <= 0 (the ReLU gate).
void relu_gate_inplace(const Matrix& post, Matrix& grad) {
  DIAGNET_REQUIRE(post.same_shape(grad));
  const double* a = post.data();
  double* g = grad.data();
  const std::size_t n = grad.size();
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] <= 0.0) g[i] = 0.0;
}

}  // namespace

CoarseNet::CoarseNet(const CoarseNetConfig& config, util::Rng& rng)
    : config_(config),
      pool_(config.features_per_landmark, config.filters, config.pool_ops,
            rng) {
  DIAGNET_REQUIRE(config.classes >= 2);
  local_offset_ = pool_.out_features();
  std::size_t in = pool_.out_features() + config.local_features;
  for (std::size_t h : config.hidden) {
    fc_.emplace_back(in, h, rng);
    relu_.emplace_back();
    in = h;
  }
  fc_.emplace_back(in, config.classes, rng);
}

Matrix CoarseNet::forward(const LandBatch& batch) {
  DIAGNET_REQUIRE(batch.local.cols() == config_.local_features);
  DIAGNET_REQUIRE(batch.local.rows() == batch.land.rows());

  const Matrix pooled = pool_.forward(batch.land, batch.mask);

  // Concatenate pooled landmark representation with local features.
  Matrix x(batch.size(), pooled.cols() + batch.local.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double* row = x.row_ptr(r);
    std::copy(pooled.row_ptr(r), pooled.row_ptr(r) + pooled.cols(), row);
    std::copy(batch.local.row_ptr(r),
              batch.local.row_ptr(r) + batch.local.cols(),
              row + local_offset_);
  }

  for (std::size_t i = 0; i < relu_.size(); ++i) {
    x = fc_[i].forward(x);
    x = relu_[i].forward(x);
  }
  return fc_.back().forward(x);
}

void CoarseNet::init_workspace(CoarseWorkspace& ws) const {
  const auto params = const_cast<CoarseNet*>(this)->parameters();
  ws.param_grads.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    ws.param_grads[i].resize_zero(params[i]->value.rows(),
                                  params[i]->value.cols());
  ws.act.resize(relu_.size());
}

const Matrix& CoarseNet::forward(const LandBatch& batch,
                                 CoarseWorkspace& ws) const {
  DIAGNET_REQUIRE(batch.local.cols() == config_.local_features);
  DIAGNET_REQUIRE(batch.local.rows() == batch.land.rows());
  ws.act.resize(relu_.size());  // no-op once sized

  pool_.forward(batch.land, batch.mask, ws.pool, ws.pooled);

  ws.concat.resize(batch.size(), local_offset_ + config_.local_features);
  for (std::size_t r = 0; r < ws.concat.rows(); ++r) {
    double* row = ws.concat.row_ptr(r);
    std::copy(ws.pooled.row_ptr(r), ws.pooled.row_ptr(r) + ws.pooled.cols(),
              row);
    std::copy(batch.local.row_ptr(r),
              batch.local.row_ptr(r) + batch.local.cols(),
              row + local_offset_);
  }

  const Matrix* x = &ws.concat;
  for (std::size_t i = 0; i < relu_.size(); ++i) {
    fc_[i].forward_into(*x, ws.act[i]);
    relu_inplace(ws.act[i]);
    x = &ws.act[i];
  }
  fc_.back().forward_into(*x, ws.logits);
  return ws.logits;
}

void CoarseNet::backward(const Matrix& grad_logits,
                         CoarseWorkspace& ws) const {
  // ws.param_grads order matches parameters(): pooling kernel and bias
  // first, then (weight, bias) per fully-connected layer.
  const auto fc_grad = [&](std::size_t layer) -> std::pair<Matrix&, Matrix&> {
    return {ws.param_grads[2 + 2 * layer], ws.param_grads[3 + 2 * layer]};
  };

  const std::size_t last = fc_.size() - 1;
  const Matrix& last_in = relu_.empty() ? ws.concat : ws.act.back();
  auto [lw, lb] = fc_grad(last);
  fc_[last].backward_into(last_in, grad_logits, lw, lb, &ws.grad_a);

  for (std::size_t i = relu_.size(); i-- > 0;) {
    relu_gate_inplace(ws.act[i], ws.grad_a);
    const Matrix& in = i == 0 ? ws.concat : ws.act[i - 1];
    auto [w, b] = fc_grad(i);
    fc_[i].backward_into(in, ws.grad_a, w, b, &ws.grad_b);
    std::swap(ws.grad_a, ws.grad_b);
  }

  // Split the concat gradient: only the pooled part is needed — the local
  // features are network inputs whose gradient training never uses.
  ws.grad_pooled.resize(ws.grad_a.rows(), local_offset_);
  for (std::size_t r = 0; r < ws.grad_a.rows(); ++r) {
    const double* row = ws.grad_a.row_ptr(r);
    std::copy(row, row + local_offset_, ws.grad_pooled.row_ptr(r));
  }
  pool_.backward_params(ws.grad_pooled, ws.pool, ws.param_grads[0],
                        ws.param_grads[1]);
}

void CoarseNet::backward(const Matrix& grad_logits, Matrix* grad_land,
                         Matrix* grad_local) {
  Matrix g = fc_.back().backward(grad_logits);
  for (std::size_t i = relu_.size(); i-- > 0;) {
    g = relu_[i].backward(g);
    g = fc_[i].backward(g);
  }

  // Split the concat gradient back into (pooled, local) parts.
  Matrix grad_pooled(g.rows(), local_offset_);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    const double* row = g.row_ptr(r);
    std::copy(row, row + local_offset_, grad_pooled.row_ptr(r));
  }
  if (grad_local) {
    *grad_local = Matrix(g.rows(), config_.local_features);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      const double* row = g.row_ptr(r) + local_offset_;
      std::copy(row, row + config_.local_features, grad_local->row_ptr(r));
    }
  }

  // LandPooling backward also accumulates kernel/bias gradients; it must run
  // even when the caller discards the input gradient.
  Matrix dland = pool_.backward(grad_pooled);
  if (grad_land) *grad_land = std::move(dland);
}

void CoarseNet::backward_inputs(const Matrix& grad_logits, Matrix* grad_land,
                                Matrix* grad_local) {
  Matrix g = fc_.back().backward_input(grad_logits);
  for (std::size_t i = relu_.size(); i-- > 0;) {
    g = relu_[i].backward(g);
    g = fc_[i].backward_input(g);
  }

  // Split the concat gradient back into (pooled, local) parts.
  Matrix grad_pooled(g.rows(), local_offset_);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    const double* row = g.row_ptr(r);
    std::copy(row, row + local_offset_, grad_pooled.row_ptr(r));
  }
  if (grad_local) {
    *grad_local = Matrix(g.rows(), config_.local_features);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      const double* row = g.row_ptr(r) + local_offset_;
      std::copy(row, row + config_.local_features, grad_local->row_ptr(r));
    }
  }

  Matrix dland = pool_.backward_input(grad_pooled);
  if (grad_land) *grad_land = std::move(dland);
}

Matrix CoarseNet::forward_from_pooled(const Matrix& pooled,
                                      const Matrix& local) {
  DIAGNET_REQUIRE(pooled.cols() == local_offset_ &&
                  local.cols() == config_.local_features &&
                  pooled.rows() == local.rows());
  Matrix x(pooled.rows(), local_offset_ + config_.local_features);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double* row = x.row_ptr(r);
    std::copy(pooled.row_ptr(r), pooled.row_ptr(r) + pooled.cols(), row);
    std::copy(local.row_ptr(r), local.row_ptr(r) + local.cols(),
              row + local_offset_);
  }
  for (std::size_t i = 0; i < relu_.size(); ++i) {
    x = fc_[i].forward(x);
    x = relu_[i].forward(x);
  }
  return fc_.back().forward(x);
}

Matrix CoarseNet::backward_inputs_from_pooled(const Matrix& grad_logits,
                                              Matrix* grad_local) {
  Matrix g = fc_.back().backward_input(grad_logits);
  for (std::size_t i = relu_.size(); i-- > 0;) {
    g = relu_[i].backward(g);
    g = fc_[i].backward_input(g);
  }

  Matrix grad_pooled(g.rows(), local_offset_);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    const double* row = g.row_ptr(r);
    std::copy(row, row + local_offset_, grad_pooled.row_ptr(r));
  }
  if (grad_local) {
    *grad_local = Matrix(g.rows(), config_.local_features);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      const double* row = g.row_ptr(r) + local_offset_;
      std::copy(row, row + config_.local_features, grad_local->row_ptr(r));
    }
  }
  return grad_pooled;
}

void CoarseNet::set_quantized(bool on) {
  for (Linear& layer : fc_) layer.set_quantized(on);
}

bool CoarseNet::quantized() const {
  return !fc_.empty() && fc_.front().quantized();
}

bool CoarseNet::shares_pooling_with(const CoarseNet& other) const {
  return local_offset_ == other.local_offset_ &&
         pool_.same_parameters(other.pool_);
}

std::vector<Parameter*> CoarseNet::parameters() {
  std::vector<Parameter*> params = pool_.parameters();
  for (auto& layer : fc_) {
    for (Parameter* p : layer.parameters()) params.push_back(p);
  }
  return params;
}

void CoarseNet::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::size_t CoarseNet::parameter_count() const {
  std::size_t n = 0;
  for (Parameter* p : const_cast<CoarseNet*>(this)->parameters())
    n += p->value.size();
  return n;
}

std::size_t CoarseNet::trainable_parameter_count() const {
  std::size_t n = 0;
  for (Parameter* p : const_cast<CoarseNet*>(this)->parameters())
    if (!p->frozen) n += p->value.size();
  return n;
}

void CoarseNet::freeze_representation(bool frozen) {
  for (Parameter* p : pool_.parameters()) p->frozen = frozen;
  // Freeze every hidden layer except the last one; the "final
  // fully-connected layers" (last hidden + output) stay trainable.
  DIAGNET_REQUIRE(!fc_.empty());
  const std::size_t keep_from = fc_.size() >= 2 ? fc_.size() - 2 : 0;
  for (std::size_t i = 0; i < keep_from; ++i) {
    for (Parameter* p : fc_[i].parameters()) p->frozen = frozen;
  }
}

std::unique_ptr<CoarseNet> CoarseNet::clone() const {
  return std::unique_ptr<CoarseNet>(new CoarseNet(*this));
}

std::vector<double> CoarseNet::save_parameters() const {
  std::vector<double> flat;
  for (Parameter* p : const_cast<CoarseNet*>(this)->parameters()) {
    const double* d = p->value.data();
    flat.insert(flat.end(), d, d + p->value.size());
  }
  return flat;
}

void CoarseNet::load_parameters(const std::vector<double>& flat) {
  std::size_t off = 0;
  for (Parameter* p : parameters()) {
    DIAGNET_REQUIRE_MSG(off + p->value.size() <= flat.size(),
                        "parameter blob too short");
    double* d = p->value.data();
    for (std::size_t i = 0; i < p->value.size(); ++i) d[i] = flat[off + i];
    off += p->value.size();
  }
  DIAGNET_REQUIRE_MSG(off == flat.size(), "parameter blob too long");
}

}  // namespace diagnet::nn
