#include "nn/coarse_net.h"

#include "util/require.h"

namespace diagnet::nn {

CoarseNet::CoarseNet(const CoarseNetConfig& config, util::Rng& rng)
    : config_(config),
      pool_(config.features_per_landmark, config.filters, config.pool_ops,
            rng) {
  DIAGNET_REQUIRE(config.classes >= 2);
  local_offset_ = pool_.out_features();
  std::size_t in = pool_.out_features() + config.local_features;
  for (std::size_t h : config.hidden) {
    fc_.emplace_back(in, h, rng);
    relu_.emplace_back();
    in = h;
  }
  fc_.emplace_back(in, config.classes, rng);
}

Matrix CoarseNet::forward(const LandBatch& batch) {
  DIAGNET_REQUIRE(batch.local.cols() == config_.local_features);
  DIAGNET_REQUIRE(batch.local.rows() == batch.land.rows());

  const Matrix pooled = pool_.forward(batch.land, batch.mask);

  // Concatenate pooled landmark representation with local features.
  Matrix x(batch.size(), pooled.cols() + batch.local.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double* row = x.row_ptr(r);
    const double* p = pooled.row_ptr(r);
    for (std::size_t c = 0; c < pooled.cols(); ++c) row[c] = p[c];
    const double* l = batch.local.row_ptr(r);
    for (std::size_t c = 0; c < batch.local.cols(); ++c)
      row[local_offset_ + c] = l[c];
  }

  for (std::size_t i = 0; i < relu_.size(); ++i) {
    x = fc_[i].forward(x);
    x = relu_[i].forward(x);
  }
  return fc_.back().forward(x);
}

void CoarseNet::backward(const Matrix& grad_logits, Matrix* grad_land,
                         Matrix* grad_local) {
  Matrix g = fc_.back().backward(grad_logits);
  for (std::size_t i = relu_.size(); i-- > 0;) {
    g = relu_[i].backward(g);
    g = fc_[i].backward(g);
  }

  // Split the concat gradient back into (pooled, local) parts.
  Matrix grad_pooled(g.rows(), local_offset_);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    const double* row = g.row_ptr(r);
    double* p = grad_pooled.row_ptr(r);
    for (std::size_t c = 0; c < local_offset_; ++c) p[c] = row[c];
  }
  if (grad_local) {
    *grad_local = Matrix(g.rows(), config_.local_features);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      const double* row = g.row_ptr(r);
      double* l = grad_local->row_ptr(r);
      for (std::size_t c = 0; c < config_.local_features; ++c)
        l[c] = row[local_offset_ + c];
    }
  }

  // LandPooling backward also accumulates kernel/bias gradients; it must run
  // even when the caller discards the input gradient.
  Matrix dland = pool_.backward(grad_pooled);
  if (grad_land) *grad_land = std::move(dland);
}

void CoarseNet::backward_inputs(const Matrix& grad_logits, Matrix* grad_land,
                                Matrix* grad_local) {
  Matrix g = fc_.back().backward_input(grad_logits);
  for (std::size_t i = relu_.size(); i-- > 0;) {
    g = relu_[i].backward(g);
    g = fc_[i].backward_input(g);
  }

  // Split the concat gradient back into (pooled, local) parts.
  Matrix grad_pooled(g.rows(), local_offset_);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    const double* row = g.row_ptr(r);
    double* p = grad_pooled.row_ptr(r);
    for (std::size_t c = 0; c < local_offset_; ++c) p[c] = row[c];
  }
  if (grad_local) {
    *grad_local = Matrix(g.rows(), config_.local_features);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      const double* row = g.row_ptr(r);
      double* l = grad_local->row_ptr(r);
      for (std::size_t c = 0; c < config_.local_features; ++c)
        l[c] = row[local_offset_ + c];
    }
  }

  Matrix dland = pool_.backward_input(grad_pooled);
  if (grad_land) *grad_land = std::move(dland);
}

std::vector<Parameter*> CoarseNet::parameters() {
  std::vector<Parameter*> params = pool_.parameters();
  for (auto& layer : fc_) {
    for (Parameter* p : layer.parameters()) params.push_back(p);
  }
  return params;
}

void CoarseNet::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::size_t CoarseNet::parameter_count() const {
  std::size_t n = 0;
  for (Parameter* p : const_cast<CoarseNet*>(this)->parameters())
    n += p->value.size();
  return n;
}

std::size_t CoarseNet::trainable_parameter_count() const {
  std::size_t n = 0;
  for (Parameter* p : const_cast<CoarseNet*>(this)->parameters())
    if (!p->frozen) n += p->value.size();
  return n;
}

void CoarseNet::freeze_representation(bool frozen) {
  for (Parameter* p : pool_.parameters()) p->frozen = frozen;
  // Freeze every hidden layer except the last one; the "final
  // fully-connected layers" (last hidden + output) stay trainable.
  DIAGNET_REQUIRE(!fc_.empty());
  const std::size_t keep_from = fc_.size() >= 2 ? fc_.size() - 2 : 0;
  for (std::size_t i = 0; i < keep_from; ++i) {
    for (Parameter* p : fc_[i].parameters()) p->frozen = frozen;
  }
}

std::unique_ptr<CoarseNet> CoarseNet::clone() const {
  return std::unique_ptr<CoarseNet>(new CoarseNet(*this));
}

std::vector<double> CoarseNet::save_parameters() const {
  std::vector<double> flat;
  for (Parameter* p : const_cast<CoarseNet*>(this)->parameters()) {
    const double* d = p->value.data();
    flat.insert(flat.end(), d, d + p->value.size());
  }
  return flat;
}

void CoarseNet::load_parameters(const std::vector<double>& flat) {
  std::size_t off = 0;
  for (Parameter* p : parameters()) {
    DIAGNET_REQUIRE_MSG(off + p->value.size() <= flat.size(),
                        "parameter blob too short");
    double* d = p->value.data();
    for (std::size_t i = 0; i < p->value.size(); ++i) d[i] = flat[off + i];
    off += p->value.size();
  }
  DIAGNET_REQUIRE_MSG(off == flat.size(), "parameter blob too long");
}

}  // namespace diagnet::nn
