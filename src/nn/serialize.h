// Minimal binary (de)serialisation for model parameters: a magic header,
// element count, then raw little-endian doubles. Used by the model registry
// to ship a trained general model to per-service specialisation.
#pragma once

#include <iosfwd>
#include <vector>

namespace diagnet::nn {

void write_parameter_blob(std::ostream& os, const std::vector<double>& flat);

/// Throws std::runtime_error on malformed input.
std::vector<double> read_parameter_blob(std::istream& is);

}  // namespace diagnet::nn
