// Row-wise softmax and the fused softmax + cross-entropy loss used to train
// the coarse classifier (c fault-family classes, paper Fig. 2 step 4).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace diagnet::nn {

using tensor::Matrix;

/// Numerically-stable row-wise softmax.
Matrix softmax(const Matrix& logits);

/// Mean cross-entropy of softmax(logits) against integer labels.
/// If grad != nullptr it receives dLoss/dLogits = (softmax - onehot) / B.
double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::size_t>& labels,
                             Matrix* grad);

/// Allocation-free shard variant of softmax_cross_entropy: returns the SUM
/// (not mean) of the per-row cross-entropies over the `n` labels, and when
/// grad != nullptr writes dLoss/dLogits * grad_scale into it with a
/// capacity-aware resize. Sharded training passes grad_scale = 1/B of the
/// *full* minibatch so per-shard gradients add up to exactly the minibatch
/// mean, and reduces the returned per-shard sums in fixed shard order.
double softmax_cross_entropy_sum(const Matrix& logits,
                                 const std::size_t* labels, std::size_t n,
                                 Matrix* grad, double grad_scale);

/// Gradient of -log softmax(logits)[target] w.r.t. the logits of a single
/// row — the "ideal label" loss the attention mechanism backpropagates
/// (paper §III-E, L* with y* = onehot(argmax y)).
Matrix ideal_label_grad(const Matrix& logits_row, std::size_t target);

/// Batched ideal-label gradient: row r gets the gradient of
/// -log softmax(logits_r)[targets[r]]. Each row is computed exactly as
/// ideal_label_grad() would — softmax is row-wise, so the result is
/// bit-identical per row regardless of batch size.
Matrix ideal_label_grads(const Matrix& logits,
                         const std::vector<std::size_t>& targets);

}  // namespace diagnet::nn
