#include "nn/activations.h"

#include "util/require.h"

namespace diagnet::nn {

Matrix ReLU::forward(const Matrix& input) {
  input_ = input;
  Matrix out = input;
  double* p = out.data();
  for (std::size_t i = 0; i < out.size(); ++i)
    if (p[i] < 0.0) p[i] = 0.0;
  return out;
}

Matrix ReLU::backward(const Matrix& grad_output) {
  DIAGNET_REQUIRE(grad_output.same_shape(input_));
  Matrix dx = grad_output;
  const double* in = input_.data();
  double* p = dx.data();
  for (std::size_t i = 0; i < dx.size(); ++i)
    if (in[i] <= 0.0) p[i] = 0.0;
  return dx;
}

}  // namespace diagnet::nn
