#include "nn/trainer.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "nn/softmax.h"
#include "obs/obs.h"
#include "util/require.h"
#include "util/rng.h"

namespace diagnet::nn {

LandBatch CoarseDataset::gather(const std::vector<std::size_t>& rows) const {
  LandBatch batch;
  batch.land = Matrix(rows.size(), land.cols());
  batch.mask = Matrix(rows.size(), mask.cols());
  batch.local = Matrix(rows.size(), local.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t r = rows[i];
    DIAGNET_REQUIRE(r < size());
    std::copy(land.row_ptr(r), land.row_ptr(r) + land.cols(),
              batch.land.row_ptr(i));
    std::copy(mask.row_ptr(r), mask.row_ptr(r) + mask.cols(),
              batch.mask.row_ptr(i));
    std::copy(local.row_ptr(r), local.row_ptr(r) + local.cols(),
              batch.local.row_ptr(i));
  }
  return batch;
}

std::vector<std::size_t> CoarseDataset::gather_labels(
    const std::vector<std::size_t>& rows) const {
  std::vector<std::size_t> out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) out[i] = labels[rows[i]];
  return out;
}

namespace {

double loss_over_rows(CoarseNet& net, const CoarseDataset& data,
                      const std::vector<std::size_t>& rows,
                      std::size_t batch_size) {
  if (rows.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t begin = 0; begin < rows.size(); begin += batch_size) {
    const std::size_t end = std::min(rows.size(), begin + batch_size);
    const std::vector<std::size_t> slice(rows.begin() + begin,
                                         rows.begin() + end);
    const LandBatch batch = data.gather(slice);
    const Matrix logits = net.forward(batch);
    total += softmax_cross_entropy(logits, data.gather_labels(slice), nullptr) *
             static_cast<double>(slice.size());
  }
  return total / static_cast<double>(rows.size());
}

}  // namespace

TrainingHistory train_coarse(CoarseNet& net, const CoarseDataset& data,
                             const TrainerConfig& config) {
  DIAGNET_SPAN("trainer.fit");
  DIAGNET_REQUIRE(data.size() > 1);
  DIAGNET_REQUIRE(config.batch_size > 0 && config.max_epochs > 0);
  DIAGNET_REQUIRE(config.validation_fraction >= 0.0 &&
                  config.validation_fraction < 1.0);

  const auto t0 = std::chrono::steady_clock::now();
  util::Rng rng(config.seed);

  // Deterministic train/validation split.
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  rng.shuffle(rows);
  const auto val_count = static_cast<std::size_t>(
      config.validation_fraction * static_cast<double>(rows.size()));
  const std::vector<std::size_t> val_rows(rows.begin(),
                                          rows.begin() + val_count);
  std::vector<std::size_t> train_rows(rows.begin() + val_count, rows.end());
  DIAGNET_REQUIRE_MSG(!train_rows.empty(), "empty training split");

  SgdOptimizer optimizer(net.parameters(), config.sgd);

  TrainingHistory history;
  EarlyStopper stopper(config.min_delta, config.patience);
  std::vector<double> best_params;

  bool early_stopped = false;
  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    DIAGNET_SPAN("trainer.epoch");
    DIAGNET_COUNT("trainer.epochs");
    rng.shuffle(train_rows);
    double train_loss = 0.0;
    for (std::size_t begin = 0; begin < train_rows.size();
         begin += config.batch_size) {
      const std::size_t end =
          std::min(train_rows.size(), begin + config.batch_size);
      const std::vector<std::size_t> slice(train_rows.begin() + begin,
                                           train_rows.begin() + end);
      const LandBatch batch = data.gather(slice);
      const Matrix logits = net.forward(batch);
      Matrix grad;
      train_loss += softmax_cross_entropy(logits, data.gather_labels(slice),
                                          &grad) *
                    static_cast<double>(slice.size());
      net.backward(grad, nullptr, nullptr);
      optimizer.step();
    }
    train_loss /= static_cast<double>(train_rows.size());

    // When no validation split was requested, early-stop on training loss.
    const double val_loss =
        val_rows.empty() ? train_loss
                         : loss_over_rows(net, data, val_rows, 256);
    history.epochs.push_back({train_loss, val_loss});
    DIAGNET_OBSERVE("trainer.epoch.train_loss", train_loss);
    DIAGNET_OBSERVE("trainer.epoch.val_loss", val_loss);

    const bool stop = stopper.update(val_loss);
    if (stopper.improved()) {
      history.best_epoch = epoch;
      if (config.restore_best) best_params = net.save_parameters();
    }
    if (stop) {
      early_stopped = true;
      break;
    }
  }

  if (early_stopped) DIAGNET_COUNT("trainer.early_stops");
  if (config.restore_best && !best_params.empty())
    net.load_parameters(best_params);

  history.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  DIAGNET_GAUGE_SET("trainer.last.best_val_loss", stopper.best());
  return history;
}

double evaluate_loss(CoarseNet& net, const CoarseDataset& data,
                     std::size_t batch_size) {
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return loss_over_rows(net, data, rows, batch_size);
}

}  // namespace diagnet::nn
