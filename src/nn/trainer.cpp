#include "nn/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "nn/softmax.h"
#include "obs/obs.h"
#include "tensor/ops.h"
#include "util/require.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace diagnet::nn {

LandBatch CoarseDataset::gather(const std::vector<std::size_t>& rows) const {
  LandBatch batch;
  gather(rows.data(), rows.size(), batch);
  return batch;
}

std::vector<std::size_t> CoarseDataset::gather_labels(
    const std::vector<std::size_t>& rows) const {
  std::vector<std::size_t> out;
  gather_labels(rows.data(), rows.size(), out);
  return out;
}

void CoarseDataset::gather(const std::size_t* rows, std::size_t n,
                           LandBatch& out) const {
  out.land.resize(n, land.cols());
  out.mask.resize(n, mask.cols());
  out.local.resize(n, local.cols());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = rows[i];
    DIAGNET_REQUIRE(r < size());
    std::copy(land.row_ptr(r), land.row_ptr(r) + land.cols(),
              out.land.row_ptr(i));
    std::copy(mask.row_ptr(r), mask.row_ptr(r) + mask.cols(),
              out.mask.row_ptr(i));
    std::copy(local.row_ptr(r), local.row_ptr(r) + local.cols(),
              out.local.row_ptr(i));
  }
}

void CoarseDataset::gather_labels(const std::size_t* rows, std::size_t n,
                                  std::vector<std::size_t>& out) const {
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    DIAGNET_REQUIRE(rows[i] < size());
    out[i] = labels[rows[i]];
  }
}

namespace {

// Rows per shard. A shard is the unit of parallel work AND the unit of
// gradient accumulation; it is a fixed constant — never derived from the
// worker count — so the partition of a minibatch, the floating-point
// reduction order inside each shard, and the ascending-shard reduction
// below are all invariant under the number of threads. That is what makes
// training bit-identical for every TrainerConfig::threads value.
constexpr std::size_t kShardRows = 16;

/// One shard's private state: its slice of the minibatch and the workspace
/// (activations + parameter-gradient accumulators) it runs forward/backward
/// in. All buffers are reused across steps via capacity-aware resizes, so a
/// steady-state epoch performs no heap allocation.
struct Shard {
  LandBatch batch;
  std::vector<std::size_t> labels;
  CoarseWorkspace ws;
  double loss_sum = 0.0;  // summed (not averaged) loss over the shard
};

/// Data-parallel minibatch engine. Each step cuts the batch into fixed
/// 16-row shards, runs gather / forward+loss / backward as parallel_for
/// phases over the shards, then reduces per-shard gradient accumulators
/// into the shared parameter gradients in ascending shard order.
class ShardEngine {
 public:
  ShardEngine(const CoarseNet& net, const CoarseDataset& data,
              util::ThreadPool& pool)
      : net_(net), data_(data), pool_(pool) {}

  /// Forward + backward over rows[0, n). Accumulates dLoss/dParam for the
  /// minibatch MEAN loss into `params` (assumed zeroed, as SgdOptimizer
  /// leaves them) and returns the summed per-sample loss.
  double train_step(const std::size_t* rows, std::size_t n,
                    const std::vector<Parameter*>& params) {
    std::size_t count = 0;
    {
      DIAGNET_SPAN("trainer.step.gather");
      count = prepare(rows, n, /*need_grads=*/true);
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    {
      DIAGNET_SPAN("trainer.step.forward");
      pool_.parallel_for(count, [&](std::size_t s) {
        Shard& sh = shards_[s];
        const Matrix& logits = net_.forward(sh.batch, sh.ws);
        // grad_scale 1/n: per-shard gradients then SUM to the gradient of
        // the minibatch mean loss.
        sh.loss_sum = softmax_cross_entropy_sum(logits, sh.labels.data(),
                                                sh.labels.size(),
                                                &sh.ws.grad_logits, inv_n);
      });
    }
    {
      DIAGNET_SPAN("trainer.step.backward");
      pool_.parallel_for(count, [&](std::size_t s) {
        Shard& sh = shards_[s];
        sh.ws.zero_param_grads();
        net_.backward(sh.ws.grad_logits, sh.ws);
      });
    }
    {
      DIAGNET_SPAN("trainer.step.reduce");
      // Parallel over parameters; each parameter sums its shard accumulators
      // in ascending shard order, so the result is thread-count invariant.
      pool_.parallel_for(params.size(), [&](std::size_t p) {
        Matrix& g = params[p]->grad;
        for (std::size_t s = 0; s < count; ++s)
          tensor::axpy(1.0, shards_[s].ws.param_grads[p], g);
      });
    }
    double loss = 0.0;
    for (std::size_t s = 0; s < count; ++s) loss += shards_[s].loss_sum;
    return loss;
  }

  /// Summed (not averaged) loss over rows[0, n); no gradients.
  double loss_sum(const std::size_t* rows, std::size_t n) {
    const std::size_t count = prepare(rows, n, /*need_grads=*/false);
    pool_.parallel_for(count, [&](std::size_t s) {
      Shard& sh = shards_[s];
      const Matrix& logits = net_.forward(sh.batch, sh.ws);
      sh.loss_sum = softmax_cross_entropy_sum(logits, sh.labels.data(),
                                              sh.labels.size(), nullptr, 0.0);
    });
    double total = 0.0;
    for (std::size_t s = 0; s < count; ++s) total += shards_[s].loss_sum;
    return total;
  }

 private:
  /// Size the shard pool for n rows and gather each shard's slice (in
  /// parallel). Gradient accumulators are only materialised for shards that
  /// will run backward — evaluation-only shards skip that memory.
  std::size_t prepare(const std::size_t* rows, std::size_t n,
                      bool need_grads) {
    DIAGNET_REQUIRE(n > 0);
    const std::size_t count = (n + kShardRows - 1) / kShardRows;
    if (shards_.size() < count) shards_.resize(count);
    if (need_grads) {
      for (std::size_t s = 0; s < count; ++s)
        if (shards_[s].ws.param_grads.empty())
          net_.init_workspace(shards_[s].ws);
    }
    pool_.parallel_for(count, [&](std::size_t s) {
      Shard& sh = shards_[s];
      const std::size_t s0 = s * kShardRows;
      const std::size_t len = std::min(n, s0 + kShardRows) - s0;
      data_.gather(rows + s0, len, sh.batch);
      data_.gather_labels(rows + s0, len, sh.labels);
    });
    return count;
  }

  const CoarseNet& net_;
  const CoarseDataset& data_;
  util::ThreadPool& pool_;
  std::vector<Shard> shards_;
};

/// Resolve TrainerConfig::threads to a pool: 0 = the process-wide pool,
/// otherwise a dedicated pool (1 runs inline, spawning no workers).
struct PoolChoice {
  std::unique_ptr<util::ThreadPool> local;
  util::ThreadPool* pool = nullptr;
};

PoolChoice choose_pool(std::size_t threads) {
  PoolChoice choice;
  if (threads == 0) {
    choice.pool = &util::ThreadPool::global();
  } else {
    choice.local = std::make_unique<util::ThreadPool>(threads);
    choice.pool = choice.local.get();
  }
  return choice;
}

/// Global-norm gradient clipping (see TrainerConfig::clip_norm). The norm
/// is summed in fixed parameter order on the caller thread, so the result
/// — and therefore the whole training trajectory — is thread-count
/// invariant.
void clip_gradients(const std::vector<Parameter*>& params, double clip) {
  if (clip <= 0.0) return;
  double sq = 0.0;
  for (const Parameter* p : params) {
    const double* g = p->grad.data();
    for (std::size_t i = 0; i < p->grad.size(); ++i) sq += g[i] * g[i];
  }
  const double norm = std::sqrt(sq);
  if (!(norm > clip)) return;  // also skips NaN norms: nothing to rescue
  const double scale = clip / norm;
  for (Parameter* p : params) {
    double* g = p->grad.data();
    for (std::size_t i = 0; i < p->grad.size(); ++i) g[i] *= scale;
  }
}

/// Mean loss over `rows`, evaluated in blocks of `block` rows.
double mean_loss(ShardEngine& engine, const std::vector<std::size_t>& rows,
                 std::size_t block) {
  if (rows.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t begin = 0; begin < rows.size(); begin += block) {
    const std::size_t end = std::min(rows.size(), begin + block);
    total += engine.loss_sum(rows.data() + begin, end - begin);
  }
  return total / static_cast<double>(rows.size());
}

}  // namespace

TrainingHistory train_coarse(CoarseNet& net, const CoarseDataset& data,
                             const TrainerConfig& config) {
  DIAGNET_SPAN("trainer.fit");
  DIAGNET_REQUIRE(data.size() > 1);
  DIAGNET_REQUIRE(config.batch_size > 0 && config.max_epochs > 0);
  DIAGNET_REQUIRE(config.validation_fraction >= 0.0 &&
                  config.validation_fraction < 1.0);

  const auto t0 = std::chrono::steady_clock::now();
  util::Rng rng(config.seed);

  // Deterministic train/validation split.
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  rng.shuffle(rows);
  const auto val_count = static_cast<std::size_t>(
      config.validation_fraction * static_cast<double>(rows.size()));
  const std::vector<std::size_t> val_rows(rows.begin(),
                                          rows.begin() + val_count);
  std::vector<std::size_t> train_rows(rows.begin() + val_count, rows.end());
  DIAGNET_REQUIRE_MSG(!train_rows.empty(), "empty training split");

  const std::vector<Parameter*> params = net.parameters();
  SgdOptimizer optimizer(params, config.sgd);

  PoolChoice pool = choose_pool(config.threads);
  ShardEngine engine(net, data, *pool.pool);

  TrainingHistory history;
  EarlyStopper stopper(config.min_delta, config.patience);
  std::vector<double> best_params;

  bool early_stopped = false;
  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    DIAGNET_SPAN("trainer.epoch");
    DIAGNET_COUNT("trainer.epochs");
    rng.shuffle(train_rows);
    double train_loss = 0.0;
    for (std::size_t begin = 0; begin < train_rows.size();
         begin += config.batch_size) {
      DIAGNET_SPAN("trainer.step");
      const std::size_t end =
          std::min(train_rows.size(), begin + config.batch_size);
      train_loss +=
          engine.train_step(train_rows.data() + begin, end - begin, params);
      clip_gradients(params, config.clip_norm);
      optimizer.step();
    }
    train_loss /= static_cast<double>(train_rows.size());

    // When no validation split was requested, early-stop on training loss.
    const double val_loss =
        val_rows.empty() ? train_loss : mean_loss(engine, val_rows, 256);
    history.epochs.push_back({train_loss, val_loss});
    DIAGNET_OBSERVE("trainer.epoch.train_loss", train_loss);
    DIAGNET_OBSERVE("trainer.epoch.val_loss", val_loss);

    const bool stop = stopper.update(val_loss);
    if (stopper.improved()) {
      history.best_epoch = epoch;
      if (config.restore_best) best_params = net.save_parameters();
    }
    if (stop) {
      early_stopped = true;
      break;
    }
  }

  if (early_stopped) DIAGNET_COUNT("trainer.early_stops");
  if (config.restore_best && !best_params.empty())
    net.load_parameters(best_params);

  history.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  DIAGNET_GAUGE_SET("trainer.last.best_val_loss", stopper.best());
  return history;
}

double evaluate_loss(CoarseNet& net, const CoarseDataset& data,
                     std::size_t batch_size) {
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  ShardEngine engine(net, data, util::ThreadPool::global());
  return mean_loss(engine, rows, batch_size);
}

}  // namespace diagnet::nn
