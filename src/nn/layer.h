// Building blocks for the coarse-prediction network.
//
// The library uses plain reverse-mode backprop with explicitly wired layers
// (no tape): every layer caches what its backward pass needs during forward,
// and backward() both accumulates parameter gradients and returns the
// gradient with respect to its input. Input gradients are first-class — the
// DiagNet attention mechanism (paper §III-E) differentiates the loss with
// respect to the *features*, not just the weights.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace diagnet::nn {

using tensor::Matrix;

/// A trainable tensor: value, gradient accumulator, and a freeze flag used
/// by service specialisation (paper §IV-F freezes the convolution and first
/// hidden layer when deriving per-service models).
struct Parameter {
  Matrix value;
  Matrix grad;
  bool frozen = false;

  explicit Parameter(Matrix v) : value(std::move(v)), grad(value.rows(), value.cols()) {}
  void zero_grad() { grad.fill(0.0); }
};

/// Interface for layers that map a (batch x in) matrix to (batch x out).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass over a batch (rows are samples). Caches activations
  /// needed by backward(); a forward() invalidates the previous cache.
  virtual Matrix forward(const Matrix& input) = 0;

  /// Given dLoss/dOutput, accumulate parameter gradients and return
  /// dLoss/dInput. Must be called after forward() on the same batch.
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// All trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;
};

}  // namespace diagnet::nn
