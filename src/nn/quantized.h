// Int8 post-training quantization for the FC stack ("--quantize").
//
// Scheme: symmetric per-output-channel weights — each output unit j of a
// (in x out) layer gets one scale s_j = absmax(W[:, j]) / 127 and int8
// codes q_ij = round(w_ij / s_j) — with dynamic per-sample activation
// quantization (one scale per input row, recomputed per request), int32
// accumulation and fp32 rescale. The paper-facing description "per-row"
// refers to rows of the logical (out x in) weight matrix; this codebase
// stores W as (in x out), so those rows are our columns.
//
// Two properties the serving stack relies on:
//  * Tier-invariance: absmax, round-to-nearest and the int32 GEMV are all
//    exact, so a quantized model produces identical bits on the scalar
//    and AVX2 tiers (unlike the fp path, which only matches to tolerance).
//  * Snap-to-grid: enabling quantization overwrites the fp weights with
//    q_ij * s_j, so the fp backward pass — gradient attention runs on it —
//    differentiates the same function the quantized forward serves.
//
// The LandPooling kernel is NOT quantized: it is the frozen shared
// representation (paper §III), it is tiny next to the FC stack, and
// keeping it fp64 lets specialized heads share pooling work bit-exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace diagnet::nn {

struct QuantizedLinear {
  std::size_t in = 0, out = 0;
  /// (in x out) row-major, same layout as the fp weights.
  std::vector<std::int8_t> weights;
  /// Per output unit j: w_ij ≈ weights[i*out + j] * scales[j]. fp32 — the
  /// dequantized product sx * scales[j] is a float-precision rescale.
  std::vector<float> scales;
  bool valid() const { return out != 0; }
};

/// Quantize one (in x out) weight matrix. A zero column gets scale 1 so
/// dequantization never divides by zero; empty matrices yield an invalid
/// (inert) result.
QuantizedLinear quantize_weights(const tensor::Matrix& weight);

/// Overwrite `weight` with its dequantized codes (q_ij * s_j), the exact
/// function the quantized forward path evaluates.
void snap_to_grid(const QuantizedLinear& q, tensor::Matrix& weight);

/// out = dequant(qgemv(quant(input), q)) + bias, row by row. Rows are
/// independent (per-row activation scales), so a sample scores the same
/// bits alone or inside a batch. Uses the dispatched int8 kernels.
void quantized_forward(const QuantizedLinear& q, const tensor::Matrix& input,
                       const tensor::Matrix& bias, tensor::Matrix& out);

}  // namespace diagnet::nn
