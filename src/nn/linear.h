// Fully-connected layer: Y = X·W + b.
#pragma once

#include "nn/layer.h"
#include "nn/quantized.h"
#include "util/rng.h"

namespace diagnet::nn {

class Linear final : public Layer {
 public:
  /// He-uniform initialisation (suits the ReLU activations that follow
  /// every hidden layer in the coarse model).
  Linear(std::size_t in, std::size_t out, util::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  /// Input gradient only: dX = dY · W^T, without touching weight_.grad /
  /// bias_.grad. dX is independent of the parameter-gradient accumulation,
  /// so the result is bit-identical to what backward() returns — this is
  /// the inference-time path (attention needs input gradients, never
  /// parameter gradients) and skips ~2/3 of backward's memory traffic.
  Matrix backward_input(const Matrix& grad_output) const;

  /// Workspace forward: out = input·W + b, capacity-aware resize of `out`,
  /// no activation caching — const and safe to call concurrently from
  /// several training shards against the same layer.
  void forward_into(const Matrix& input, Matrix& out) const;
  /// Workspace backward: accumulates dW into grad_weight (+=) and db into
  /// grad_bias (+=) — both must be pre-sized and zeroed per step — and
  /// writes dX into grad_input when non-null. `input` is the activation
  /// that was fed to forward_into (the caller's workspace keeps it).
  void backward_into(const Matrix& input, const Matrix& grad_output,
                     Matrix& grad_weight, Matrix& grad_bias,
                     Matrix* grad_input) const;

  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  /// Int8 inference mode (see nn/quantized.h). Enabling quantizes the
  /// current weights AND snaps the fp copy onto the int8 grid, so the fp
  /// backward pass differentiates the function the quantized forward
  /// serves. Disabling only drops the int8 codes — the fp weights stay
  /// snapped (quantization is lossy; there is no way back).
  void set_quantized(bool on);
  bool quantized() const { return quant_.valid(); }

 private:
  Parameter weight_;  // (in x out)
  Parameter bias_;    // (1 x out)
  Matrix input_;      // cached for backward
  QuantizedLinear quant_;  // int8 codes when quantized mode is on
};

}  // namespace diagnet::nn
