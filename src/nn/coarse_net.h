// The DiagNet coarse-prediction network (paper Fig. 2, steps 1-4):
//
//   land features ──> LandPooling ──┐
//                                   ├─ concat ─> FC(512) ─ ReLU ─ FC(128)
//   local features ─────────────────┘           ─ ReLU ─ FC(c) ─ softmax
//
// The network exposes input gradients (both landmark and local) because the
// attention step (Fig. 2, step 5) differentiates the ideal-label loss with
// respect to the features.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/batch.h"
#include "nn/land_pooling.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace diagnet::nn {

struct CoarseNetConfig {
  std::size_t features_per_landmark = 5;   // k
  std::size_t local_features = 5;
  std::size_t filters = 24;                // f
  std::vector<PoolOp> pool_ops = default_pool_ops();
  std::vector<std::size_t> hidden = {512, 128};
  std::size_t classes = 7;                 // c
};

/// Per-thread forward/backward state for the data-parallel training path:
/// activations, gradient scratch, and a full set of parameter-gradient
/// accumulators (same order as CoarseNet::parameters()). One workspace per
/// training shard lets any number of shards run forward+backward
/// concurrently against one shared network; every buffer is reused with
/// capacity-aware resizes, so steady-state steps allocate nothing.
struct CoarseWorkspace {
  LandPooling::PoolContext pool;
  Matrix pooled;             // (B, ops·f)
  Matrix concat;             // (B, ops·f + local): input to the first FC
  std::vector<Matrix> act;   // act[i]: post-ReLU output of hidden layer i
  Matrix logits;             // (B, c)
  Matrix grad_logits;        // dLoss/dLogits, filled by the loss
  Matrix grad_a, grad_b;     // ping-pong input-gradient buffers
  Matrix grad_pooled;        // concat gradient split, pooled part
  std::vector<Matrix> param_grads;  // ordered like parameters()

  /// Zero the parameter-gradient accumulators (start of every step).
  void zero_param_grads() {
    for (Matrix& g : param_grads) g.fill(0.0);
  }
};

class CoarseNet {
 public:
  CoarseNet(const CoarseNetConfig& config, util::Rng& rng);

  /// Logits over the c coarse fault families, (B x c).
  Matrix forward(const LandBatch& batch);

  /// Size a workspace's parameter-gradient accumulators (zeroed) for this
  /// network. Call once per workspace; forward/backward below size the
  /// remaining buffers on the fly.
  void init_workspace(CoarseWorkspace& ws) const;

  /// Workspace forward: same math as forward(), but every intermediate goes
  /// into `ws` and nothing is cached on the layers — const, so training
  /// shards share one network. Returns ws.logits.
  const Matrix& forward(const LandBatch& batch, CoarseWorkspace& ws) const;

  /// Workspace backward, parameter gradients only: accumulates into
  /// ws.param_grads (zero_param_grads() first). Input gradients are not
  /// produced — the training loop discards them, and skipping the
  /// LandPooling dx pass saves a full K^T·dF sweep per step.
  void backward(const Matrix& grad_logits, CoarseWorkspace& ws) const;

  /// Backprop dLoss/dLogits. Accumulates parameter gradients; when
  /// grad_land/grad_local are non-null they receive the input gradients.
  void backward(const Matrix& grad_logits, Matrix* grad_land,
                Matrix* grad_local);

  /// Backprop dLoss/dLogits down to the inputs only: no parameter gradient
  /// is accumulated (so no zero_grad() is needed afterwards). The input
  /// gradients are bit-identical to backward()'s — dX never depends on the
  /// dW/db accumulation — at roughly half the FLOPs and none of the
  /// parameter-gradient memory traffic. This is the inference path used by
  /// batched gradient attention.
  void backward_inputs(const Matrix& grad_logits, Matrix* grad_land,
                       Matrix* grad_local);

  std::vector<Parameter*> parameters();
  void zero_grad();
  std::size_t parameter_count() const;
  std::size_t trainable_parameter_count() const;

  /// Freeze the representation layers (LandPooling kernel + first hidden
  /// layer); only the final fully-connected layers stay trainable. This is
  /// the service-specialisation split of paper §IV-F.
  void freeze_representation(bool frozen = true);

  /// Int8 inference for the FC stack (the LandPooling kernel stays fp64 —
  /// see nn/quantized.h). Enabling snaps the fp weights onto the int8 grid
  /// so gradient attention differentiates the served function.
  void set_quantized(bool on);
  bool quantized() const;

  /// True when this net's LandPooling computes bit-identical pooled rows to
  /// `other`'s — the precondition for the serving router to share one
  /// pooling pass across specialized heads.
  bool shares_pooling_with(const CoarseNet& other) const;

  /// FC-stack-only forward for the shared-pooling serving path: the caller
  /// already pooled a (union) batch and hands this head its rows. Same
  /// concat + FC math as forward(), with layer caches, so
  /// backward_inputs_from_pooled() can follow. Per-row bits match a full
  /// forward() of the same rows (the kernels' per-row group structure is
  /// batch-size invariant).
  Matrix forward_from_pooled(const Matrix& pooled, const Matrix& local);

  /// Input-gradient backward matching forward_from_pooled: runs the FC
  /// chain only and returns the gradient w.r.t. the pooled rows (the caller
  /// scatters it into the union batch and runs one shared LandPooling
  /// backward). grad_local, when non-null, receives the local-feature part.
  Matrix backward_inputs_from_pooled(const Matrix& grad_logits,
                                     Matrix* grad_local);

  const CoarseNetConfig& config() const { return config_; }
  LandPooling& pooling() { return pool_; }
  const LandPooling& pooling() const { return pool_; }

  /// Deep copy (shares nothing) — used to derive specialised models from
  /// the general model.
  std::unique_ptr<CoarseNet> clone() const;

  /// Flat parameter (de)serialisation, ordered deterministically.
  std::vector<double> save_parameters() const;
  void load_parameters(const std::vector<double>& flat);

 private:
  CoarseNet(const CoarseNet&) = default;  // for clone()

  CoarseNetConfig config_;
  LandPooling pool_;
  std::vector<Linear> fc_;     // hidden layers + output layer
  std::vector<ReLU> relu_;     // one per hidden layer
  std::size_t local_offset_ = 0;  // where local features sit in the concat
};

}  // namespace diagnet::nn
