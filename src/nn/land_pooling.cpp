#include "nn/land_pooling.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/require.h"

namespace diagnet::nn {

std::vector<PoolOp> default_pool_ops() {
  return {PoolOp::Min, PoolOp::Max, PoolOp::Avg, PoolOp::Var,
          PoolOp::P10, PoolOp::P20, PoolOp::P30, PoolOp::P40, PoolOp::P50,
          PoolOp::P60, PoolOp::P70, PoolOp::P80, PoolOp::P90};
}

const char* pool_op_name(PoolOp op) {
  switch (op) {
    case PoolOp::Min: return "min";
    case PoolOp::Max: return "max";
    case PoolOp::Avg: return "avg";
    case PoolOp::Var: return "var";
    case PoolOp::P10: return "p10";
    case PoolOp::P20: return "p20";
    case PoolOp::P30: return "p30";
    case PoolOp::P40: return "p40";
    case PoolOp::P50: return "p50";
    case PoolOp::P60: return "p60";
    case PoolOp::P70: return "p70";
    case PoolOp::P80: return "p80";
    case PoolOp::P90: return "p90";
  }
  return "?";
}

namespace {

/// Decile fraction for percentile operators; -1 for non-percentile ops.
double percentile_q(PoolOp op) {
  switch (op) {
    case PoolOp::P10: return 0.1;
    case PoolOp::P20: return 0.2;
    case PoolOp::P30: return 0.3;
    case PoolOp::P40: return 0.4;
    case PoolOp::P50: return 0.5;
    case PoolOp::P60: return 0.6;
    case PoolOp::P70: return 0.7;
    case PoolOp::P80: return 0.8;
    case PoolOp::P90: return 0.9;
    default: return -1.0;
  }
}

/// Sort available-landmark slots by (value, slot) — the slot tiebreak makes
/// gradient routing deterministic under ties.
void sort_slots(const std::vector<double>& values, std::vector<std::size_t>& order) {
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] != values[b] ? values[a] < values[b] : a < b;
  });
}

}  // namespace

LandPooling::LandPooling(std::size_t k, std::size_t filters,
                         std::vector<PoolOp> ops, util::Rng& rng)
    : k_(k),
      filters_(filters),
      ops_(std::move(ops)),
      kernel_(Matrix(filters, k)),
      bias_(Matrix(1, filters)) {
  DIAGNET_REQUIRE(k_ > 0 && filters_ > 0 && !ops_.empty());
  const double limit = std::sqrt(6.0 / static_cast<double>(k_));
  for (std::size_t r = 0; r < filters_; ++r)
    for (std::size_t c = 0; c < k_; ++c)
      kernel_.value(r, c) = rng.uniform(-limit, limit);
}

void LandPooling::compute_conv(const Matrix& land, const Matrix& mask,
                               std::vector<double>& conv) const {
  const std::size_t L = land.cols() / k_;
  conv.assign(land.rows() * L * filters_, 0.0);
  for (std::size_t i = 0; i < land.rows(); ++i) {
    std::size_t avail = 0;
    for (std::size_t lam = 0; lam < L; ++lam) {
      if (mask(i, lam) < 0.5) continue;
      ++avail;
      const double* x = land.row_ptr(i) + lam * k_;
      double* f = conv.data() + (i * L + lam) * filters_;
      for (std::size_t j = 0; j < filters_; ++j) {
        const double* kj = kernel_.value.row_ptr(j);
        // No simd-reduction pragma here: the var pool-op's bias gradient is
        // analytically zero, and its finite-difference test only holds when
        // forward rounding matches the strictly sequential sum.
        double s = bias_.value(0, j);
        for (std::size_t t = 0; t < k_; ++t) s += kj[t] * x[t];
        f[j] = s;
      }
    }
    DIAGNET_REQUIRE_MSG(avail > 0, "sample with no available landmark");
  }
}

void LandPooling::pool_from_conv(const Matrix& mask,
                                 const std::vector<double>& conv, Matrix& out,
                                 std::vector<double>& values,
                                 std::vector<std::size_t>& order) const {
  const std::size_t L = mask.cols();
  const tensor::detail::Kernels& K = tensor::detail::active_kernels();
  out.resize(mask.rows(), out_features());
  for (std::size_t i = 0; i < mask.rows(); ++i) {
    // Pooling across available landmarks, per filter.
    for (std::size_t j = 0; j < filters_; ++j) {
      values.clear();
      order.clear();
      for (std::size_t lam = 0; lam < L; ++lam) {
        if (mask(i, lam) < 0.5) continue;
        values.push_back(conv[(i * L + lam) * filters_ + j]);
        order.push_back(values.size() - 1);
      }
      const std::size_t n = values.size();
      sort_slots(values, order);

      // Dispatched reductions; route_grads recomputes avg the same way so
      // forward and backward agree bit-for-bit on every kernel tier.
      const double avg = K.reduce_sum(values.data(), n) / static_cast<double>(n);

      for (std::size_t o = 0; o < ops_.size(); ++o) {
        double v = 0.0;
        switch (ops_[o]) {
          case PoolOp::Min:
            v = values[order.front()];
            break;
          case PoolOp::Max:
            v = values[order.back()];
            break;
          case PoolOp::Avg:
            v = avg;
            break;
          case PoolOp::Var: {
            if (n >= 2)
              v = K.reduce_sq_dev(values.data(), n, avg) /
                  static_cast<double>(n - 1);
            break;
          }
          default: {
            const double q = percentile_q(ops_[o]);
            const double pos = q * static_cast<double>(n - 1);
            const auto lo = static_cast<std::size_t>(pos);
            const std::size_t hi = std::min(lo + 1, n - 1);
            const double frac = pos - static_cast<double>(lo);
            v = values[order[lo]] +
                frac * (values[order[hi]] - values[order[lo]]);
            break;
          }
        }
        out(i, o * filters_ + j) = v;
      }
    }
  }
}

Matrix LandPooling::forward(const Matrix& land, const Matrix& mask) {
  DIAGNET_REQUIRE_MSG(land.cols() % k_ == 0, "land width must be L*k");
  const std::size_t L = land.cols() / k_;
  DIAGNET_REQUIRE(mask.rows() == land.rows() && mask.cols() == L);

  land_ = land;
  mask_ = mask;
  batch_ = land.rows();
  landmarks_ = L;
  compute_conv(land, mask, conv_);

  Matrix out;
  std::vector<double> values;  // per (sample, filter): available conv values
  std::vector<std::size_t> order;
  pool_from_conv(mask, conv_, out, values, order);
  return out;
}

void LandPooling::forward(const Matrix& land, const Matrix& mask,
                          PoolContext& ctx, Matrix& out) const {
  DIAGNET_REQUIRE_MSG(land.cols() % k_ == 0, "land width must be L*k");
  const std::size_t L = land.cols() / k_;
  DIAGNET_REQUIRE(mask.rows() == land.rows() && mask.cols() == L);

  ctx.land = &land;
  ctx.mask = &mask;
  ctx.batch = land.rows();
  ctx.landmarks = L;
  compute_conv(land, mask, ctx.conv);
  pool_from_conv(mask, ctx.conv, out, ctx.values, ctx.order);
}

void LandPooling::route_grads(const Matrix& mask,
                              const std::vector<double>& conv,
                              const Matrix& grad_pooled,
                              std::vector<double>& dconv,
                              std::vector<double>& values,
                              std::vector<std::size_t>& order,
                              std::vector<std::size_t>& slot_lam) const {
  const std::size_t L = mask.cols();
  const std::size_t batch = mask.rows();
  const tensor::detail::Kernels& K = tensor::detail::active_kernels();

  // Route pooled gradients into dF (per sample, landmark, filter).
  dconv.assign(batch * L * filters_, 0.0);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < filters_; ++j) {
      values.clear();
      order.clear();     // sorted positions -> slot
      slot_lam.clear();  // slot -> landmark index
      for (std::size_t lam = 0; lam < L; ++lam) {
        if (mask(i, lam) < 0.5) continue;
        values.push_back(conv[(i * L + lam) * filters_ + j]);
        order.push_back(values.size() - 1);
        slot_lam.push_back(lam);
      }
      const std::size_t n = values.size();
      sort_slots(values, order);

      // Same dispatched reduction as pool_from_conv: the Var rule needs the
      // forward's exact avg.
      const double avg = K.reduce_sum(values.data(), n) / static_cast<double>(n);

      const auto d_at = [&](std::size_t slot) -> double& {
        return dconv[(i * L + slot_lam[slot]) * filters_ + j];
      };

      for (std::size_t o = 0; o < ops_.size(); ++o) {
        const double g = grad_pooled(i, o * filters_ + j);
        if (g == 0.0) continue;
        switch (ops_[o]) {
          case PoolOp::Min:
            d_at(order.front()) += g;
            break;
          case PoolOp::Max:
            d_at(order.back()) += g;
            break;
          case PoolOp::Avg: {
            const double share = g / static_cast<double>(n);
            for (std::size_t s = 0; s < n; ++s) d_at(s) += share;
            break;
          }
          case PoolOp::Var: {
            if (n >= 2) {
              const double scale = 2.0 * g / static_cast<double>(n - 1);
              for (std::size_t s = 0; s < n; ++s)
                d_at(s) += scale * (values[s] - avg);
            }
            break;
          }
          default: {
            const double q = percentile_q(ops_[o]);
            const double pos = q * static_cast<double>(n - 1);
            const auto lo = static_cast<std::size_t>(pos);
            const std::size_t hi = std::min(lo + 1, n - 1);
            const double frac = pos - static_cast<double>(lo);
            d_at(order[lo]) += g * (1.0 - frac);
            if (hi != lo) d_at(order[hi]) += g * frac;
            break;
          }
        }
      }
    }
  }
}

std::vector<double> LandPooling::route_pooled_grads(
    const Matrix& grad_pooled) const {
  DIAGNET_REQUIRE_MSG(grad_pooled.rows() == batch_ &&
                          grad_pooled.cols() == out_features(),
                      "backward shape mismatch (call forward first)");
  std::vector<double> dconv;
  std::vector<double> values;
  std::vector<std::size_t> order, slot_lam;
  route_grads(mask_, conv_, grad_pooled, dconv, values, order, slot_lam);
  return dconv;
}

void LandPooling::backward_params(const Matrix& grad_pooled, PoolContext& ctx,
                                  Matrix& kernel_grad,
                                  Matrix& bias_grad) const {
  DIAGNET_REQUIRE_MSG(ctx.land != nullptr && ctx.mask != nullptr &&
                          grad_pooled.rows() == ctx.batch &&
                          grad_pooled.cols() == out_features(),
                      "backward shape mismatch (call ctx forward first)");
  DIAGNET_REQUIRE(kernel_grad.same_shape(kernel_.value) &&
                  bias_grad.same_shape(bias_.value));
  const Matrix& land = *ctx.land;
  const Matrix& mask = *ctx.mask;
  const std::size_t L = ctx.landmarks;
  route_grads(mask, ctx.conv, grad_pooled, ctx.dconv, ctx.values, ctx.order,
              ctx.slot_lam);

  // Stage 2, parameters only: dK += Σ dF[λ] ⊗ x[λ]; db += Σ dF[λ]. The
  // dx = K^T·dF pass of backward() is skipped — the trainer discards it.
  for (std::size_t i = 0; i < ctx.batch; ++i) {
    for (std::size_t lam = 0; lam < L; ++lam) {
      if (mask(i, lam) < 0.5) continue;
      const double* x = land.row_ptr(i) + lam * k_;
      const double* df = ctx.dconv.data() + (i * L + lam) * filters_;
      for (std::size_t j = 0; j < filters_; ++j) {
        const double dfj = df[j];
        if (dfj == 0.0) continue;
        double* kg = kernel_grad.row_ptr(j);
#pragma omp simd
        for (std::size_t t = 0; t < k_; ++t) kg[t] += dfj * x[t];
        bias_grad(0, j) += dfj;
      }
    }
  }
}

Matrix LandPooling::backward(const Matrix& grad_pooled) {
  const std::size_t L = landmarks_;
  const std::vector<double> dconv = route_pooled_grads(grad_pooled);

  // Stage 2: dK += Σ dF[λ] ⊗ x[λ]; db += Σ dF[λ]; dx[λ] = K^T · dF[λ].
  Matrix dland(batch_, L * k_);
  for (std::size_t i = 0; i < batch_; ++i) {
    for (std::size_t lam = 0; lam < L; ++lam) {
      if (mask_(i, lam) < 0.5) continue;
      const double* x = land_.row_ptr(i) + lam * k_;
      const double* df = dconv.data() + (i * L + lam) * filters_;
      double* dx = dland.row_ptr(i) + lam * k_;
      for (std::size_t j = 0; j < filters_; ++j) {
        const double dfj = df[j];
        if (dfj == 0.0) continue;
        double* kg = kernel_.grad.row_ptr(j);
        const double* kv = kernel_.value.row_ptr(j);
        for (std::size_t t = 0; t < k_; ++t) {
          kg[t] += dfj * x[t];
          dx[t] += dfj * kv[t];
        }
        bias_.grad(0, j) += dfj;
      }
    }
  }
  return dland;
}

Matrix LandPooling::backward_input(const Matrix& grad_pooled) const {
  const std::size_t L = landmarks_;
  const std::vector<double> dconv = route_pooled_grads(grad_pooled);

  // dx[λ] = K^T · dF[λ] only; kernel/bias gradients are not accumulated.
  Matrix dland(batch_, L * k_);
  for (std::size_t i = 0; i < batch_; ++i) {
    for (std::size_t lam = 0; lam < L; ++lam) {
      if (mask_(i, lam) < 0.5) continue;
      const double* df = dconv.data() + (i * L + lam) * filters_;
      double* dx = dland.row_ptr(i) + lam * k_;
      for (std::size_t j = 0; j < filters_; ++j) {
        const double dfj = df[j];
        if (dfj == 0.0) continue;
        const double* kv = kernel_.value.row_ptr(j);
        for (std::size_t t = 0; t < k_; ++t) dx[t] += dfj * kv[t];
      }
    }
  }
  return dland;
}

Matrix LandPooling::backward_input_with(PoolContext& ctx,
                                        const Matrix& grad_pooled) const {
  DIAGNET_REQUIRE_MSG(ctx.mask != nullptr && grad_pooled.rows() == ctx.batch &&
                          grad_pooled.cols() == out_features(),
                      "backward shape mismatch (call ctx forward first)");
  const Matrix& mask = *ctx.mask;
  const std::size_t L = ctx.landmarks;
  route_grads(mask, ctx.conv, grad_pooled, ctx.dconv, ctx.values, ctx.order,
              ctx.slot_lam);

  // dx[λ] = K^T · dF[λ] only, same per-row math as backward_input().
  Matrix dland(ctx.batch, L * k_);
  for (std::size_t i = 0; i < ctx.batch; ++i) {
    for (std::size_t lam = 0; lam < L; ++lam) {
      if (mask(i, lam) < 0.5) continue;
      const double* df = ctx.dconv.data() + (i * L + lam) * filters_;
      double* dx = dland.row_ptr(i) + lam * k_;
      for (std::size_t j = 0; j < filters_; ++j) {
        const double dfj = df[j];
        if (dfj == 0.0) continue;
        const double* kv = kernel_.value.row_ptr(j);
        for (std::size_t t = 0; t < k_; ++t) dx[t] += dfj * kv[t];
      }
    }
  }
  return dland;
}

bool LandPooling::same_parameters(const LandPooling& other) const {
  if (k_ != other.k_ || filters_ != other.filters_ || ops_ != other.ops_)
    return false;
  const Matrix& ka = kernel_.value;
  const Matrix& kb = other.kernel_.value;
  for (std::size_t r = 0; r < ka.rows(); ++r)
    for (std::size_t c = 0; c < ka.cols(); ++c)
      if (ka(r, c) != kb(r, c)) return false;
  for (std::size_t c = 0; c < bias_.value.cols(); ++c)
    if (bias_.value(0, c) != other.bias_.value(0, c)) return false;
  return true;
}

}  // namespace diagnet::nn
