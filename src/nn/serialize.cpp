#include "nn/serialize.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace diagnet::nn {

namespace {
constexpr std::uint64_t kMagic = 0x44494147'4e455431ULL;  // "DIAGNET1"
}

void write_parameter_blob(std::ostream& os, const std::vector<double>& flat) {
  const std::uint64_t magic = kMagic;
  const std::uint64_t count = flat.size();
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  os.write(reinterpret_cast<const char*>(flat.data()),
           static_cast<std::streamsize>(flat.size() * sizeof(double)));
}

std::vector<double> read_parameter_blob(std::istream& is) {
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is || magic != kMagic)
    throw std::runtime_error("parameter blob: bad header");
  if (count > (1ULL << 28))
    throw std::runtime_error("parameter blob: implausible parameter count");
  std::vector<double> flat(count);
  is.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!is) throw std::runtime_error("parameter blob: truncated payload");
  return flat;
}

}  // namespace diagnet::nn
