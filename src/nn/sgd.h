// SGD with Nesterov momentum and L2 weight decay — the optimizer of
// Table I (learning rate 0.05, decay 0.001).
#pragma once

#include <vector>

#include "nn/layer.h"

namespace diagnet::nn {

struct SgdConfig {
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 0.001;
  bool nesterov = true;
};

class SgdOptimizer {
 public:
  /// Binds to a fixed parameter list; velocity buffers are keyed by
  /// position, so the list must not change between steps.
  SgdOptimizer(std::vector<Parameter*> params, const SgdConfig& config);

  /// Apply one update from the accumulated gradients, then zero them.
  /// Frozen parameters are skipped entirely (their velocity stays put).
  void step();

  const SgdConfig& config() const { return config_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Matrix> velocity_;
  SgdConfig config_;
};

}  // namespace diagnet::nn
