#include "nn/sgd.h"

#include "util/require.h"

namespace diagnet::nn {

SgdOptimizer::SgdOptimizer(std::vector<Parameter*> params,
                           const SgdConfig& config)
    : params_(std::move(params)), config_(config) {
  DIAGNET_REQUIRE(config_.learning_rate > 0.0);
  DIAGNET_REQUIRE(config_.momentum >= 0.0 && config_.momentum < 1.0);
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_)
    velocity_.emplace_back(p->value.rows(), p->value.cols());
}

void SgdOptimizer::step() {
  const double lr = config_.learning_rate;
  const double mu = config_.momentum;
  const double wd = config_.weight_decay;
  for (std::size_t idx = 0; idx < params_.size(); ++idx) {
    Parameter* p = params_[idx];
    if (p->frozen) {
      p->zero_grad();
      continue;
    }
    Matrix& v = velocity_[idx];
    double* vd = v.data();
    double* wdta = p->value.data();
    double* gd = p->grad.data();
    const std::size_t n = p->value.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double g = gd[i] + wd * wdta[i];  // decoupled L2 -> coupled form
      vd[i] = mu * vd[i] - lr * g;
      // Nesterov look-ahead: w += mu*v - lr*g; plain momentum: w += v.
      wdta[i] += config_.nesterov ? (mu * vd[i] - lr * g) : vd[i];
    }
    p->zero_grad();
  }
}

}  // namespace diagnet::nn
