// LandPooling (paper §III-C): a non-overlapping convolution with a kernel
// shared across landmarks, followed by a bank of commutative global pooling
// operators applied across landmarks, element-wise per filter.
//
//   F[λ] = K · x[λ] + b            (K ∈ R^{f×k}, b ∈ R^f, per landmark λ)
//   out  = concat_{Ω ∈ ops} Ω_{λ available} F[λ]   ∈ R^{ops·f}
//
// Because every pooling operator is invariant to landmark order and accepts
// any number of arguments, the output dimension is independent of how many
// landmarks were probed — the property that makes DiagNet root-cause
// extensible (new landmarks can be fed to a trained model).
//
// The backward pass is exact for all operators, including the interpolated
// deciles (gradient routed to the two order statistics that define the
// interpolation). Input gradients are produced because the attention step
// differentiates the loss w.r.t. raw features.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace diagnet::nn {

/// Global pooling operators; the decile entries implement the "p10, ...,
/// p90" row of Table I with linear interpolation between order statistics.
enum class PoolOp {
  Min,
  Max,
  Avg,
  Var,
  P10,
  P20,
  P30,
  P40,
  P50,
  P60,
  P70,
  P80,
  P90,
};

/// Table I's operator set: min, max, avg, variance, p10..p90 (13 ops).
std::vector<PoolOp> default_pool_ops();

const char* pool_op_name(PoolOp op);

class LandPooling {
 public:
  /// k features per landmark, `filters` convolution filters, and the pooling
  /// operator bank. Kernel gets He-uniform init; bias starts at zero.
  LandPooling(std::size_t k, std::size_t filters, std::vector<PoolOp> ops,
              util::Rng& rng);

  /// land: (B, L·k) flattened landmark features, landmark-major (features of
  /// landmark λ occupy columns [λ·k, λ·k+k)). Unavailable landmarks may hold
  /// arbitrary values — they are skipped entirely via `mask`.
  /// mask: (B, L), 1.0 = landmark available. Each sample needs ≥1 available.
  /// Returns (B, ops·f).
  Matrix forward(const Matrix& land, const Matrix& mask);

  /// grad_pooled: (B, ops·f). Accumulates kernel/bias gradients and returns
  /// the gradient w.r.t. `land` (zeros at masked-out landmarks).
  Matrix backward(const Matrix& grad_pooled);

  /// Input gradient only: identical routing and dx = K^T · dF as backward(),
  /// but kernel/bias gradients are left untouched. dx does not depend on the
  /// accumulation, so the result is bit-identical to backward()'s — this is
  /// the inference path (gradient attention).
  Matrix backward_input(const Matrix& grad_pooled) const;

  std::vector<Parameter*> parameters() { return {&kernel_, &bias_}; }

  std::size_t feature_count() const { return k_; }
  std::size_t filters() const { return filters_; }
  std::size_t out_features() const { return ops_.size() * filters_; }
  const std::vector<PoolOp>& ops() const { return ops_; }

  Parameter& kernel() { return kernel_; }
  Parameter& bias() { return bias_; }

 private:
  /// Stage 1 of the backward pass, shared by backward()/backward_input():
  /// route pooled gradients to the per-(sample, landmark, filter) dF.
  std::vector<double> route_pooled_grads(const Matrix& grad_pooled) const;

  std::size_t k_;
  std::size_t filters_;
  std::vector<PoolOp> ops_;
  Parameter kernel_;  // (f x k)
  Parameter bias_;    // (1 x f)

  // Forward caches (valid until the next forward call).
  Matrix land_;
  Matrix mask_;
  std::size_t batch_ = 0;
  std::size_t landmarks_ = 0;
  std::vector<double> conv_;  // (B, L, f): F[λ] values, 0 where unavailable
};

}  // namespace diagnet::nn
