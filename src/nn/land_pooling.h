// LandPooling (paper §III-C): a non-overlapping convolution with a kernel
// shared across landmarks, followed by a bank of commutative global pooling
// operators applied across landmarks, element-wise per filter.
//
//   F[λ] = K · x[λ] + b            (K ∈ R^{f×k}, b ∈ R^f, per landmark λ)
//   out  = concat_{Ω ∈ ops} Ω_{λ available} F[λ]   ∈ R^{ops·f}
//
// Because every pooling operator is invariant to landmark order and accepts
// any number of arguments, the output dimension is independent of how many
// landmarks were probed — the property that makes DiagNet root-cause
// extensible (new landmarks can be fed to a trained model).
//
// The backward pass is exact for all operators, including the interpolated
// deciles (gradient routed to the two order statistics that define the
// interpolation). Input gradients are produced because the attention step
// differentiates the loss w.r.t. raw features.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace diagnet::nn {

/// Global pooling operators; the decile entries implement the "p10, ...,
/// p90" row of Table I with linear interpolation between order statistics.
enum class PoolOp {
  Min,
  Max,
  Avg,
  Var,
  P10,
  P20,
  P30,
  P40,
  P50,
  P60,
  P70,
  P80,
  P90,
};

/// Table I's operator set: min, max, avg, variance, p10..p90 (13 ops).
std::vector<PoolOp> default_pool_ops();

const char* pool_op_name(PoolOp op);

class LandPooling {
 public:
  /// Per-thread forward/backward state for the workspace training path:
  /// everything the member-cache path stores on the layer lives here
  /// instead, so any number of shards can run forward/backward_params
  /// concurrently against one shared (const) LandPooling. Holds pointers
  /// to the caller's land/mask batch, which must outlive the matching
  /// backward_params() call. All buffers are reused capacity-aware.
  struct PoolContext {
    const Matrix* land = nullptr;
    const Matrix* mask = nullptr;
    std::size_t batch = 0;
    std::size_t landmarks = 0;
    std::vector<double> conv;   // (B, L, f) F[λ] values, 0 where unavailable
    std::vector<double> dconv;  // routed pooled gradients, same layout
    // sort/routing scratch
    std::vector<double> values;
    std::vector<std::size_t> order;
    std::vector<std::size_t> slot_lam;
  };

  /// k features per landmark, `filters` convolution filters, and the pooling
  /// operator bank. Kernel gets He-uniform init; bias starts at zero.
  LandPooling(std::size_t k, std::size_t filters, std::vector<PoolOp> ops,
              util::Rng& rng);

  /// land: (B, L·k) flattened landmark features, landmark-major (features of
  /// landmark λ occupy columns [λ·k, λ·k+k)). Unavailable landmarks may hold
  /// arbitrary values — they are skipped entirely via `mask`.
  /// mask: (B, L), 1.0 = landmark available. Each sample needs ≥1 available.
  /// Returns (B, ops·f).
  Matrix forward(const Matrix& land, const Matrix& mask);

  /// grad_pooled: (B, ops·f). Accumulates kernel/bias gradients and returns
  /// the gradient w.r.t. `land` (zeros at masked-out landmarks).
  Matrix backward(const Matrix& grad_pooled);

  /// Input gradient only: identical routing and dx = K^T · dF as backward(),
  /// but kernel/bias gradients are left untouched. dx does not depend on the
  /// accumulation, so the result is bit-identical to backward()'s — this is
  /// the inference path (gradient attention).
  Matrix backward_input(const Matrix& grad_pooled) const;

  /// Input gradient against a ctx-forward: same math as backward_input(),
  /// but reading the batch from `ctx` instead of the member caches. Rows
  /// are fully independent, so a union batch pooled once and back-propped
  /// once yields, per row, the same bits as pooling each sub-batch alone —
  /// the property the shared-pooling serving path relies on.
  Matrix backward_input_with(PoolContext& ctx, const Matrix& grad_pooled) const;

  /// True when `other` computes the identical pooling function: same k,
  /// filter count, operator bank, and bit-identical kernel/bias values.
  /// Specialized heads fine-tuned with --freeze-kernel keep this true
  /// against their donor, which is what lets the serving router share one
  /// LandPooling pass across services.
  bool same_parameters(const LandPooling& other) const;

  /// Workspace forward: same math as forward(), but all state goes into
  /// `ctx` and the pooled output into `out` (capacity-aware resize). Const,
  /// so training shards can share one layer.
  void forward(const Matrix& land, const Matrix& mask, PoolContext& ctx,
               Matrix& out) const;

  /// Workspace backward, parameter gradients only: dK += Σ dF[λ] ⊗ x[λ] and
  /// db += Σ dF[λ] accumulated into the given (pre-zeroed) buffers. The
  /// input gradient is skipped entirely — training discards it, which saves
  /// the K^T·dF pass the member-path backward() always pays.
  void backward_params(const Matrix& grad_pooled, PoolContext& ctx,
                       Matrix& kernel_grad, Matrix& bias_grad) const;

  std::vector<Parameter*> parameters() { return {&kernel_, &bias_}; }

  std::size_t feature_count() const { return k_; }
  std::size_t filters() const { return filters_; }
  std::size_t out_features() const { return ops_.size() * filters_; }
  const std::vector<PoolOp>& ops() const { return ops_; }

  Parameter& kernel() { return kernel_; }
  Parameter& bias() { return bias_; }

 private:
  /// Convolution stage shared by both forward paths: F[λ] = K·x[λ] + b for
  /// every available landmark, into `conv` (resized/zeroed here).
  void compute_conv(const Matrix& land, const Matrix& mask,
                    std::vector<double>& conv) const;
  /// Pooling stage shared by both forward paths.
  void pool_from_conv(const Matrix& mask, const std::vector<double>& conv,
                      Matrix& out, std::vector<double>& values,
                      std::vector<std::size_t>& order) const;
  /// Stage 1 of every backward pass: route pooled gradients to the
  /// per-(sample, landmark, filter) dF, into `dconv` (resized/zeroed here).
  void route_grads(const Matrix& mask, const std::vector<double>& conv,
                   const Matrix& grad_pooled, std::vector<double>& dconv,
                   std::vector<double>& values, std::vector<std::size_t>& order,
                   std::vector<std::size_t>& slot_lam) const;
  /// Member-cache wrapper over route_grads (legacy backward paths).
  std::vector<double> route_pooled_grads(const Matrix& grad_pooled) const;

  std::size_t k_;
  std::size_t filters_;
  std::vector<PoolOp> ops_;
  Parameter kernel_;  // (f x k)
  Parameter bias_;    // (1 x f)

  // Forward caches (valid until the next forward call).
  Matrix land_;
  Matrix mask_;
  std::size_t batch_ = 0;
  std::size_t landmarks_ = 0;
  std::vector<double> conv_;  // (B, L, f): F[λ] values, 0 where unavailable
};

}  // namespace diagnet::nn
