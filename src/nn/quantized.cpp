#include "nn/quantized.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/require.h"

namespace diagnet::nn {

QuantizedLinear quantize_weights(const tensor::Matrix& weight) {
  QuantizedLinear q;
  if (weight.rows() == 0 || weight.cols() == 0) return q;
  q.in = weight.rows();
  q.out = weight.cols();
  q.weights.resize(q.in * q.out);
  q.scales.resize(q.out);
  for (std::size_t j = 0; j < q.out; ++j) {
    double absmax = 0.0;
    for (std::size_t i = 0; i < q.in; ++i)
      absmax = std::max(absmax, std::fabs(weight(i, j)));
    const float scale =
        absmax > 0.0 ? static_cast<float>(absmax / 127.0) : 1.0f;
    q.scales[j] = scale;
    const double inv = 1.0 / static_cast<double>(scale);
    for (std::size_t i = 0; i < q.in; ++i) {
      const long r = std::lrint(weight(i, j) * inv);
      q.weights[i * q.out + j] =
          static_cast<std::int8_t>(std::clamp(r, -127L, 127L));
    }
  }
  return q;
}

void snap_to_grid(const QuantizedLinear& q, tensor::Matrix& weight) {
  DIAGNET_REQUIRE(weight.rows() == q.in && weight.cols() == q.out);
  for (std::size_t i = 0; i < q.in; ++i)
    for (std::size_t j = 0; j < q.out; ++j)
      weight(i, j) = static_cast<double>(q.weights[i * q.out + j]) *
                           static_cast<double>(q.scales[j]);
}

void quantized_forward(const QuantizedLinear& q, const tensor::Matrix& input,
                       const tensor::Matrix& bias, tensor::Matrix& out) {
  DIAGNET_REQUIRE(q.valid() && input.cols() == q.in);
  DIAGNET_REQUIRE(bias.rows() == 1 && bias.cols() == q.out);
  const std::size_t rows = input.rows();
  out.resize(rows, q.out);
  if (rows == 0) return;
  const tensor::detail::Kernels& K = tensor::detail::active_kernels();
  // Per-thread scratch: quantized_forward is const over the layer and may
  // run concurrently on cloned nets sharing nothing else.
  thread_local std::vector<std::int8_t> qx;
  thread_local std::vector<std::int32_t> acc;
  qx.resize(q.in);
  acc.resize(q.out);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* x = input.row_ptr(r);
    const double absmax = K.reduce_absmax(x, q.in);
    // absmax == 0 => the row is all zeros; any scale maps it to all-zero
    // codes, so 1 is as good (and as safe) as any.
    const float sx =
        absmax > 0.0 ? static_cast<float>(absmax / 127.0) : 1.0f;
    K.quantize_row(x, 1.0 / static_cast<double>(sx), qx.data(), q.in);
    std::fill(acc.begin(), acc.end(), 0);
    K.qgemv(qx.data(), q.weights.data(), q.in, q.out, acc.data());
    double* y = out.row_ptr(r);
    const double* b = bias.data();
    for (std::size_t j = 0; j < q.out; ++j)
      y[j] = static_cast<double>(sx * q.scales[j]) *
                 static_cast<double>(acc[j]) +
             b[j];
  }
}

}  // namespace diagnet::nn
