#include "nn/linear.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/require.h"

namespace diagnet::nn {

Linear::Linear(std::size_t in, std::size_t out, util::Rng& rng)
    : weight_(Matrix(in, out)), bias_(Matrix(1, out)) {
  DIAGNET_REQUIRE(in > 0 && out > 0);
  // He-uniform: U(-limit, limit) with limit = sqrt(6 / fan_in).
  const double limit = std::sqrt(6.0 / static_cast<double>(in));
  for (std::size_t r = 0; r < in; ++r)
    for (std::size_t c = 0; c < out; ++c)
      weight_.value(r, c) = rng.uniform(-limit, limit);
  // Bias stays zero-initialised.
}

Matrix Linear::forward(const Matrix& input) {
  DIAGNET_REQUIRE_MSG(input.cols() == in_features(), "input width mismatch");
  input_ = input;
  Matrix out;
  if (quant_.valid()) {
    quantized_forward(quant_, input, bias_.value, out);
    return out;
  }
  tensor::gemm(input, weight_.value, out);
  tensor::add_row_bias(out, bias_.value);
  return out;
}

Matrix Linear::backward(const Matrix& grad_output) {
  DIAGNET_REQUIRE_MSG(grad_output.rows() == input_.rows() &&
                          grad_output.cols() == out_features(),
                      "backward called with mismatched gradient");
  // dW = X^T · dY, accumulated (a zero_grad happens per optimizer step).
  Matrix dw;
  tensor::gemm_at_b(input_, grad_output, dw);
  weight_.grad += dw;

  Matrix db;
  tensor::sum_rows(grad_output, db);
  bias_.grad += db;

  // dX = dY · W^T.
  Matrix dx;
  tensor::gemm_a_bt(grad_output, weight_.value, dx);
  return dx;
}

void Linear::forward_into(const Matrix& input, Matrix& out) const {
  DIAGNET_REQUIRE_MSG(input.cols() == in_features(), "input width mismatch");
  if (quant_.valid()) {
    quantized_forward(quant_, input, bias_.value, out);
    return;
  }
  tensor::gemm(input, weight_.value, out);
  tensor::add_row_bias(out, bias_.value);
}

void Linear::set_quantized(bool on) {
  if (!on) {
    quant_ = QuantizedLinear{};
    return;
  }
  if (quant_.valid()) return;  // already quantized (and already snapped)
  quant_ = quantize_weights(weight_.value);
  snap_to_grid(quant_, weight_.value);
}

void Linear::backward_into(const Matrix& input, const Matrix& grad_output,
                           Matrix& grad_weight, Matrix& grad_bias,
                           Matrix* grad_input) const {
  DIAGNET_REQUIRE_MSG(grad_output.rows() == input.rows() &&
                          grad_output.cols() == out_features(),
                      "backward called with mismatched gradient");
  tensor::gemm_at_b_acc(input, grad_output, grad_weight);
  tensor::sum_rows_acc(grad_output, grad_bias);
  if (grad_input) tensor::gemm_a_bt(grad_output, weight_.value, *grad_input);
}

Matrix Linear::backward_input(const Matrix& grad_output) const {
  DIAGNET_REQUIRE_MSG(grad_output.cols() == out_features(),
                      "backward called with mismatched gradient");
  Matrix dx;
  tensor::gemm_a_bt(grad_output, weight_.value, dx);
  return dx;
}

}  // namespace diagnet::nn
