// Stateless nonlinearities.
#pragma once

#include "nn/layer.h"

namespace diagnet::nn {

class ReLU final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Matrix input_;  // cached pre-activation for the gradient gate
};

}  // namespace diagnet::nn
