#include "forest/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace diagnet::forest {

namespace {

double gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / total;
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const std::vector<std::size_t>& y,
                       std::size_t classes,
                       const std::vector<std::size_t>& rows,
                       const TreeConfig& config, util::Rng& rng) {
  DIAGNET_REQUIRE(classes >= 2);
  DIAGNET_REQUIRE(y.size() == x.rows());
  DIAGNET_REQUIRE(!rows.empty());
  classes_ = classes;
  nodes_.clear();
  std::vector<std::size_t> work = rows;
  build(x, y, work, 0, config, rng);
}

int DecisionTree::build(const Matrix& x, const std::vector<std::size_t>& y,
                        std::vector<std::size_t>& rows, std::size_t depth,
                        const TreeConfig& config, util::Rng& rng) {
  // Class histogram of this node.
  std::vector<double> counts(classes_, 0.0);
  for (std::size_t r : rows) {
    DIAGNET_REQUIRE(y[r] < classes_);
    counts[y[r]] += 1.0;
  }
  const auto total = static_cast<double>(rows.size());

  const auto make_leaf = [&]() -> int {
    Node leaf;
    leaf.proba.resize(classes_);
    for (std::size_t c = 0; c < classes_; ++c) leaf.proba[c] = counts[c] / total;
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size() - 1);
  };

  const double node_gini = gini(counts, total);
  if (depth >= config.max_depth || rows.size() < config.min_samples_split ||
      node_gini == 0.0) {
    return make_leaf();
  }

  // Candidate features: a random subset of size max_features.
  const std::size_t m = x.cols();
  std::size_t mtry = config.max_features;
  if (mtry == 0)
    mtry = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(m))));
  mtry = std::min(mtry, m);
  const std::vector<std::size_t> features =
      rng.sample_without_replacement(m, mtry);

  // Best weighted-Gini split over candidate features.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = node_gini;

  std::vector<std::pair<double, std::size_t>> sorted;  // (value, label)
  for (std::size_t f : features) {
    sorted.clear();
    sorted.reserve(rows.size());
    for (std::size_t r : rows) sorted.emplace_back(x(r, f), y[r]);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    std::vector<double> left_counts(classes_, 0.0);
    std::vector<double> right_counts = counts;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      left_counts[sorted[i].second] += 1.0;
      right_counts[sorted[i].second] -= 1.0;
      // Only split between distinct values.
      if (sorted[i].first == sorted[i + 1].first) continue;
      const double nl = static_cast<double>(i + 1);
      const double nr = total - nl;
      if (nl < config.min_samples_leaf || nr < config.min_samples_leaf)
        continue;
      const double impurity =
          (nl * gini(left_counts, nl) + nr * gini(right_counts, nr)) / total;
      if (impurity < best_impurity - 1e-12) {
        best_impurity = impurity;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition rows in place.
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    if (x(r, static_cast<std::size_t>(best_feature)) < best_threshold)
      left_rows.push_back(r);
    else
      right_rows.push_back(r);
  }
  DIAGNET_REQUIRE(!left_rows.empty() && !right_rows.empty());

  // Reserve our slot before recursing (children get later indices).
  nodes_.emplace_back();
  const auto self = static_cast<int>(nodes_.size() - 1);
  const int left = build(x, y, left_rows, depth + 1, config, rng);
  const int right = build(x, y, right_rows, depth + 1, config, rng);
  nodes_[self].feature = best_feature;
  nodes_[self].threshold = best_threshold;
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

std::vector<double> DecisionTree::predict_proba(const double* sample) const {
  DIAGNET_REQUIRE_MSG(trained(), "predict on an unfitted tree");
  int idx = 0;
  while (nodes_[idx].feature >= 0) {
    const Node& node = nodes_[idx];
    idx = sample[node.feature] < node.threshold ? node.left : node.right;
  }
  return nodes_[idx].proba;
}

std::size_t DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree structure.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, std::size_t>> stack{{0, 1}};
  std::size_t deepest = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    deepest = std::max(deepest, d);
    const Node& node = nodes_[idx];
    if (node.feature >= 0) {
      stack.emplace_back(node.left, d + 1);
      stack.emplace_back(node.right, d + 1);
    }
  }
  return deepest;
}

}  // namespace diagnet::forest

namespace diagnet::forest {

void DecisionTree::save(util::BinaryWriter& writer) const {
  writer.write_u64(0xd7ee0001ULL);
  writer.write_u64(classes_);
  writer.write_u64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.write_u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(node.feature)));
    writer.write_double(node.threshold);
    writer.write_u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(node.left)));
    writer.write_u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(node.right)));
    writer.write_doubles(node.proba);
  }
}

void DecisionTree::load(util::BinaryReader& reader) {
  reader.expect_u64(0xd7ee0001ULL, "DecisionTree");
  classes_ = static_cast<std::size_t>(reader.read_u64());
  const std::uint64_t count = reader.read_u64();
  nodes_.clear();
  nodes_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Node node;
    node.feature = static_cast<int>(static_cast<std::int64_t>(reader.read_u64()));
    node.threshold = reader.read_double();
    node.left = static_cast<int>(static_cast<std::int64_t>(reader.read_u64()));
    node.right = static_cast<int>(static_cast<std::int64_t>(reader.read_u64()));
    node.proba = reader.read_doubles();
    nodes_.push_back(std::move(node));
  }
}

}  // namespace diagnet::forest
