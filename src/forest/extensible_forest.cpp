#include "forest/extensible_forest.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/require.h"

namespace diagnet::forest {

void ExtensibleForest::fit(const Matrix& x,
                           const std::vector<std::size_t>& y_cause,
                           std::size_t total_causes,
                           const ForestConfig& config, std::uint64_t seed) {
  DIAGNET_SPAN("forest.fit");
  DIAGNET_REQUIRE(total_causes > 0);
  DIAGNET_REQUIRE(y_cause.size() == x.rows());
  total_causes_ = total_causes;

  // Map the causes present in training data to compact class indices.
  class_to_cause_.clear();
  std::vector<std::size_t> cause_to_class(total_causes,
                                          static_cast<std::size_t>(-1));
  for (std::size_t label : y_cause) {
    if (label == kNominal) continue;
    DIAGNET_REQUIRE(label < total_causes);
    if (cause_to_class[label] == static_cast<std::size_t>(-1)) {
      cause_to_class[label] = class_to_cause_.size();
      class_to_cause_.push_back(label);
    }
  }
  DIAGNET_REQUIRE_MSG(!class_to_cause_.empty(),
                      "training data contains no faulty sample");
  std::sort(class_to_cause_.begin(), class_to_cause_.end());
  for (std::size_t c = 0; c < class_to_cause_.size(); ++c)
    cause_to_class[class_to_cause_[c]] = c;

  // The "unknown" class takes the last internal index.
  const std::size_t unknown_class = class_to_cause_.size();
  std::vector<std::size_t> labels(y_cause.size());
  for (std::size_t i = 0; i < y_cause.size(); ++i) {
    labels[i] = (y_cause[i] == kNominal) ? unknown_class
                                         : cause_to_class[y_cause[i]];
  }
  forest_.fit(x, labels, unknown_class + 1, config, seed);
}

std::vector<double> ExtensibleForest::score_causes(
    const double* sample) const {
  DIAGNET_SPAN("forest.score");
  DIAGNET_COUNT("forest.predictions");
  DIAGNET_REQUIRE_MSG(trained(), "score on an unfitted model");
  const std::vector<double> proba = forest_.predict_proba(sample);
  const double unknown_share =
      proba.back() / static_cast<double>(total_causes_);
  std::vector<double> scores(total_causes_, unknown_share);
  for (std::size_t c = 0; c < class_to_cause_.size(); ++c)
    scores[class_to_cause_[c]] += proba[c];
  return scores;
}

std::vector<double> ExtensibleForest::score_causes(
    const std::vector<double>& sample) const {
  return score_causes(sample.data());
}

double ExtensibleForest::unknown_probability(const double* sample) const {
  DIAGNET_REQUIRE_MSG(trained(), "score on an unfitted model");
  return forest_.predict_proba(sample).back();
}

}  // namespace diagnet::forest

namespace diagnet::forest {

void ExtensibleForest::save(util::BinaryWriter& writer) const {
  writer.write_u64(0xe47e4500ULL);
  writer.write_u64(total_causes_);
  writer.write_indices(class_to_cause_);
  forest_.save(writer);
}

void ExtensibleForest::load(util::BinaryReader& reader) {
  reader.expect_u64(0xe47e4500ULL, "ExtensibleForest");
  total_causes_ = static_cast<std::size_t>(reader.read_u64());
  class_to_cause_ = reader.read_indices();
  forest_.load(reader);
}

}  // namespace diagnet::forest
