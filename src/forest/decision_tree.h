// CART classification tree with the Gini impurity criterion — the building
// block of the Random-Forest auxiliary model (paper Table I: Gini, 50
// estimators, max depth 10).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"
#include "util/binary_io.h"
#include "util/rng.h"

namespace diagnet::forest {

using tensor::Matrix;

struct TreeConfig {
  std::size_t max_depth = 10;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features considered per split; 0 selects floor(sqrt(m)) (the usual
  /// random-forest default).
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  /// Fit on the rows of X listed in `rows` (bootstrap indices may repeat).
  /// y holds integer class labels in [0, classes).
  void fit(const Matrix& x, const std::vector<std::size_t>& y,
           std::size_t classes, const std::vector<std::size_t>& rows,
           const TreeConfig& config, util::Rng& rng);

  /// Class distribution at the leaf reached by `sample` (sums to 1).
  std::vector<double> predict_proba(const double* sample) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;
  std::size_t classes() const { return classes_; }
  bool trained() const { return !nodes_.empty(); }

  /// Binary (de)serialisation of the fitted structure.
  void save(util::BinaryWriter& writer) const;
  void load(util::BinaryReader& reader);

 private:
  struct Node {
    // Internal node: split on feature < threshold -> left, else right.
    // Leaf: feature == -1, proba holds the class distribution.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> proba;
  };

  int build(const Matrix& x, const std::vector<std::size_t>& y,
            std::vector<std::size_t>& rows, std::size_t depth,
            const TreeConfig& config, util::Rng& rng);

  std::vector<Node> nodes_;
  std::size_t classes_ = 0;
};

}  // namespace diagnet::forest
