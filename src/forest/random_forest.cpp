#include "forest/random_forest.h"

#include <algorithm>

#include "util/require.h"
#include "util/thread_pool.h"

namespace diagnet::forest {

void RandomForest::fit(const Matrix& x, const std::vector<std::size_t>& y,
                       std::size_t classes, const ForestConfig& config,
                       std::uint64_t seed) {
  DIAGNET_REQUIRE(config.n_estimators > 0);
  DIAGNET_REQUIRE(x.rows() > 0 && y.size() == x.rows());
  classes_ = classes;
  trees_.assign(config.n_estimators, DecisionTree{});

  const util::Rng root(seed);
  const std::size_t n = x.rows();
  util::parallel_for(config.n_estimators, [&](std::size_t t) {
    util::Rng rng = root.fork(t);
    // Bootstrap sample: n draws with replacement.
    std::vector<std::size_t> rows(n);
    for (auto& r : rows) r = static_cast<std::size_t>(rng.uniform_index(n));
    trees_[t].fit(x, y, classes, rows, config.tree, rng);
  });
}

std::vector<double> RandomForest::predict_proba(const double* sample) const {
  DIAGNET_REQUIRE_MSG(trained(), "predict on an unfitted forest");
  std::vector<double> proba(classes_, 0.0);
  for (const auto& tree : trees_) {
    const std::vector<double> p = tree.predict_proba(sample);
    for (std::size_t c = 0; c < classes_; ++c) proba[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (auto& p : proba) p *= inv;
  return proba;
}

std::vector<double> RandomForest::predict_proba(
    const std::vector<double>& sample) const {
  return predict_proba(sample.data());
}

std::size_t RandomForest::predict(const double* sample) const {
  const std::vector<double> p = predict_proba(sample);
  return static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace diagnet::forest

namespace diagnet::forest {

void RandomForest::save(util::BinaryWriter& writer) const {
  writer.write_u64(0xf03e5700ULL);
  writer.write_u64(classes_);
  writer.write_u64(trees_.size());
  for (const DecisionTree& tree : trees_) tree.save(writer);
}

void RandomForest::load(util::BinaryReader& reader) {
  reader.expect_u64(0xf03e5700ULL, "RandomForest");
  classes_ = static_cast<std::size_t>(reader.read_u64());
  const std::uint64_t count = reader.read_u64();
  trees_.assign(count, DecisionTree{});
  for (auto& tree : trees_) tree.load(reader);
}

}  // namespace diagnet::forest
