// The paper's "Extensible Random Forest Classifier" baseline (§IV-B.a),
// also used as the auxiliary model inside DiagNet's ensemble averaging
// (§III-F):
//
//  * the feature dimension is fixed to the maximum landmark fleet; features
//    of landmarks missing at training time are zero-filled upstream;
//  * output classes are the root causes observed during training plus a
//    special "unknown" class trained on nominal samples;
//  * at inference, the unknown-class probability mass is redistributed
//    evenly over every possible root cause, so causes never seen during
//    training still receive a non-null score.
#pragma once

#include <cstddef>
#include <vector>

#include "forest/random_forest.h"

namespace diagnet::forest {

class ExtensibleForest {
 public:
  /// Label value marking a nominal (fault-free) sample in `y_cause`.
  static constexpr std::size_t kNominal = static_cast<std::size_t>(-1);

  /// y_cause[i]: the root-cause index in [0, total_causes) of sample i, or
  /// kNominal. `total_causes` is the full root-cause space (m in the paper),
  /// including causes absent from the training data.
  void fit(const Matrix& x, const std::vector<std::size_t>& y_cause,
           std::size_t total_causes, const ForestConfig& config,
           std::uint64_t seed);

  /// Scores over all root causes (length total_causes, sums to 1).
  std::vector<double> score_causes(const double* sample) const;
  std::vector<double> score_causes(const std::vector<double>& sample) const;

  /// Probability assigned to the "unknown" (nominal) class before
  /// redistribution — exposed for diagnostics and tests.
  double unknown_probability(const double* sample) const;

  std::size_t total_causes() const { return total_causes_; }
  /// Root causes that had at least one training sample.
  const std::vector<std::size_t>& trained_causes() const {
    return class_to_cause_;
  }
  bool trained() const { return forest_.trained(); }

  void save(util::BinaryWriter& writer) const;
  void load(util::BinaryReader& reader);

 private:
  RandomForest forest_;
  std::vector<std::size_t> class_to_cause_;  // internal class -> cause index
  std::size_t total_causes_ = 0;
};

}  // namespace diagnet::forest
