// Bagged ensemble of CART trees. Trees are trained in parallel; every tree
// derives its bootstrap and split randomness from fork(tree_index), so the
// fitted forest is identical regardless of thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "forest/decision_tree.h"

namespace diagnet::forest {

struct ForestConfig {
  std::size_t n_estimators = 50;
  TreeConfig tree;
};

class RandomForest {
 public:
  /// Fit on all rows of X; labels in [0, classes).
  void fit(const Matrix& x, const std::vector<std::size_t>& y,
           std::size_t classes, const ForestConfig& config,
           std::uint64_t seed);

  /// Mean of per-tree leaf distributions (sums to 1).
  std::vector<double> predict_proba(const double* sample) const;
  std::vector<double> predict_proba(const std::vector<double>& sample) const;

  /// argmax of predict_proba.
  std::size_t predict(const double* sample) const;

  std::size_t classes() const { return classes_; }
  std::size_t tree_count() const { return trees_.size(); }
  bool trained() const { return !trees_.empty(); }

  void save(util::BinaryWriter& writer) const;
  void load(util::BinaryReader& reader);

 private:
  std::vector<DecisionTree> trees_;
  std::size_t classes_ = 0;
};

}  // namespace diagnet::forest
