#include "netsim/simulator.h"

#include <algorithm>

#include "util/require.h"
#include "util/stats.h"

namespace diagnet::netsim {

Simulator::Simulator(Topology topology, std::vector<Service> services,
                     std::uint64_t seed)
    : topology_(std::move(topology)),
      services_(std::move(services)),
      seed_(seed),
      path_model_(topology_, seed) {
  DIAGNET_REQUIRE(!services_.empty());
  for (const Service& s : services_)
    DIAGNET_REQUIRE(s.host_region < topology_.region_count());
}

Simulator Simulator::make_default(std::uint64_t seed) {
  Topology topology = default_topology();
  std::vector<Service> services = default_services(topology);
  return Simulator(std::move(topology), std::move(services), seed);
}

std::vector<LandmarkMeasurement> Simulator::probe_landmarks(
    const ClientProfile& client, const ClientCondition& condition,
    double time_hours, const ActiveFaults& faults, util::Rng& rng) const {
  return probe_landmarks(path_model_, client, condition, time_hours, faults,
                         rng);
}

std::vector<LandmarkMeasurement> Simulator::probe_landmarks(
    const PathProvider& paths, const ClientProfile& client,
    const ClientCondition& condition, double time_hours,
    const ActiveFaults& faults, util::Rng& rng) const {
  std::vector<LandmarkMeasurement> out;
  out.reserve(landmark_count());
  for (std::size_t lam = 0; lam < landmark_count(); ++lam) {
    const PathState path = paths.path(client.region, lam, time_hours, faults);
    out.push_back(measure_landmark(path, client, condition, rng));
  }
  return out;
}

LocalMeasurement Simulator::measure_local(const ClientProfile& client,
                                          const ClientCondition& condition,
                                          double time_hours,
                                          util::Rng& rng) const {
  return netsim::measure_local(client, condition, time_hours, rng);
}

double Simulator::visit(std::size_t service_idx, const ClientProfile& client,
                        const ClientCondition& condition, double time_hours,
                        const ActiveFaults& faults, util::Rng& rng) const {
  return visit(service_idx, path_model_, client, condition, time_hours,
               faults, rng);
}

double Simulator::visit(std::size_t service_idx, const PathProvider& paths,
                        const ClientProfile& client,
                        const ClientCondition& condition, double time_hours,
                        const ActiveFaults& faults, util::Rng& rng) const {
  DIAGNET_REQUIRE(service_idx < services_.size());
  return page_load_ms(services_[service_idx], paths, client, condition,
                      time_hours, faults, rng);
}

void Simulator::calibrate_qoe(std::size_t visits_per_cell) {
  DIAGNET_REQUIRE(visits_per_cell >= 8);
  const std::size_t regions = topology_.region_count();
  qoe_threshold_.assign(services_.size() * regions, 0.0);

  const util::Rng root(seed_ ^ 0xca11b8a7edULL);
  const ActiveFaults no_faults;
  for (std::size_t s = 0; s < services_.size(); ++s) {
    for (std::size_t r = 0; r < regions; ++r) {
      util::Rng rng = root.fork(s * regions + r);
      std::vector<double> plts;
      plts.reserve(visits_per_cell);
      // A small population of distinct clients at varied times of day, so
      // the threshold reflects the cell, not one access link.
      for (std::size_t v = 0; v < visits_per_cell; ++v) {
        const ClientProfile client =
            ClientProfile::make(r, 900000 + v % 8, seed_);
        const double t = rng.uniform(0.0, 24.0);
        plts.push_back(visit(s, client, ClientCondition{}, t, no_faults, rng));
      }
      const double median = util::percentile(std::move(plts), 0.5);
      qoe_threshold_[s * regions + r] = 1.5 * median + 100.0;
    }
  }
}

bool Simulator::qoe_degraded(std::size_t service_idx,
                             std::size_t client_region, double plt_ms) const {
  return plt_ms > qoe_threshold(service_idx, client_region);
}

double Simulator::qoe_threshold(std::size_t service_idx,
                                std::size_t client_region) const {
  DIAGNET_REQUIRE_MSG(qoe_calibrated(), "call calibrate_qoe() first");
  DIAGNET_REQUIRE(service_idx < services_.size() &&
                  client_region < topology_.region_count());
  return qoe_threshold_[service_idx * topology_.region_count() +
                        client_region];
}

}  // namespace diagnet::netsim
