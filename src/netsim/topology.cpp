#include "netsim/topology.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace diagnet::netsim {

const char* provider_name(Provider provider) {
  switch (provider) {
    case Provider::Aws: return "aws";
    case Provider::Azure: return "azure";
    case Provider::Gcp: return "gcp";
    case Provider::Ovh: return "ovh";
  }
  return "?";
}

Topology::Topology(std::vector<Region> regions)
    : regions_(std::move(regions)) {
  DIAGNET_REQUIRE(!regions_.empty());
  const std::size_t n = regions_.size();
  distance_km_.assign(n * n, 0.0);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      distance_km_[a * n + b] =
          great_circle_km(regions_[a].location, regions_[b].location);
}

const Region& Topology::region(std::size_t idx) const {
  DIAGNET_REQUIRE(idx < regions_.size());
  return regions_[idx];
}

std::size_t Topology::index_of(const std::string& code) const {
  for (std::size_t i = 0; i < regions_.size(); ++i)
    if (regions_[i].code == code) return i;
  DIAGNET_REQUIRE_MSG(false, "unknown region code: " + code);
}

double Topology::distance_km(std::size_t a, std::size_t b) const {
  DIAGNET_REQUIRE(a < regions_.size() && b < regions_.size());
  return distance_km_[a * regions_.size() + b];
}

double Topology::base_rtt_ms(std::size_t a, std::size_t b) const {
  if (a == b) return 2.0;
  const double prop = 2.0 * propagation_delay_ms(distance_km(a, b));
  // Cross-provider paths traverse public peering points; same-provider
  // traffic rides the provider backbone.
  const double peering =
      regions_[a].provider == regions_[b].provider ? 2.0 : 8.0;
  return prop + peering;
}

double Topology::base_bandwidth_mbps(std::size_t a, std::size_t b) const {
  if (a == b) return 900.0;
  // Per-flow throughput decays with path length (more contention hops);
  // same-provider backbones sustain more.
  const double dist = distance_km(a, b);
  const double base = 600.0 / (1.0 + dist / 4000.0);
  const double backbone =
      regions_[a].provider == regions_[b].provider ? 1.25 : 1.0;
  return std::max(60.0, base * backbone);
}

Topology default_topology() {
  return Topology({
      {"EAST", Provider::Aws, {39.0, -77.5}},     // N. Virginia
      {"SEAT", Provider::Azure, {47.6, -122.3}},  // Seattle
      {"BEAU", Provider::Ovh, {45.3, -73.9}},     // Beauharnois (QC)
      {"GRAV", Provider::Ovh, {51.0, 2.1}},       // Gravelines (FR)
      {"AMST", Provider::Azure, {52.4, 4.9}},     // Amsterdam
      {"LOND", Provider::Gcp, {51.5, -0.1}},      // London
      {"FRAN", Provider::Aws, {50.1, 8.7}},       // Frankfurt
      {"SING", Provider::Gcp, {1.35, 103.8}},     // Singapore
      {"TOKY", Provider::Aws, {35.7, 139.7}},     // Tokyo
      {"SYDN", Provider::Azure, {-33.9, 151.2}},  // Sydney
  });
}

namespace {
std::vector<std::size_t> indices_of(const Topology& topology,
                                    const std::vector<std::string>& codes) {
  std::vector<std::size_t> out;
  out.reserve(codes.size());
  for (const auto& code : codes) out.push_back(topology.index_of(code));
  return out;
}
}  // namespace

std::vector<std::size_t> default_service_regions(const Topology& topology) {
  return indices_of(topology, {"GRAV", "SEAT", "SING"});
}

std::vector<std::size_t> default_fault_regions(const Topology& topology) {
  return indices_of(topology, {"SEAT", "BEAU", "GRAV", "AMST", "SING"});
}

std::vector<std::size_t> default_hidden_landmarks(const Topology& topology) {
  return indices_of(topology, {"EAST", "GRAV", "SEAT"});
}

}  // namespace diagnet::netsim
