#include "netsim/fault.h"

#include "util/require.h"

namespace diagnet::netsim {

const char* fault_family_name(FaultFamily family) {
  switch (family) {
    case FaultFamily::Nominal: return "nominal";
    case FaultFamily::Uplink: return "uplink";
    case FaultFamily::Latency: return "latency";
    case FaultFamily::Jitter: return "jitter";
    case FaultFamily::Loss: return "loss";
    case FaultFamily::Bandwidth: return "bandwidth";
    case FaultFamily::Load: return "load";
  }
  return "?";
}

bool is_remote_family(FaultFamily family) {
  switch (family) {
    case FaultFamily::Latency:
    case FaultFamily::Jitter:
    case FaultFamily::Loss:
    case FaultFamily::Bandwidth:
      return true;
    default:
      return false;
  }
}

FaultSpec default_fault(FaultFamily family, std::size_t region) {
  switch (family) {
    case FaultFamily::Uplink:
      return {family, region, 50.0};  // +50 ms gateway latency
    case FaultFamily::Latency:
      return {family, region, 50.0};  // +50 ms service latency
    case FaultFamily::Jitter:
      return {family, region, 100.0};  // up to +100 ms jitter
    case FaultFamily::Loss:
      return {family, region, 0.08};  // +8% packet loss
    case FaultFamily::Bandwidth:
      return {family, region, 8.0};  // shaped to 8 Mbit/s
    case FaultFamily::Load:
      return {family, region, 0.85};  // heavy CPU stress
    case FaultFamily::Nominal:
      break;
  }
  DIAGNET_REQUIRE_MSG(false, "nominal is not an injectable fault");
}

std::string to_string(const FaultSpec& fault, const std::string& region_code) {
  return std::string(fault_family_name(fault.family)) + "@" + region_code;
}

}  // namespace diagnet::netsim
