// Event-driven client scheduler: the core that replaces "draw N independent
// scenarios" with per-client probe/visit/think state machines at
// million-client scale. Each client holds exactly one pending event (its
// next visit) in a sharded binary heap, so engine state is ~24 bytes per
// client regardless of how many samples the campaign emits.
//
// Determinism contract: the visit schedule of client c is a pure function
// of (seed, c) — cycle 0 starts uniformly inside the campaign window and
// cycle k adds an exponential think time drawn from
// Rng(seed).fork(c).fork(k). Events are released in fixed time windows and
// sorted by (time, client, cycle) before they leave the engine, so the
// emitted order — and therefore the global sample index every consumer
// forks its content randomness from — is identical for any shard count and
// any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace diagnet::netsim {

/// One client visit, in canonical campaign order.
struct Event {
  double time_hours = 0.0;
  std::uint64_t client = 0;  // index in [0, clients)
  std::uint64_t cycle = 0;   // per-client visit counter
};

struct EventEngineConfig {
  std::uint64_t clients = 0;
  double duration_hours = 24.0;
  /// Mean think time between a client's consecutive visits, seconds.
  double mean_think_s = 86400.0;
  std::uint64_t seed = 0;
  /// Heap shards (clients are striped client % shards). Fixed by default —
  /// the canonical sort makes the output shard-invariant anyway, but a
  /// stable default keeps intermediate states comparable in tests.
  std::size_t shards = 64;
  /// Time windows the campaign is released in; each window is merged and
  /// sorted as one batch, bounding peak event memory to roughly
  /// total_events / windows.
  std::size_t windows = 64;
};

class EventEngine {
 public:
  explicit EventEngine(EventEngineConfig config);

  /// Fills `events` with the next window's visits in canonical order
  /// ((time, client, cycle) ascending) and returns true; returns false once
  /// the campaign window is exhausted. A window may legitimately be empty.
  bool next_window(std::vector<Event>* events);

  /// Events handed out so far; after the run, the campaign's sample count.
  std::uint64_t emitted() const { return emitted_; }
  const EventEngineConfig& config() const { return config_; }

 private:
  double think_hours(std::uint64_t client, std::uint64_t cycle) const;

  EventEngineConfig config_;
  util::Rng root_;
  std::vector<std::vector<Event>> heaps_;    // min-heaps, one per shard
  std::vector<std::vector<Event>> released_;  // per-shard scratch
  std::size_t window_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace diagnet::netsim
