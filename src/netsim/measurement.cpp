#include "netsim/measurement.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/require.h"

namespace diagnet::netsim {

ClientProfile ClientProfile::make(std::size_t region, std::uint64_t client_id,
                                  std::uint64_t seed) {
  util::Rng rng = util::Rng(seed).fork(0x10000000ULL + client_id);
  ClientProfile p;
  p.region = region;
  p.gateway_base_ms = rng.uniform(1.0, 6.0);
  p.dns_base_ms = rng.uniform(4.0, 25.0);
  p.cpu_base = rng.uniform(0.05, 0.35);
  p.mem_base = rng.uniform(0.30, 0.65);
  p.access_down_mbps = rng.uniform(80.0, 500.0);
  p.access_up_mbps = p.access_down_mbps * rng.uniform(0.3, 0.6);
  return p;
}

ClientCondition ClientCondition::from_faults(const ActiveFaults& faults,
                                             std::size_t region) {
  ClientCondition condition;
  for (const FaultSpec& fault : faults) {
    if (fault.region != region) continue;
    if (fault.family == FaultFamily::Uplink)
      condition.gateway_extra_ms += fault.magnitude;
    else if (fault.family == FaultFamily::Load)
      condition.cpu_stress = std::max(condition.cpu_stress, fault.magnitude);
  }
  return condition;
}

double effective_gateway_ms(const ClientProfile& profile,
                            const ClientCondition& condition) {
  return profile.gateway_base_ms + condition.gateway_extra_ms;
}

LandmarkMeasurement measure_landmark(const PathState& path,
                                     const ClientProfile& profile,
                                     const ClientCondition& condition,
                                     util::Rng& rng) {
  LandmarkMeasurement m;
  const double gateway = effective_gateway_ms(profile, condition);
  const double rtt = gateway + path.rtt_ms;

  // WebSocket RTT: one sample, jittered.
  m.latency_ms =
      rtt + path.jitter_ms * std::abs(rng.normal()) + rng.uniform(0.0, 0.5);

  // Jitter estimated over a burst — a noisy but unbiased view.
  m.jitter_ms = std::max(0.0, path.jitter_ms * rng.lognormal(0.0, 0.25));

  // Retransmit ratio from ~200 packets of the throughput transfers:
  // normal approximation of the binomial proportion.
  constexpr double kPackets = 200.0;
  const double p = std::clamp(path.loss_rate, 0.0, 1.0);
  const double se = std::sqrt(std::max(p * (1.0 - p), 1e-9) / kPackets);
  m.loss_ratio = std::clamp(p + se * rng.normal(), 0.0, 1.0);

  // Goodput: TCP model over the WAN path, capped by the client access link.
  const double down =
      tcp_throughput_mbps(std::min(path.down_mbps, profile.access_down_mbps),
                          rtt, path.loss_rate);
  const double up =
      tcp_throughput_mbps(std::min(path.up_mbps, profile.access_up_mbps),
                          rtt, path.loss_rate);
  m.down_mbps = std::max(0.05, down * rng.lognormal(0.0, 0.15));
  m.up_mbps = std::max(0.05, up * rng.lognormal(0.0, 0.15));
  return m;
}

LocalMeasurement measure_local(const ClientProfile& profile,
                               const ClientCondition& condition,
                               double time_hours, util::Rng& rng) {
  LocalMeasurement m;
  const double gateway = effective_gateway_ms(profile, condition);
  m.gateway_rtt_ms = gateway + std::abs(rng.normal(0.0, 0.3));

  // Mild diurnal host activity on top of the client's idle level.
  const double diurnal =
      0.05 * (1.0 + std::sin(2.0 * std::numbers::pi * time_hours / 24.0));
  const double cpu =
      profile.cpu_base + diurnal + condition.cpu_stress + rng.normal(0.0, 0.03);
  m.cpu_load = std::clamp(cpu, 0.0, 1.0);
  m.mem_load = std::clamp(
      profile.mem_base + 0.25 * condition.cpu_stress + rng.normal(0.0, 0.04),
      0.0, 1.0);
  m.proc_load = std::clamp(0.8 * m.cpu_load + rng.normal(0.0, 0.05), 0.0, 1.0);

  // DNS queries traverse the gateway: an uplink fault inflates them too
  // (a hidden correlation the models must disentangle).
  m.dns_ms = profile.dns_base_ms + condition.gateway_extra_ms +
             std::abs(rng.normal(0.0, 2.0));
  return m;
}

}  // namespace diagnet::netsim
