// Flow-level corrections layered onto the base PathModel, after SimGrid's
// validated TCP flow model: only ~97% of the nominal bandwidth is usable
// payload (TCP/IP header overhead), the first congestion window costs an
// extra slow-start latency (SimGrid's empirical 13.01 first-window factor),
// the reverse ACK flow consumes a 0.05 bandwidth share, and concurrent
// flows contend for the inter-region links by bandwidth sharing.
//
// Contention is analytic: the expected number of concurrent flows per link
// is a pure function of the emulated client population and the time of day
// (diurnal activity curve), never of other samples. That keeps every path
// lookup a deterministic function of (src, dst, t, faults) — the property
// the fork-keyed campaign generator needs to stay bit-reproducible across
// worker threads.
#pragma once

#include "netsim/path_model.h"

namespace diagnet::netsim {

struct FlowConfig {
  /// Share of the nominal bandwidth usable as payload (header overhead).
  double effective_bandwidth = 0.97;
  /// First-window latency multiplier; the extra (factor - 1) x one-way
  /// delay is charged once per transfer via PathState::slow_start_ms.
  double slow_start_latency_factor = 13.01;
  /// Bandwidth share consumed by the reverse cross-traffic ACK flow.
  double cross_traffic_factor = 0.05;
  /// Emulated clients per active region (drives link contention).
  double clients_per_region = 0.0;
  /// Fraction of time a client keeps a flow in progress.
  double duty_cycle = 0.01;
  /// Concurrent flows an inter-region link absorbs before its bandwidth is
  /// shared between them.
  double link_flow_capacity = 1000.0;
  /// Peak hour of the diurnal activity curve.
  double activity_peak_hour = 20.0;
};

/// Decorates a PathModel with the flow-level terms above. Faults pass
/// through unchanged — they are applied by the base model, and the
/// flow-level scaling on top keeps the causal structure (a fault in region
/// R still perturbs exactly the paths touching R).
class FlowModel final : public PathProvider {
 public:
  explicit FlowModel(const PathModel& base, FlowConfig config = {});

  PathState path(std::size_t src, std::size_t dst, double time_hours,
                 const ActiveFaults& faults) const override;
  const Topology& topology() const override { return base_->topology(); }

  /// Expected concurrent flows per inter-region link at time t (analytic,
  /// deterministic; follows the diurnal activity curve).
  double expected_flows(double time_hours) const;
  /// Bandwidth-sharing divisor at time t (>= 1).
  double contention(double time_hours) const;

  const FlowConfig& config() const { return config_; }

 private:
  const PathModel* base_;
  FlowConfig config_;
};

}  // namespace diagnet::netsim
