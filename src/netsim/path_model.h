// Time-varying characteristics of the WAN path between two regions, with
// injected faults applied. This is the simulator's causal core: a remote
// fault injected in region R perturbs exactly the paths with an endpoint in
// R, which is what lets measurements towards the landmark in R localise the
// fault — the signal DiagNet's inference exploits.
#pragma once

#include <cstdint>

#include "netsim/fault.h"
#include "netsim/topology.h"

namespace diagnet::netsim {

/// Ground-truth state of a directed path at some instant (before
/// measurement noise).
struct PathState {
  double rtt_ms = 0.0;
  double jitter_ms = 0.0;
  double loss_rate = 0.0;
  double down_mbps = 0.0;  // bottleneck bandwidth towards the client
  double up_mbps = 0.0;    // bottleneck bandwidth from the client
  /// One-off latency charged once per transfer for TCP slow start. Only
  /// flow-level providers set it; the base PathModel leaves it at zero.
  double slow_start_ms = 0.0;
};

/// Anything that can answer "what does the path src -> dst look like at
/// time t under these faults". The base PathModel implements it directly;
/// flow-level decorators (FlowModel) layer bandwidth-sharing corrections on
/// top. Implementations must be deterministic pure functions of their
/// arguments — the campaign generator relies on that for fork-keyed
/// reproducibility.
class PathProvider {
 public:
  virtual ~PathProvider() = default;
  virtual PathState path(std::size_t src, std::size_t dst, double time_hours,
                         const ActiveFaults& faults) const = 0;
  virtual const Topology& topology() const = 0;
};

/// Steady-state TCP throughput (Mbit/s) for a path: the bottleneck
/// bandwidth capped by a Mathis-style loss/RTT bound, scaled for a modern
/// browser (parallel connections + window scaling). Loss is floored at 1e-5
/// to keep the bound finite.
double tcp_throughput_mbps(double bottleneck_mbps, double rtt_ms,
                           double loss_rate);

class PathModel : public PathProvider {
 public:
  /// Static per-path factors (congestion phase/amplitude, base loss and
  /// jitter draws) derive from `seed` only.
  PathModel(const Topology& topology, std::uint64_t seed);

  /// State of the directed path src -> dst at `time_hours` (hours since the
  /// campaign start; congestion follows a 24 h cycle), with every fault in
  /// `faults` applied. Deterministic: no internal RNG consumption.
  PathState path(std::size_t src, std::size_t dst, double time_hours,
                 const ActiveFaults& faults) const override;

  /// Same, without faults (used for QoE threshold calibration).
  PathState nominal_path(std::size_t src, std::size_t dst,
                         double time_hours) const;

  const Topology& topology() const override { return *topology_; }

 private:
  struct PathFactors {
    double congestion_phase_h = 0.0;  // diurnal peak offset
    double congestion_amp = 0.0;      // peak relative slowdown
    double base_loss = 0.0;
    double base_jitter_ms = 0.0;
  };

  const PathFactors& factors(std::size_t src, std::size_t dst) const;

  const Topology* topology_;
  std::vector<PathFactors> factors_;  // dense (n x n)
};

}  // namespace diagnet::netsim
