#include "netsim/geo.h"

#include <cmath>
#include <numbers>

namespace diagnet::netsim {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kFibreKmPerMs = 200.0;
constexpr double kRouteInflation = 1.5;

double radians(double deg) { return deg * std::numbers::pi / 180.0; }
}  // namespace

double great_circle_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = radians(a.latitude_deg);
  const double lat2 = radians(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = radians(b.longitude_deg - a.longitude_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_delay_ms(double distance_km) {
  return distance_km * kRouteInflation / kFibreKmPerMs;
}

}  // namespace diagnet::netsim
