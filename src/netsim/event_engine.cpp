#include "netsim/event_engine.h"

#include <algorithm>
#include <tuple>

#include "util/require.h"
#include "util/thread_pool.h"

namespace diagnet::netsim {

namespace {

// Min-heap order (std::*_heap build max-heaps, so compare greater-than).
// The (client, cycle) tie-break is cosmetic inside a heap but keeps pops
// deterministic even for equal timestamps.
bool heap_after(const Event& a, const Event& b) {
  return std::tie(a.time_hours, a.client, a.cycle) >
         std::tie(b.time_hours, b.client, b.cycle);
}

bool canonical_before(const Event& a, const Event& b) {
  return std::tie(a.time_hours, a.client, a.cycle) <
         std::tie(b.time_hours, b.client, b.cycle);
}

}  // namespace

EventEngine::EventEngine(EventEngineConfig config)
    : config_(config), root_(config.seed) {
  DIAGNET_REQUIRE(config_.duration_hours > 0.0);
  DIAGNET_REQUIRE(config_.mean_think_s > 0.0);
  DIAGNET_REQUIRE(config_.windows >= 1);
  if (config_.shards == 0) config_.shards = 64;
  heaps_.resize(config_.shards);
  released_.resize(config_.shards);

  // Seed every client's first visit: uniform over the campaign window.
  util::parallel_for(config_.shards, [&](std::size_t shard) {
    std::vector<Event>& heap = heaps_[shard];
    heap.reserve(config_.clients / config_.shards + 1);
    for (std::uint64_t c = shard; c < config_.clients; c += config_.shards) {
      Event ev;
      ev.time_hours = root_.fork(c).fork(0).uniform(0.0, config_.duration_hours);
      ev.client = c;
      ev.cycle = 0;
      heap.push_back(ev);
    }
    std::make_heap(heap.begin(), heap.end(), heap_after);
  });
}

double EventEngine::think_hours(std::uint64_t client,
                                std::uint64_t cycle) const {
  // Mean think time in hours; exponential inter-visit gaps make each
  // client's schedule a (delayed) Poisson process.
  const double rate = 3600.0 / config_.mean_think_s;
  return root_.fork(client).fork(cycle).exponential(rate);
}

bool EventEngine::next_window(std::vector<Event>* events) {
  events->clear();
  if (window_ >= config_.windows) return false;

  const double window_len = config_.duration_hours / config_.windows;
  // The last window closes exactly at the campaign end so float rounding
  // can never strand an event.
  const double window_end = (window_ + 1 == config_.windows)
                                ? config_.duration_hours
                                : window_len * (window_ + 1);

  util::parallel_for(config_.shards, [&](std::size_t shard) {
    std::vector<Event>& heap = heaps_[shard];
    std::vector<Event>& out = released_[shard];
    out.clear();
    while (!heap.empty() && heap.front().time_hours < window_end) {
      std::pop_heap(heap.begin(), heap.end(), heap_after);
      Event ev = heap.back();
      heap.pop_back();
      out.push_back(ev);
      // Schedule the client's next cycle; clients whose think time carries
      // them past the campaign end simply retire.
      Event next;
      next.time_hours = ev.time_hours + think_hours(ev.client, ev.cycle + 1);
      next.client = ev.client;
      next.cycle = ev.cycle + 1;
      if (next.time_hours < config_.duration_hours) {
        heap.push_back(next);
        std::push_heap(heap.begin(), heap.end(), heap_after);
      }
    }
  });

  std::size_t total = 0;
  for (const auto& out : released_) total += out.size();
  events->reserve(total);
  for (const auto& out : released_)
    events->insert(events->end(), out.begin(), out.end());
  std::sort(events->begin(), events->end(), canonical_before);

  ++window_;
  emitted_ += events->size();
  return true;
}

}  // namespace diagnet::netsim
