// Client-side measurement emulation: what the browser probe actually
// records, i.e. ground-truth path state plus estimation noise (paper
// §IV-A(b): throughput from large GET/POST timings, RTT over WebSocket,
// TCP retransmit statistics via getsockopt).
#pragma once

#include <cstdint>

#include "netsim/fault.h"
#include "netsim/path_model.h"
#include "util/rng.h"

namespace diagnet::netsim {

/// The k = 5 metrics recorded per landmark (Table I).
struct LandmarkMeasurement {
  double latency_ms = 0.0;   // WebSocket RTT estimate
  double jitter_ms = 0.0;    // delay variation over a probe burst
  double loss_ratio = 0.0;   // retransmitted/reordered packet ratio
  double down_mbps = 0.0;    // large-GET goodput
  double up_mbps = 0.0;      // large-POST goodput
};

constexpr std::size_t kMetricsPerLandmark = 5;

/// The 5 landmark-independent local features.
struct LocalMeasurement {
  double gateway_rtt_ms = 0.0;  // RTT to the local network gateway
  double cpu_load = 0.0;        // [0, 1]
  double mem_load = 0.0;        // [0, 1]
  double proc_load = 0.0;       // process/tab pressure, [0, 1]
  double dns_ms = 0.0;          // resolver latency
};

constexpr std::size_t kLocalFeatures = 5;

/// Static per-client conditions (access link, resolver, host habits), drawn
/// once per emulated client from its id.
struct ClientProfile {
  std::size_t region = 0;
  double gateway_base_ms = 0.0;  // healthy gateway RTT
  double dns_base_ms = 0.0;
  double cpu_base = 0.0;   // idle-ish utilisation level
  double mem_base = 0.0;
  double access_down_mbps = 0.0;  // last-mile cap
  double access_up_mbps = 0.0;

  static ClientProfile make(std::size_t region, std::uint64_t client_id,
                            std::uint64_t seed);
};

/// Client-local fault effects at measurement time.
struct ClientCondition {
  double gateway_extra_ms = 0.0;  // Uplink fault magnitude (0 when healthy)
  double cpu_stress = 0.0;        // Load fault magnitude (0 when healthy)

  /// Extract from the active faults for a client in `region`.
  static ClientCondition from_faults(const ActiveFaults& faults,
                                     std::size_t region);
};

/// Effective client-side gateway RTT (base + fault), used by every
/// measurement and page load of the client.
double effective_gateway_ms(const ClientProfile& profile,
                            const ClientCondition& condition);

/// Sample what the browser records when probing a landmark over `path`.
/// The access link caps throughput; latency includes the gateway hop.
LandmarkMeasurement measure_landmark(const PathState& path,
                                     const ClientProfile& profile,
                                     const ClientCondition& condition,
                                     util::Rng& rng);

/// Sample local system metrics. `time_hours` drives a mild diurnal load.
LocalMeasurement measure_local(const ClientProfile& profile,
                               const ClientCondition& condition,
                               double time_hours, util::Rng& rng);

}  // namespace diagnet::netsim
