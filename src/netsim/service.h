// Mock-up online services (paper Table II) and the browser page-load model
// that turns network/path state into a Quality-of-Experience measurement.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netsim/measurement.h"
#include "netsim/path_model.h"

namespace diagnet::netsim {

/// Where a sub-resource is served from.
enum class ResourceSource {
  Host,     // the service's own region, reusing the main connection
  Fixed,    // a fixed region (e.g. a JS file in BEAU), new connection
  Nearest,  // the CDN point of presence nearest to the client
};

struct Resource {
  ResourceSource source = ResourceSource::Host;
  std::size_t fixed_region = 0;  // meaningful for Fixed
  double size_mb = 0.0;
  bool new_connection = true;  // pays an extra TCP+TLS handshake
};

struct Service {
  std::string name;
  std::size_t host_region = 0;
  double html_kb = 30.0;        // main document size
  double base_render_ms = 60.0; // CPU-bound layout/paint time
  std::vector<Resource> resources;
};

/// The paper's six Table-II services plus two richer ones (mixed.cdn,
/// video.far) to reach the 8 training services of §IV-F. Host regions
/// rotate over GRAV, SEAT and SING.
std::vector<Service> default_services(const Topology& topology);

/// Simulated browser page load (milliseconds). Walks the service's critical
/// path: DNS, TCP+TLS handshakes, document and sub-resource transfers
/// (TCP-model goodput per path, plus the provider's slow-start latency once
/// per transfer), then CPU-scaled rendering. Faults enter through `paths`
/// (remote families) and `condition` (Uplink/Load).
double page_load_ms(const Service& service, const PathProvider& paths,
                    const ClientProfile& client,
                    const ClientCondition& condition, double time_hours,
                    const ActiveFaults& faults, util::Rng& rng);

/// Region index of the CDN node nearest to `client_region`.
std::size_t nearest_region(const Topology& topology,
                           std::size_t client_region);

}  // namespace diagnet::netsim
