// Geographic primitives: the latency floor between two cloud regions is set
// by the speed of light in fibre over the great-circle distance.
#pragma once

namespace diagnet::netsim {

struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

/// Great-circle (haversine) distance in kilometres.
double great_circle_km(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay in milliseconds for a fibre path of the given
/// great-circle length: light in fibre travels ≈ 200 km/ms, and real routes
/// detour ≈ 1.3-2x the geodesic; we use a 1.5x route-inflation factor.
double propagation_delay_ms(double distance_km);

}  // namespace diagnet::netsim
