#include "netsim/flow_model.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace diagnet::netsim {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

FlowModel::FlowModel(const PathModel& base, FlowConfig config)
    : base_(&base), config_(config) {
  DIAGNET_REQUIRE(config_.effective_bandwidth > 0.0 &&
                  config_.effective_bandwidth <= 1.0);
  DIAGNET_REQUIRE(config_.slow_start_latency_factor >= 1.0);
  DIAGNET_REQUIRE(config_.cross_traffic_factor >= 0.0);
  DIAGNET_REQUIRE(config_.link_flow_capacity > 0.0);
}

double FlowModel::expected_flows(double time_hours) const {
  // Diurnal activity between 25% (trough) and 100% (peak).
  const double phase =
      2.0 * kPi * (time_hours - config_.activity_peak_hour) / 24.0;
  const double activity = 0.25 + 0.75 * 0.5 * (1.0 + std::cos(phase));
  return config_.clients_per_region * config_.duty_cycle * activity;
}

double FlowModel::contention(double time_hours) const {
  return std::max(1.0, expected_flows(time_hours) / config_.link_flow_capacity);
}

PathState FlowModel::path(std::size_t src, std::size_t dst, double time_hours,
                          const ActiveFaults& faults) const {
  PathState state = base_->path(src, dst, time_hours, faults);
  // Payload share after header overhead and the reverse ACK flow, divided
  // between the flows sharing the link.
  const double share = config_.effective_bandwidth /
                       ((1.0 + config_.cross_traffic_factor) *
                        contention(time_hours));
  state.down_mbps *= share;
  state.up_mbps *= share;
  // Slow start: the first congestion window effectively costs
  // slow_start_latency_factor one-way delays instead of one.
  state.slow_start_ms =
      (config_.slow_start_latency_factor - 1.0) * 0.5 * state.rtt_ms;
  return state;
}

}  // namespace diagnet::netsim
