// Fault taxonomy and injected-fault descriptions.
//
// The seven coarse fault families mirror the paper (§III-B): nominal,
// uplink latency (gateway malfunction), remote link latency, link jitter,
// link loss, link bandwidth, and local load. The six *injectable* families
// (everything except Nominal, with Bandwidth standing for download shaping)
// match the `tc netem` campaign of §IV-A(e).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace diagnet::netsim {

enum class FaultFamily : std::size_t {
  Nominal = 0,
  Uplink = 1,     // latency at the client's local gateway
  Latency = 2,    // added end-to-end latency near a region
  Jitter = 3,     // added delay variation near a region
  Loss = 4,       // added packet loss near a region
  Bandwidth = 5,  // download bandwidth shaping near a region
  Load = 6,       // client device overload (CPU stress)
};

constexpr std::size_t kFaultFamilies = 7;

const char* fault_family_name(FaultFamily family);

/// True for families injected at a region (they perturb every path with an
/// endpoint in that region); false for client-local families (Uplink, Load).
bool is_remote_family(FaultFamily family);

/// One injected fault. For remote families, `region` is the region the
/// fault is injected in; for client-local families it is the region whose
/// clients are affected.
struct FaultSpec {
  FaultFamily family = FaultFamily::Nominal;
  std::size_t region = 0;
  /// Family-specific magnitude: added ms (Uplink/Latency/Jitter), loss
  /// fraction (Loss), bandwidth cap in Mbps (Bandwidth), CPU utilisation
  /// added in [0,1] (Load).
  double magnitude = 0.0;

  bool operator==(const FaultSpec&) const = default;
};

/// Paper §IV-A(e) magnitudes: 8 Mbit/s shaping, +50 ms latency, +50 ms
/// gateway latency, up-to-100 ms jitter, 8% loss, heavy CPU stress.
FaultSpec default_fault(FaultFamily family, std::size_t region);

/// The set of faults active in a scenario.
using ActiveFaults = std::vector<FaultSpec>;

std::string to_string(const FaultSpec& fault,
                      const std::string& region_code);

}  // namespace diagnet::netsim
