// Simulator façade: one object wiring topology, path model, landmarks (one
// per region), services, and QoE thresholds. The dataset generator and the
// examples drive everything through this interface.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/measurement.h"
#include "netsim/path_model.h"
#include "netsim/service.h"

namespace diagnet::netsim {

class Simulator {
 public:
  Simulator(Topology topology, std::vector<Service> services,
            std::uint64_t seed);

  /// Convenience: the paper's default deployment.
  static Simulator make_default(std::uint64_t seed);

  const Topology& topology() const { return topology_; }
  const PathModel& paths() const { return path_model_; }
  const std::vector<Service>& services() const { return services_; }
  std::size_t landmark_count() const { return topology_.region_count(); }
  std::uint64_t seed() const { return seed_; }

  /// Measurements of every landmark by a client (index = landmark/region).
  std::vector<LandmarkMeasurement> probe_landmarks(
      const ClientProfile& client, const ClientCondition& condition,
      double time_hours, const ActiveFaults& faults, util::Rng& rng) const;

  /// Same, but measured through an alternative path provider (e.g. the
  /// flow-level FlowModel) instead of the simulator's own PathModel.
  std::vector<LandmarkMeasurement> probe_landmarks(
      const PathProvider& paths, const ClientProfile& client,
      const ClientCondition& condition, double time_hours,
      const ActiveFaults& faults, util::Rng& rng) const;

  LocalMeasurement measure_local(const ClientProfile& client,
                                 const ClientCondition& condition,
                                 double time_hours, util::Rng& rng) const;

  /// One browser visit: page load time in ms.
  double visit(std::size_t service_idx, const ClientProfile& client,
               const ClientCondition& condition, double time_hours,
               const ActiveFaults& faults, util::Rng& rng) const;

  /// Same visit through an alternative path provider.
  double visit(std::size_t service_idx, const PathProvider& paths,
               const ClientProfile& client, const ClientCondition& condition,
               double time_hours, const ActiveFaults& faults,
               util::Rng& rng) const;

  /// Calibrate per-(service, client-region) QoE thresholds from nominal
  /// page loads: threshold = 1.5 x median + 100 ms. Must be called before
  /// qoe_degraded(). Deterministic given the simulator seed.
  void calibrate_qoe(std::size_t visits_per_cell = 64);
  bool qoe_calibrated() const { return !qoe_threshold_.empty(); }

  /// Whether a page load time counts as a degraded user experience.
  bool qoe_degraded(std::size_t service_idx, std::size_t client_region,
                    double plt_ms) const;
  double qoe_threshold(std::size_t service_idx,
                       std::size_t client_region) const;

 private:
  Topology topology_;
  std::vector<Service> services_;
  std::uint64_t seed_;
  PathModel path_model_;
  std::vector<double> qoe_threshold_;  // (service x region), empty until calibrated
};

}  // namespace diagnet::netsim
