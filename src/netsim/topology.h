// The multi-cloud deployment: providers, regions, and which regions host
// landmarks / services / clients. Mirrors the paper's testbed (Fig. 4):
// 4 cloud providers, 10 world regions, one landmark per region, mock-up
// services in GRAV, SEAT and SING, emulated clients everywhere.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netsim/geo.h"

namespace diagnet::netsim {

enum class Provider : std::size_t { Aws = 0, Azure = 1, Gcp = 2, Ovh = 3 };

const char* provider_name(Provider provider);

struct Region {
  std::string code;  // 4-letter code used throughout the paper's figures
  Provider provider = Provider::Aws;
  GeoPoint location;
};

class Topology {
 public:
  explicit Topology(std::vector<Region> regions);

  std::size_t region_count() const { return regions_.size(); }
  const Region& region(std::size_t idx) const;
  const std::vector<Region>& regions() const { return regions_; }

  /// Index of the region with the given code; throws if unknown.
  std::size_t index_of(const std::string& code) const;

  /// Baseline round-trip time between two regions in ms: twice the fibre
  /// propagation delay plus peering overhead (higher across providers).
  /// Intra-region floor ≈ 2 ms.
  double base_rtt_ms(std::size_t a, std::size_t b) const;

  /// Baseline bottleneck bandwidth of the inter-region path in Mbit/s;
  /// long-haul paths carry less per-flow throughput.
  double base_bandwidth_mbps(std::size_t a, std::size_t b) const;

  double distance_km(std::size_t a, std::size_t b) const;

 private:
  std::vector<Region> regions_;
  std::vector<double> distance_km_;  // dense matrix
};

/// The paper's 10-region deployment. Region codes EAST, SEAT, BEAU, GRAV,
/// AMST and SING appear in the paper; the remaining four (LOND, FRAN, TOKY,
/// SYDN) complete the 10-region fleet with plausible multi-cloud sites.
Topology default_topology();

/// Indices of the regions hosting mock-up services (GRAV, SEAT, SING).
std::vector<std::size_t> default_service_regions(const Topology& topology);

/// Regions receiving injected faults (SEAT, BEAU, GRAV, AMST, SING).
std::vector<std::size_t> default_fault_regions(const Topology& topology);

/// Landmarks hidden during training (EAST, GRAV, SEAT).
std::vector<std::size_t> default_hidden_landmarks(const Topology& topology);

}  // namespace diagnet::netsim
