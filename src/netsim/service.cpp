#include "netsim/service.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace diagnet::netsim {

std::size_t nearest_region(const Topology& topology,
                           std::size_t client_region) {
  std::size_t best = client_region;
  double best_rtt = topology.base_rtt_ms(client_region, client_region);
  for (std::size_t r = 0; r < topology.region_count(); ++r) {
    const double rtt = topology.base_rtt_ms(client_region, r);
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = r;
    }
  }
  return best;
}

std::vector<Service> default_services(const Topology& topology) {
  const std::size_t grav = topology.index_of("GRAV");
  const std::size_t seat = topology.index_of("SEAT");
  const std::size_t sing = topology.index_of("SING");
  const std::size_t beau = topology.index_of("BEAU");

  std::vector<Service> services;

  // 1. single — static HTML page with no dependency.
  services.push_back({"single", grav, 20.0, 15.0, {}});

  // 2. script.far — requires a JS file hosted in BEAU (render-heavy).
  services.push_back({"script.far",
                      seat,
                      25.0,
                      120.0,
                      {{ResourceSource::Fixed, beau, 0.2, true}}});

  // 3. script.cdn — requires a JS file from the region nearest the client.
  services.push_back({"script.cdn",
                      sing,
                      25.0,
                      120.0,
                      {{ResourceSource::Nearest, 0, 0.2, true}}});

  // 4. image.local — 5 MB image from the same server, same connection.
  services.push_back(
      {"image.local", grav, 30.0, 90.0, {{ResourceSource::Host, 0, 5.0, false}}});

  // 5. image.far — 5 MB image from BEAU.
  services.push_back({"image.far",
                      seat,
                      30.0,
                      90.0,
                      {{ResourceSource::Fixed, beau, 5.0, true}}});

  // 6. image.cdn — 5 MB image from the nearest region.
  services.push_back({"image.cdn",
                      sing,
                      30.0,
                      90.0,
                      {{ResourceSource::Nearest, 0, 5.0, true}}});

  // 7. mixed.cdn — JS from BEAU plus a 2 MB image from the nearest region
  //    (additional training service, §IV-F trains on 8 services).
  services.push_back({"mixed.cdn",
                      grav,
                      40.0,
                      140.0,
                      {{ResourceSource::Fixed, beau, 0.2, true},
                       {ResourceSource::Nearest, 0, 2.0, true}}});

  // 8. video.far — a 20 MB media segment from BEAU (bandwidth-bound).
  services.push_back({"video.far",
                      seat,
                      25.0,
                      40.0,
                      {{ResourceSource::Fixed, beau, 20.0, true}}});

  return services;
}

namespace {

/// One request/response exchange over a path: RTT plus jitter tail, plus a
/// sampled retransmission timeout when the exchange loses a packet.
double exchange_ms(double rtt_ms, const PathState& path, util::Rng& rng) {
  double ms = rtt_ms + path.jitter_ms * std::abs(rng.normal());
  if (rng.bernoulli(std::min(0.5, path.loss_rate * 2.0)))
    ms += rng.uniform(200.0, 800.0);
  return ms;
}

/// Transfer time of `size_mb` over the path's TCP goodput (download), plus
/// the path's one-off slow-start charge (zero for the base PathModel).
double transfer_ms(double size_mb, const PathState& path, double rtt_ms,
                   const ClientProfile& client, util::Rng& rng) {
  const double bw = std::min(path.down_mbps, client.access_down_mbps);
  const double goodput = tcp_throughput_mbps(bw, rtt_ms, path.loss_rate);
  const double noisy = std::max(0.05, goodput * rng.lognormal(0.0, 0.1));
  return size_mb * 8.0 * 1000.0 / noisy + path.slow_start_ms;
}

}  // namespace

double page_load_ms(const Service& service, const PathProvider& paths,
                    const ClientProfile& client,
                    const ClientCondition& condition, double time_hours,
                    const ActiveFaults& faults, util::Rng& rng) {
  const Topology& topology = paths.topology();
  const double gateway = effective_gateway_ms(client, condition);

  // DNS resolution goes through the gateway.
  double plt = client.dns_base_ms + condition.gateway_extra_ms +
               std::abs(rng.normal(0.0, 2.0));

  // Main document: TCP+TLS handshake (2 exchanges) + request + transfer.
  const PathState host_path =
      paths.path(client.region, service.host_region, time_hours, faults);
  const double host_rtt = gateway + host_path.rtt_ms;
  plt += 2.0 * exchange_ms(host_rtt, host_path, rng);
  plt += exchange_ms(host_rtt, host_path, rng);
  plt += transfer_ms(service.html_kb / 1024.0, host_path, host_rtt, client,
                     rng);

  // Sub-resources on the critical path, fetched sequentially.
  for (const Resource& res : service.resources) {
    std::size_t region = service.host_region;
    if (res.source == ResourceSource::Fixed) region = res.fixed_region;
    if (res.source == ResourceSource::Nearest)
      region = nearest_region(topology, client.region);

    const PathState path =
        paths.path(client.region, region, time_hours, faults);
    const double rtt = gateway + path.rtt_ms;
    if (res.new_connection) {
      plt += client.dns_base_ms * 0.5 + condition.gateway_extra_ms;
      plt += 2.0 * exchange_ms(rtt, path, rng);
    }
    plt += exchange_ms(rtt, path, rng);
    plt += transfer_ms(res.size_mb, path, rtt, client, rng);
  }

  // Rendering: CPU-bound, inflated when the device is stressed.
  const double cpu =
      std::clamp(client.cpu_base + condition.cpu_stress, 0.0, 1.0);
  const double cpu_factor = 1.0 + 4.0 * std::max(0.0, cpu - 0.6);
  plt += service.base_render_ms * cpu_factor * rng.lognormal(0.0, 0.1);

  return plt;
}

}  // namespace diagnet::netsim
