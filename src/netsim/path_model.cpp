#include "netsim/path_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/require.h"
#include "util/rng.h"

namespace diagnet::netsim {

double tcp_throughput_mbps(double bottleneck_mbps, double rtt_ms,
                           double loss_rate) {
  DIAGNET_REQUIRE(rtt_ms > 0.0);
  const double loss = std::max(loss_rate, 1e-5);
  // Mathis et al.: rate <= (MSS / RTT) * C / sqrt(p), with C = sqrt(3/2).
  const double mss_bits = 1460.0 * 8.0;
  const double per_flow_bps =
      (mss_bits / (rtt_ms / 1000.0)) * std::sqrt(1.5) / std::sqrt(loss);
  // Browsers fetch over ~6 parallel connections with window scaling; a
  // single effective factor keeps base loss from dominating healthy paths
  // while 8%-loss faults still crush throughput.
  constexpr double kBrowserAggressiveness = 16.0;
  const double mathis_mbps = per_flow_bps * kBrowserAggressiveness / 1e6;
  return std::min(bottleneck_mbps, mathis_mbps);
}

PathModel::PathModel(const Topology& topology, std::uint64_t seed)
    : topology_(&topology) {
  const std::size_t n = topology.region_count();
  factors_.resize(n * n);
  const util::Rng root(seed);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      util::Rng rng = root.fork(a * n + b);
      PathFactors& f = factors_[a * n + b];
      f.congestion_phase_h = rng.uniform(0.0, 24.0);
      f.congestion_amp = rng.uniform(0.05, 0.35);
      // Median base loss ≈ 2e-4 with a heavy-ish tail, capped well below
      // the 8% fault magnitude so faults stay identifiable.
      f.base_loss = std::min(5e-3, 2e-4 * rng.lognormal(0.0, 0.8));
      f.base_jitter_ms = rng.uniform(0.3, 2.5);
    }
  }
}

const PathModel::PathFactors& PathModel::factors(std::size_t src,
                                                 std::size_t dst) const {
  const std::size_t n = topology_->region_count();
  DIAGNET_REQUIRE(src < n && dst < n);
  return factors_[src * n + dst];
}

PathState PathModel::nominal_path(std::size_t src, std::size_t dst,
                                  double time_hours) const {
  const PathFactors& f = factors(src, dst);

  // Diurnal congestion: a raised-cosine bump peaking at the path's phase.
  const double phase =
      std::cos(2.0 * std::numbers::pi *
               (time_hours - f.congestion_phase_h) / 24.0);
  const double congestion = 1.0 + f.congestion_amp * 0.5 * (1.0 + phase);

  PathState state;
  state.rtt_ms = topology_->base_rtt_ms(src, dst) * (0.9 + 0.1 * congestion);
  state.jitter_ms = f.base_jitter_ms * congestion;
  state.loss_rate = f.base_loss * congestion;
  const double bw = topology_->base_bandwidth_mbps(src, dst);
  state.down_mbps = bw / congestion;
  state.up_mbps = 0.5 * bw / congestion;
  return state;
}

PathState PathModel::path(std::size_t src, std::size_t dst,
                          double time_hours,
                          const ActiveFaults& faults) const {
  PathState state = nominal_path(src, dst, time_hours);
  for (const FaultSpec& fault : faults) {
    if (!is_remote_family(fault.family)) continue;
    if (fault.region != src && fault.region != dst) continue;
    switch (fault.family) {
      case FaultFamily::Latency:
        state.rtt_ms += fault.magnitude;
        break;
      case FaultFamily::Jitter:
        state.jitter_ms += fault.magnitude;
        break;
      case FaultFamily::Loss:
        state.loss_rate = std::min(1.0, state.loss_rate + fault.magnitude);
        break;
      case FaultFamily::Bandwidth:
        state.down_mbps = std::min(state.down_mbps, fault.magnitude);
        break;
      default:
        break;
    }
  }
  return state;
}

}  // namespace diagnet::netsim
