// The DiagNet root-cause-analysis model: the paper's full pipeline behind
// one façade.
//
//   train_general()  — fit the normaliser, train the coarse network on all
//                      services' samples, train the auxiliary extensible
//                      Random Forest (§III-F), record which landmarks /
//                      features were available ("known").
//   specialize()     — derive a per-service model: clone the general
//                      network, freeze the representation (convolution +
//                      first hidden layer), retrain the final
//                      fully-connected layers on that service's samples
//                      (§III-D, §IV-F).
//   diagnose()       — rank all m root causes for one degraded sample:
//                      coarse prediction -> gradient attention (§III-E) ->
//                      Algorithm 1 score weighting -> ensemble averaging
//                      with the auxiliary forest (§III-F).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/attention.h"
#include "data/dataset.h"
#include "data/encoding.h"
#include "data/normalizer.h"
#include "forest/extensible_forest.h"
#include "nn/coarse_net.h"
#include "nn/trainer.h"
#include "util/status.h"

namespace diagnet::core {

/// Which fine-grained attention mechanism diagnose() uses. The paper picks
/// Gradient (white-box, one backward pass); Occlusion is the model-agnostic
/// alternative it mentions (§III-E), kept for the ablation bench.
enum class AttentionMethod { Gradient, Occlusion };

struct DiagNetConfig {
  /// Table I hyperparameters (f = 24 filters, Ω = 13 pooling ops, hidden
  /// layers 512/128, c = 7). Landmark/local/class sizes are derived from
  /// the feature space at construction.
  nn::CoarseNetConfig coarse;
  /// General-model training (SGD + Nesterov, lr 0.05, decay 0.001).
  nn::TrainerConfig trainer;
  /// Per-service specialisation training.
  nn::TrainerConfig specialization;
  /// Auxiliary model (Table I: Gini, 50 estimators, depth 10).
  forest::ForestConfig auxiliary;
  /// Ablation toggles (both on in the paper).
  bool use_score_weighting = true;
  bool use_ensemble = true;
  AttentionMethod attention = AttentionMethod::Gradient;
  std::uint64_t seed = 20210517;

  static DiagNetConfig defaults();
};

/// One ranked diagnosis.
struct Diagnosis {
  std::vector<double> scores;       // final score per cause (sums to 1)
  std::vector<std::size_t> ranking; // causes ordered by decreasing score
  std::vector<double> coarse_probs; // c fault-family probabilities
  std::size_t coarse_argmax = 0;
  std::vector<double> attention;    // tuned attention scores γ̂'
  double w_unknown = 0.0;           // ensemble weight of the attention side
};

/// The stable request type every diagnosis entry point consumes — the
/// single-sample façade, the batched engine (core/batch_diagnoser.h) and
/// the online server (src/serve) all speak this struct, so a request can
/// travel from a wire transport through micro-batching down to the model
/// without re-marshalling. Owns its feature storage (value semantics: safe
/// to queue, move across threads, and outlive its producer).
struct DiagnoseRequest {
  std::vector<double> features;          // raw feature vector, fs.total() wide
  std::size_t service = 0;               // ignored when use_general
  bool use_general = false;              // bypass the specialised heads
  /// Inference-time landmark fleet; empty means "every landmark probed"
  /// (the common serving case). When non-empty, must be landmark_count()
  /// long.
  std::vector<bool> landmark_available;
};

/// Per-request serving trace, stamped by serve::DiagnosisService so one
/// slow response can be explained from its own record: where the time
/// went (queued behind a batch window? a slow inference pass? a stalled
/// writer?) without correlating external logs. request_id == 0 means the
/// response never passed through a service (direct model call).
struct RequestTrace {
  std::uint64_t request_id = 0;      // service-assigned, unique per process
  double queue_us = 0.0;             // submit -> batch cut from the queue
  double assembly_us = 0.0;          // batch cut -> inference start
  double inference_us = 0.0;         // batched network passes
  double write_back_us = 0.0;        // inference end -> this promise stamped
  std::uint64_t batch_size = 0;      // live peers in the same batch
  std::uint64_t model_generation = 0;  // ModelProvider generation used
};

/// The paired response: a Status (OK, or the reason no diagnosis was
/// produced — validation failure, queue rejection, missed deadline) plus
/// the diagnosis when OK. CLI errors and server `Rejected` wire responses
/// both render from the same Status.
struct DiagnoseResponse {
  util::Status status;
  Diagnosis diagnosis;  // meaningful only when status.ok()
  RequestTrace trace;   // populated on the serving path (request_id != 0)
  bool ok() const { return status.ok(); }
};

class DiagNetModel {
 public:
  DiagNetModel(const data::FeatureSpace& fs, DiagNetConfig config);

  /// Train the general model on a training split (its landmark_available
  /// mask defines the known landmarks). Returns the training history
  /// (per-epoch losses feed Fig. 9).
  nn::TrainingHistory train_general(const data::Dataset& train);

  /// Derive the specialised model for `service` from the general model.
  /// Uses only the training samples of that service.
  nn::TrainingHistory specialize(std::size_t service,
                                 const data::Dataset& train);

  /// Diagnose one request (the stable API): validates the request shape
  /// and model state into the response Status instead of throwing, routes
  /// through the service's specialised model (or the general one when
  /// request.use_general), and returns the ranked diagnosis.
  DiagnoseResponse diagnose(const DiagnoseRequest& request);

  /// Coarse fault-family probabilities only (Fig. 7 evaluates these).
  std::vector<double> coarse_predict(const std::vector<double>& raw_features,
                                     std::size_t service,
                                     const std::vector<bool>& landmark_available);

  /// Shared tail of diagnose(): Algorithm 1 score weighting, ensemble
  /// blending with the auxiliary forest, and ranking, starting from an
  /// already-computed attention result. Both the single-sample path and the
  /// batched engine (core/batch_diagnoser.h) finish through this method, so
  /// their outputs agree bit for bit by construction.
  Diagnosis complete_diagnosis(const AttentionResult& attention,
                               const std::vector<double>& raw_features,
                               const std::vector<bool>& landmark_available) const;

  /// Request validation shared by the single-sample path, the batched
  /// engine and the server's admission control: OK, or the Status the
  /// response should carry (failed_precondition / invalid_argument).
  util::Status validate(const DiagnoseRequest& request) const;

  /// Int8 inference for every FC stack — general and specialized (see
  /// nn/quantized.h). Enabling is lossy: fp weights snap onto the int8
  /// grid. Heads adopted later inherit the current setting.
  void set_quantized(bool on);
  bool quantized() const;

  /// Move `donor`'s specialized head for `service` into this model — the
  /// serving router uses this to merge per-service fine-tuned bundles into
  /// one serving model. Fails unless the head was fine-tuned from the same
  /// frozen representation (bit-identical LandPooling parameters and
  /// matching feature space), which is what lets the batched engine share
  /// pooling work across services. On success the donor loses the head.
  util::Status adopt_specialized(std::size_t service, DiagNetModel& donor);

  /// Services with a specialized head, ascending.
  std::vector<std::size_t> specialized_services() const;

  bool trained() const { return general_ != nullptr; }
  bool has_specialized(std::size_t service) const;
  const data::FeatureSpace& feature_space() const { return *fs_; }
  const data::Normalizer& normalizer() const { return normalizer_; }
  const forest::ExtensibleForest& auxiliary() const { return auxiliary_; }
  nn::CoarseNet& general_net();
  nn::CoarseNet& service_net(std::size_t service);
  /// Features unseen during training (the set U of §III-F).
  const std::vector<std::size_t>& unknown_features() const {
    return unknown_features_;
  }
  const DiagNetConfig& config() const { return config_; }

  /// Binary persistence of the trained state (see core/registry.h for the
  /// user-facing file API). save() requires a trained model.
  void save(util::BinaryWriter& writer) const;
  static std::unique_ptr<DiagNetModel> load(util::BinaryReader& reader,
                                            const data::FeatureSpace& fs);

  /// Inference-time ablation toggles (both on in the paper): Algorithm 1
  /// score weighting and §III-F ensemble averaging. Safe to flip on a
  /// trained model — they only affect diagnose().
  void set_score_weighting(bool enabled) {
    config_.use_score_weighting = enabled;
  }
  void set_ensemble(bool enabled) { config_.use_ensemble = enabled; }
  void set_attention_method(AttentionMethod method) {
    config_.attention = method;
  }

 private:
  Diagnosis diagnose_with(nn::CoarseNet& net,
                          const std::vector<double>& raw_features,
                          const std::vector<bool>& landmark_available);

  const data::FeatureSpace* fs_;
  DiagNetConfig config_;
  data::Normalizer normalizer_;
  std::unique_ptr<nn::CoarseNet> general_;
  std::map<std::size_t, std::unique_ptr<nn::CoarseNet>> specialized_;
  forest::ExtensibleForest auxiliary_;
  std::vector<std::size_t> unknown_features_;
};

}  // namespace diagnet::core
