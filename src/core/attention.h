// Fine-grained inference via the gradient attention mechanism (paper
// §III-E): compute the ideal label y* = onehot(argmax y) of the coarse
// prediction, backpropagate the cross-entropy L* = -log y_argmax through
// the coarse network down to the *input features*, and read each feature's
// usefulness as its normalised absolute partial derivative (Eq. 1):
//
//   γ̂_j = |∂L*/∂x_j| / Σ_k |∂L*/∂x_k|
#pragma once

#include <cstddef>
#include <vector>

#include "data/feature_space.h"
#include "nn/coarse_net.h"

namespace diagnet::core {

struct AttentionResult {
  std::vector<double> coarse_probs;  // softmax over the c fault families
  std::size_t coarse_argmax = 0;
  /// γ̂ over the m features (masked-out landmarks get exactly 0).
  std::vector<double> gamma;
};

/// Runs one forward + one input-gradient backward pass on a single sample.
/// Parameter gradients accumulated by the pass are zeroed before returning,
/// so attention never perturbs training state.
AttentionResult compute_attention(nn::CoarseNet& net,
                                  const nn::LandBatch& sample,
                                  const data::FeatureSpace& fs);

/// Gradient attention for a whole batch in one forward + one input-only
/// backward pass (no parameter gradients are touched). Result r is
/// bit-identical to compute_attention() on row r alone: every per-row
/// computation (GEMM accumulation order, pooling, softmax) is independent
/// of the other rows.
std::vector<AttentionResult> compute_attention_batch(
    nn::CoarseNet& net, const nn::LandBatch& batch,
    const data::FeatureSpace& fs);

/// One specialized head's slice of a shared-pooling union batch: which
/// union-batch rows this net scores.
struct PooledGroup {
  nn::CoarseNet* net = nullptr;
  std::vector<std::size_t> rows;
};

/// Gradient attention for a union batch scored by several specialized heads
/// that share one frozen LandPooling (groups[i].net must satisfy
/// shares_pooling_with(groups[0].net); the caller checks before grouping).
/// The pooling forward and backward each run ONCE over the whole union —
/// the FC stacks fan out per head — which is the perf point of frozen-kernel
/// specialization. Result r is bit-identical to compute_attention_batch()
/// with row r's own net: pooling, softmax and every kernel row-group are
/// per-row independent and batch-size invariant. groups must partition
/// [0, batch.size()).
std::vector<AttentionResult> compute_attention_shared_pooling(
    const std::vector<PooledGroup>& groups, const nn::LandBatch& batch,
    const data::FeatureSpace& fs);

/// Black-box alternative (the paper cites LIME-style model-agnostic
/// explainers as the generic option before choosing gradients, §III-E):
/// occlude one feature at a time — replace its normalised value with 0,
/// the training mean of its metric kind — and read the feature's usefulness
/// as the drop in the winning class probability. Costs m forward passes
/// instead of one backward pass; compared against the gradient method in
/// bench/ablation_attention.
AttentionResult compute_occlusion_attention(nn::CoarseNet& net,
                                            const nn::LandBatch& sample,
                                            const data::FeatureSpace& fs);

}  // namespace diagnet::core
