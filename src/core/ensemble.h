// Ensemble model averaging (paper §III-F): blend the tuned attention
// prediction γ̂' with the auxiliary Random-Forest prediction α̂, weighted by
// the attention mass w_U sitting on features of landmarks unseen during
// training:
//
//   final = w_U · γ̂' + (1 - w_U) · α̂,   w_U = Σ_{j∈U} γ̂'_j
//
// When the attention points at unknown territory the extensible network
// dominates; when it points at known causes the forest (near-perfect on
// known causes, Fig. 5b) dominates.
#pragma once

#include <cstddef>
#include <vector>

namespace diagnet::core {

/// `unknown_features`: indices of the features U not seen during training.
/// gamma_tuned and auxiliary must be distributions over the same m causes.
std::vector<double> ensemble_average(
    const std::vector<double>& gamma_tuned,
    const std::vector<double>& auxiliary,
    const std::vector<std::size_t>& unknown_features,
    double* w_unknown_out = nullptr);

}  // namespace diagnet::core
