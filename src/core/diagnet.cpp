#include "core/diagnet.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/ensemble.h"
#include "core/score_weighting.h"
#include "nn/softmax.h"
#include "obs/obs.h"
#include "util/require.h"
#include "util/rng.h"

namespace diagnet::core {

DiagNetConfig DiagNetConfig::defaults() {
  DiagNetConfig config;
  // Table I: f = 24 filters over k = 5 metrics, Ω = {min, max, avg, var,
  // p10..p90}, hidden layers 512 and 128, c = 7 coarse families,
  // SGD/Nesterov lr = 0.05, decay = 0.001; RF with 50 trees, depth 10.
  config.coarse.filters = 24;
  config.coarse.pool_ops = nn::default_pool_ops();
  config.coarse.hidden = {512, 128};
  config.coarse.classes = netsim::kFaultFamilies;
  config.trainer.sgd.learning_rate = 0.05;
  config.trainer.sgd.weight_decay = 0.001;
  config.trainer.max_epochs = 40;
  config.trainer.patience = 4;
  config.specialization = config.trainer;
  config.specialization.max_epochs = 15;
  config.specialization.patience = 2;
  // Starting from the general model's weights, the head is almost right
  // already: only count clear improvements so convergence is declared as
  // soon as the validation loss plateaus (paper Fig. 9b: < 5 epochs).
  config.specialization.min_delta = 0.003;
  config.auxiliary.n_estimators = 50;
  config.auxiliary.tree.max_depth = 10;
  return config;
}

DiagNetModel::DiagNetModel(const data::FeatureSpace& fs, DiagNetConfig config)
    : fs_(&fs), config_(std::move(config)) {
  config_.coarse.features_per_landmark = fs.metrics_per_landmark();
  config_.coarse.local_features = fs.local_count();
}

nn::TrainingHistory DiagNetModel::train_general(const data::Dataset& train) {
  DIAGNET_SPAN("diagnet.train_general");
  DIAGNET_REQUIRE(!train.samples.empty());

  normalizer_.fit(train, *fs_);

  // Record the unknown feature set U: features of landmarks absent from
  // the training fleet.
  unknown_features_.clear();
  const std::vector<bool> available = train.feature_available(*fs_);
  for (std::size_t j = 0; j < fs_->total(); ++j)
    if (!available[j]) unknown_features_.push_back(j);

  // Coarse network.
  util::Rng rng(config_.seed);
  general_ = std::make_unique<nn::CoarseNet>(config_.coarse, rng);
  const nn::CoarseDataset coarse =
      data::encode_coarse(train, *fs_, normalizer_);
  nn::TrainerConfig trainer = config_.trainer;
  trainer.seed = config_.seed ^ 0x7ea1ULL;
  nn::TrainingHistory history = train_coarse(*general_, coarse, trainer);

  // Auxiliary extensible forest over zero-filled flat vectors.
  const tensor::Matrix flat = data::encode_flat(train, *fs_, normalizer_);
  const std::vector<std::size_t> labels =
      data::cause_labels(train, forest::ExtensibleForest::kNominal);
  auxiliary_.fit(flat, labels, fs_->total(), config_.auxiliary,
                 config_.seed ^ 0xf0e5ULL);

  specialized_.clear();
  return history;
}

nn::TrainingHistory DiagNetModel::specialize(std::size_t service,
                                             const data::Dataset& train) {
  DIAGNET_SPAN("diagnet.specialize");
  DIAGNET_REQUIRE_MSG(trained(), "train_general() first");

  data::Dataset subset;
  subset.landmark_available = train.landmark_available;
  for (const data::Sample& sample : train.samples)
    if (sample.service == service) subset.samples.push_back(sample);
  DIAGNET_REQUIRE_MSG(subset.samples.size() > 10,
                      "too few samples to specialise this service");

  auto net = general_->clone();
  net->freeze_representation();
  const nn::CoarseDataset coarse =
      data::encode_coarse(subset, *fs_, normalizer_);
  nn::TrainerConfig trainer = config_.specialization;
  trainer.seed = config_.seed ^ (0x5e77ULL + service);
  nn::TrainingHistory history = train_coarse(*net, coarse, trainer);

  specialized_[service] = std::move(net);
  return history;
}

bool DiagNetModel::has_specialized(std::size_t service) const {
  return specialized_.count(service) > 0;
}

std::vector<std::size_t> DiagNetModel::specialized_services() const {
  std::vector<std::size_t> out;
  out.reserve(specialized_.size());
  for (const auto& [service, net] : specialized_) out.push_back(service);
  return out;
}

void DiagNetModel::set_quantized(bool on) {
  DIAGNET_REQUIRE_MSG(trained(), "train_general() first");
  general_->set_quantized(on);
  for (auto& [service, net] : specialized_) net->set_quantized(on);
}

bool DiagNetModel::quantized() const {
  return trained() && general_->quantized();
}

util::Status DiagNetModel::adopt_specialized(std::size_t service,
                                             DiagNetModel& donor) {
  if (!trained() || !donor.trained())
    return util::Status::failed_precondition(
        "adopt_specialized needs two trained models");
  const auto it = donor.specialized_.find(service);
  if (it == donor.specialized_.end())
    return util::Status::invalid_argument(
        "donor bundle has no specialized head for service " +
        std::to_string(service));
  if (fs_->total() != donor.fs_->total() ||
      fs_->landmark_count() != donor.fs_->landmark_count())
    return util::Status::failed_precondition(
        "donor bundle was built for a different feature space");
  if (!it->second->shares_pooling_with(*general_))
    return util::Status::failed_precondition(
        "specialized head for service " + std::to_string(service) +
        " does not share this model's frozen pooling kernel (fine-tune with "
        "--freeze-kernel from the same general bundle)");
  if (quantized()) it->second->set_quantized(true);
  specialized_[service] = std::move(it->second);
  donor.specialized_.erase(it);
  return util::Status();
}

nn::CoarseNet& DiagNetModel::general_net() {
  DIAGNET_REQUIRE(trained());
  return *general_;
}

nn::CoarseNet& DiagNetModel::service_net(std::size_t service) {
  DIAGNET_REQUIRE(trained());
  const auto it = specialized_.find(service);
  return it != specialized_.end() ? *it->second : *general_;
}

util::Status DiagNetModel::validate(const DiagnoseRequest& request) const {
  if (!trained())
    return util::Status::failed_precondition("model is not trained");
  if (request.features.size() != fs_->total())
    return util::Status::invalid_argument(
        "request has " + std::to_string(request.features.size()) +
        " features; this deployment has " + std::to_string(fs_->total()));
  if (!request.landmark_available.empty() &&
      request.landmark_available.size() != fs_->landmark_count())
    return util::Status::invalid_argument(
        "landmark mask has " +
        std::to_string(request.landmark_available.size()) +
        " entries; this deployment has " +
        std::to_string(fs_->landmark_count()) + " landmarks");
  return {};
}

DiagnoseResponse DiagNetModel::diagnose(const DiagnoseRequest& request) {
  DiagnoseResponse response;
  response.status = validate(request);
  if (!response.status.ok()) return response;
  std::vector<bool> all_landmarks;
  const std::vector<bool>* mask = &request.landmark_available;
  if (request.landmark_available.empty()) {
    all_landmarks.assign(fs_->landmark_count(), true);
    mask = &all_landmarks;
  }
  nn::CoarseNet& net =
      request.use_general ? *general_ : service_net(request.service);
  [[maybe_unused]] const auto t0 = std::chrono::steady_clock::now();
  response.diagnosis = diagnose_with(net, request.features, *mask);
  [[maybe_unused]] const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  DIAGNET_OBSERVE("diagnose.latency_ms", latency_ms);
  return response;
}

Diagnosis DiagNetModel::diagnose_with(
    nn::CoarseNet& net, const std::vector<double>& raw_features,
    const std::vector<bool>& landmark_available) {
  DIAGNET_SPAN("diagnet.diagnose");
  DIAGNET_COUNT("diagnet.diagnose.calls");
  // Steps 1-5 of Fig. 2 on the (possibly larger-than-training) fleet.
  const nn::LandBatch batch = data::encode_sample(
      raw_features, *fs_, normalizer_, landmark_available);
  const AttentionResult attention = [&] {
    // The gradient method is one forward + one input-gradient backward pass
    // (§III-E) — the latency the paper's 45 ms figure is dominated by.
    DIAGNET_SPAN("diagnet.attention");
    return config_.attention == AttentionMethod::Gradient
               ? compute_attention(net, batch, *fs_)
               : compute_occlusion_attention(net, batch, *fs_);
  }();

  return complete_diagnosis(attention, raw_features, landmark_available);
}

Diagnosis DiagNetModel::complete_diagnosis(
    const AttentionResult& attention,
    const std::vector<double>& raw_features,
    const std::vector<bool>& landmark_available) const {
  Diagnosis diagnosis;
  diagnosis.coarse_probs = attention.coarse_probs;
  diagnosis.coarse_argmax = attention.coarse_argmax;

  // Algorithm 1 score weighting.
  diagnosis.attention =
      config_.use_score_weighting
          ? weight_scores(attention.gamma, attention.coarse_probs,
                          attention.coarse_argmax, *fs_)
          : attention.gamma;

  // Ensemble averaging with the auxiliary forest.
  if (config_.use_ensemble) {
    DIAGNET_COUNT("diagnet.ensemble.blends");
    std::vector<bool> feature_avail(fs_->total(), true);
    for (std::size_t j = 0; j < fs_->total(); ++j)
      if (fs_->is_landmark_feature(j))
        feature_avail[j] = landmark_available[fs_->landmark_of(j)];
    const std::vector<double> flat = data::encode_flat_sample(
        raw_features, *fs_, normalizer_, feature_avail);
    const std::vector<double> alpha = auxiliary_.score_causes(flat);
    diagnosis.scores = ensemble_average(diagnosis.attention, alpha,
                                        unknown_features_,
                                        &diagnosis.w_unknown);
  } else {
    diagnosis.scores = diagnosis.attention;
    diagnosis.w_unknown = 1.0;
  }

  // Ranked cause list.
  diagnosis.ranking.resize(diagnosis.scores.size());
  std::iota(diagnosis.ranking.begin(), diagnosis.ranking.end(), 0u);
  std::stable_sort(diagnosis.ranking.begin(), diagnosis.ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     return diagnosis.scores[a] > diagnosis.scores[b];
                   });
  return diagnosis;
}

std::vector<double> DiagNetModel::coarse_predict(
    const std::vector<double>& raw_features, std::size_t service,
    const std::vector<bool>& landmark_available) {
  DIAGNET_REQUIRE_MSG(trained(), "train_general() first");
  const nn::LandBatch batch = data::encode_sample(
      raw_features, *fs_, normalizer_, landmark_available);
  const nn::Matrix logits = service_net(service).forward(batch);
  return nn::softmax(logits).row_copy(0);
}

}  // namespace diagnet::core

namespace diagnet::core {

namespace {
// Bumped from ...0001 when the feature-space schema (landmark count, total
// feature count) was added to the bundle so load() can reject a model
// trained against a different deployment outright.
constexpr std::uint64_t kModelTag = 0xd1a60e7'0002ULL;
}

void DiagNetModel::save(util::BinaryWriter& writer) const {
  DIAGNET_REQUIRE_MSG(trained(), "cannot save an untrained model");
  writer.write_u64(kModelTag);

  // Feature-space schema the model was trained against.
  writer.write_u64(fs_->landmark_count());
  writer.write_u64(fs_->total());

  // Architecture (enough to rebuild the nets).
  const nn::CoarseNetConfig& coarse = config_.coarse;
  writer.write_u64(coarse.features_per_landmark);
  writer.write_u64(coarse.local_features);
  writer.write_u64(coarse.filters);
  std::vector<std::size_t> ops;
  ops.reserve(coarse.pool_ops.size());
  for (nn::PoolOp op : coarse.pool_ops)
    ops.push_back(static_cast<std::size_t>(op));
  writer.write_indices(ops);
  writer.write_indices(coarse.hidden);
  writer.write_u64(coarse.classes);

  // Inference toggles.
  writer.write_bool(config_.use_score_weighting);
  writer.write_bool(config_.use_ensemble);

  // Weights.
  writer.write_doubles(general_->save_parameters());
  writer.write_u64(specialized_.size());
  for (const auto& [service, net] : specialized_) {
    writer.write_u64(service);
    writer.write_doubles(net->save_parameters());
  }

  normalizer_.save(writer);
  auxiliary_.save(writer);
  writer.write_indices(unknown_features_);
}

std::unique_ptr<DiagNetModel> DiagNetModel::load(
    util::BinaryReader& reader, const data::FeatureSpace& fs) {
  reader.expect_u64(kModelTag, "DiagNetModel");

  const auto landmarks = static_cast<std::size_t>(reader.read_u64());
  const auto total = static_cast<std::size_t>(reader.read_u64());
  if (landmarks != fs.landmark_count() || total != fs.total())
    throw std::runtime_error(
        "model was trained for a different deployment (" +
        std::to_string(landmarks) + " landmarks / " + std::to_string(total) +
        " features; this one has " + std::to_string(fs.landmark_count()) +
        " / " + std::to_string(fs.total()) + ")");

  DiagNetConfig config = DiagNetConfig::defaults();
  config.coarse.features_per_landmark =
      static_cast<std::size_t>(reader.read_u64());
  config.coarse.local_features = static_cast<std::size_t>(reader.read_u64());
  config.coarse.filters = static_cast<std::size_t>(reader.read_u64());
  config.coarse.pool_ops.clear();
  for (std::size_t op : reader.read_indices())
    config.coarse.pool_ops.push_back(static_cast<nn::PoolOp>(op));
  config.coarse.hidden = reader.read_indices();
  config.coarse.classes = static_cast<std::size_t>(reader.read_u64());
  config.use_score_weighting = reader.read_bool();
  config.use_ensemble = reader.read_bool();

  if (config.coarse.features_per_landmark != fs.metrics_per_landmark() ||
      config.coarse.local_features != fs.local_count())
    throw std::runtime_error(
        "model registry: feature space does not match the saved model");

  auto model = std::make_unique<DiagNetModel>(fs, config);
  util::Rng rng(0);  // initial weights are immediately overwritten
  model->general_ = std::make_unique<nn::CoarseNet>(config.coarse, rng);
  model->general_->load_parameters(reader.read_doubles());

  const std::uint64_t specialized_count = reader.read_u64();
  for (std::uint64_t i = 0; i < specialized_count; ++i) {
    const auto service = static_cast<std::size_t>(reader.read_u64());
    auto net = model->general_->clone();
    net->load_parameters(reader.read_doubles());
    model->specialized_[service] = std::move(net);
  }

  model->normalizer_.load(reader, fs);
  model->auxiliary_.load(reader);
  model->unknown_features_ = reader.read_indices();
  return model;
}

}  // namespace diagnet::core
