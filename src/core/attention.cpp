#include "core/attention.h"

#include <algorithm>
#include <cmath>

#include "nn/softmax.h"
#include "util/require.h"

namespace diagnet::core {

namespace {

/// Normalise γ to sum 1. When the signal is degenerate (saturated softmax
/// gives an all-zero gradient; occlusion may find no probability drop),
/// fall back to a uniform distribution over the *available* features —
/// masked-out landmarks must stay at exactly 0. `row` selects the sample's
/// mask row inside a (possibly multi-row) batch.
void normalize_gamma(std::vector<double>& gamma, const nn::LandBatch& batch,
                     std::size_t row, const data::FeatureSpace& fs,
                     double sum) {
  if (sum > 0.0) {
    for (auto& g : gamma) g /= sum;
    return;
  }
  std::size_t usable = fs.local_count();
  for (std::size_t lam = 0; lam < fs.landmark_count(); ++lam)
    if (batch.mask(row, lam) >= 0.5) usable += fs.metrics_per_landmark();
  const double uniform = 1.0 / static_cast<double>(usable);
  for (std::size_t j = 0; j < gamma.size(); ++j) {
    const bool available =
        !fs.is_landmark_feature(j) ||
        batch.mask(row, fs.landmark_of(j)) >= 0.5;
    gamma[j] = available ? uniform : 0.0;
  }
}

/// Shared γ extraction: map row `r` of the (land, local) input gradients
/// back to the m-dimensional feature space and normalise.
void gamma_from_grads(AttentionResult& result, const nn::Matrix& grad_land,
                      const nn::Matrix& grad_local, std::size_t r,
                      const nn::LandBatch& batch,
                      const data::FeatureSpace& fs) {
  const std::size_t k = fs.metrics_per_landmark();
  result.gamma.assign(fs.total(), 0.0);
  double sum = 0.0;
  for (std::size_t lam = 0; lam < fs.landmark_count(); ++lam) {
    for (std::size_t metric = 0; metric < k; ++metric) {
      const std::size_t j = fs.landmark_feature(
          lam, static_cast<data::Metric>(metric));
      const double g = std::abs(grad_land(r, lam * k + metric));
      result.gamma[j] = g;
      sum += g;
    }
  }
  for (std::size_t t = 0; t < fs.local_count(); ++t) {
    const std::size_t j =
        fs.local_feature(static_cast<data::LocalFeature>(t));
    const double g = std::abs(grad_local(r, t));
    result.gamma[j] = g;
    sum += g;
  }
  normalize_gamma(result.gamma, batch, r, fs, sum);
}

}  // namespace

AttentionResult compute_attention(nn::CoarseNet& net,
                                  const nn::LandBatch& sample,
                                  const data::FeatureSpace& fs) {
  DIAGNET_REQUIRE_MSG(sample.size() == 1, "attention works on one sample");

  AttentionResult result;
  const nn::Matrix logits = net.forward(sample);
  const nn::Matrix probs = nn::softmax(logits);
  result.coarse_probs = probs.row_copy(0);
  result.coarse_argmax = static_cast<std::size_t>(
      std::max_element(result.coarse_probs.begin(),
                       result.coarse_probs.end()) -
      result.coarse_probs.begin());

  // One backpropagation step of the ideal-label loss, down to the inputs.
  // The input-only backward skips every parameter-gradient GEMM and the
  // pooling kernel gradients — attention never consumes them — and
  // accumulates nothing on the net, so there is nothing to zero. The
  // input gradients are bit-identical to the full backward's.
  const nn::Matrix grad_logits =
      nn::ideal_label_grad(logits, result.coarse_argmax);
  nn::Matrix grad_land;
  nn::Matrix grad_local;
  net.backward_inputs(grad_logits, &grad_land, &grad_local);

  // Map (land, local) gradients back to the m-dimensional feature space.
  gamma_from_grads(result, grad_land, grad_local, 0, sample, fs);
  return result;
}

std::vector<AttentionResult> compute_attention_batch(
    nn::CoarseNet& net, const nn::LandBatch& batch,
    const data::FeatureSpace& fs) {
  const std::size_t n = batch.size();
  std::vector<AttentionResult> results(n);
  if (n == 0) return results;

  // One batched forward pass; softmax/argmax are strictly row-wise, so each
  // row matches the single-sample path bit for bit.
  const nn::Matrix logits = net.forward(batch);
  const nn::Matrix probs = nn::softmax(logits);
  std::vector<std::size_t> argmaxes(n);
  for (std::size_t r = 0; r < n; ++r) {
    results[r].coarse_probs = probs.row_copy(r);
    results[r].coarse_argmax = static_cast<std::size_t>(
        std::max_element(results[r].coarse_probs.begin(),
                         results[r].coarse_probs.end()) -
        results[r].coarse_probs.begin());
    argmaxes[r] = results[r].coarse_argmax;
  }

  // One batched input-gradient backward pass of the ideal-label loss. The
  // input-only path accumulates no parameter gradients (nothing to zero)
  // and every per-row gradient is bit-identical to the single-sample pass.
  const nn::Matrix grad_logits = nn::ideal_label_grads(logits, argmaxes);
  nn::Matrix grad_land;
  nn::Matrix grad_local;
  net.backward_inputs(grad_logits, &grad_land, &grad_local);

  for (std::size_t r = 0; r < n; ++r)
    gamma_from_grads(results[r], grad_land, grad_local, r, batch, fs);
  return results;
}

std::vector<AttentionResult> compute_attention_shared_pooling(
    const std::vector<PooledGroup>& groups, const nn::LandBatch& batch,
    const data::FeatureSpace& fs) {
  const std::size_t n = batch.size();
  std::vector<AttentionResult> results(n);
  if (n == 0 || groups.empty()) return results;

  // One pooling forward over the union batch, through the first head's
  // (shared) LandPooling. The ctx path is const and caches nothing on the
  // layer.
  const nn::CoarseNet& pool_net = *groups.front().net;
  nn::LandPooling::PoolContext ctx;
  nn::Matrix pooled;
  pool_net.pooling().forward(batch.land, batch.mask, ctx, pooled);

  nn::Matrix union_grad_pooled(n, pooled.cols());
  nn::Matrix union_grad_local(n, batch.local.cols());

  for (const PooledGroup& grp : groups) {
    nn::CoarseNet& net = *grp.net;
    DIAGNET_REQUIRE_MSG(net.shares_pooling_with(pool_net),
                        "shared-pooling group with divergent pooling");
    const std::size_t m = grp.rows.size();
    if (m == 0) continue;

    // Gather this head's pooled/local rows out of the union.
    nn::Matrix sub_pooled(m, pooled.cols());
    nn::Matrix sub_local(m, batch.local.cols());
    for (std::size_t s = 0; s < m; ++s) {
      const std::size_t r = grp.rows[s];
      DIAGNET_REQUIRE(r < n);
      std::copy(pooled.row_ptr(r), pooled.row_ptr(r) + pooled.cols(),
                sub_pooled.row_ptr(s));
      std::copy(batch.local.row_ptr(r),
                batch.local.row_ptr(r) + batch.local.cols(),
                sub_local.row_ptr(s));
    }

    const nn::Matrix logits = net.forward_from_pooled(sub_pooled, sub_local);
    const nn::Matrix probs = nn::softmax(logits);
    std::vector<std::size_t> argmaxes(m);
    for (std::size_t s = 0; s < m; ++s) {
      AttentionResult& res = results[grp.rows[s]];
      res.coarse_probs = probs.row_copy(s);
      res.coarse_argmax = static_cast<std::size_t>(
          std::max_element(res.coarse_probs.begin(), res.coarse_probs.end()) -
          res.coarse_probs.begin());
      argmaxes[s] = res.coarse_argmax;
    }

    // FC-only input backward, then scatter this head's gradients back into
    // the union-row positions.
    const nn::Matrix grad_logits = nn::ideal_label_grads(logits, argmaxes);
    nn::Matrix sub_grad_local;
    const nn::Matrix sub_grad_pooled =
        net.backward_inputs_from_pooled(grad_logits, &sub_grad_local);
    for (std::size_t s = 0; s < m; ++s) {
      const std::size_t r = grp.rows[s];
      std::copy(sub_grad_pooled.row_ptr(s),
                sub_grad_pooled.row_ptr(s) + sub_grad_pooled.cols(),
                union_grad_pooled.row_ptr(r));
      std::copy(sub_grad_local.row_ptr(s),
                sub_grad_local.row_ptr(s) + sub_grad_local.cols(),
                union_grad_local.row_ptr(r));
    }
  }

  // One pooling backward over the union.
  const nn::Matrix grad_land =
      pool_net.pooling().backward_input_with(ctx, union_grad_pooled);
  for (std::size_t r = 0; r < n; ++r)
    gamma_from_grads(results[r], grad_land, union_grad_local, r, batch, fs);
  return results;
}

AttentionResult compute_occlusion_attention(nn::CoarseNet& net,
                                            const nn::LandBatch& sample,
                                            const data::FeatureSpace& fs) {
  DIAGNET_REQUIRE_MSG(sample.size() == 1, "attention works on one sample");

  AttentionResult result;
  {
    const nn::Matrix probs = nn::softmax(net.forward(sample));
    result.coarse_probs = probs.row_copy(0);
  }
  result.coarse_argmax = static_cast<std::size_t>(
      std::max_element(result.coarse_probs.begin(),
                       result.coarse_probs.end()) -
      result.coarse_probs.begin());
  const double base = result.coarse_probs[result.coarse_argmax];

  // Occlude each feature in turn. Normalised features have mean ~0 per
  // metric kind, so 0 is the natural "typical value" baseline.
  const std::size_t k = fs.metrics_per_landmark();
  result.gamma.assign(fs.total(), 0.0);
  double sum = 0.0;
  nn::LandBatch probe = sample;
  const auto drop_for = [&]() {
    const nn::Matrix probs = nn::softmax(net.forward(probe));
    return std::max(0.0, base - probs(0, result.coarse_argmax));
  };
  for (std::size_t lam = 0; lam < fs.landmark_count(); ++lam) {
    if (sample.mask(0, lam) < 0.5) continue;  // unavailable: stays 0
    for (std::size_t metric = 0; metric < k; ++metric) {
      const std::size_t col = lam * k + metric;
      const double saved = probe.land(0, col);
      probe.land(0, col) = 0.0;
      const std::size_t j =
          fs.landmark_feature(lam, static_cast<data::Metric>(metric));
      result.gamma[j] = drop_for();
      sum += result.gamma[j];
      probe.land(0, col) = saved;
    }
  }
  for (std::size_t t = 0; t < fs.local_count(); ++t) {
    const double saved = probe.local(0, t);
    probe.local(0, t) = 0.0;
    const std::size_t j =
        fs.local_feature(static_cast<data::LocalFeature>(t));
    result.gamma[j] = drop_for();
    sum += result.gamma[j];
    probe.local(0, t) = saved;
  }

  normalize_gamma(result.gamma, sample, 0, fs, sum);
  return result;
}

}  // namespace diagnet::core
