#include "core/ensemble.h"

#include <algorithm>

#include "util/require.h"

namespace diagnet::core {

std::vector<double> ensemble_average(
    const std::vector<double>& gamma_tuned,
    const std::vector<double>& auxiliary,
    const std::vector<std::size_t>& unknown_features, double* w_unknown_out) {
  DIAGNET_REQUIRE(gamma_tuned.size() == auxiliary.size());

  double w_unknown = 0.0;
  for (std::size_t j : unknown_features) {
    DIAGNET_REQUIRE(j < gamma_tuned.size());
    w_unknown += gamma_tuned[j];
  }
  w_unknown = std::clamp(w_unknown, 0.0, 1.0);
  if (w_unknown_out) *w_unknown_out = w_unknown;

  std::vector<double> final_scores(gamma_tuned.size());
  for (std::size_t j = 0; j < final_scores.size(); ++j)
    final_scores[j] =
        w_unknown * gamma_tuned[j] + (1.0 - w_unknown) * auxiliary[j];
  return final_scores;
}

}  // namespace diagnet::core
