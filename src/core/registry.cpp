#include "core/registry.h"

#include <fstream>

#include "util/binary_io.h"
#include "util/require.h"

namespace diagnet::core {

namespace {
constexpr std::uint64_t kFileMagic = 0x44474e4554'4d4f44ULL;  // "DGNET MOD"
constexpr std::uint64_t kFileVersion = 1;
}  // namespace

void save_model(const DiagNetModel& model, std::ostream& os) {
  util::BinaryWriter writer(os);
  writer.write_u64(kFileMagic);
  writer.write_u64(kFileVersion);
  model.save(writer);
}

void save_model_file(const DiagNetModel& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("model registry: cannot open " + path);
  save_model(model, os);
  if (!os) throw std::runtime_error("model registry: write failed: " + path);
}

std::unique_ptr<DiagNetModel> load_model(std::istream& is,
                                         const data::FeatureSpace& fs) {
  util::BinaryReader reader(is);
  reader.expect_u64(kFileMagic, "model file magic");
  const std::uint64_t version = reader.read_u64();
  if (version != kFileVersion)
    throw std::runtime_error("model registry: unsupported version");
  return DiagNetModel::load(reader, fs);
}

std::unique_ptr<DiagNetModel> load_model_file(const std::string& path,
                                              const data::FeatureSpace& fs) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("model registry: cannot open " + path);
  return load_model(is, fs);
}

}  // namespace diagnet::core
