#include "core/registry.h"

#include <fstream>
#include <sstream>

#include "util/binary_io.h"
#include "util/require.h"

namespace diagnet::core {

namespace {
constexpr std::uint64_t kFileMagic = 0x44474e4554'4d4f44ULL;  // "DGNET MOD"
// v2: the model payload is wrapped in {checksum, length, bytes} so any
// truncation or in-place corruption — including flipped bits inside weight
// doubles, which no structural check can see — is rejected cleanly instead
// of silently loading a garbage model.
constexpr std::uint64_t kFileVersion = 2;
}  // namespace

void save_model(const DiagNetModel& model, std::ostream& os) {
  std::ostringstream payload_os(std::ios::binary);
  {
    util::BinaryWriter payload_writer(payload_os);
    model.save(payload_writer);
  }
  const std::string payload = payload_os.str();

  util::BinaryWriter writer(os);
  writer.write_u64(kFileMagic);
  writer.write_u64(kFileVersion);
  writer.write_u64(util::fnv1a64(payload.data(), payload.size()));
  writer.write_string(payload);
}

void save_model_file(const DiagNetModel& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("model registry: cannot open " + path);
  save_model(model, os);
  if (!os) throw std::runtime_error("model registry: write failed: " + path);
}

std::unique_ptr<DiagNetModel> load_model(std::istream& is,
                                         const data::FeatureSpace& fs) {
  util::BinaryReader reader(is);
  reader.expect_u64(kFileMagic, "model file magic");
  const std::uint64_t version = reader.read_u64();
  if (version != kFileVersion)
    throw std::runtime_error("model registry: unsupported version");
  const std::uint64_t checksum = reader.read_u64();
  const std::string payload = reader.read_string();
  if (util::fnv1a64(payload.data(), payload.size()) != checksum)
    throw std::runtime_error(
        "model registry: checksum mismatch (corrupt model bundle)");

  std::istringstream payload_is(payload, std::ios::binary);
  util::BinaryReader payload_reader(payload_is);
  return DiagNetModel::load(payload_reader, fs);
}

std::unique_ptr<DiagNetModel> load_model_file(const std::string& path,
                                              const data::FeatureSpace& fs) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("model registry: cannot open " + path);
  return load_model(is, fs);
}

}  // namespace diagnet::core
