#include "core/registry.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/binary_io.h"
#include "util/require.h"

namespace diagnet::core {

namespace {
constexpr std::uint64_t kFileMagic = 0x44474e4554'4d4f44ULL;  // "DGNET MOD"
// v2: the model payload is wrapped in {checksum, length, bytes} so any
// truncation or in-place corruption — including flipped bits inside weight
// doubles, which no structural check can see — is rejected cleanly instead
// of silently loading a garbage model.
constexpr std::uint64_t kFileVersion = 2;
}  // namespace

util::Status try_save_model(const DiagNetModel& model, std::ostream& os) {
  if (!model.trained())
    return util::Status::failed_precondition(
        "cannot save an untrained model");
  std::ostringstream payload_os(std::ios::binary);
  {
    util::BinaryWriter payload_writer(payload_os);
    model.save(payload_writer);
  }
  const std::string payload = payload_os.str();

  util::BinaryWriter writer(os);
  writer.write_u64(kFileMagic);
  writer.write_u64(kFileVersion);
  writer.write_u64(util::fnv1a64(payload.data(), payload.size()));
  writer.write_string(payload);
  if (!os)
    return util::Status::data_loss("model registry: write failed");
  return {};
}

util::Status try_save_model_file(const DiagNetModel& model,
                                 const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os)
    return util::Status::not_found("model registry: cannot open " + path);
  if (util::Status s = try_save_model(model, os); !s.ok()) return s;
  if (!os)
    return util::Status::data_loss("model registry: write failed: " + path);
  return {};
}

util::StatusOr<std::unique_ptr<DiagNetModel>> try_load_model(
    std::istream& is, const data::FeatureSpace& fs, ModelBundleInfo* info) {
  // binary_io and DiagNetModel::load signal malformed bytes by throwing;
  // the registry is where those are converted into one Status channel.
  try {
    util::BinaryReader reader(is);
    reader.expect_u64(kFileMagic, "model file magic");
    const std::uint64_t version = reader.read_u64();
    if (version != kFileVersion)
      return util::Status::data_loss(
          "model registry: unsupported version");
    const std::uint64_t checksum = reader.read_u64();
    const std::string payload = reader.read_string();
    if (util::fnv1a64(payload.data(), payload.size()) != checksum)
      return util::Status::data_loss(
          "model registry: checksum mismatch (corrupt model bundle)");

    std::istringstream payload_is(payload, std::ios::binary);
    util::BinaryReader payload_reader(payload_is);
    auto model = DiagNetModel::load(payload_reader, fs);
    if (info != nullptr) {
      info->checksum = checksum;
      info->version = version;
    }
    return model;
  } catch (const std::exception& e) {
    return util::Status::data_loss(e.what());
  }
}

util::StatusOr<std::unique_ptr<DiagNetModel>> try_load_model_file(
    const std::string& path, const data::FeatureSpace& fs,
    ModelBundleInfo* info) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    return util::Status::not_found("model registry: cannot open " + path);
  return try_load_model(is, fs, info);
}

}  // namespace diagnet::core
