// Multi-label score weighting — Algorithm 1 of the paper. The attention
// scores alone under-use the coarse prediction, so features sharing the
// fault family of the winning coarse class receive a bonus and every other
// feature a penalty, preserving normalisation by construction:
//
//   φ = argmax(y); p = features of φ's family
//   w = y_φ / Σ y;  s = Σ_{j∈p} γ̂_j
//   if s ∈ {0, 1}: γ̂' = γ̂
//   else: γ̂'_j = γ̂_j · w/s for j ∈ p, γ̂_j · (1-w)/(1-s) otherwise
#pragma once

#include <cstddef>
#include <vector>

#include "data/feature_space.h"

namespace diagnet::core {

std::vector<double> weight_scores(const std::vector<double>& gamma,
                                  const std::vector<double>& coarse_probs,
                                  std::size_t coarse_argmax,
                                  const data::FeatureSpace& fs);

}  // namespace diagnet::core
