#include "core/batch_diagnoser.h"

#include <algorithm>
#include <memory>

#include "core/attention.h"
#include "data/encoding.h"
#include "obs/obs.h"
#include "util/require.h"

namespace diagnet::core {

namespace {

/// A run of request indices served by one network; at most batch_size long.
struct Chunk {
  nn::CoarseNet* net = nullptr;
  std::vector<std::size_t> indices;  // into the request vector
};

}  // namespace

BatchDiagnoser::BatchDiagnoser(DiagNetModel& model,
                               BatchDiagnoserConfig config)
    : model_(&model), config_(config) {
  DIAGNET_REQUIRE(config_.batch_size > 0);
}

std::vector<Diagnosis> BatchDiagnoser::diagnose_all(
    const std::vector<DiagnosisRequest>& requests,
    const std::vector<bool>& landmark_available) const {
  DIAGNET_SPAN("diagnose.batch");
  DIAGNET_REQUIRE_MSG(model_->trained(), "train_general() first");
  DIAGNET_COUNT_N("diagnose.batch.samples", requests.size());

  std::vector<Diagnosis> results(requests.size());
  if (requests.empty()) return results;

  // Group requests by serving network (first-appearance order) so each
  // batch runs through exactly the network diagnose() would have used.
  std::vector<Chunk> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    DIAGNET_REQUIRE(requests[i].features != nullptr);
    nn::CoarseNet* net = config_.use_general
                             ? &model_->general_net()
                             : &model_->service_net(requests[i].service);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const Chunk& g) { return g.net == net; });
    if (it == groups.end()) {
      groups.push_back({net, {}});
      it = groups.end() - 1;
    }
    it->indices.push_back(i);
  }

  std::vector<Chunk> chunks;
  for (const Chunk& g : groups) {
    for (std::size_t b = 0; b < g.indices.size(); b += config_.batch_size) {
      const std::size_t e =
          std::min(g.indices.size(), b + config_.batch_size);
      chunks.push_back({g.net,
                        {g.indices.begin() + static_cast<std::ptrdiff_t>(b),
                         g.indices.begin() + static_cast<std::ptrdiff_t>(e)}});
    }
  }
  DIAGNET_COUNT_N("diagnose.batch.chunks", chunks.size());

  util::ThreadPool& pool =
      config_.pool ? *config_.pool : util::ThreadPool::global();
  // Layer forward passes cache activations inside the layer objects, so
  // concurrent chunks must not share a network. With a serial pool the
  // chunks run one after another on the caller thread and the model's own
  // networks can be used directly (no clone cost).
  const bool concurrent = pool.size() > 1 && chunks.size() > 1;

  const data::FeatureSpace& fs = model_->feature_space();
  const bool gradient =
      model_->config().attention == AttentionMethod::Gradient;

  pool.parallel_for(chunks.size(), [&](std::size_t ci) {
    const Chunk& chunk = chunks[ci];
    std::unique_ptr<nn::CoarseNet> private_net;
    nn::CoarseNet* net = chunk.net;
    if (concurrent) {
      private_net = chunk.net->clone();
      net = private_net.get();
    }

    nn::LandBatch batch;
    {
      DIAGNET_SPAN("diagnose.batch.encode");
      std::vector<const std::vector<double>*> raw(chunk.indices.size());
      for (std::size_t r = 0; r < chunk.indices.size(); ++r)
        raw[r] = requests[chunk.indices[r]].features;
      batch = data::encode_batch(raw, fs, model_->normalizer(),
                                 landmark_available);
    }

    std::vector<AttentionResult> attention;
    {
      DIAGNET_SPAN("diagnose.batch.attention");
      if (gradient) {
        attention = compute_attention_batch(*net, batch, fs);
      } else {
        // Occlusion probes one feature at a time (m forward passes per
        // sample); there is nothing to batch, so run it row by row.
        attention.reserve(chunk.indices.size());
        for (std::size_t r = 0; r < chunk.indices.size(); ++r) {
          const nn::LandBatch row = data::encode_sample(
              *requests[chunk.indices[r]].features, fs,
              model_->normalizer(), landmark_available);
          attention.push_back(compute_occlusion_attention(*net, row, fs));
        }
      }
    }

    {
      DIAGNET_SPAN("diagnose.batch.score");
      for (std::size_t r = 0; r < chunk.indices.size(); ++r) {
        const std::size_t i = chunk.indices[r];
        results[i] = model_->complete_diagnosis(
            attention[r], *requests[i].features, landmark_available);
      }
    }
  });
  return results;
}

}  // namespace diagnet::core
