#include "core/batch_diagnoser.h"

#include <algorithm>
#include <memory>

#include "core/attention.h"
#include "data/encoding.h"
#include "obs/obs.h"
#include "util/require.h"

namespace diagnet::core {

namespace {

/// One serving network's contiguous slice of a chunk: rows
/// [begin, end) of the chunk's batch belong to `net`.
struct SubGroup {
  nn::CoarseNet* net = nullptr;
  std::size_t begin = 0, end = 0;
};

/// A run of request indices encoded and pooled together; at most batch_size
/// long. A single-part chunk is the classic case (one network). A
/// multi-part chunk is a shared-pooling union: several specialized heads
/// with bit-identical frozen LandPooling parameters score disjoint row
/// ranges of one encoded batch, and the pooling stage runs once for all of
/// them. The mask pointer refers either to a request's own
/// landmark_available vector or to the shared all-true fallback.
struct Chunk {
  const std::vector<bool>* mask = nullptr;
  std::vector<std::size_t> indices;  // into the request vector
  std::vector<SubGroup> parts;       // cover [0, indices.size()), in order
};

/// All requests that share one landmark mask, split per serving network in
/// first-appearance order.
struct NetRun {
  nn::CoarseNet* net = nullptr;
  std::vector<std::size_t> indices;
};
struct MaskGroup {
  const std::vector<bool>* mask = nullptr;
  std::vector<NetRun> runs;
};

}  // namespace

BatchDiagnoser::BatchDiagnoser(DiagNetModel& model,
                               BatchDiagnoserConfig config)
    : model_(&model), config_(config) {
  DIAGNET_REQUIRE(config_.batch_size > 0);
}

std::vector<DiagnoseResponse> BatchDiagnoser::run(
    const std::vector<DiagnoseRequest>& requests) const {
  DIAGNET_SPAN("diagnose.batch");
  DIAGNET_REQUIRE_MSG(model_->trained(), "train_general() first");
  DIAGNET_COUNT_N("diagnose.batch.samples", requests.size());

  std::vector<DiagnoseResponse> results(requests.size());
  if (requests.empty()) return results;

  const data::FeatureSpace& fs = model_->feature_space();
  const std::vector<bool> all_landmarks(fs.landmark_count(), true);

  const bool gradient =
      model_->config().attention == AttentionMethod::Gradient;

  // Group requests by landmark mask, then by serving network within the
  // mask, both in first-appearance order — each row runs through exactly
  // the network and fleet diagnose() would have used. Invalid requests get
  // their Status now and never occupy a batch slot.
  std::vector<MaskGroup> mask_groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const DiagnoseRequest& request = requests[i];
    results[i].status = model_->validate(request);
    if (!results[i].status.ok()) continue;
    nn::CoarseNet* net = config_.use_general || request.use_general
                             ? &model_->general_net()
                             : &model_->service_net(request.service);
    const std::vector<bool>* mask = request.landmark_available.empty()
                                        ? &all_landmarks
                                        : &request.landmark_available;
    auto git = std::find_if(
        mask_groups.begin(), mask_groups.end(), [&](const MaskGroup& g) {
          return g.mask == mask || *g.mask == *mask;
        });
    if (git == mask_groups.end()) {
      mask_groups.push_back({mask, {}});
      git = mask_groups.end() - 1;
    }
    auto rit = std::find_if(git->runs.begin(), git->runs.end(),
                            [&](const NetRun& r) { return r.net == net; });
    if (rit == git->runs.end()) {
      git->runs.push_back({net, {}});
      rit = git->runs.end() - 1;
    }
    rit->indices.push_back(i);
  }

  // Cut each mask group into chunks. When several networks share bit-equal
  // frozen LandPooling parameters (specialized heads fine-tuned with
  // --freeze-kernel, plus their donor), their requests ride in ONE union
  // chunk and the pooling stage runs once — gradient attention only;
  // occlusion re-runs the full per-net forward anyway.
  std::vector<Chunk> chunks;
  std::size_t shared_chunks = 0;
  for (const MaskGroup& g : mask_groups) {
    const bool share =
        gradient && g.runs.size() > 1 &&
        std::all_of(g.runs.begin() + 1, g.runs.end(), [&](const NetRun& r) {
          return r.net->shares_pooling_with(*g.runs.front().net);
        });
    if (!share) {
      for (const NetRun& run : g.runs) {
        for (std::size_t b = 0; b < run.indices.size();
             b += config_.batch_size) {
          const std::size_t e =
              std::min(run.indices.size(), b + config_.batch_size);
          Chunk c;
          c.mask = g.mask;
          c.indices.assign(run.indices.begin() + static_cast<std::ptrdiff_t>(b),
                           run.indices.begin() + static_cast<std::ptrdiff_t>(e));
          c.parts = {{run.net, 0, c.indices.size()}};
          chunks.push_back(std::move(c));
        }
      }
      continue;
    }
    Chunk c;
    c.mask = g.mask;
    const auto flush = [&] {
      if (c.indices.empty()) return;
      if (c.parts.size() > 1) ++shared_chunks;
      chunks.push_back(std::move(c));
      c = Chunk{};
      c.mask = g.mask;
    };
    for (const NetRun& run : g.runs) {
      std::size_t pos = 0;
      while (pos < run.indices.size()) {
        const std::size_t take = std::min(run.indices.size() - pos,
                                          config_.batch_size - c.indices.size());
        const std::size_t begin = c.indices.size();
        c.indices.insert(
            c.indices.end(),
            run.indices.begin() + static_cast<std::ptrdiff_t>(pos),
            run.indices.begin() + static_cast<std::ptrdiff_t>(pos + take));
        c.parts.push_back({run.net, begin, begin + take});
        pos += take;
        if (c.indices.size() == config_.batch_size) flush();
      }
    }
    flush();
  }
  DIAGNET_COUNT_N("diagnose.batch.chunks", chunks.size());
  DIAGNET_COUNT_N("diagnose.batch.shared_pool_chunks", shared_chunks);

  util::ThreadPool& pool =
      config_.pool ? *config_.pool : util::ThreadPool::global();
  // Layer forward passes cache activations inside the layer objects, so
  // concurrent chunks must not share a network. With a serial pool the
  // chunks run one after another on the caller thread and the model's own
  // networks can be used directly (no clone cost).
  const bool concurrent = pool.size() > 1 && chunks.size() > 1;

  pool.parallel_for(chunks.size(), [&](std::size_t ci) {
    const Chunk& chunk = chunks[ci];
    const std::vector<bool>& mask = *chunk.mask;
    // Layer forward caches are not thread-safe, so concurrent chunks work
    // on private clones — one per distinct network in the chunk (a network
    // appears in at most one part).
    std::vector<std::unique_ptr<nn::CoarseNet>> private_nets;
    std::vector<nn::CoarseNet*> part_nets(chunk.parts.size());
    for (std::size_t p = 0; p < chunk.parts.size(); ++p) {
      nn::CoarseNet* net = chunk.parts[p].net;
      if (concurrent) {
        private_nets.push_back(net->clone());
        net = private_nets.back().get();
      }
      part_nets[p] = net;
    }

    nn::LandBatch batch;
    {
      DIAGNET_SPAN("diagnose.batch.encode");
      std::vector<const std::vector<double>*> raw(chunk.indices.size());
      for (std::size_t r = 0; r < chunk.indices.size(); ++r)
        raw[r] = &requests[chunk.indices[r]].features;
      batch = data::encode_batch(raw, fs, model_->normalizer(), mask);
    }

    std::vector<AttentionResult> attention;
    {
      DIAGNET_SPAN("diagnose.batch.attention");
      if (gradient && chunk.parts.size() == 1) {
        attention = compute_attention_batch(*part_nets[0], batch, fs);
      } else if (gradient) {
        // Shared-pooling union: pool the whole chunk once, fan the FC
        // stacks out per head.
        std::vector<PooledGroup> pooled_groups(chunk.parts.size());
        for (std::size_t p = 0; p < chunk.parts.size(); ++p) {
          pooled_groups[p].net = part_nets[p];
          pooled_groups[p].rows.resize(chunk.parts[p].end -
                                       chunk.parts[p].begin);
          for (std::size_t s = 0; s < pooled_groups[p].rows.size(); ++s)
            pooled_groups[p].rows[s] = chunk.parts[p].begin + s;
        }
        attention = compute_attention_shared_pooling(pooled_groups, batch, fs);
      } else {
        // Occlusion probes one feature at a time (m forward passes per
        // sample); there is nothing to batch, so run it row by row with the
        // row's own network.
        attention.reserve(chunk.indices.size());
        for (std::size_t p = 0; p < chunk.parts.size(); ++p) {
          for (std::size_t r = chunk.parts[p].begin; r < chunk.parts[p].end;
               ++r) {
            const nn::LandBatch row = data::encode_sample(
                requests[chunk.indices[r]].features, fs, model_->normalizer(),
                mask);
            attention.push_back(
                compute_occlusion_attention(*part_nets[p], row, fs));
          }
        }
      }
    }

    {
      DIAGNET_SPAN("diagnose.batch.score");
      for (std::size_t r = 0; r < chunk.indices.size(); ++r) {
        const std::size_t i = chunk.indices[r];
        results[i].diagnosis = model_->complete_diagnosis(
            attention[r], requests[i].features, mask);
      }
    }
  });
  return results;
}

}  // namespace diagnet::core
