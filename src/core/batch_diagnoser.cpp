#include "core/batch_diagnoser.h"

#include <algorithm>
#include <memory>

#include "core/attention.h"
#include "data/encoding.h"
#include "obs/obs.h"
#include "util/require.h"

namespace diagnet::core {

namespace {

/// A run of request indices served by one (network, mask) pair; at most
/// batch_size long. The mask pointer refers either to a request's own
/// landmark_available vector or to the shared all-true fallback.
struct Chunk {
  nn::CoarseNet* net = nullptr;
  const std::vector<bool>* mask = nullptr;
  std::vector<std::size_t> indices;  // into the request vector
};

}  // namespace

BatchDiagnoser::BatchDiagnoser(DiagNetModel& model,
                               BatchDiagnoserConfig config)
    : model_(&model), config_(config) {
  DIAGNET_REQUIRE(config_.batch_size > 0);
}

std::vector<DiagnoseResponse> BatchDiagnoser::run(
    const std::vector<DiagnoseRequest>& requests) const {
  DIAGNET_SPAN("diagnose.batch");
  DIAGNET_REQUIRE_MSG(model_->trained(), "train_general() first");
  DIAGNET_COUNT_N("diagnose.batch.samples", requests.size());

  std::vector<DiagnoseResponse> results(requests.size());
  if (requests.empty()) return results;

  const data::FeatureSpace& fs = model_->feature_space();
  const std::vector<bool> all_landmarks(fs.landmark_count(), true);

  // Group requests by (serving network, landmark mask) in first-appearance
  // order so each batch runs through exactly the network and fleet
  // diagnose() would have used. Invalid requests get their Status now and
  // never occupy a batch slot.
  std::vector<Chunk> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const DiagnoseRequest& request = requests[i];
    results[i].status = model_->validate(request);
    if (!results[i].status.ok()) continue;
    nn::CoarseNet* net = config_.use_general || request.use_general
                             ? &model_->general_net()
                             : &model_->service_net(request.service);
    const std::vector<bool>* mask = request.landmark_available.empty()
                                        ? &all_landmarks
                                        : &request.landmark_available;
    auto it = std::find_if(groups.begin(), groups.end(), [&](const Chunk& g) {
      return g.net == net && (g.mask == mask || *g.mask == *mask);
    });
    if (it == groups.end()) {
      groups.push_back({net, mask, {}});
      it = groups.end() - 1;
    }
    it->indices.push_back(i);
  }

  std::vector<Chunk> chunks;
  for (const Chunk& g : groups) {
    for (std::size_t b = 0; b < g.indices.size(); b += config_.batch_size) {
      const std::size_t e =
          std::min(g.indices.size(), b + config_.batch_size);
      chunks.push_back({g.net, g.mask,
                        {g.indices.begin() + static_cast<std::ptrdiff_t>(b),
                         g.indices.begin() + static_cast<std::ptrdiff_t>(e)}});
    }
  }
  DIAGNET_COUNT_N("diagnose.batch.chunks", chunks.size());

  util::ThreadPool& pool =
      config_.pool ? *config_.pool : util::ThreadPool::global();
  // Layer forward passes cache activations inside the layer objects, so
  // concurrent chunks must not share a network. With a serial pool the
  // chunks run one after another on the caller thread and the model's own
  // networks can be used directly (no clone cost).
  const bool concurrent = pool.size() > 1 && chunks.size() > 1;

  const bool gradient =
      model_->config().attention == AttentionMethod::Gradient;

  pool.parallel_for(chunks.size(), [&](std::size_t ci) {
    const Chunk& chunk = chunks[ci];
    const std::vector<bool>& mask = *chunk.mask;
    std::unique_ptr<nn::CoarseNet> private_net;
    nn::CoarseNet* net = chunk.net;
    if (concurrent) {
      private_net = chunk.net->clone();
      net = private_net.get();
    }

    nn::LandBatch batch;
    {
      DIAGNET_SPAN("diagnose.batch.encode");
      std::vector<const std::vector<double>*> raw(chunk.indices.size());
      for (std::size_t r = 0; r < chunk.indices.size(); ++r)
        raw[r] = &requests[chunk.indices[r]].features;
      batch = data::encode_batch(raw, fs, model_->normalizer(), mask);
    }

    std::vector<AttentionResult> attention;
    {
      DIAGNET_SPAN("diagnose.batch.attention");
      if (gradient) {
        attention = compute_attention_batch(*net, batch, fs);
      } else {
        // Occlusion probes one feature at a time (m forward passes per
        // sample); there is nothing to batch, so run it row by row.
        attention.reserve(chunk.indices.size());
        for (std::size_t r = 0; r < chunk.indices.size(); ++r) {
          const nn::LandBatch row = data::encode_sample(
              requests[chunk.indices[r]].features, fs, model_->normalizer(),
              mask);
          attention.push_back(compute_occlusion_attention(*net, row, fs));
        }
      }
    }

    {
      DIAGNET_SPAN("diagnose.batch.score");
      for (std::size_t r = 0; r < chunk.indices.size(); ++r) {
        const std::size_t i = chunk.indices[r];
        results[i].diagnosis = model_->complete_diagnosis(
            attention[r], requests[i].features, mask);
      }
    }
  });
  return results;
}

std::vector<Diagnosis> BatchDiagnoser::diagnose_all(
    const std::vector<DiagnosisRequest>& requests,
    const std::vector<bool>& landmark_available) const {
  std::vector<DiagnoseRequest> owned(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    DIAGNET_REQUIRE(requests[i].features != nullptr);
    owned[i].features = *requests[i].features;
    owned[i].service = requests[i].service;
    owned[i].landmark_available = landmark_available;
  }
  std::vector<DiagnoseResponse> responses = run(owned);
  std::vector<Diagnosis> out(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    responses[i].status.throw_if_error();
    out[i] = std::move(responses[i].diagnosis);
  }
  return out;
}

}  // namespace diagnet::core
