// Batched diagnosis engine: the full ranking pipeline of
// DiagNetModel::diagnose() — coarse forward, gradient attention,
// Algorithm 1 score weighting, extensible-forest scoring, ensemble
// blending — vectorised over N samples.
//
// Requests are grouped by landmark mask, then by serving network — a
// service's specialised model when one exists, the general model otherwise.
// Each group is cut into batches of `batch_size` rows, and batches are
// processed in parallel on a thread pool. Inside a batch the coarse network
// runs ONE forward pass and ONE input-only backward pass for all rows (see
// CoarseNet::backward_inputs); everything downstream of the attention step
// is per-row. When the networks within a mask group share bit-identical
// frozen LandPooling parameters (per-service heads fine-tuned with
// --freeze-kernel), their requests share union batches: the pooling stage —
// forward and backward — runs once per batch for ALL services and only the
// cheap FC stacks fan out per head (core/attention.h,
// compute_attention_shared_pooling).
//
// Exactness contract: run(requests)[i].diagnosis is bit-identical to
// model.diagnose(requests[i]).diagnosis — every per-row computation (GEMM
// accumulation order, land pooling, softmax, the score pipeline) is
// independent of the other rows of the batch, of batch_size, and of the
// thread count. The property test in tests/test_batch_diagnoser.cpp pins
// this, and the serving subsystem (src/serve) relies on it to coalesce
// concurrent callers without changing any answer.
#pragma once

#include <cstddef>
#include <vector>

#include "core/diagnet.h"
#include "util/thread_pool.h"

namespace diagnet::core {

struct BatchDiagnoserConfig {
  /// Rows per coarse-network forward/backward pass.
  std::size_t batch_size = 64;
  /// Pool for outer parallelism over batches; nullptr selects the global
  /// pool. With more than one worker each batch runs on a private clone of
  /// the serving network (layer forward caches are not thread-safe).
  util::ThreadPool* pool = nullptr;
  /// Route every request through the general model, ignoring services.
  /// (Per-request routing is expressed with DiagnoseRequest::use_general;
  /// this config toggle forces it for the whole run.)
  bool use_general = false;
};

class BatchDiagnoser {
 public:
  explicit BatchDiagnoser(DiagNetModel& model,
                          BatchDiagnoserConfig config = {});

  /// Diagnose all requests; response i corresponds to request i. Requests
  /// that fail validation (wrong feature count, bad mask) get a non-OK
  /// Status response without poisoning the rest of the batch.
  std::vector<DiagnoseResponse> run(
      const std::vector<DiagnoseRequest>& requests) const;

  const BatchDiagnoserConfig& config() const { return config_; }

 private:
  DiagNetModel* model_;
  BatchDiagnoserConfig config_;
};

}  // namespace diagnet::core
