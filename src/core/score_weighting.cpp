#include "core/score_weighting.h"

#include "util/require.h"

namespace diagnet::core {

std::vector<double> weight_scores(const std::vector<double>& gamma,
                                  const std::vector<double>& coarse_probs,
                                  std::size_t coarse_argmax,
                                  const data::FeatureSpace& fs) {
  DIAGNET_REQUIRE(gamma.size() == fs.total());
  DIAGNET_REQUIRE(coarse_argmax < coarse_probs.size());

  const auto family = static_cast<data::FaultFamily>(coarse_argmax);
  const std::vector<std::size_t> p = fs.features_of_family(family);

  double prob_sum = 0.0;
  for (double y : coarse_probs) prob_sum += y;
  DIAGNET_REQUIRE(prob_sum > 0.0);
  const double w = coarse_probs[coarse_argmax] / prob_sum;

  double s = 0.0;
  for (std::size_t j : p) s += gamma[j];

  // Extreme cases (s = 0: no attention mass on the family, e.g. the coarse
  // winner is Nominal whose family has no features; s = 1: all of it).
  if (s <= 0.0 || s >= 1.0) return gamma;

  std::vector<double> tuned = gamma;
  std::vector<bool> in_p(fs.total(), false);
  for (std::size_t j : p) in_p[j] = true;
  const double bonus = w / s;
  const double penalty = (1.0 - w) / (1.0 - s);
  for (std::size_t j = 0; j < tuned.size(); ++j)
    tuned[j] *= in_p[j] ? bonus : penalty;
  return tuned;
}

}  // namespace diagnet::core
