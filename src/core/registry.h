// Model registry: binary persistence of a fully-trained DiagNet model.
//
// The paper's deployment (Fig. 1) has a central analysis service that
// trains the inference model and *shares* it with clients; this registry
// is the wire/disk format for that hand-off. A saved model bundle carries
// everything inference needs — the coarse-network architecture and
// weights, every specialised per-service head, the normaliser statistics,
// the auxiliary Random Forest, and the unknown-feature set — so a client
// can diagnose without access to any training data.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/diagnet.h"

namespace diagnet::core {

/// Serialise a trained model (throws std::logic_error if untrained).
void save_model(const DiagNetModel& model, std::ostream& os);
void save_model_file(const DiagNetModel& model, const std::string& path);

/// Reconstruct a model bound to `fs`. The feature space must describe the
/// same deployment shape (k metrics per landmark, local feature count) the
/// model was trained for; mismatches throw std::runtime_error.
std::unique_ptr<DiagNetModel> load_model(std::istream& is,
                                         const data::FeatureSpace& fs);
std::unique_ptr<DiagNetModel> load_model_file(const std::string& path,
                                              const data::FeatureSpace& fs);

}  // namespace diagnet::core
