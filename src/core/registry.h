// Model registry: binary persistence of a fully-trained DiagNet model.
//
// The paper's deployment (Fig. 1) has a central analysis service that
// trains the inference model and *shares* it with clients; this registry
// is the wire/disk format for that hand-off. A saved model bundle carries
// everything inference needs — the coarse-network architecture and
// weights, every specialised per-service head, the normaliser statistics,
// the auxiliary Random Forest, and the unknown-feature set — so a client
// can diagnose without access to any training data.
//
// The primary API is Status-based (try_*): corruption, truncation and
// shape mismatches come back as util::Status (data_loss / not_found /
// invalid_argument) instead of a zoo of exception types, so the CLI's
// `error:` exit and the serving subsystem's hot-swap-refusal path render
// the same object.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/diagnet.h"
#include "util/status.h"

namespace diagnet::core {

/// Serialise a trained model. failed_precondition when untrained;
/// not_found / data_loss for file errors.
util::Status try_save_model(const DiagNetModel& model, std::ostream& os);
util::Status try_save_model_file(const DiagNetModel& model,
                                 const std::string& path);

/// Side-channel facts about a successfully loaded bundle; the serving
/// subsystem surfaces these through its statsz endpoint so an operator
/// can tell WHICH model a process is serving (the checksum is the v2
/// registry's FNV-1a payload checksum, i.e. it identifies the exact
/// trained weights, not just a file path).
struct ModelBundleInfo {
  std::uint64_t checksum = 0;
  std::uint64_t version = 0;  // registry file-format version
};

/// Reconstruct a model bound to `fs`. The feature space must describe the
/// same deployment shape (k metrics per landmark, local feature count) the
/// model was trained for; mismatches are invalid_argument, corrupt or
/// truncated bundles data_loss, missing files not_found. `info`, when
/// non-null, receives the bundle checksum/version on success.
util::StatusOr<std::unique_ptr<DiagNetModel>> try_load_model(
    std::istream& is, const data::FeatureSpace& fs,
    ModelBundleInfo* info = nullptr);
util::StatusOr<std::unique_ptr<DiagNetModel>> try_load_model_file(
    const std::string& path, const data::FeatureSpace& fs,
    ModelBundleInfo* info = nullptr);

}  // namespace diagnet::core
